// Minimal stand-ins so the LHWS001–LHWS005 fixtures read as plausible C++
// without depending on the library headers. The token backend never
// compiles the fixtures; the AST backend parses them stand-alone with
// -Wno-everything, so unresolved details are harmless.
#pragma once

#include <coroutine>
#include <cstddef>

namespace stub {

template <typename T>
struct task {
  struct promise_type {
    task get_return_object() { return {}; }
    std::suspend_always initial_suspend() { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void unhandled_exception() {}
    void return_value(T) {}
  };
};

template <>
struct task<void> {
  struct promise_type {
    task get_return_object() { return {}; }
    std::suspend_always initial_suspend() { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void unhandled_exception() {}
    void return_void() {}
  };
};

struct trivially_awaitable {
  bool await_ready() { return true; }
  void await_suspend(std::coroutine_handle<>) {}
  int await_resume() { return 0; }
};

trivially_awaitable some_event();
int touch_shared_state();

}  // namespace stub
