// Fixture: LHWS001 suspend-with-lock. Self-contained stand-ins for the
// real types — the linter reasons structurally, so these fixtures never
// need to compile against the library (and must not: several encode bugs
// [[nodiscard]] would reject).
//
// True positives carry a trailing LINT-EXPECT annotation; every other
// line doubles as a true-negative (scripts/lint_check.py requires the
// emitted set to match the expected set EXACTLY, so a spurious diagnostic
// on any unannotated line fails the fixture).
#include <mutex>

#include "lint_stubs.hpp"

std::mutex mu;

// TP 1: a lock_guard alive across a co_await in the same scope.
stub::task<int> tp_guard_spans_await() {
  std::lock_guard<std::mutex> g(mu);
  co_await stub::some_event();  // LINT-EXPECT: LHWS001
  co_return 1;
}

// TP 2: a unique_lock in an outer scope, co_await in a nested block.
stub::task<void> tp_unique_lock_nested_await(bool flag) {
  std::unique_lock<std::mutex> lk(mu);
  if (flag) {
    co_await stub::some_event();  // LINT-EXPECT: LHWS001
  }
}

// TP 3: scoped_lock with CTAD (no template argument list).
stub::task<void> tp_scoped_lock_ctad() {
  std::scoped_lock g(mu);
  co_await stub::some_event();  // LINT-EXPECT: LHWS001
}

// TN 1: the guard's scope closes before the suspension point.
stub::task<int> tn_guard_scope_closed() {
  {
    std::lock_guard<std::mutex> g(mu);
    stub::touch_shared_state();
  }
  co_await stub::some_event();
  co_return 2;
}

// TN 2: a guard in a non-coroutine function suspends nothing.
int tn_guard_no_coroutine() {
  std::lock_guard<std::mutex> g(mu);
  return stub::touch_shared_state();
}

// TN 3: co_await with no guard anywhere in scope.
stub::task<void> tn_await_without_guard() {
  co_await stub::some_event();
}
