// Fixture: LHWS003 dangling-ref-across-suspend. A coroutine lambda's
// by-reference captures live in the closure object; the coroutine frame
// outlives it (the frame suspends, the closure temporary is destroyed
// with the caller's statement), so every such reference dangles at the
// first resumption.
#include <vector>

#include "lint_stubs.hpp"

// TP 1: capture-default by reference in a coroutine lambda.
void tp_capture_default_ref() {
  int local = 7;
  auto bad = [&]() -> stub::task<int> {  // LINT-EXPECT: LHWS003
    co_await stub::some_event();
    co_return local;
  };
  (void)bad;
}

// TP 2: a named by-reference capture.
void tp_named_ref_capture(std::vector<int>& rows) {
  auto bad = [&rows]() -> stub::task<void> {  // LINT-EXPECT: LHWS003
    co_await stub::some_event();
    rows.clear();
  };
  (void)bad;
}

// TP 3: a reference parameter of a coroutine lambda (parameters are copied
// into the frame — references are not).
void tp_ref_param() {
  auto bad = [](std::vector<int>& rows) -> stub::task<void> {  // LINT-EXPECT: LHWS003
    co_await stub::some_event();
    rows.clear();
  };
  (void)bad;
}

// TN 1: by-value captures are copied into the closure, which the coroutine
// frame keeps alive via its own copy semantics in this codebase's usage.
void tn_value_capture() {
  int local = 7;
  auto ok = [local]() -> stub::task<int> {
    co_await stub::some_event();
    co_return local;
  };
  (void)ok;
}

// TN 2: a by-reference capture in a NON-coroutine lambda is ordinary C++ —
// no suspension point, no dangling window.
int tn_ref_capture_plain_lambda() {
  int local = 7;
  auto ok = [&] { return local + 1; };
  return ok();
}
