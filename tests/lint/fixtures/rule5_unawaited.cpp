// Fixture: LHWS005 unawaited-awaitable. Calling a spawning/suspending API
// and dropping the result on the floor either leaks the child computation
// (a task<> that never runs) or silently skips the suspension the caller
// thought they scheduled. [[nodiscard]] catches the library types at
// compile time; this rule catches the same shape structurally, including
// in code the compiler never sees (fixtures, templates never instantiated).
#include <chrono>
#include <thread>

#include "lint_stubs.hpp"

namespace lhws {
stub::trivially_awaitable fork2(int, int);
stub::trivially_awaitable latency(std::chrono::milliseconds);
stub::trivially_awaitable sleep_for(std::chrono::milliseconds);
stub::trivially_awaitable when_all(int, int);
}  // namespace lhws

namespace io {
struct reactor;
struct socket;
stub::trivially_awaitable async_connect(reactor&, socket&);
}  // namespace io

// TP 1: fork2 result discarded — the fork never happens.
stub::task<void> tp_dropped_fork(int a, int b) {
  lhws::fork2(a, b);  // LINT-EXPECT: LHWS005
  co_return;
}

// TP 2: a latency edge constructed and thrown away — the δ the scheduler
// was supposed to hide never suspends anyone.
stub::task<void> tp_dropped_latency() {
  lhws::latency(std::chrono::milliseconds(10));  // LINT-EXPECT: LHWS005
  co_await stub::some_event();
}

// TP 3: async I/O op discarded — the connect is never driven.
stub::task<void> tp_dropped_connect(io::reactor& r, io::socket& s) {
  io::async_connect(r, s);  // LINT-EXPECT: LHWS005
  co_return;
}

// TN 1: awaited — the normal shape.
stub::task<void> tn_awaited(int a, int b) {
  co_await lhws::fork2(a, b);
  co_await lhws::sleep_for(std::chrono::milliseconds(1));
}

// TN 2: bound to a variable and awaited later; the intermediate binding is
// a consumption, not a discard.
stub::task<void> tn_bound_then_awaited(int a, int b) {
  auto pending = lhws::when_all(a, b);
  co_await pending;
}

// TN 3: std::this_thread::sleep_for shares a name with the awaitable but
// is the thread API, not ours — must not be flagged by THIS rule (rule 2
// owns it, and only inside coroutines).
void tn_thread_sleep_name_collision() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
