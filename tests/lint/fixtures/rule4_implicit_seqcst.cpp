// Fixture: LHWS004 implicit-seq-cst. In the lock-free directories every
// memory ordering must be a deliberate, §7-documented decision — a
// defaulted seq_cst either hides a missing contract or taxes the hot path
// with an unneeded full fence. (The runner passes --seqcst-scope=ALL so
// this fixture participates regardless of its path.)
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> counter{0};
std::atomic<bool> flag{false};

// TP 1: defaulted load.
std::uint64_t tp_default_load() {
  return counter.load();  // LINT-EXPECT: LHWS004
}

// TP 2: defaulted store.
void tp_default_store() {
  flag.store(true);  // LINT-EXPECT: LHWS004
}

// TP 3: defaulted RMW.
void tp_default_fetch_add() {
  counter.fetch_add(1);  // LINT-EXPECT: LHWS004
}

// TP 4: operator forms are implicit seq_cst RMWs/stores in disguise.
void tp_operator_forms() {
  counter++;  // LINT-EXPECT: LHWS004
  counter += 2;  // LINT-EXPECT: LHWS004
  flag = true;  // LINT-EXPECT: LHWS004
}

// TP 5: compare_exchange with no ordering arguments.
bool tp_default_cas(bool expect) {
  return flag.compare_exchange_strong(expect, true);  // LINT-EXPECT: LHWS004
}

// TN 1: explicit orderings, single- and dual-order CAS forms.
std::uint64_t tn_explicit_orders(bool expect) {
  counter.fetch_add(1, std::memory_order_relaxed);
  flag.store(true, std::memory_order_release);
  if (flag.compare_exchange_strong(expect, false, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    counter.store(0, std::memory_order_relaxed);
  }
  while (!flag.compare_exchange_weak(expect, true,
                                     std::memory_order_relaxed)) {
  }
  return counter.load(std::memory_order_acquire);
}

// Documented limitation of the token backend: it matches method NAMES
// structurally (it cannot resolve the receiver's type), so atomic-sounding
// methods on plain types are flagged too. That bias is deliberate — in the
// seqcst-scope directories a `.store()/.load()` pair on a non-atomic is
// itself suspicious, and an ALLOW documents the exception. The AST backend
// checks the real type and stays silent here.
struct plain_buffer {
  void store(int) {}
  int load() { return 0; }
};
int limitation_plain_methods() {
  plain_buffer b;
  b.store(1);  // LINT-EXPECT: LHWS004
  return b.load();  // LINT-EXPECT: LHWS004
}

// TN 2: method names outside the atomic vocabulary are never touched.
struct queue_like {
  void push(int) {}
  int pop() { return 0; }
};
int tn_unrelated_methods() {
  queue_like q;
  q.push(1);
  return q.pop();
}
