// Fixture: LHWS002 blocking-call-on-worker. A raw blocking syscall inside
// a coroutine body occupies the worker for the full latency — the paper's
// whole point is that latency must instead be a heavy δ edge the scheduler
// can hide (suspend via the src/io/ awaitables).
#include <chrono>
#include <cstddef>
#include <thread>
#include <unistd.h>

#include "lint_stubs.hpp"

namespace io {
struct reactor;
struct socket;
stub::trivially_awaitable async_read(reactor&, socket&, void*, std::size_t);
}  // namespace io

// TP 1: raw ::read inside a coroutine.
stub::task<int> tp_raw_read(int fd, char* buf) {
  long got = ::read(fd, buf, 64);  // LINT-EXPECT: LHWS002
  co_return static_cast<int>(got);
}

// TP 2: thread sleep inside a coroutine (latency the scheduler never sees).
stub::task<void> tp_thread_sleep() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // LINT-EXPECT: LHWS002
  co_await stub::some_event();
}

// TP 3: usleep, unqualified spelling.
stub::task<void> tp_usleep() {
  usleep(1000);  // LINT-EXPECT: LHWS002
  co_return;
}

// TN 1: the same syscall in a plain function is the caller's business —
// only worker coroutines are the scheduler's concern.
long tn_read_outside_coroutine(int fd, char* buf) {
  return ::read(fd, buf, 64);
}

// TN 2: the async awaitable is exactly the sanctioned alternative.
stub::task<int> tn_async_read(io::reactor& r, io::socket& s, char* buf) {
  int got = co_await io::async_read(r, s, buf, 64);
  co_return got;
}

// TN 3 (suppression path): an intentional raw syscall with a reasoned
// ALLOW — the suppression must eat the diagnostic AND count as used, so
// neither LHWS002 nor LHWS901 may appear.
stub::task<long> tn_allowed_write(int fd, const char* buf) {
  // LHWS-LINT-ALLOW(LHWS002): fixture — exercising the suppression path
  // end to end (reasoned, used, multi-line comment).
  long put = ::write(fd, buf, 64);
  co_return put;
}
