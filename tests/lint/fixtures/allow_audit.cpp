// Fixture: the suppression audit (LHWS900/LHWS901). ALLOW comments are a
// contract: they must carry a reason (else LHWS900, and the underlying
// diagnostic still stands) and they must actually suppress something
// (else LHWS901 — stale suppressions rot into lies about the code).
#include <unistd.h>

#include "lint_stubs.hpp"

// Case 1: reasonless ALLOW. Two diagnostics: LHWS900 on the ALLOW line,
// and the un-suppressed LHWS002 on the syscall itself.
stub::task<long> case_reasonless(int fd, char* buf) {
  // LHWS-LINT-ALLOW(LHWS002):
  long got = ::read(fd, buf, 64);  // LINT-EXPECT: LHWS002
  co_return got;
}
// The ALLOW above sits one line before its target; annotate it here so the
// expectation list stays adjacent to the code it describes:
// LINT-EXPECT-AT: 12 LHWS900

// Case 2: reasoned but unused ALLOW — nothing on the target line trips
// LHWS004, so the suppression is dead weight.
// LHWS-LINT-ALLOW(LHWS004): historical — the atomic was removed in a refactor.
int case_unused() {  // (plain code, no diagnostic to eat)
  return 0;
}
// LINT-EXPECT-AT: 22 LHWS901

// Case 3: reasoned AND used — the happy path. No diagnostic of any kind.
stub::task<long> case_used(int fd, const char* buf) {
  // LHWS-LINT-ALLOW(LHWS002): fixture — deliberate raw syscall to prove a
  // reasoned, used ALLOW is silent.
  long put = ::write(fd, buf, 32);
  co_return put;
}
