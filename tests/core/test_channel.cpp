// channel<T>: suspending receives, producer/consumer orders, close
// semantics, and cross-engine equivalence.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "core/channel.hpp"
#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  o.seed = 5;
  return o;
}

task<long> drain_sum(channel<int>& ch) {
  long sum = 0;
  for (;;) {
    const std::optional<int> v = co_await ch.receive();
    if (!v.has_value()) break;
    sum += *v;
  }
  co_return sum;
}

task<long> send_n(channel<int>& ch, int n) {
  for (int i = 1; i <= n; ++i) {
    co_await delay(100us);  // interleave with the receiver
    ch.send(i);
  }
  ch.close();
  co_return n;
}

struct EngineParam {
  engine e;
  unsigned workers;
};

class ChannelEngines : public ::testing::TestWithParam<EngineParam> {};

TEST_P(ChannelEngines, QueuedValuesDrainInFifoOrder) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  channel<int> ch;
  for (int i = 0; i < 10; ++i) ch.send(i);
  ch.close();
  auto root = [](channel<int>& c) -> task<bool> {
    for (int expect = 0; expect < 10; ++expect) {
      const auto v = co_await c.receive();
      if (!v.has_value() || *v != expect) co_return false;
    }
    co_return !(co_await c.receive()).has_value();
  };
  EXPECT_TRUE(sched.run(root(ch)));
}

TEST_P(ChannelEngines, ProducerConsumerSum) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  channel<int> ch;
  auto root = [](channel<int>& c) -> task<long> {
    auto [sent, sum] = co_await fork2(send_n(c, 50), drain_sum(c));
    co_return sum - sent;  // sum(1..50) - 50
  };
  EXPECT_EQ(sched.run(root(ch)), 50L * 51 / 2 - 50);
}

TEST_P(ChannelEngines, CloseWakesSuspendedReceiver) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  channel<int> ch;
  auto root = [](channel<int>& c) -> task<bool> {
    auto [closed, got] = co_await fork2(
        // Left: wait a bit, then close without sending.
        [](channel<int>& cc) -> task<bool> {
          co_await delay(2ms);
          cc.close();
          co_return true;
        }(c),
        // Right: suspended receive must observe nullopt.
        [](channel<int>& cc) -> task<bool> {
          co_return !(co_await cc.receive()).has_value();
        }(c));
    co_return closed && got;
  };
  EXPECT_TRUE(sched.run(root(ch)));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ChannelEngines,
    ::testing::Values(EngineParam{engine::latency_hiding, 1},
                      EngineParam{engine::latency_hiding, 3},
                      EngineParam{engine::blocking, 2},
                      EngineParam{engine::blocking, 4}));

TEST(Channel, ExternalProducerThread) {
  scheduler sched(opts(2));
  channel<int> ch;
  std::thread producer([&] {
    for (int i = 0; i < 20; ++i) {
      std::this_thread::sleep_for(500us);
      ch.send(i);
    }
    ch.close();
  });
  auto root = [](channel<int>& c) -> task<long> { return drain_sum(c); };
  EXPECT_EQ(sched.run(root(ch)), 19L * 20 / 2);
  producer.join();
}

TEST(Channel, MultipleConsumersPartitionTheStream) {
  scheduler sched(opts(2));
  channel<int> ch;
  for (int i = 1; i <= 100; ++i) ch.send(i);
  ch.close();
  auto root = [](channel<int>& c) -> task<long> {
    auto [a, b] = co_await fork2(drain_sum(c), drain_sum(c));
    co_return a + b;
  };
  EXPECT_EQ(sched.run(root(ch)), 100L * 101 / 2)
      << "every value received exactly once across consumers";
}

TEST(Channel, TryReceiveDoesNotSuspend) {
  channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
  ch.send(7);
  const auto v = ch.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, SuspendedReceiverCountsAsSuspension) {
  scheduler sched(opts(2));
  channel<int> ch;
  auto root = [](channel<int>& c) -> task<int> {
    auto [v, sent] = co_await fork2(
        [](channel<int>& cc) -> task<int> {
          const auto got = co_await cc.receive();
          co_return got.value_or(-1);
        }(c),
        [](channel<int>& cc) -> task<int> {
          co_await delay(2ms);
          cc.send(9);
          cc.close();
          co_return 1;
        }(c));
    co_return v;
  };
  EXPECT_EQ(sched.run(root(ch)), 9);
  EXPECT_GE(sched.stats().suspensions, 1u);
}

}  // namespace
}  // namespace lhws
