// lhws::event<T> semantics: completion ordering, move-only payloads,
// multiple events per task, and engine equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "core/sync.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  return o;
}

TEST(Event, SetBeforeRunNeverSuspends) {
  event<int> ev;
  ev.set(11);
  EXPECT_TRUE(ev.ready());
  scheduler sched(opts(1));
  auto root = [](event<int>& e) -> task<int> { co_return co_await e; };
  EXPECT_EQ(sched.run(root(ev)), 11);
  EXPECT_EQ(sched.stats().suspensions, 0u);
}

TEST(Event, MoveOnlyPayload) {
  scheduler sched(opts(2));
  event<std::unique_ptr<int>> ev;
  auto root = [](event<std::unique_ptr<int>>& e) -> task<int> {
    auto [boxed, done] = co_await fork2(
        [](event<std::unique_ptr<int>>& ee) -> task<int> {
          auto p = co_await ee;
          co_return *p;
        }(e),
        [](event<std::unique_ptr<int>>& ee) -> task<int> {
          co_await delay(1ms);
          ee.set(std::make_unique<int>(21));
          co_return 0;
        }(e));
    (void)done;
    co_return boxed;
  };
  EXPECT_EQ(sched.run(root(ev)), 21);
}

TEST(Event, SeveralEventsAwaitedSequentially) {
  scheduler sched(opts(2));
  event<int> a, b, c;
  std::thread producer([&] {
    std::this_thread::sleep_for(2ms);
    a.set(1);
    std::this_thread::sleep_for(1ms);
    b.set(2);
    std::this_thread::sleep_for(1ms);
    c.set(3);
  });
  auto root = [](event<int>& x, event<int>& y, event<int>& z) -> task<int> {
    const int vx = co_await x;
    const int vy = co_await y;
    const int vz = co_await z;
    co_return vx * 100 + vy * 10 + vz;
  };
  EXPECT_EQ(sched.run(root(a, b, c)), 123);
  producer.join();
}

TEST(Event, BlockingEngineWaitsCorrectly) {
  scheduler sched(opts(2, engine::blocking));
  event<int> ev;
  // Gate the producer on a flag the task raises immediately before the
  // await: a fixed pre-set delay alone lets slow starts (sanitizer builds)
  // reach set() before the await, taking the fast path and recording no
  // blocked wait.
  std::atomic<bool> awaiting{false};
  std::thread producer([&] {
    while (!awaiting.load(std::memory_order_acquire)) {
    }
    std::this_thread::sleep_for(5ms);
    ev.set(7);
  });
  auto root = [](event<int>& e, std::atomic<bool>& flag) -> task<int> {
    flag.store(true, std::memory_order_release);
    co_return co_await e;
  };
  EXPECT_EQ(sched.run(root(ev, awaiting)), 7);
  EXPECT_EQ(sched.stats().blocked_waits, 1u);
  producer.join();
}

TEST(Event, RacingCompletionAndAwait) {
  // Hammer the set-vs-await race: a producer thread sets with no delay
  // while the task awaits immediately. Either the await sees the value
  // (no suspension) or it suspends and is resumed — both must yield 5.
  for (int round = 0; round < 50; ++round) {
    scheduler sched(opts(2));
    event<int> ev;
    std::thread producer([&] { ev.set(5); });
    auto root = [](event<int>& e) -> task<int> { co_return co_await e; };
    ASSERT_EQ(sched.run(root(ev)), 5) << "round " << round;
    producer.join();
  }
}

TEST(Event, FanOutOfManyEvents) {
  // One producer completes 64 events in reverse order; 64 awaiting tasks
  // must each get their own value.
  constexpr std::size_t n = 64;
  scheduler sched(opts(2));
  std::vector<event<int>> events(n);
  std::thread producer([&] {
    std::this_thread::sleep_for(2ms);
    for (std::size_t i = n; i-- > 0;) {
      events[i].set(static_cast<int>(i));
    }
  });
  auto wait_one = [](event<int>& e) -> task<int> { co_return co_await e; };
  auto range = [&](auto&& self, std::size_t lo,
                   std::size_t hi) -> task<long> {
    if (hi - lo == 1) co_return co_await wait_one(events[lo]);
    const std::size_t mid = lo + (hi - lo) / 2;
    auto [a, b] = co_await fork2(self(self, lo, mid), self(self, mid, hi));
    co_return a + b;
  };
  // NOTE: `range` and `events` outlive the run (locals of this test), so
  // the capturing-lambda coroutine is safe here.
  EXPECT_EQ(sched.run(range(range, 0, n)),
            static_cast<long>(n * (n - 1) / 2));
  producer.join();
}

}  // namespace
}  // namespace lhws
