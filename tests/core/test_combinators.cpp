// when_all / delay / nested-combinator tests.
#include <gtest/gtest.h>

#include <chrono>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "support/timing.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  return o;
}

task<int> fetch(int v) {
  co_return co_await latency(3ms, v);
}

TEST(WhenAll, EmptyVector) {
  scheduler sched(opts(2));
  auto root = []() -> task<std::size_t> {
    auto results = co_await when_all(std::vector<task<int>>{});
    co_return results.size();
  };
  EXPECT_EQ(sched.run(root()), 0u);
}

TEST(WhenAll, PreservesInputOrder) {
  scheduler sched(opts(3));
  auto root = []() -> task<bool> {
    std::vector<task<int>> tasks;
    for (int i = 0; i < 40; ++i) tasks.push_back(fetch(i));
    const std::vector<int> results = co_await when_all(std::move(tasks));
    for (int i = 0; i < 40; ++i) {
      if (results[static_cast<std::size_t>(i)] != i) co_return false;
    }
    co_return true;
  };
  EXPECT_TRUE(sched.run(root()));
}

TEST(WhenAll, LatenciesOverlap) {
  // 30 x 10ms fetches via when_all on one worker: wall << 300ms.
  scheduler sched(opts(1));
  auto root = []() -> task<int> {
    std::vector<task<int>> tasks;
    for (int i = 0; i < 30; ++i) {
      tasks.push_back([]() -> task<int> {
        co_return co_await latency(10ms, 1);
      }());
    }
    int total = 0;
    for (const int v : co_await when_all(std::move(tasks))) total += v;
    co_return total;
  };
  const stopwatch timer;
  EXPECT_EQ(sched.run(root()), 30);
  EXPECT_LT(timer.elapsed_ms(), 100.0);
}

TEST(WhenAll, WorksOnBlockingEngine) {
  scheduler sched(opts(4, engine::blocking));
  auto root = []() -> task<int> {
    std::vector<task<int>> tasks;
    for (int i = 1; i <= 8; ++i) tasks.push_back(fetch(i));
    int total = 0;
    for (const int v : co_await when_all(std::move(tasks))) total += v;
    co_return total;
  };
  EXPECT_EQ(sched.run(root()), 36);
}

TEST(Delay, SuspendsForAtLeastTheDuration) {
  scheduler sched(opts(1));
  auto root = []() -> task<int> {
    co_await delay(10ms);
    co_return 1;
  };
  const stopwatch timer;
  EXPECT_EQ(sched.run(root()), 1);
  EXPECT_GE(timer.elapsed_ms(), 9.0);
}

TEST(Delay, ZeroDurationDoesNotSuspend) {
  scheduler sched(opts(1));
  auto root = []() -> task<int> {
    co_await delay(0ms);
    co_return 2;
  };
  EXPECT_EQ(sched.run(root()), 2);
  EXPECT_EQ(sched.stats().suspensions, 0u);
}

TEST(Combinators, NestedMapReduceOfWhenAll) {
  // map_reduce whose leaves are themselves when_all fans: deep nesting of
  // the combinator layer.
  scheduler sched(opts(2));
  auto leaf = [](std::size_t i) -> task<long> {
    std::vector<task<int>> inner;
    for (int k = 0; k < 4; ++k) {
      inner.push_back(fetch(static_cast<int>(i)));
    }
    long total = 0;
    for (const int v : co_await when_all(std::move(inner))) total += v;
    co_return total;
  };
  const long got = sched.run(map_reduce<long>(
      0, 16, 0L, leaf, [](long a, long b) { return a + b; }));
  long expect = 0;
  for (long i = 0; i < 16; ++i) expect += 4 * i;
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace lhws
