// Edge cases across the public surface that the mainline suites don't
// reach: degenerate sizes, move-only results, analyzer corner cases.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "core/fork_join.hpp"
#include "core/scheduler.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/greedy_schedule.hpp"
#include "dag/suspension_width.hpp"

namespace lhws {
namespace {

// --- dag edge cases ------------------------------------------------------

TEST(EdgeCases, SingleVertexDagCosts) {
  dag::weighted_dag g;
  g.add_vertex();
  ASSERT_TRUE(g.validate());
  EXPECT_EQ(dag::work(g), 1u);
  EXPECT_EQ(dag::span(g), 1u);
  EXPECT_EQ(dag::critical_path(g).size(), 1u);
  EXPECT_EQ(dag::critical_path_latency(g), 0u);
  EXPECT_EQ(dag::suspension_width_exact(g).value(), 0u);
  const auto res = dag::greedy_schedule(g, 4);
  EXPECT_EQ(res.length, 1u);
}

TEST(EdgeCases, MinimalHeavyEdgeWeightTwo) {
  // delta = 2 is the smallest heavy edge; one suspended round.
  const auto gen = dag::chain_dag(2, 1, 2);
  EXPECT_EQ(dag::span(gen.graph), 3u);
  EXPECT_EQ(dag::suspension_width_witness(gen.graph), 1u);
}

TEST(EdgeCases, GreedyWithMoreWorkersThanWork) {
  const auto gen = dag::fib_dag(3);
  const auto res = dag::greedy_schedule(gen.graph, 1000);
  EXPECT_LE(res.length, dag::theorem1_bound(gen.graph, 1000));
  EXPECT_EQ(res.busy_steps, 0u) << "1000 workers are never all busy here";
}

TEST(EdgeCases, MapReduceSingleLeaf) {
  const auto gen = dag::map_reduce_dag(1, 30, 5);
  EXPECT_EQ(gen.graph.num_vertices(), 6u);  // get + 5-vertex chain
  EXPECT_EQ(dag::span(gen.graph), 30u + 5u);
}

TEST(EdgeCases, ServerSingleRequest) {
  const auto gen = dag::server_dag(1, 10, 1);
  EXPECT_EQ(dag::work(gen.graph), gen.expected_work);
  EXPECT_EQ(dag::span(gen.graph), gen.expected_span);
}

// --- runtime edge cases --------------------------------------------------

task<std::unique_ptr<int>> make_boxed(int v) {
  co_return std::make_unique<int>(v);
}

TEST(EdgeCases, MoveOnlyTaskResults) {
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  auto root = []() -> task<int> {
    auto [a, b] = co_await fork2(make_boxed(4), make_boxed(5));
    co_return *a + *b;
  };
  EXPECT_EQ(sched.run(root()), 9);
}

TEST(EdgeCases, VoidRootTask) {
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  int side_effect = 0;
  auto root = [](int& out) -> task<void> {
    auto [a, b] = co_await fork2(
        [](int& o2) -> task<void> {
          o2 += 1;
          co_return;
        }(out),
        [](int& o2) -> task<void> {
          o2 += 2;
          co_return;
        }(out));
    (void)a;
    (void)b;
  };
  sched.run(root(side_effect));
  EXPECT_EQ(side_effect, 3);
}

TEST(EdgeCases, MapReduceEmptyRange) {
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  auto mapper = [](std::size_t) -> task<int> { co_return 1; };
  EXPECT_EQ(sched.run(map_reduce<int>(5, 5, 42, mapper,
                                      [](int a, int b) { return a + b; })),
            42)
      << "empty range yields the identity";
}

TEST(EdgeCases, ParallelForEmptyAndSingle) {
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  int hits = 0;
  sched.run(parallel_for(3, 3, 1, [&](std::size_t) { ++hits; }));
  EXPECT_EQ(hits, 0);
  sched.run(parallel_for(3, 4, 1, [&](std::size_t i) {
    hits += static_cast<int>(i);
  }));
  EXPECT_EQ(hits, 3);
}

TEST(EdgeCases, DeeplyNestedSerialThenFork) {
  // Alternating serial/fork nesting exercises continuation chains through
  // joins at every level.
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  auto nest = [](auto&& self, unsigned depth) -> task<long> {
    if (depth == 0) co_return 1;
    const long serial = co_await self(self, depth - 1);
    auto [a, b] =
        co_await fork2(self(self, depth - 1), self(self, depth - 1));
    co_return serial + a + b;
  };
  // f(d) = 3*f(d-1) + ... : f(d) = 3^d with f(0)=1? f(d)=f+a+b = 3 f(d-1).
  EXPECT_EQ(sched.run(nest(nest, 7)), 2187L);
}

}  // namespace
}  // namespace lhws
