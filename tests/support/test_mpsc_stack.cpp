#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/mpsc_stack.hpp"

namespace lhws {
namespace {

struct test_node {
  int value = 0;
  test_node* next = nullptr;
};

TEST(MpscStack, PushReportsWasEmpty) {
  mpsc_stack<test_node> stack;
  test_node a{1}, b{2};
  EXPECT_TRUE(stack.push(&a)) << "first push sees empty stack";
  EXPECT_FALSE(stack.push(&b));
}

TEST(MpscStack, PopAllReturnsLifoChain) {
  mpsc_stack<test_node> stack;
  test_node nodes[4];
  for (int i = 0; i < 4; ++i) {
    nodes[i].value = i;
    stack.push(&nodes[i]);
  }
  test_node* head = stack.pop_all();
  std::vector<int> order;
  for (test_node* n = head; n != nullptr; n = n->next) order.push_back(n->value);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
  EXPECT_TRUE(stack.empty());
}

TEST(MpscStack, PopAllOnEmptyReturnsNull) {
  mpsc_stack<test_node> stack;
  EXPECT_EQ(stack.pop_all(), nullptr);
}

TEST(MpscStack, ConcurrentProducersLoseNothing) {
  // The exact scenario from the scheduler: multiple resuming contexts push
  // while the owner drains.
  constexpr std::size_t producers = 4;
  constexpr std::size_t per_producer = 5000;
  mpsc_stack<test_node> stack;
  std::vector<std::vector<test_node>> storage(producers);
  for (auto& v : storage) v.resize(per_producer);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < per_producer; ++i) {
        storage[p][i].value = static_cast<int>(p * per_producer + i);
        stack.push(&storage[p][i]);
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::vector<bool> seen(producers * per_producer, false);
  std::size_t total = 0;
  auto index = [](const test_node* n) {
    return static_cast<std::size_t>(n->value);
  };
  // Drain concurrently with production, then once more after joining.
  for (int rounds = 0; rounds < 10000 && total < producers * per_producer;
       ++rounds) {
    for (test_node* n = stack.pop_all(); n != nullptr; n = n->next) {
      ASSERT_FALSE(seen[index(n)]) << "duplicate " << n->value;
      seen[index(n)] = true;
      ++total;
    }
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  for (test_node* n = stack.pop_all(); n != nullptr; n = n->next) {
    ASSERT_FALSE(seen[index(n)]);
    seen[index(n)] = true;
    ++total;
  }
  EXPECT_EQ(total, producers * per_producer);
}

}  // namespace
}  // namespace lhws
