// Unit semantics of the three-state parker: token-before-park fast path,
// bounded timeout, recheck abort, the core state machine, and threaded
// delivery where no token may ever be lost.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "support/parker.hpp"
#include "support/timing.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

constexpr auto kLong = std::chrono::microseconds(10'000'000);  // 10s guard

TEST(ParkerCore, StateMachineTransitions) {
  parker_core<> c;
  EXPECT_FALSE(c.is_parked());
  EXPECT_EQ(c.park_begin(), parker_core<>::kRunning);
  EXPECT_TRUE(c.is_parked());
  EXPECT_FALSE(c.park_end()) << "no token was deposited";
  EXPECT_FALSE(c.is_parked());

  // A token deposited while running is kept for the next park_begin.
  EXPECT_FALSE(c.unpark()) << "nobody parked: no OS signal needed";
  EXPECT_EQ(c.park_begin(), parker_core<>::kNotified);
  c.park_cancel();

  // The token was consumed: the next park starts clean, and an unpark
  // against a parked waiter reports that a signal is required.
  EXPECT_EQ(c.park_begin(), parker_core<>::kRunning);
  EXPECT_TRUE(c.unpark());
  EXPECT_TRUE(c.park_end()) << "the racing token must be harvested";
}

TEST(Parker, TokenBeforeParkReturnsImmediately) {
  parker p;
  p.unpark();  // deposited while running
  const stopwatch timer;
  EXPECT_EQ(p.park_for(kLong, [] { return false; }),
            parker::park_result::notified);
  EXPECT_LT(timer.elapsed_ms(), 1000.0) << "must not reach the condvar wait";
}

TEST(Parker, TimeoutElapsesWithoutToken) {
  parker p;
  const stopwatch timer;
  EXPECT_EQ(p.park_for(5000us, [] { return false; }),
            parker::park_result::timed_out);
  EXPECT_GE(timer.elapsed_ms(), 2.0) << "must actually sleep until timeout";
  EXPECT_FALSE(p.is_parked());
}

TEST(Parker, RecheckAbortsParkWithoutSleeping) {
  parker p;
  const stopwatch timer;
  EXPECT_EQ(p.park_for(kLong, [] { return true; }),
            parker::park_result::timed_out);
  EXPECT_LT(timer.elapsed_ms(), 1000.0);
  EXPECT_FALSE(p.is_parked());
}

TEST(Parker, ThreadedDeliveryNeverLosesTokens) {
  // A waker delivers exactly 20 tokens, each gated on seeing the waiter
  // parked. Every token is either consumed by the in-flight park or stays
  // deposited for the next one, so the waiter must collect all 20 even if
  // some parks time out on a loaded host.
  constexpr int kTokens = 20;
  parker p;
  std::thread waker([&] {
    for (int i = 0; i < kTokens; ++i) {
      while (!p.is_parked()) std::this_thread::yield();
      p.unpark();
    }
  });
  int got = 0;
  while (got < kTokens) {
    if (p.park_for(100'000us, [] { return false; }) ==
        parker::park_result::notified) {
      ++got;
    }
  }
  waker.join();
  EXPECT_EQ(got, kTokens);
}

}  // namespace
}  // namespace lhws
