#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.hpp"

namespace lhws {
namespace {

TEST(Rng, DeterministicForSeed) {
  xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroOrOneBoundReturnsZero) {
  xoshiro256 rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  // Chi-squared-flavoured sanity: each of 8 buckets within 20% of mean.
  xoshiro256 rng(1234);
  constexpr std::uint64_t buckets = 8;
  constexpr int draws = 80000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < draws; ++i) ++count[rng.below(buckets)];
  for (std::uint64_t b = 0; b < buckets; ++b) {
    EXPECT_NEAR(count[b], draws / buckets, draws / buckets / 5.0)
        << "bucket " << b;
  }
}

TEST(Rng, SplitmixExpandsSeeds) {
  splitmix64 sm(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace lhws
