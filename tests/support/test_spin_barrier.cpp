#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/spin_barrier.hpp"

namespace lhws {
namespace {

TEST(SpinBarrier, SingleThreadPassesImmediately) {
  spin_barrier barrier(1);
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();  // reusable
  SUCCEED();
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int threads = 4;
  constexpr int phases = 50;
  spin_barrier barrier(threads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int phase = 0; phase < phases; ++phase) {
        phase_counter.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // After the barrier, every thread of this phase has incremented.
        const int expect_min = (phase + 1) * threads;
        if (phase_counter.load(std::memory_order_relaxed) < expect_min) {
          violation.store(true, std::memory_order_relaxed);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_counter.load(), threads * phases);
}

}  // namespace
}  // namespace lhws
