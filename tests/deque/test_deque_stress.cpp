// Concurrent stress tests: one owner pushing/popping the bottom while
// thieves hammer the top. Every element must be claimed exactly once —
// this is the linearizability obligation the scheduler's correctness rests
// on (a lost or duplicated vertex corrupts the computation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "deque/chase_lev_deque.hpp"
#include "support/rng.hpp"

namespace lhws {
namespace {

struct StressParam {
  int thieves;
  std::int64_t items;
  int owner_pop_ratio;  // out of 10: how often the owner pops vs pushes
};

class DequeStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(DequeStress, EveryItemClaimedExactlyOnce) {
  const auto param = GetParam();
  chase_lev_deque<std::int64_t> deque(8);
  std::vector<std::atomic<int>> claims(
      static_cast<std::size_t>(param.items));
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> claimed{0};

  auto claim = [&](std::int64_t v) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, param.items);
    const int prev =
        claims[static_cast<std::size_t>(v)].fetch_add(1,
                                                      std::memory_order_relaxed);
    ASSERT_EQ(prev, 0) << "item " << v << " claimed twice";
    claimed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(static_cast<std::size_t>(param.thieves));
  for (int t = 0; t < param.thieves; ++t) {
    thieves.emplace_back([&] {
      std::int64_t out;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.pop_top(out)) claim(out);
      }
      // Final drain.
      while (deque.pop_top(out)) claim(out);
    });
  }

  // Owner: interleaved pushes and bottom pops.
  xoshiro256 rng(2024);
  std::int64_t next = 0;
  std::int64_t out;
  while (next < param.items) {
    if (rng.below(10) < static_cast<std::uint64_t>(param.owner_pop_ratio)) {
      if (deque.pop_bottom(out)) claim(out);
    } else {
      deque.push_bottom(next++);
    }
  }
  while (deque.pop_bottom(out)) claim(out);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(claimed.load(), param.items);
  for (std::int64_t i = 0; i < param.items; ++i) {
    EXPECT_EQ(claims[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DequeStress,
    ::testing::Values(StressParam{1, 200000, 3}, StressParam{2, 100000, 3},
                      StressParam{4, 100000, 5}, StressParam{8, 50000, 0},
                      StressParam{3, 100000, 8}));

TEST(DequeStress, ThievesOnlyDrainCompletely) {
  // Owner pushes everything first, then thieves race to drain: checks the
  // pure top-contention path (CAS on top).
  constexpr std::int64_t items = 100000;
  constexpr int thieves = 4;
  chase_lev_deque<std::int64_t> deque;
  for (std::int64_t i = 0; i < items; ++i) deque.push_bottom(i);

  std::vector<std::atomic<int>> claims(items);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::atomic<std::int64_t> total{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      std::int64_t out;
      std::int64_t mine = 0;
      // pop_top can fail spuriously under contention; retry until the
      // deque is observably empty AND a full pass yields nothing.
      int dry_runs = 0;
      while (dry_runs < 3) {
        if (deque.pop_top(out)) {
          const int prev = claims[static_cast<std::size_t>(out)].fetch_add(1);
          EXPECT_EQ(prev, 0);
          ++mine;
          dry_runs = 0;
        } else if (deque.empty()) {
          ++dry_runs;
        }
      }
      total.fetch_add(mine);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(total.load(), items);
}

}  // namespace
}  // namespace lhws
