// Single-threaded semantics of the Chase-Lev deque plus the Table 1
// interface concept checks.
#include <gtest/gtest.h>

#include <cstdint>

#include "deque/chase_lev_deque.hpp"
#include "deque/deque_concept.hpp"
#include "deque/locked_deque.hpp"

namespace lhws {
namespace {

static_assert(WorkStealingDeque<chase_lev_deque<void*>, void*>);
static_assert(WorkStealingDeque<chase_lev_deque<std::int64_t>, std::int64_t>);
static_assert(WorkStealingDeque<locked_deque<void*>, void*>);

TEST(ChaseLev, EmptyPopsFail) {
  chase_lev_deque<std::int64_t> d;
  std::int64_t out = -1;
  EXPECT_FALSE(d.pop_bottom(out));
  EXPECT_FALSE(d.pop_top(out));
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLev, LifoAtBottom) {
  chase_lev_deque<std::int64_t> d;
  for (std::int64_t i = 0; i < 10; ++i) d.push_bottom(i);
  for (std::int64_t i = 9; i >= 0; --i) {
    std::int64_t out = -1;
    ASSERT_TRUE(d.pop_bottom(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLev, FifoAtTop) {
  chase_lev_deque<std::int64_t> d;
  for (std::int64_t i = 0; i < 10; ++i) d.push_bottom(i);
  for (std::int64_t i = 0; i < 10; ++i) {
    std::int64_t out = -1;
    ASSERT_TRUE(d.pop_top(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLev, MixedEndsSeeDisjointElements) {
  chase_lev_deque<std::int64_t> d;
  for (std::int64_t i = 0; i < 6; ++i) d.push_bottom(i);
  std::int64_t out = -1;
  ASSERT_TRUE(d.pop_top(out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(d.pop_bottom(out));
  EXPECT_EQ(out, 5);
  ASSERT_TRUE(d.pop_top(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(d.pop_bottom(out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(d.size(), 2);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  chase_lev_deque<std::int64_t> d(4);
  constexpr std::int64_t n = 10000;
  for (std::int64_t i = 0; i < n; ++i) d.push_bottom(i);
  EXPECT_GE(d.capacity(), n);
  EXPECT_EQ(d.size(), n);
  for (std::int64_t i = n - 1; i >= 0; --i) {
    std::int64_t out = -1;
    ASSERT_TRUE(d.pop_bottom(out));
    ASSERT_EQ(out, i);
  }
}

TEST(ChaseLev, GrowthPreservesOrderAcrossWraparound) {
  chase_lev_deque<std::int64_t> d(8);
  // Interleave pushes and top-pops so indices wrap the ring repeatedly.
  std::int64_t next_push = 0, next_steal = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (int i = 0; i < 7; ++i) d.push_bottom(next_push++);
    for (int i = 0; i < 5; ++i) {
      std::int64_t out = -1;
      ASSERT_TRUE(d.pop_top(out));
      ASSERT_EQ(out, next_steal++);
    }
  }
  // Drain; bottom pops return the most recent pushes first.
  std::int64_t remaining = next_push - next_steal;
  EXPECT_EQ(d.size(), remaining);
  std::int64_t expect = next_push - 1;
  std::int64_t out = -1;
  while (d.pop_bottom(out)) {
    ASSERT_EQ(out, expect--);
  }
  EXPECT_EQ(expect, next_steal - 1);
}

TEST(ChaseLev, SingleElementOwnerWinsRaceAlone) {
  chase_lev_deque<std::int64_t> d;
  d.push_bottom(42);
  std::int64_t out = -1;
  EXPECT_TRUE(d.pop_bottom(out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(d.pop_bottom(out));
}

TEST(ChaseLev, ReusableAfterDraining) {
  chase_lev_deque<std::int64_t> d;
  for (int round = 0; round < 50; ++round) {
    for (std::int64_t i = 0; i < 20; ++i) d.push_bottom(i);
    std::int64_t out;
    while (d.pop_bottom(out)) {}
    EXPECT_TRUE(d.empty());
  }
}

TEST(LockedDeque, BasicSemanticsMatch) {
  locked_deque<std::int64_t> d;
  for (std::int64_t i = 0; i < 5; ++i) d.push_bottom(i);
  std::int64_t out = -1;
  ASSERT_TRUE(d.pop_top(out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(d.pop_bottom(out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(d.size(), 3);
}

}  // namespace
}  // namespace lhws
