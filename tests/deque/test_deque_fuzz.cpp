// Single-threaded fuzz: random operation sequences applied simultaneously
// to the Chase-Lev deque and the locked reference deque must produce
// identical results (sequential semantics equivalence).
#include <gtest/gtest.h>

#include <cstdint>

#include "deque/chase_lev_deque.hpp"
#include "deque/locked_deque.hpp"
#include "support/rng.hpp"

namespace lhws {
namespace {

class DequeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DequeFuzz, MatchesLockedOracle) {
  const std::uint64_t seed = GetParam();
  xoshiro256 rng(seed);
  chase_lev_deque<std::int64_t> cl(4);  // small to force growth
  locked_deque<std::int64_t> oracle;

  std::int64_t next = 0;
  for (int op = 0; op < 50000; ++op) {
    switch (rng.below(4)) {
      case 0:
      case 1: {  // push (biased so the deque grows)
        cl.push_bottom(next);
        oracle.push_bottom(next);
        ++next;
        break;
      }
      case 2: {  // pop bottom
        std::int64_t a = -1, b = -1;
        const bool ra = cl.pop_bottom(a);
        const bool rb = oracle.pop_bottom(b);
        ASSERT_EQ(ra, rb) << "op " << op;
        if (ra) {
          ASSERT_EQ(a, b) << "op " << op;
        }
        break;
      }
      case 3: {  // pop top (a steal, single-threaded here)
        std::int64_t a = -1, b = -1;
        const bool ra = cl.pop_top(a);
        const bool rb = oracle.pop_top(b);
        ASSERT_EQ(ra, rb) << "op " << op;
        if (ra) {
          ASSERT_EQ(a, b) << "op " << op;
        }
        break;
      }
    }
    ASSERT_EQ(cl.size(), oracle.size()) << "op " << op;
  }

  // Drain and compare the remainder.
  std::int64_t a = -1, b = -1;
  while (oracle.pop_top(b)) {
    ASSERT_TRUE(cl.pop_top(a));
    ASSERT_EQ(a, b);
  }
  ASSERT_FALSE(cl.pop_top(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DequeFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace lhws
