// Fuzz-style robustness tests for the cluster wire decoder (dist/wire.hpp):
// truncated, oversized, bit-flipped, and garbage byte streams must map to
// exactly one counted wire_error category — never a crash, never a frame
// decoded into garbage. The decoder is a pure state machine, so everything
// here runs byte-by-byte under ASan with no sockets involved.
#include "dist/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace dist = lhws::dist;

namespace {

// A representative stream: one of every frame type, non-trivial payloads.
std::vector<unsigned char> sample_stream(std::vector<std::size_t>* bounds) {
  std::vector<unsigned char> out;
  auto mark = [&] {
    if (bounds != nullptr) bounds->push_back(out.size());
  };
  mark();
  dist::encode_hello(out, {7});
  mark();
  dist::spawn_msg sp;
  sp.call_id = 0x1122334455667788ULL;
  sp.work_id = 1;
  sp.arg = 42;
  sp.trace_id = 0xdeadbeefcafef00dULL;
  sp.parent_span = 0x01000005;
  sp.origin = 3;
  dist::encode_spawn(out, sp);
  mark();
  dist::result_msg rm;
  rm.call_id = sp.call_id;
  rm.value = 267914296;  // fib(42)
  rm.status = static_cast<std::uint32_t>(dist::call_status::ok);
  dist::encode_result(out, rm);
  mark();
  dist::encode_steal_request(out, {2, 4});
  mark();
  dist::encode_steal_grant(out, {sp, sp, sp});
  mark();
  dist::encode_shutdown(out);
  mark();
  return out;
}

// Drains every ready frame; returns how many came out.
std::size_t drain(dist::frame_reader& r, std::vector<dist::frame>* frames) {
  std::size_t n = 0;
  dist::frame f;
  while (r.next(f) == dist::frame_reader::status::ready) {
    ++n;
    if (frames != nullptr) frames->push_back(f);
  }
  return n;
}

// xorshift: deterministic garbage without <random>'s size.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

TEST(WireRoundTrip, AllFrameTypesByteByByte) {
  const std::vector<unsigned char> bytes = sample_stream(nullptr);
  dist::frame_reader r;
  std::vector<dist::frame> frames;
  for (const unsigned char b : bytes) {
    r.feed(&b, 1);
    drain(r, &frames);
    ASSERT_EQ(r.err(), dist::wire_error::none);
  }
  EXPECT_EQ(r.finish(), dist::wire_error::none);
  ASSERT_EQ(frames.size(), 6u);

  dist::hello_msg h;
  ASSERT_EQ(frames[0].type, dist::frame_type::hello);
  ASSERT_TRUE(dist::decode_hello(frames[0], h));
  EXPECT_EQ(h.node_id, 7u);

  dist::spawn_msg sp;
  ASSERT_EQ(frames[1].type, dist::frame_type::spawn);
  ASSERT_TRUE(dist::decode_spawn(frames[1], sp));
  EXPECT_EQ(sp.call_id, 0x1122334455667788ULL);
  EXPECT_EQ(sp.work_id, 1u);
  EXPECT_EQ(sp.arg, 42u);
  EXPECT_EQ(sp.trace_id, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(sp.parent_span, 0x01000005u);
  EXPECT_EQ(sp.origin, 3u);

  dist::result_msg rm;
  ASSERT_EQ(frames[2].type, dist::frame_type::result);
  ASSERT_TRUE(dist::decode_result(frames[2], rm));
  EXPECT_EQ(rm.value, 267914296u);

  dist::steal_request_msg sr;
  ASSERT_EQ(frames[3].type, dist::frame_type::steal_request);
  ASSERT_TRUE(dist::decode_steal_request(frames[3], sr));
  EXPECT_EQ(sr.thief, 2u);
  EXPECT_EQ(sr.max_items, 4u);

  std::vector<dist::spawn_msg> items;
  ASSERT_EQ(frames[4].type, dist::frame_type::steal_grant);
  ASSERT_TRUE(dist::decode_steal_grant(frames[4], items));
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[2].trace_id, sp.trace_id);

  EXPECT_EQ(frames[5].type, dist::frame_type::shutdown);
  EXPECT_TRUE(frames[5].payload.empty());
}

TEST(WireRoundTrip, RandomChunkSizes) {
  const std::vector<unsigned char> bytes = sample_stream(nullptr);
  std::uint64_t seed = 0x5eedULL;
  for (int round = 0; round < 64; ++round) {
    dist::frame_reader r;
    std::size_t fed = 0;
    std::size_t frames = 0;
    while (fed < bytes.size()) {
      const std::size_t chunk =
          1 + next_rand(seed) % (bytes.size() - fed < 17
                                     ? bytes.size() - fed
                                     : 17);
      r.feed(bytes.data() + fed, chunk);
      fed += chunk;
      frames += drain(r, nullptr);
    }
    EXPECT_EQ(frames, 6u);
    EXPECT_EQ(r.finish(), dist::wire_error::none);
  }
}

TEST(WireTruncation, EveryPrefixIsCleanOrTruncated) {
  std::vector<std::size_t> bounds;
  const std::vector<unsigned char> bytes = sample_stream(&bounds);
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    dist::frame_reader r;
    r.feed(bytes.data(), cut);
    drain(r, nullptr);
    const bool at_boundary =
        std::find(bounds.begin(), bounds.end(), cut) != bounds.end();
    const dist::wire_error verdict = r.finish();
    if (at_boundary) {
      EXPECT_EQ(verdict, dist::wire_error::none) << "cut=" << cut;
    } else {
      EXPECT_EQ(verdict, dist::wire_error::truncated) << "cut=" << cut;
    }
  }
}

TEST(WireCorruption, EverySingleBitFlipIsDetected) {
  const std::vector<unsigned char> bytes = sample_stream(nullptr);
  std::size_t clean_at_finish = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<unsigned char> mutated = bytes;
      mutated[i] ^= static_cast<unsigned char>(1u << bit);
      dist::frame_reader r;
      r.feed(mutated.data(), mutated.size());
      std::vector<dist::frame> frames;
      drain(r, &frames);
      // Frames fully decoded before the flip point must be byte-identical
      // to the originals (the flip cannot reach back in the stream).
      std::size_t off = 0;
      for (const dist::frame& f : frames) {
        const std::size_t flen = dist::kHeaderSize + f.payload.size();
        ASSERT_LE(off + flen, bytes.size());
        if (off + flen <= i) {
          EXPECT_EQ(std::memcmp(f.payload.data(), bytes.data() + off +
                                                      dist::kHeaderSize,
                                f.payload.size()),
                    0);
        }
        off += flen;
      }
      // A flipped stream can never finish clean: every byte is covered by
      // the framing (length/type/version/reserved/checksum) or the
      // checksum itself.
      if (r.finish() == dist::wire_error::none) ++clean_at_finish;
    }
  }
  EXPECT_EQ(clean_at_finish, 0u);
}

TEST(WireCorruption, CategoriesAreSpecific) {
  // Oversized: rejected from the header alone, before any payload bytes.
  {
    unsigned char h[dist::kHeaderSize] = {};
    dist::detail::put_le32(h, dist::kMaxPayload + 1);
    h[4] = static_cast<std::uint8_t>(dist::frame_type::spawn);
    h[5] = dist::kWireVersion;
    dist::frame_reader r;
    r.feed(h, sizeof h);
    dist::frame f;
    EXPECT_EQ(r.next(f), dist::frame_reader::status::error);
    EXPECT_EQ(r.err(), dist::wire_error::oversized);
  }
  // Version mismatch.
  {
    std::vector<unsigned char> bytes;
    dist::encode_shutdown(bytes);
    bytes[5] = dist::kWireVersion + 1;
    dist::frame_reader r;
    r.feed(bytes.data(), bytes.size());
    dist::frame f;
    EXPECT_EQ(r.next(f), dist::frame_reader::status::error);
    EXPECT_EQ(r.err(), dist::wire_error::bad_version);
  }
  // Unknown type byte.
  {
    std::vector<unsigned char> bytes;
    dist::encode_shutdown(bytes);
    bytes[4] = 0x77;
    dist::frame_reader r;
    r.feed(bytes.data(), bytes.size());
    dist::frame f;
    EXPECT_EQ(r.next(f), dist::frame_reader::status::error);
    EXPECT_EQ(r.err(), dist::wire_error::bad_type);
  }
  // Nonzero reserved bytes travel as bad_type (framing, not content).
  {
    std::vector<unsigned char> bytes;
    dist::encode_shutdown(bytes);
    bytes[6] = 1;
    dist::frame_reader r;
    r.feed(bytes.data(), bytes.size());
    dist::frame f;
    EXPECT_EQ(r.next(f), dist::frame_reader::status::error);
    EXPECT_EQ(r.err(), dist::wire_error::bad_type);
  }
  // Flipped payload byte: checksum.
  {
    std::vector<unsigned char> bytes;
    dist::encode_hello(bytes, {9});
    bytes[dist::kHeaderSize] ^= 0x40;
    dist::frame_reader r;
    r.feed(bytes.data(), bytes.size());
    dist::frame f;
    EXPECT_EQ(r.next(f), dist::frame_reader::status::error);
    EXPECT_EQ(r.err(), dist::wire_error::bad_checksum);
  }
}

TEST(WireCorruption, ShapeMismatchFailsTypedDecode) {
  // A frame can be checksum-valid yet semantically wrong (a peer speaking
  // a different dialect): typed decoders reject size/shape mismatches.
  std::vector<unsigned char> bytes;
  const unsigned char junk[3] = {1, 2, 3};
  dist::detail::append_frame(bytes, dist::frame_type::result, junk,
                             sizeof junk);
  dist::frame_reader r;
  r.feed(bytes.data(), bytes.size());
  dist::frame f;
  ASSERT_EQ(r.next(f), dist::frame_reader::status::ready);
  dist::result_msg rm;
  EXPECT_FALSE(dist::decode_result(f, rm));

  // A grant whose count field lies about the item bytes present.
  std::vector<unsigned char> payload(4 + dist::kSpawnSize);
  dist::detail::put_le32(payload.data(), 2);  // claims 2, carries 1
  std::vector<unsigned char> grant;
  dist::detail::append_frame(grant, dist::frame_type::steal_grant,
                             payload.data(), payload.size());
  dist::frame_reader r2;
  r2.feed(grant.data(), grant.size());
  ASSERT_EQ(r2.next(f), dist::frame_reader::status::ready);
  std::vector<dist::spawn_msg> items;
  EXPECT_FALSE(dist::decode_steal_grant(f, items));

  // A count beyond the legal batch cap is rejected before any resize.
  dist::detail::put_le32(payload.data(), dist::kMaxStealBatch + 1);
  grant.clear();
  dist::detail::append_frame(grant, dist::frame_type::steal_grant,
                             payload.data(), payload.size());
  dist::frame_reader r3;
  r3.feed(grant.data(), grant.size());
  ASSERT_EQ(r3.next(f), dist::frame_reader::status::ready);
  EXPECT_FALSE(dist::decode_steal_grant(f, items));

  // An out-of-range result status is rejected.
  dist::result_msg bad;
  bad.status = 99;
  std::vector<unsigned char> res;
  dist::encode_result(res, bad);
  dist::frame_reader r4;
  r4.feed(res.data(), res.size());
  ASSERT_EQ(r4.next(f), dist::frame_reader::status::ready);
  EXPECT_FALSE(dist::decode_result(f, rm));
}

TEST(WirePoison, ErrorIsStickyAndDiscardsInput) {
  std::vector<unsigned char> bytes;
  dist::encode_shutdown(bytes);
  bytes[5] = 0xFF;  // bad version
  dist::frame_reader r;
  r.feed(bytes.data(), bytes.size());
  dist::frame f;
  ASSERT_EQ(r.next(f), dist::frame_reader::status::error);
  // Later valid frames must not resurrect the stream.
  std::vector<unsigned char> good;
  dist::encode_hello(good, {1});
  r.feed(good.data(), good.size());
  EXPECT_EQ(r.next(f), dist::frame_reader::status::error);
  EXPECT_EQ(r.err(), dist::wire_error::bad_version);
  EXPECT_EQ(r.finish(), dist::wire_error::bad_version);
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  std::uint64_t seed = 0xfeedface1234ULL;
  for (int round = 0; round < 256; ++round) {
    const std::size_t len = 16 + next_rand(seed) % 1024;
    std::vector<unsigned char> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<unsigned char>(next_rand(seed) & 0xFF);
    }
    dist::frame_reader r;
    std::size_t fed = 0;
    while (fed < len) {
      const std::size_t chunk = 1 + next_rand(seed) % 64;
      const std::size_t take = chunk < len - fed ? chunk : len - fed;
      r.feed(bytes.data() + fed, take);
      fed += take;
      dist::frame f;
      while (r.next(f) == dist::frame_reader::status::ready) {
        // Random bytes that survive the checksum are astronomically rare;
        // if one does, the typed decoders must still bound-check it.
        dist::spawn_msg sp;
        std::vector<dist::spawn_msg> items;
        (void)dist::decode_spawn(f, sp);
        (void)dist::decode_steal_grant(f, items);
      }
    }
    (void)r.finish();
  }
}

TEST(WireErrorCounters, CountsPerCategory) {
  dist::wire_error_counters c;
  c.bump(dist::wire_error::bad_checksum);
  c.bump(dist::wire_error::bad_checksum);
  c.bump(dist::wire_error::truncated);
  EXPECT_EQ(c.of(dist::wire_error::bad_checksum), 2u);
  EXPECT_EQ(c.of(dist::wire_error::truncated), 1u);
  EXPECT_EQ(c.of(dist::wire_error::oversized), 0u);
  EXPECT_EQ(c.total(), 3u);
}

}  // namespace
