// End-to-end cluster smoke tests: a real two-process mesh over loopback
// (fork + run_node, no exec), plus the small pure helpers of the dist
// layer. The heavier policy/crossover behaviour lives in
// bench_cluster_crossover; here we only assert correctness of remote
// spawn/join and the orchestration plumbing that ctest can rely on.
#include "dist/node_runner.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>

namespace dist = lhws::dist;

namespace {

TEST(ClusterHelpers, PolicyNamesRoundTrip) {
  for (const auto p :
       {dist::remote_steal_policy::never, dist::remote_steal_policy::threshold,
        dist::remote_steal_policy::always}) {
    dist::remote_steal_policy back{};
    ASSERT_TRUE(dist::parse_policy(dist::policy_name(p), back));
    EXPECT_EQ(back, p);
  }
  dist::remote_steal_policy back{};
  EXPECT_FALSE(dist::parse_policy("sometimes", back));
}

TEST(ClusterHelpers, PortFileRoundTrip) {
  char tmpl[] = "/tmp/lhws_test_port.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/port.0";
  ASSERT_TRUE(dist::write_port_file(path, 43215));
  EXPECT_EQ(dist::wait_port_file(path, std::chrono::milliseconds(100)), 43215);
  std::remove(path.c_str());
  // Missing file: times out with 0 rather than blocking or throwing.
  EXPECT_EQ(dist::wait_port_file(path, std::chrono::milliseconds(30)), 0);
  ::rmdir(tmpl);
}

// fib computed the way the node-side handler does, for expected values.
std::uint64_t fib_seq(unsigned n) {
  std::uint64_t a = 0, b = 1;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

lhws::task<long> two_node_driver(dist::cluster& c) {
  long bad = 0;
  // Remote call to the peer: the join is a heavy delta edge.
  if (co_await c.call(1, dist::kWorkFib, 10) != fib_seq(10)) ++bad;
  // Self call: routed through the local queue, same completion path.
  if (co_await c.call(0, dist::kWorkFib, 12) != fib_seq(12)) ++bad;
  // A short burst so both result-routing directions see traffic.
  for (unsigned i = 0; i < 8; ++i) {
    if (co_await c.call(i % 2, dist::kWorkFib, 8) != fib_seq(8)) ++bad;
  }
  co_return bad;
}

// Forks two lhws nodes over loopback and verifies remote fib results.
// The gtest parent never runs a scheduler; children _exit.
TEST(ClusterEndToEnd, TwoNodeFibOverLoopback) {
  char tmpl[] = "/tmp/lhws_test_cluster.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string port0 = dir + "/port.0";

  const pid_t pid0 = ::fork();
  ASSERT_GE(pid0, 0);
  if (pid0 == 0) {
    dist::node_options no;
    no.cfg.node_id = 0;
    no.cfg.peers.push_back({1, 0});
    no.workers = 2;
    no.port_file = port0;
    ::_exit(dist::run_node(no, two_node_driver));
  }

  const std::uint16_t p0 =
      dist::wait_port_file(port0, std::chrono::seconds(10));
  ASSERT_NE(p0, 0) << "node 0 never published its port";

  const pid_t pid1 = ::fork();
  ASSERT_GE(pid1, 0);
  if (pid1 == 0) {
    dist::node_options no;
    no.cfg.node_id = 1;
    no.cfg.peers.push_back({0, p0});
    no.workers = 2;
    ::_exit(dist::run_node(no));
  }

  int status0 = -1, status1 = -1;
  ASSERT_EQ(::waitpid(pid0, &status0, 0), pid0);
  ASSERT_EQ(::waitpid(pid1, &status1, 0), pid1);
  std::remove(port0.c_str());
  ::rmdir(dir.c_str());
  ASSERT_TRUE(WIFEXITED(status0));
  EXPECT_EQ(WEXITSTATUS(status0), 0) << "driver node saw bad fib results";
  ASSERT_TRUE(WIFEXITED(status1));
  EXPECT_EQ(WEXITSTATUS(status1), 0);
}

}  // namespace
