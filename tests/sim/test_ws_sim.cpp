// Tests of the standard work-stealing baseline simulator (the "WS" curve
// of Figure 11): it must execute dags correctly and, crucially, NOT hide
// latency.
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/ws_sim.hpp"

namespace lhws::sim {
namespace {

using dag::chain_dag;
using dag::fib_dag;
using dag::map_reduce_dag;
using dag::server_dag;

sim_config cfg(std::uint64_t p, std::uint64_t seed = 42) {
  sim_config c;
  c.workers = p;
  c.seed = seed;
  return c;
}

TEST(WsSim, SerialComputeDagTakesWRounds) {
  const auto gen = fib_dag(10);
  const auto m = run_ws(gen.graph, cfg(1));
  EXPECT_EQ(m.rounds, gen.expected_work);
  EXPECT_EQ(m.blocked_rounds, 0u);
}

TEST(WsSim, SingleWorkerBlocksForFullLatency) {
  // One worker, n leaves each with latency delta: the worker must pay every
  // latency sequentially, so rounds >= n * (delta - 1).
  const std::size_t n = 16;
  const std::uint64_t delta = 100;
  const auto gen = map_reduce_dag(n, delta, 2);
  const auto m = run_ws(gen.graph, cfg(1));
  EXPECT_GE(m.rounds, n * (delta - 1));
  EXPECT_GE(m.blocked_rounds, n * (delta - 2));
}

TEST(WsSim, BlockedWorkersDequesAreStolen) {
  // With P = 4 the other workers steal subtrees while one blocks, so the
  // total time divides roughly by P (this is why plain WS still speeds up
  // in Fig. 11 — just never superlinearly).
  const std::size_t n = 32;
  const std::uint64_t delta = 200;
  const auto gen = map_reduce_dag(n, delta, 2);
  const auto m1 = run_ws(gen.graph, cfg(1));
  const auto m4 = run_ws(gen.graph, cfg(4));
  EXPECT_GT(m4.successful_steals, 0u);
  EXPECT_LT(m4.rounds, m1.rounds);
  EXPECT_GT(m4.rounds, m1.rounds / 8) << "WS speedup stays near-linear";
}

TEST(WsSim, ExecutesEveryVertexExactlyOnce) {
  const auto gen = map_reduce_dag(64, 10, 3);
  const auto m = run_ws(gen.graph, cfg(4));
  EXPECT_EQ(m.work_tokens, gen.expected_work);
}

TEST(WsSim, NoPforMachineryInBaseline) {
  const auto gen = map_reduce_dag(64, 10, 3);
  const auto m = run_ws(gen.graph, cfg(4));
  EXPECT_EQ(m.pfor_vertices, 0u);
  EXPECT_EQ(m.switch_tokens, 0u);
  EXPECT_EQ(m.max_deques_per_worker, 1u);
}

TEST(WsSim, DeterministicForFixedSeed) {
  const auto gen = map_reduce_dag(48, 20, 2);
  const auto a = run_ws(gen.graph, cfg(4, 9));
  const auto b = run_ws(gen.graph, cfg(4, 9));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
}

TEST(WsSim, ChainWithLatencyIsFullySerial) {
  const auto gen = chain_dag(20, 4, 50);
  const auto m = run_ws(gen.graph, cfg(4));
  // No parallelism to exploit: length >= span - 1 regardless of workers.
  EXPECT_GE(m.rounds + 1, gen.expected_span);
}

TEST(WsSim, ServerBlocksOnEveryInput) {
  const std::size_t k = 20;
  const std::uint64_t delta = 60;
  const auto gen = server_dag(k, delta, 3);
  const auto m = run_ws(gen.graph, cfg(2));
  // Every getInput is on the sequential spine: all k+1 latencies are paid.
  EXPECT_GE(m.rounds, (k + 1) * (delta - 1));
}

}  // namespace
}  // namespace lhws::sim
