// Behavioural tests of the LHWS simulator against the paper's claims:
// Lemma 1's token accounting, Lemma 7's deque bound, Definition 1's
// suspension bound, and the U = 0 degeneration to standard work stealing.
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/lhws_sim.hpp"

namespace lhws::sim {
namespace {

using dag::chain_dag;
using dag::fib_dag;
using dag::fork_join_tree;
using dag::map_reduce_dag;
using dag::server_dag;

sim_config cfg(std::uint64_t p, std::uint64_t seed = 42,
               steal_policy pol = steal_policy::random_deque) {
  sim_config c;
  c.workers = p;
  c.seed = seed;
  c.policy = pol;
  return c;
}

TEST(LhwsSim, SingleVertexDag) {
  dag::weighted_dag g;
  g.add_vertex();
  ASSERT_TRUE(g.validate());
  const auto m = run_lhws(g, cfg(1));
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_EQ(m.work_tokens, 1u);
  EXPECT_EQ(m.steal_attempts, 0u);
}

TEST(LhwsSim, SerialExecutionOfComputeDagTakesWRounds) {
  // P = 1, no latency: the worker executes one vertex per round with no
  // steals or switches, so rounds == W exactly.
  const auto gen = fib_dag(10);
  const auto m = run_lhws(gen.graph, cfg(1));
  EXPECT_EQ(m.rounds, gen.expected_work);
  EXPECT_EQ(m.work_tokens, gen.expected_work);
  EXPECT_EQ(m.pfor_vertices, 0u);
  EXPECT_EQ(m.switch_tokens, 0u);
  EXPECT_EQ(m.steal_attempts, 0u);
}

TEST(LhwsSim, ComputeOnlyDagUsesOneDequePerWorker) {
  // "When U = 1 ... each worker will maintain exactly one deque"; with no
  // heavy edges at all the same holds.
  const auto gen = fork_join_tree(8, 2);
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull}) {
    const auto m = run_lhws(gen.graph, cfg(p));
    EXPECT_EQ(m.max_deques_per_worker, 1u) << "P=" << p;
    EXPECT_EQ(m.pfor_vertices, 0u);
    EXPECT_EQ(m.max_suspended, 0u);
  }
}

TEST(LhwsSim, Lemma7DequeBoundServer) {
  // Server dag: U = 1, so no worker may own more than 2 allocated deques.
  const auto gen = server_dag(60, 12, 5);
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull}) {
    const auto m = run_lhws(gen.graph, cfg(p));
    EXPECT_LE(m.max_deques_per_worker, 2u) << "P=" << p;
  }
}

TEST(LhwsSim, Lemma7DequeBoundMapReduce) {
  const std::size_t n = 32;  // U = n
  const auto gen = map_reduce_dag(n, 25, 2);
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull, 16ull}) {
    const auto m = run_lhws(gen.graph, cfg(p));
    EXPECT_LE(m.max_deques_per_worker, n + 1) << "P=" << p;
  }
}

TEST(LhwsSim, MaxSuspendedBoundedByU) {
  const auto mr = map_reduce_dag(48, 30, 2);
  EXPECT_LE(run_lhws(mr.graph, cfg(4)).max_suspended, 48u);
  const auto srv = server_dag(48, 30, 2);
  EXPECT_LE(run_lhws(srv.graph, cfg(4)).max_suspended, 1u);
}

TEST(LhwsSim, Lemma1TokenAccounting) {
  // Every worker-round places at most one token; tokens partition into
  // work/switch/steal; W + W_pfor <= 2W; switches <= work tokens.
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull}) {
    const auto gen = map_reduce_dag(64, 20, 3);
    const auto m = run_lhws(gen.graph, cfg(p));
    const std::uint64_t tokens =
        m.work_tokens + m.switch_tokens + m.steal_attempts;
    EXPECT_LE(tokens, m.rounds * p) << "P=" << p;
    EXPECT_LE(m.work_tokens, 2 * gen.expected_work) << "P=" << p;
    EXPECT_LE(m.switch_tokens, m.work_tokens) << "P=" << p;
    // Lemma 1: rounds <= 4W/P + R/P (+1 round of slack for the final
    // partially-filled round).
    EXPECT_LE(m.rounds, (4 * gen.expected_work + m.steal_attempts) / p + 1)
        << "P=" << p;
  }
}

TEST(LhwsSim, WorkTokensEqualWPlusPfor) {
  const auto gen = map_reduce_dag(64, 20, 3);
  const auto m = run_lhws(gen.graph, cfg(4));
  EXPECT_EQ(m.work_tokens, gen.expected_work + m.pfor_vertices);
}

TEST(LhwsSim, DeterministicForFixedSeed) {
  const auto gen = map_reduce_dag(40, 15, 2);
  const auto a = run_lhws(gen.graph, cfg(4, 123));
  const auto b = run_lhws(gen.graph, cfg(4, 123));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
  EXPECT_EQ(a.successful_steals, b.successful_steals);
  EXPECT_EQ(a.total_deques_allocated, b.total_deques_allocated);
}

TEST(LhwsSim, SeedsVaryStealsButAlwaysComplete) {
  const auto gen = map_reduce_dag(40, 15, 2);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto m = run_lhws(gen.graph, cfg(4, seed));
    EXPECT_GE(m.work_tokens, gen.expected_work) << "seed=" << seed;
  }
}

TEST(LhwsSim, BothStealPoliciesComplete) {
  const auto gen = map_reduce_dag(64, 25, 3);
  for (auto pol : {steal_policy::random_deque, steal_policy::random_worker}) {
    for (std::uint64_t p : {2ull, 4ull, 8ull}) {
      const auto m = run_lhws(gen.graph, cfg(p, 7, pol));
      EXPECT_GE(m.work_tokens, gen.expected_work);
    }
  }
}

TEST(LhwsSim, WorkerPolicyFailsFewerSteals) {
  // Section 6's stated motivation for the worker-then-deque policy.
  const auto gen = map_reduce_dag(256, 40, 4);
  std::uint64_t failed_deque = 0;
  std::uint64_t failed_worker = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    failed_deque +=
        run_lhws(gen.graph, cfg(8, seed, steal_policy::random_deque))
            .failed_steals;
    failed_worker +=
        run_lhws(gen.graph, cfg(8, seed, steal_policy::random_worker))
            .failed_steals;
  }
  EXPECT_LT(failed_worker, failed_deque);
}

TEST(LhwsSim, LatencyIsHiddenOffTheCriticalPath) {
  // n parallel fetches with large delta: a single LHWS worker needs about
  // max(W, delta + small) rounds, nowhere near the n*delta a blocking
  // scheduler would burn.
  const std::size_t n = 64;
  const dag::weight_t delta = 2000;
  const auto gen = map_reduce_dag(n, delta, 4);
  const auto m = run_lhws(gen.graph, cfg(1));
  EXPECT_LT(m.rounds, gen.expected_work + 3 * delta)
      << "latency must overlap with work";
  EXPECT_LT(m.rounds, n * delta / 4) << "nothing like n*delta";
}

TEST(LhwsSim, PforTreeInjectedForMassResumes) {
  // io_burst makes all `width` suspended vertices resume in the same round
  // on one deque: the resumed set must be re-injected through a pfor tree.
  // With P = 1 there is exactly one batch, so exactly width - 1 internal
  // pfor vertices (a binary tree over width leaves).
  const std::size_t width = 128;
  const auto gen = dag::io_burst_dag(width, 400);
  const auto m = run_lhws(gen.graph, cfg(1));
  EXPECT_EQ(m.pfor_vertices, width - 1);
  EXPECT_EQ(m.work_tokens, gen.expected_work + width - 1);
  EXPECT_EQ(m.max_suspended, width);
}

TEST(LhwsSim, PforTreeSubtreesAreStealable) {
  // With several workers the pfor tree parallelizes resumed-vertex
  // execution: thieves must steal pfor subtrees and total internal
  // vertices stay exactly width - 1.
  const std::size_t width = 256;
  const auto gen = dag::io_burst_dag(width, 600);
  const auto m = run_lhws(gen.graph, cfg(4));
  EXPECT_EQ(m.pfor_vertices, width - 1);
  EXPECT_GT(m.successful_steals, 0u);
}

TEST(LhwsSim, BurstResumeFasterWithMoreWorkers) {
  // The pfor tree gives lg(width) span for the resumed batch, so adding
  // workers must shorten the tail after the burst.
  const auto gen = dag::io_burst_dag(512, 600);
  const auto r1 = run_lhws(gen.graph, cfg(1)).rounds;
  const auto r8 = run_lhws(gen.graph, cfg(8)).rounds;
  EXPECT_LT(r8, r1);
}

TEST(LhwsSim, ServerRecyclesDeques) {
  // U = 1: deque freed and reused on every suspension; the global array
  // should stay near P + 1 despite many suspensions.
  const auto gen = server_dag(100, 10, 3);
  const auto m = run_lhws(gen.graph, cfg(2));
  EXPECT_LE(m.total_deques_allocated, 2u + 2u);
}

TEST(LhwsSim, MoreWorkersDoNotIncreaseRoundsMuch) {
  const auto gen = map_reduce_dag(256, 50, 4);
  const auto r1 = run_lhws(gen.graph, cfg(1)).rounds;
  const auto r4 = run_lhws(gen.graph, cfg(4)).rounds;
  const auto r8 = run_lhws(gen.graph, cfg(8)).rounds;
  EXPECT_LT(r4, r1);
  EXPECT_LE(r8, r4 * 2);  // noise tolerance; must not blow up
}

}  // namespace
}  // namespace lhws::sim
