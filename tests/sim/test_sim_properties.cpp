// Cross-cutting property sweeps: Theorem 2's round bound shape, Corollary
// 1's enabling-span bound, LHWS-vs-WS dominance where the theory predicts
// it, and parameterized seed/policy/worker sweeps on random dags.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/suspension_width.hpp"
#include "sim/lhws_sim.hpp"
#include "sim/ws_sim.hpp"

namespace lhws::sim {
namespace {

sim_config cfg(std::uint64_t p, std::uint64_t seed = 42,
               steal_policy pol = steal_policy::random_deque,
               bool etree = false) {
  sim_config c;
  c.workers = p;
  c.seed = seed;
  c.policy = pol;
  c.build_enabling_tree = etree;
  return c;
}

double lg_factor(std::uint64_t u) {
  return 1.0 + (u > 1 ? std::log2(static_cast<double>(u)) : 0.0);
}

// --- Theorem 2 shape: rounds = O(W/P + S*U*(1 + lg U)) ------------------

TEST(SimProperties, Theorem2BoundMapReduce) {
  // Empirical check with a generous constant: the interesting content is
  // that rounds do NOT scale with total latency n*delta (which is what the
  // blocking baseline pays), only with W/P plus the S*U*(1+lgU) term.
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull}) {
    const auto gen = dag::map_reduce_dag(64, 100, 3);
    const auto m = run_lhws(gen.graph, cfg(p));
    const double u = static_cast<double>(*gen.expected_suspension_width);
    const double bound =
        8.0 * static_cast<double>(gen.expected_work) / static_cast<double>(p) +
        10.0 * static_cast<double>(gen.expected_span) * u * lg_factor(64) +
        100.0;
    EXPECT_LE(static_cast<double>(m.rounds), bound) << "P=" << p;
  }
}

TEST(SimProperties, Theorem2BoundServer) {
  for (std::uint64_t p : {1ull, 2ull, 4ull}) {
    const auto gen = dag::server_dag(40, 50, 4);
    const auto m = run_lhws(gen.graph, cfg(p));
    // U = 1: rounds = O(W/P + S).
    const double bound =
        8.0 * static_cast<double>(gen.expected_work) / static_cast<double>(p) +
        10.0 * static_cast<double>(gen.expected_span) + 100.0;
    EXPECT_LE(static_cast<double>(m.rounds), bound) << "P=" << p;
  }
}

// --- Corollary 1: enabling span S* = O(S (1 + lg U)) --------------------

TEST(SimProperties, Corollary1EnablingSpanMapReduce) {
  const auto gen = dag::map_reduce_dag(64, 80, 3);
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull}) {
    const auto m = run_lhws(gen.graph, cfg(p, 42, steal_policy::random_deque,
                                           /*etree=*/true));
    const double u = static_cast<double>(*gen.expected_suspension_width);
    const double bound =
        2.0 * static_cast<double>(gen.expected_span) * lg_factor(
            static_cast<std::uint64_t>(u));
    EXPECT_LE(static_cast<double>(m.enabling_span), bound + 4.0) << "P=" << p;
    EXPECT_GT(m.enabling_span, 0u);
  }
}

TEST(SimProperties, Corollary1EnablingSpanServer) {
  const auto gen = dag::server_dag(30, 40, 5);
  const auto m = run_lhws(gen.graph, cfg(4, 42, steal_policy::random_deque,
                                         /*etree=*/true));
  // U = 1: S* <= 2S (plus small additive slack for our instrumentation's
  // conservative aux-vertex counting).
  EXPECT_LE(static_cast<double>(m.enabling_span),
            2.0 * static_cast<double>(gen.expected_span) + 4.0);
}

TEST(SimProperties, EnablingSpanAtLeastUnweightedDepth) {
  // Every real execution order is at least as deep as the dag's unweighted
  // critical path (enabling edges are dag edges).
  const auto gen = dag::fork_join_tree(6, 3);
  const auto m = run_lhws(gen.graph, cfg(2, 42, steal_policy::random_deque,
                                         /*etree=*/true));
  EXPECT_GE(m.enabling_span + 1, dag::unweighted_span(gen.graph));
}

// --- LHWS vs WS dominance -----------------------------------------------

TEST(SimProperties, LhwsBeatsWsWhenLatencyDominates) {
  const auto gen = dag::map_reduce_dag(64, 500, 2);
  for (std::uint64_t p : {1ull, 2ull, 4ull}) {
    const auto lh = run_lhws(gen.graph, cfg(p));
    const auto ws = run_ws(gen.graph, cfg(p));
    EXPECT_LT(lh.rounds * 4, ws.rounds) << "P=" << p;
  }
}

TEST(SimProperties, LhwsMatchesWsOnComputeOnlyDags) {
  // "our algorithm behaves identically to standard work stealing" when
  // there are no heavy edges — round counts should be comparable (not
  // identical: steal targets differ), certainly within 2x.
  const auto gen = dag::fib_dag(16);
  for (std::uint64_t p : {1ull, 2ull, 4ull}) {
    const auto lh = run_lhws(gen.graph, cfg(p));
    const auto ws = run_ws(gen.graph, cfg(p));
    EXPECT_LE(lh.rounds, 2 * ws.rounds) << "P=" << p;
    EXPECT_LE(ws.rounds, 2 * lh.rounds) << "P=" << p;
  }
}

TEST(SimProperties, NeitherBeatsGreedyLowerBounds) {
  const auto gen = dag::map_reduce_dag(32, 60, 4);
  const std::uint64_t w = dag::work(gen.graph);
  for (std::uint64_t p : {1ull, 2ull, 4ull}) {
    EXPECT_GE(run_lhws(gen.graph, cfg(p)).rounds, w / p);
    EXPECT_GE(run_ws(gen.graph, cfg(p)).rounds, w / p);
  }
}

// --- Randomized sweeps ---------------------------------------------------

using SweepParam = std::tuple<std::uint64_t /*seed*/, std::uint64_t /*P*/,
                              steal_policy>;

class RandomDagSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomDagSweep, LhwsExecutesEverythingWithinBounds) {
  const auto [seed, p, pol] = GetParam();
  const auto gen = dag::random_fork_join(seed, 7, 200, 30);
  const auto m = run_lhws(gen.graph, cfg(p, seed * 31 + 7, pol));
  // All vertices executed (work tokens = W + pfor vertices).
  EXPECT_EQ(m.work_tokens - m.pfor_vertices, gen.graph.num_vertices());
  // Suspensions bounded by the number of heavy edges (a weak but always
  // valid upper bound on U).
  EXPECT_LE(m.max_suspended, gen.graph.num_heavy_edges());
  // Lemma 7's bound with U <= heavy edges.
  EXPECT_LE(m.max_deques_per_worker, gen.graph.num_heavy_edges() + 1);
}

TEST_P(RandomDagSweep, WsExecutesEverything) {
  const auto [seed, p, pol] = GetParam();
  (void)pol;
  const auto gen = dag::random_fork_join(seed, 7, 200, 30);
  const auto m = run_ws(gen.graph, cfg(p, seed * 17 + 3));
  EXPECT_EQ(m.work_tokens, gen.graph.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDagSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 11, 29),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(steal_policy::random_deque,
                                         steal_policy::random_worker)));

// Lemma 3's structural basis: every deque stays ordered by enabling-tree
// depth (deep at the bottom, shallow at the top), which is what makes the
// topmost vertex carry at least 2/3 of the deque's potential.
TEST(SimProperties, DequesStayDepthOrdered) {
  const dag::generated_dag families[] = {
      dag::map_reduce_dag(64, 50, 3), dag::server_dag(40, 30, 4),
      dag::fib_dag(13),               dag::io_burst_dag(128, 60),
  };
  for (const auto& f : families) {
    for (std::uint64_t p : {1ull, 4ull, 8ull}) {
      const auto m = run_lhws(f.graph, cfg(p, 23, steal_policy::random_deque,
                                           /*etree=*/true));
      EXPECT_EQ(m.depth_order_violations, 0u) << "P=" << p;
    }
  }
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto gen = dag::random_fork_join(seed, 7, 250, 20);
    const auto m = run_lhws(gen.graph, cfg(4, seed, steal_policy::random_worker,
                                           /*etree=*/true));
    EXPECT_EQ(m.depth_order_violations, 0u) << "seed=" << seed;
  }
}

// Witness suspension width observed by the scheduler never exceeds the
// exact suspension width on small dags.
TEST(SimProperties, ObservedSuspensionsRespectDefinition1) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto gen = dag::random_fork_join(seed, 3, 400, 10);
    if (gen.graph.num_vertices() > 20) continue;
    const auto exact = dag::suspension_width_exact(gen.graph, 20);
    if (!exact.has_value()) continue;
    const auto m = run_lhws(gen.graph, cfg(3, seed));
    EXPECT_LE(m.max_suspended, *exact) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace lhws::sim
