// Tests for the simulator's ablation modes: serial re-push (no pfor tree)
// and Spoonhower's fresh-deque-on-resume variant (Section 7 comparison).
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/lhws_sim.hpp"

namespace lhws::sim {
namespace {

sim_config cfg(std::uint64_t p, std::uint64_t seed = 42) {
  sim_config c;
  c.workers = p;
  c.seed = seed;
  return c;
}

TEST(SerialRepush, StillExecutesEverything) {
  const auto gen = dag::map_reduce_dag(64, 40, 3);
  sim_config c = cfg(4);
  c.injection = resume_injection::serial_repush;
  const auto m = run_lhws(gen.graph, c);
  EXPECT_EQ(m.work_tokens, gen.expected_work);
  EXPECT_EQ(m.pfor_vertices, 0u) << "no pfor tree in serial mode";
}

TEST(SerialRepush, PaysOneRoundPerResumedVertex) {
  const std::size_t width = 200;
  const auto gen = dag::io_burst_dag(width, 50);
  sim_config c = cfg(1);
  c.injection = resume_injection::serial_repush;
  const auto m = run_lhws(gen.graph, c);
  EXPECT_EQ(m.injection_rounds, width)
      << "every resumed vertex costs an owner round";
}

TEST(SerialRepush, PforTreeBeatsSerialOnBursts) {
  // The quantitative reason the paper injects pfor trees: a burst of k
  // simultaneous resumes costs the owner k rounds serially but only the
  // tree unfolding (parallelizable, and off the owner's critical path)
  // with pfor.
  const std::size_t width = 2000;
  const auto gen = dag::io_burst_dag(width, 100);
  sim_config pfor_cfg = cfg(8);
  sim_config serial_cfg = cfg(8);
  serial_cfg.injection = resume_injection::serial_repush;
  const auto pfor_rounds = run_lhws(gen.graph, pfor_cfg).rounds;
  const auto serial_rounds = run_lhws(gen.graph, serial_cfg).rounds;
  EXPECT_LT(pfor_rounds, serial_rounds);
}

TEST(SerialRepush, EquivalentWhenResumesAreSparse) {
  // Map-reduce's resumes arrive one per round: serial re-push and pfor
  // injection should then cost about the same.
  const auto gen = dag::map_reduce_dag(128, 60, 3);
  sim_config a = cfg(4);
  sim_config b = cfg(4);
  b.injection = resume_injection::serial_repush;
  const auto ra = run_lhws(gen.graph, a).rounds;
  const auto rb = run_lhws(gen.graph, b).rounds;
  EXPECT_LT(rb, ra * 3);
  EXPECT_LT(ra, rb * 3);
}

TEST(FreshDequeOnResume, StillExecutesEverything) {
  const auto gen = dag::map_reduce_dag(64, 40, 3);
  sim_config c = cfg(4);
  c.fresh_deque_on_resume = true;
  const auto m = run_lhws(gen.graph, c);
  EXPECT_EQ(m.work_tokens - m.pfor_vertices, gen.expected_work);
}

TEST(FreshDequeOnResume, ServerStaysCheap) {
  // With U = 1 the variant allocates one fresh deque per resume but frees
  // the drained origin, so the per-worker count stays small.
  const auto gen = dag::server_dag(50, 20, 3);
  sim_config c = cfg(2);
  c.fresh_deque_on_resume = true;
  const auto m = run_lhws(gen.graph, c);
  EXPECT_LE(m.max_deques_per_worker, 3u);
}

TEST(FreshDequeOnResume, CanExceedPaperDequeBound) {
  // The paper's variant keeps deques <= U + 1 per worker because fresh
  // deques appear only on steals (Lemma 7). Creating deques on resumes can
  // hold both the suspended origin and the fresh deque alive, inflating
  // the count — measurable with a workload whose deques suspend while
  // still having more suspensions pending.
  const auto gen = dag::map_reduce_dag(256, 100, 2);
  sim_config paper = cfg(2);
  sim_config variant = cfg(2);
  variant.fresh_deque_on_resume = true;
  const auto mp = run_lhws(gen.graph, paper);
  const auto mv = run_lhws(gen.graph, variant);
  EXPECT_GE(mv.total_deques_allocated, mp.total_deques_allocated);
}

TEST(ParkOnSuspend, StillExecutesEverything) {
  const auto gen = dag::map_reduce_dag(64, 40, 3);
  sim_config c = cfg(4);
  c.park_deque_on_suspend = true;
  const auto m = run_lhws(gen.graph, c);
  EXPECT_EQ(m.work_tokens - m.pfor_vertices, gen.expected_work);
  EXPECT_EQ(m.parks, 64u) << "one park per suspension";
}

TEST(ParkOnSuspend, SerializesSiblingsOfSuspendedWork) {
  // In map-reduce the deque holds the un-descended sibling subtrees when a
  // leaf's fetch suspends; parking the deque hides them from thieves, so
  // parallelism collapses and rounds blow up vs the paper's algorithm.
  const auto gen = dag::map_reduce_dag(256, 300, 2);
  sim_config paper = cfg(8);
  sim_config parked = cfg(8);
  parked.park_deque_on_suspend = true;
  const auto rp = run_lhws(gen.graph, paper).rounds;
  const auto rk = run_lhws(gen.graph, parked).rounds;
  EXPECT_GT(rk, rp * 2)
      << "keeping suspended deques stealable must matter here";
}

TEST(ParkOnSuspend, HarmlessWhenNothingSuspends) {
  const auto gen = dag::fib_dag(14);
  sim_config a = cfg(4);
  sim_config b = cfg(4);
  b.park_deque_on_suspend = true;
  EXPECT_EQ(run_lhws(gen.graph, a).rounds, run_lhws(gen.graph, b).rounds);
  EXPECT_EQ(run_lhws(gen.graph, b).parks, 0u);
}

TEST(ParkOnSuspend, SchedulesRemainLegal) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto gen = dag::random_fork_join(seed, 7, 250, 25);
    sim_config c = cfg(4, seed);
    c.park_deque_on_suspend = true;
    lhws_simulator sim(gen.graph, c);
    (void)sim.run();
    std::string why;
    EXPECT_TRUE(validate_execution(gen.graph,
                                   sim.executor().execution_rounds(), &why))
        << "seed=" << seed << ": " << why;
  }
}

TEST(ParkOnSuspend, ComposesWithFreshDequeOnResume) {
  const auto gen = dag::map_reduce_dag(64, 50, 2);
  sim_config c = cfg(2);
  c.park_deque_on_suspend = true;
  c.fresh_deque_on_resume = true;
  const auto m = run_lhws(gen.graph, c);
  EXPECT_EQ(m.work_tokens - m.pfor_vertices, gen.expected_work);
}

TEST(FreshDequeOnResume, DeterministicForSeed) {
  const auto gen = dag::map_reduce_dag(64, 30, 2);
  sim_config c = cfg(4, 77);
  c.fresh_deque_on_resume = true;
  const auto a = run_lhws(gen.graph, c);
  const auto b = run_lhws(gen.graph, c);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_deques_allocated, b.total_deques_allocated);
}

}  // namespace
}  // namespace lhws::sim
