// A-posteriori certification: every schedule either simulator produces must
// be LEGAL — each vertex executed exactly once, never before its parents,
// and never before a heavy edge's latency expired. This is the strongest
// end-to-end correctness property of the scheduling layer: any off-by-one
// in resume timing or a lost/duplicated vertex fails it.
#include <gtest/gtest.h>

#include <tuple>

#include "dag/generators.hpp"
#include "dag/greedy_schedule.hpp"
#include "sim/lhws_sim.hpp"
#include "sim/ws_sim.hpp"

namespace lhws::sim {
namespace {

void expect_legal_lhws(const dag::weighted_dag& g, const sim_config& cfg) {
  lhws_simulator sim(g, cfg);
  (void)sim.run();
  std::string why;
  EXPECT_TRUE(validate_execution(g, sim.executor().execution_rounds(), &why))
      << why;
}

void expect_legal_ws(const dag::weighted_dag& g, const sim_config& cfg) {
  ws_simulator sim(g, cfg);
  (void)sim.run();
  std::string why;
  EXPECT_TRUE(validate_execution(g, sim.executor().execution_rounds(), &why))
      << why;
}

sim_config cfg(std::uint64_t p, std::uint64_t seed) {
  sim_config c;
  c.workers = p;
  c.seed = seed;
  return c;
}

TEST(ScheduleValidity, AllFamiliesAllEngines) {
  const dag::generated_dag families[] = {
      dag::map_reduce_dag(64, 35, 3),  dag::server_dag(40, 25, 4),
      dag::fib_dag(12),                dag::chain_dag(150, 9, 17),
      dag::io_burst_dag(128, 60),      dag::fork_join_tree(6, 2),
  };
  for (const auto& f : families) {
    for (std::uint64_t p : {1ull, 3ull, 8ull}) {
      expect_legal_lhws(f.graph, cfg(p, 17));
      expect_legal_ws(f.graph, cfg(p, 17));
    }
  }
}

using Param = std::tuple<std::uint64_t, std::uint64_t>;  // seed, workers

class RandomScheduleValidity : public ::testing::TestWithParam<Param> {};

TEST_P(RandomScheduleValidity, LhwsSchedulesAreLegal) {
  const auto [seed, p] = GetParam();
  const auto gen = dag::random_fork_join(seed, 8, 250, 40);
  for (const auto pol :
       {steal_policy::random_deque, steal_policy::random_worker}) {
    sim_config c = cfg(p, seed * 13 + 1);
    c.policy = pol;
    expect_legal_lhws(gen.graph, c);
  }
}

TEST_P(RandomScheduleValidity, WsSchedulesAreLegal) {
  const auto [seed, p] = GetParam();
  const auto gen = dag::random_fork_join(seed, 8, 250, 40);
  expect_legal_ws(gen.graph, cfg(p, seed * 7 + 5));
}

TEST_P(RandomScheduleValidity, AblationSchedulesAreLegal) {
  const auto [seed, p] = GetParam();
  const auto gen = dag::random_fork_join(seed, 7, 300, 25);
  {
    sim_config c = cfg(p, seed);
    c.injection = resume_injection::serial_repush;
    expect_legal_lhws(gen.graph, c);
  }
  {
    sim_config c = cfg(p, seed);
    c.fresh_deque_on_resume = true;
    expect_legal_lhws(gen.graph, c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomScheduleValidity,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21, 42),
                       ::testing::Values(1, 2, 4, 8)));

TEST(ScheduleValidity, ValidatorCatchesMissingVertex) {
  const auto gen = dag::fib_dag(5);
  std::vector<std::uint64_t> rounds(gen.graph.num_vertices(), 1);
  rounds[2] = 0;
  std::string why;
  EXPECT_FALSE(validate_execution(gen.graph, rounds, &why));
  EXPECT_NE(why.find("never executed"), std::string::npos);
}

TEST(ScheduleValidity, ValidatorCatchesLatencyViolation) {
  const auto gen = dag::chain_dag(3, 1, 10);  // edges of weight 10
  // Execute the chain at rounds 1, 2, 3 — violates the delta = 10 edges.
  std::vector<std::uint64_t> rounds = {1, 2, 3};
  std::string why;
  EXPECT_FALSE(validate_execution(gen.graph, rounds, &why));
  EXPECT_NE(why.find("weight"), std::string::npos);
}

TEST(ScheduleValidity, ValidatorAcceptsGreedyTimings) {
  // The greedy scheduler's step assignment is a legal execution record.
  const auto gen = dag::map_reduce_dag(32, 12, 2);
  const auto res = dag::greedy_schedule(gen.graph, 4);
  std::string why;
  EXPECT_TRUE(validate_execution(gen.graph, res.step_of, &why)) << why;
}

}  // namespace
}  // namespace lhws::sim
