// Multiprogrammed-environment mode: workers are preempted by a simulated
// kernel with probability (1 - availability). The schedulers must stay
// correct under arbitrary preemption (the ABP setting), and throughput
// should degrade roughly proportionally to the availability.
#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "sim/lhws_sim.hpp"
#include "sim/ws_sim.hpp"

namespace lhws::sim {
namespace {

sim_config cfg(std::uint64_t p, unsigned avail, std::uint64_t seed = 42) {
  sim_config c;
  c.workers = p;
  c.seed = seed;
  c.availability_permille = avail;
  return c;
}

TEST(Multiprogrammed, LhwsCompletesUnderHeavyPreemption) {
  const auto gen = dag::map_reduce_dag(64, 40, 3);
  for (unsigned avail : {100u, 300u, 700u}) {
    const auto m = run_lhws(gen.graph, cfg(4, avail));
    EXPECT_EQ(m.work_tokens - m.pfor_vertices, gen.expected_work)
        << "avail=" << avail;
    EXPECT_GT(m.preempted_rounds, 0u);
  }
}

TEST(Multiprogrammed, WsCompletesUnderHeavyPreemption) {
  const auto gen = dag::map_reduce_dag(64, 40, 3);
  for (unsigned avail : {100u, 300u, 700u}) {
    const auto m = run_ws(gen.graph, cfg(4, avail));
    EXPECT_EQ(m.work_tokens, gen.expected_work) << "avail=" << avail;
  }
}

TEST(Multiprogrammed, SchedulesRemainLegal) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto gen = dag::random_fork_join(seed, 7, 250, 25);
    lhws_simulator sim(gen.graph, cfg(4, 250, seed));
    (void)sim.run();
    std::string why;
    EXPECT_TRUE(validate_execution(gen.graph,
                                   sim.executor().execution_rounds(), &why))
        << "seed=" << seed << ": " << why;
  }
}

TEST(Multiprogrammed, ThroughputTracksAvailability) {
  // Compute-only dag, P=4: halving availability should roughly double the
  // rounds (within generous noise bounds).
  const auto gen = dag::fib_dag(16);
  const auto full = run_lhws(gen.graph, cfg(4, 1000)).rounds;
  const auto half = run_lhws(gen.graph, cfg(4, 500)).rounds;
  EXPECT_GT(half, full * 3 / 2);
  EXPECT_LT(half, full * 4);
}

TEST(Multiprogrammed, FullAvailabilityMatchesDedicated) {
  const auto gen = dag::server_dag(30, 20, 3);
  const auto a = run_lhws(gen.graph, cfg(4, 1000, 9));
  sim_config dedicated;
  dedicated.workers = 4;
  dedicated.seed = 9;
  const auto b = run_lhws(gen.graph, dedicated);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.preempted_rounds, 0u);
}

TEST(Multiprogrammed, Lemma7SurvivesPreemption) {
  // Deque economy must not depend on timing: U + 1 still bounds the deques.
  const auto gen = dag::server_dag(50, 30, 4);
  const auto m = run_lhws(gen.graph, cfg(8, 300));
  EXPECT_LE(m.max_deques_per_worker, 2u);
}

}  // namespace
}  // namespace lhws::sim
