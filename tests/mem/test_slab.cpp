// Slab allocator tests: bucket geometry, local magazine recycling,
// cross-thread free storms into the remote MPSC lists, magazine
// orphan/adopt lifecycle across thread teardown, the enabled/disabled
// mixed-mode contract, and batch_block leaf-counted ownership. The storm
// and churn tests are sized to run under ASan/UBSan and TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "mem/slab.hpp"
#include "runtime/work_item.hpp"
#include "support/mpsc_stack.hpp"

namespace lhws::mem {
namespace {

// Restores the runtime kill switch even if a test fails mid-way.
struct enabled_guard {
  bool saved = enabled();
  ~enabled_guard() { set_enabled(saved); }
};

TEST(SlabBuckets, GeometryAndBoundaries) {
  static_assert(bucket_payload(0) == 64);
  static_assert(bucket_payload(kNumBuckets - 1) == 8192);
  static_assert(bucket_for(1) == 0);
  static_assert(bucket_for(64) == 0);
  static_assert(bucket_for(65) == 1);
  static_assert(bucket_for(8192) == kNumBuckets - 1);
  static_assert(bucket_for(8193) == kNumBuckets);  // oversize
  for (unsigned b = 0; b < kNumBuckets; ++b) {
    EXPECT_EQ(bucket_for(bucket_payload(b)), b);
    EXPECT_EQ(bucket_for(bucket_payload(b) - 1), b);
    if (b + 1 < kNumBuckets) {
      EXPECT_EQ(bucket_for(bucket_payload(b) + 1), b + 1);
    }
  }
}

TEST(SlabAlloc, RoundTripsEverySizeClassIncludingBoundaries) {
  enabled_guard guard;
  set_enabled(true);
  const std::size_t sizes[] = {1,    8,    16,   63,   64,   65,   127,
                               128,  129,  255,  256,  511,  512,  1023,
                               1024, 2048, 4095, 4096, 4097, 8192, 8193,
                               65536};
  for (const std::size_t n : sizes) {
    void* p = allocate(n);
    ASSERT_NE(p, nullptr) << "size " << n;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u)
        << "payload misaligned for size " << n;
    // Write the whole requested span: ASan verifies the bucket really holds
    // the size it claims (an under-sized bucket would smear into the next
    // block's header).
    std::memset(p, 0xab, n);
    block_header* h = detail::header_of(p);
    EXPECT_EQ(h->magic, kBlockMagic);
    if (n > kMaxBucketPayload) {
      EXPECT_EQ(h->owner, nullptr) << "oversize must take the fallback";
    } else {
      EXPECT_NE(h->owner, nullptr) << "bucketed size must come from a slab";
      EXPECT_EQ(h->bucket, bucket_for(n));
    }
    deallocate(p);
  }
}

TEST(SlabAlloc, OwnerThreadFreeListIsLifoRecycling) {
  enabled_guard guard;
  set_enabled(true);
  // Warm the magazine (possibly a refill miss in a fresh process) so the
  // measured alloc/free pair below stays on the fast path.
  void* warm = allocate(100);
  deallocate(warm);
  const slab_totals before = totals();
  void* p = allocate(100);
  EXPECT_EQ(p, warm) << "same-thread free must recycle LIFO";
  deallocate(p);
  const slab_totals after = totals();
  EXPECT_GE(after.magazine_hits, before.magazine_hits + 1);
  EXPECT_EQ(after.magazine_misses, before.magazine_misses)
      << "recycled alloc must not take the refill path";
  EXPECT_EQ(after.remote_pushes, before.remote_pushes)
      << "owner-thread frees must not touch the remote list";
}

TEST(SlabAlloc, ReusesAcrossBucketsIndependently) {
  enabled_guard guard;
  set_enabled(true);
  // Interleave two buckets; each must recycle its own list.
  void* a1 = allocate(64);
  void* b1 = allocate(1024);
  deallocate(a1);
  deallocate(b1);
  void* a2 = allocate(64);
  void* b2 = allocate(1024);
  EXPECT_EQ(a2, a1);
  EXPECT_EQ(b2, b1);
  deallocate(a2);
  deallocate(b2);
}

TEST(SlabAlloc, DisabledModeFallsBackButFreesStillDispatchOnHeader) {
  enabled_guard guard;
  set_enabled(true);
  void* slab_block = allocate(200);
  ASSERT_NE(detail::header_of(slab_block)->owner, nullptr);

  set_enabled(false);
  const slab_totals before = totals();
  void* direct = allocate(200);
  EXPECT_EQ(detail::header_of(direct)->owner, nullptr);
  EXPECT_GE(totals().fallback_allocs, before.fallback_allocs + 1);
  // Mixed mode: a slab block freed while the slab is disabled still goes
  // back to its owning magazine (header dispatch ignores the flag)...
  deallocate(slab_block);
  deallocate(direct);
  // ...and is recycled once the slab is re-enabled.
  set_enabled(true);
  void* again = allocate(200);
  EXPECT_EQ(again, slab_block);
  deallocate(again);
}

TEST(SlabAlloc, CrossThreadFreeIsRemotePushedAndDrainedOnRefill) {
  enabled_guard guard;
  set_enabled(true);
  constexpr int kBlocks = 64;
  std::vector<void*> blocks;
  blocks.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(allocate(96));
  const slab_totals before = totals();

  std::thread freer([&blocks] {
    for (void* p : blocks) deallocate(p);
  });
  freer.join();

  const slab_totals mid = totals();
  EXPECT_GE(mid.remote_pushes, before.remote_pushes + kBlocks);

  // Drive this thread's magazine through a refill: once the local 96-byte
  // list (possibly holding leftovers from earlier tests in this process)
  // runs dry, the miss drains the remote list and serves the storm's
  // blocks back.
  bool recycled = false;
  std::vector<void*> held;
  for (int i = 0; i < kBlocks + 256 && !recycled; ++i) {
    void* p = allocate(96);
    for (void* b : blocks) recycled = recycled || b == p;
    held.push_back(p);
  }
  EXPECT_TRUE(recycled) << "refill must serve a drained remote free";
  EXPECT_GE(totals().remote_drained, before.remote_drained + kBlocks);
  for (void* p : held) deallocate(p);
}

TEST(SlabStress, CrossThreadFreeStorm) {
  enabled_guard guard;
  set_enabled(true);
  // Ring of workers: each allocates mixed sizes and hands every block to
  // its neighbor, which frees it (always a remote free). TSan checks the
  // push/drain handshake; ASan checks nothing is freed twice or leaked.
  constexpr unsigned kThreads = 4;
  constexpr int kIters = 400;
  constexpr int kBatch = 16;
  mpsc_stack<free_node> inbox[kThreads];
  std::atomic<unsigned> open_producers{kThreads};

  auto drain_inbox = [&inbox](unsigned tid) {
    std::size_t n = 0;
    for (free_node* f = inbox[tid].pop_all(); f != nullptr;) {
      free_node* next = f->next;
      deallocate(f);
      f = next;
      ++n;
    }
    return n;
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t sizes[] = {24, 96, 200, 1000};
      for (int i = 0; i < kIters; ++i) {
        for (int k = 0; k < kBatch; ++k) {
          void* p = allocate(sizes[static_cast<std::size_t>(k) % 4]);
          std::memset(p, static_cast<int>(t), 24);
          inbox[(t + 1) % kThreads].push(static_cast<free_node*>(p));
        }
        drain_inbox(t);
      }
      open_producers.fetch_sub(1, std::memory_order_acq_rel);
      // Keep draining until every producer is done, then sweep once more so
      // no block is left in any inbox.
      while (open_producers.load(std::memory_order_acquire) != 0) {
        drain_inbox(t);
        std::this_thread::yield();
      }
      drain_inbox(t);
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 0; t < kThreads; ++t) drain_inbox(t);

  const slab_totals after = totals();
  EXPECT_GT(after.remote_pushes, 0u);
  EXPECT_LE(after.remote_drained, after.remote_pushes);
}

TEST(SlabLifecycle, MagazineOrphanedAtExitIsAdoptedByNextThread) {
  enabled_guard guard;
  set_enabled(true);
  magazine* first_mag = nullptr;
  void* block = nullptr;
  std::thread a([&] {
    block = allocate(300);
    first_mag = detail::tl_mag;
  });
  a.join();
  ASSERT_NE(first_mag, nullptr);
  ASSERT_EQ(detail::header_of(block)->owner, first_mag);

  // Freeing after the owning thread died lands on the orphaned magazine's
  // remote list — the magazine outlives its thread by design.
  deallocate(block);

  const slab_totals before = totals();
  magazine* second_mag = nullptr;
  bool recycled = false;
  std::thread b([&] {
    // Fresh thread: the first allocation binds a magazine — adopting the
    // most recently orphaned one — and a refill reclaims its remote list.
    // Allocate past any local leftovers the adopted magazine carries.
    std::vector<void*> held;
    for (int i = 0; i < 256 && !recycled; ++i) {
      void* p = allocate(300);
      recycled = p == block;
      held.push_back(p);
    }
    second_mag = detail::tl_mag;
    for (void* p : held) deallocate(p);
  });
  b.join();
  EXPECT_EQ(second_mag, first_mag) << "orphaned magazine must be adopted";
  EXPECT_GE(totals().magazines_adopted, before.magazines_adopted + 1);
  EXPECT_TRUE(recycled)
      << "the orphan's remote-freed block must be reclaimed by the adopter";
}

TEST(SlabStress, ThreadChurnRacesOrphanAdoptionAndRemoteFrees) {
  enabled_guard guard;
  set_enabled(true);
  // Short-lived threads allocate, hand blocks to a long-lived freer, and
  // exit — racing magazine retirement against remote frees into those same
  // magazines, and adoption against the next spawn wave.
  constexpr int kWaves = 20;
  constexpr unsigned kPerWave = 3;
  constexpr int kBlocksEach = 32;
  mpsc_stack<free_node> handoff;
  std::atomic<bool> stop{false};

  std::thread freer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (free_node* f = handoff.pop_all(); f != nullptr;) {
        free_node* next = f->next;
        deallocate(f);
        f = next;
      }
      std::this_thread::yield();
    }
    for (free_node* f = handoff.pop_all(); f != nullptr;) {
      free_node* next = f->next;
      deallocate(f);
      f = next;
    }
  });

  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kPerWave);
    for (unsigned t = 0; t < kPerWave; ++t) {
      threads.emplace_back([&handoff] {
        for (int i = 0; i < kBlocksEach; ++i) {
          void* p = allocate(48 + 32 * static_cast<std::size_t>(i % 5));
          handoff.push(static_cast<free_node*>(p));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  stop.store(true, std::memory_order_release);
  freer.join();

  // Bounded magazine count: adoption keeps it at the peak concurrent
  // thread count, not one per short-lived thread.
  const slab_totals after = totals();
  EXPECT_LE(after.magazines_created, 64u)
      << "thread churn must recycle magazines, not mint one per thread";
}

TEST(BatchBlock, LeafCountedSplitPathHasNoAtomicTraffic) {
  static_assert(std::is_trivially_copyable_v<rt::batch_node>);
  rt::batch_block* blk = rt::batch_block::create(4);
  ASSERT_EQ(blk->count, 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    blk->items()[i] = std::coroutine_handle<>{};
  }
  // A split only rewrites the node views; the block's leaf count must not
  // move (that is the "no atomic ops on the split path" contract —
  // contrast the old shared_ptr design, where every split bumped the
  // control block).
  rt::batch_node root{blk, 0, 4};
  rt::batch_node right{root.block, 2, root.hi};
  root.hi = 2;
  rt::batch_node right_left{right.block, 2, 3};
  right.lo = 3;
  EXPECT_EQ(blk->pending.load(std::memory_order_relaxed), 4u);
  EXPECT_EQ(root.block, right.block);
  EXPECT_EQ(right_left.block, blk);
  // Four leaves release; the last one frees the block (ASan would flag a
  // double free or leak).
  blk->release_leaf();
  blk->release_leaf();
  blk->release_leaf();
  EXPECT_EQ(blk->pending.load(std::memory_order_relaxed), 1u);
  blk->release_leaf();
}

TEST(BatchBlock, LastLeafOnAnotherThreadFreesRemotely) {
  enabled_guard guard;
  set_enabled(true);
  rt::batch_block* blk = rt::batch_block::create(2);
  const slab_totals before = totals();
  blk->release_leaf();
  std::thread other([blk] { blk->release_leaf(); });
  other.join();
  EXPECT_GE(totals().remote_pushes, before.remote_pushes + 1)
      << "a thief-side final leaf must free through the remote list";
}

TEST(BatchBlock, SingleLeafBlockRoundTrips) {
  rt::batch_block* blk = rt::batch_block::create(1);
  EXPECT_EQ(blk->count, 1u);
  blk->items()[0] = std::coroutine_handle<>{};
  blk->release_leaf();
}

}  // namespace
}  // namespace lhws::mem
