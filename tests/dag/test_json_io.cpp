// JSON round-trip and parser robustness for the dag interchange format.
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/json_io.hpp"

namespace lhws::dag {
namespace {

void expect_roundtrip(const weighted_dag& g) {
  const std::string json = to_json(g);
  std::string why;
  const auto back = from_json(json, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->num_vertices(), g.num_vertices());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_EQ(back->num_heavy_edges(), g.num_heavy_edges());
  EXPECT_EQ(work(*back), work(g));
  EXPECT_EQ(span(*back), span(g));
  // Edge-exact: same out-lists in the same order (left/right preserved).
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(back->out_degree(v), g.out_degree(v));
    for (unsigned i = 0; i < g.out_degree(v); ++i) {
      EXPECT_EQ(back->out(v, i).to, g.out(v, i).to);
      EXPECT_EQ(back->out(v, i).weight, g.out(v, i).weight);
    }
  }
}

TEST(JsonIo, RoundTripAllFamilies) {
  expect_roundtrip(map_reduce_dag(17, 40, 3).graph);
  expect_roundtrip(server_dag(9, 25, 2).graph);
  expect_roundtrip(fib_dag(9).graph);
  expect_roundtrip(chain_dag(30, 4, 11).graph);
  expect_roundtrip(io_burst_dag(12, 8).graph);
  expect_roundtrip(fork_join_tree(4, 3).graph);
  for (std::uint64_t seed : {3ull, 9ull}) {
    expect_roundtrip(random_fork_join(seed, 5, 300, 12).graph);
  }
}

TEST(JsonIo, SingleVertex) {
  weighted_dag g;
  g.add_vertex();
  ASSERT_TRUE(g.validate());
  expect_roundtrip(g);
}

TEST(JsonIo, AcceptsArbitraryWhitespace) {
  const std::string json =
      "{ \"lhws_dag\" : 1 ,\n\t\"vertices\":3, \"edges\" : [ [0,1,1] ,"
      "[ 1 , 2 , 7 ] ] }";
  std::string why;
  const auto g = from_json(json, &why);
  ASSERT_TRUE(g.has_value()) << why;
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_heavy_edges(), 1u);
}

TEST(JsonIo, RejectsMissingVersion) {
  std::string why;
  EXPECT_FALSE(from_json("{\"vertices\":1,\"edges\":[]}", &why).has_value());
  EXPECT_NE(why.find("lhws_dag"), std::string::npos);
}

TEST(JsonIo, RejectsOutOfRangeEdge) {
  std::string why;
  EXPECT_FALSE(
      from_json("{\"lhws_dag\":1,\"vertices\":2,\"edges\":[[0,5,1]]}", &why)
          .has_value());
  EXPECT_NE(why.find("out of range"), std::string::npos);
}

TEST(JsonIo, RejectsZeroWeight) {
  std::string why;
  EXPECT_FALSE(
      from_json("{\"lhws_dag\":1,\"vertices\":2,\"edges\":[[0,1,0]]}", &why)
          .has_value());
  EXPECT_NE(why.find("weight"), std::string::npos);
}

TEST(JsonIo, RejectsInvalidDag) {
  // Two roots.
  std::string why;
  EXPECT_FALSE(
      from_json("{\"lhws_dag\":1,\"vertices\":3,\"edges\":[[0,2,1],[1,2,1]]}",
                &why)
          .has_value());
  EXPECT_NE(why.find("invalid dag"), std::string::npos);
}

TEST(JsonIo, RejectsGarbage) {
  std::string why;
  EXPECT_FALSE(from_json("not json at all", &why).has_value());
  EXPECT_FALSE(from_json("", &why).has_value());
  EXPECT_FALSE(from_json("{\"lhws_dag\":1", &why).has_value());
  EXPECT_FALSE(
      from_json("{\"lhws_dag\":1,\"vertices\":1,\"edges\":[]} trailing", &why)
          .has_value());
}

TEST(JsonIo, RejectsExcessOutDegree) {
  std::string why;
  EXPECT_FALSE(from_json("{\"lhws_dag\":1,\"vertices\":4,"
                         "\"edges\":[[0,1,1],[0,2,1],[0,3,1]]}",
                         &why)
                   .has_value());
  EXPECT_NE(why.find("out-degree"), std::string::npos);
}

}  // namespace
}  // namespace lhws::dag
