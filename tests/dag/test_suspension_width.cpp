// Suspension width (Definition 1): the exact enumerator, the execution
// witness, and the generators' closed forms must agree where they overlap.
#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/suspension_width.hpp"

namespace lhws::dag {
namespace {

TEST(SuspensionWidth, NoHeavyEdgesMeansZero) {
  const auto gen = fib_dag(6);
  EXPECT_EQ(suspension_width_exact(gen.graph).value(), 0u);
  EXPECT_EQ(suspension_width_witness(gen.graph), 0u);
}

TEST(SuspensionWidth, MapReduceSmallExactEqualsLeafCount) {
  // Section 5: "it is possible for each of the n calls to getValue() to be
  // suspended at once, and so U = n."
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    const auto gen = map_reduce_dag(n, 10, 1);
    const auto exact = suspension_width_exact(gen.graph);
    ASSERT_TRUE(exact.has_value()) << "n=" << n;
    EXPECT_EQ(*exact, n) << "n=" << n;
    EXPECT_EQ(*gen.expected_suspension_width, n);
  }
}

TEST(SuspensionWidth, MapReduceWitnessIsTight) {
  for (std::size_t n : {1u, 2u, 8u, 64u, 1000u}) {
    const auto gen = map_reduce_dag(n, 10, 1);
    EXPECT_EQ(suspension_width_witness(gen.graph), n) << "n=" << n;
  }
}

TEST(SuspensionWidth, ServerIsOne) {
  // Section 5: "only one operation may be suspended at a time and U = 1."
  for (std::size_t k : {1u, 2u, 3u}) {
    const auto gen = server_dag(k, 10, 1);
    const auto exact = suspension_width_exact(gen.graph);
    ASSERT_TRUE(exact.has_value()) << "k=" << k;
    EXPECT_EQ(*exact, 1u) << "k=" << k;
  }
  const auto big = server_dag(200, 10, 2);
  EXPECT_EQ(suspension_width_witness(big.graph), 1u);
}

TEST(SuspensionWidth, ChainIsOne) {
  const auto gen = chain_dag(12, 3, 9);
  const auto exact = suspension_width_exact(gen.graph);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(*exact, 1u);
  EXPECT_EQ(suspension_width_witness(gen.graph), 1u);
}

TEST(SuspensionWidth, ExactRefusesLargeDags) {
  const auto gen = map_reduce_dag(64, 10, 1);
  EXPECT_FALSE(suspension_width_exact(gen.graph, 22).has_value());
}

TEST(SuspensionWidth, WitnessNeverExceedsExactOnSmallRandomDags) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto gen = random_fork_join(seed, 3, 350, 8);
    if (gen.graph.num_vertices() > 20) continue;
    const auto exact = suspension_width_exact(gen.graph, 20);
    if (!exact.has_value()) continue;
    EXPECT_LE(suspension_width_witness(gen.graph), *exact)
        << "seed=" << seed;
  }
}

TEST(SuspensionWidth, IoBurstEqualsWidth) {
  for (std::size_t k : {1u, 2u, 4u, 6u}) {
    const auto gen = dag::io_burst_dag(k, 10);
    const auto exact = suspension_width_exact(gen.graph);
    ASSERT_TRUE(exact.has_value()) << "k=" << k;
    EXPECT_EQ(*exact, k) << "k=" << k;
    EXPECT_EQ(suspension_width_witness(gen.graph), k) << "k=" << k;
  }
  EXPECT_EQ(suspension_width_witness(dag::io_burst_dag(5000, 10).graph),
            5000u);
}

TEST(SuspensionWidth, Figure1ExampleIsOne) {
  // The paper's Figure 1 dag has a single heavy edge, so U = 1.
  weighted_dag g;
  const vertex_id fork = g.add_vertex();
  const vertex_id mul = g.add_vertex();
  const vertex_id input = g.add_vertex();
  const vertex_id dbl = g.add_vertex();
  const vertex_id add = g.add_vertex();
  g.add_edge(fork, mul);
  g.add_edge(fork, input);
  g.add_edge(input, dbl, 8);
  g.add_edge(mul, add);
  g.add_edge(dbl, add);
  ASSERT_TRUE(g.validate());
  EXPECT_EQ(suspension_width_exact(g).value(), 1u);
  EXPECT_EQ(suspension_width_witness(g), 1u);
}

TEST(SuspensionWidth, TwoIndependentFetchesGiveTwo) {
  // Two parallel getValue branches — both can be suspended at once.
  const auto gen = map_reduce_dag(2, 10, 1);
  EXPECT_EQ(suspension_width_exact(gen.graph).value(), 2u);
}

}  // namespace
}  // namespace lhws::dag
