// Generators must produce valid dags whose analyzed costs match the closed
// forms they advertise (cross-checking both the builders and the analyzers).
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"

namespace lhws::dag {
namespace {

class MapReduceSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapReduceSizes, CostsMatchClosedForm) {
  const std::size_t n = GetParam();
  const auto gen = map_reduce_dag(n, 50, 3);
  EXPECT_EQ(work(gen.graph), gen.expected_work);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
  EXPECT_EQ(gen.graph.num_heavy_edges(), n);
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddSizes, MapReduceSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 100,
                                           1000, 5000));

class ServerSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ServerSizes, CostsMatchClosedForm) {
  const std::size_t k = GetParam();
  const auto gen = server_dag(k, 30, 2);
  EXPECT_EQ(work(gen.graph), gen.expected_work);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
  // One getInput per request plus the final "Done" read.
  EXPECT_EQ(gen.graph.num_heavy_edges(), k + 1);
}

INSTANTIATE_TEST_SUITE_P(RequestCounts, ServerSizes,
                         ::testing::Values(1, 2, 3, 10, 50, 500));

TEST(Generators, ServerLongHandlerDominatesSpan) {
  // handler_work >> delta: the span must come from the deepest handler.
  const auto gen = server_dag(4, 2, 500);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
}

class FibSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(FibSizes, CostsMatchClosedForm) {
  const unsigned n = GetParam();
  const auto gen = fib_dag(n);
  EXPECT_EQ(work(gen.graph), gen.expected_work);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
  EXPECT_EQ(gen.graph.num_heavy_edges(), 0u);
}

INSTANTIATE_TEST_SUITE_P(FibArguments, FibSizes,
                         ::testing::Values(0, 1, 2, 3, 5, 10, 15));

TEST(Generators, FibWorkFollowsFibRecurrence) {
  // W(n) = W(n-1) + W(n-2) + 2.
  const auto w = [](unsigned n) { return fib_dag(n).expected_work; };
  for (unsigned n = 2; n <= 12; ++n) {
    EXPECT_EQ(w(n), w(n - 1) + w(n - 2) + 2) << "n=" << n;
  }
}

class TreeDepths : public ::testing::TestWithParam<unsigned> {};

TEST_P(TreeDepths, ForkJoinTreeCosts) {
  const unsigned d = GetParam();
  const auto gen = fork_join_tree(d, 4);
  EXPECT_EQ(work(gen.graph), gen.expected_work);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
  EXPECT_EQ(*gen.expected_suspension_width, 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepths, ::testing::Values(0, 1, 2, 5, 10));

TEST(Generators, ChainCosts) {
  const auto gen = chain_dag(100, 10, 7);
  EXPECT_EQ(work(gen.graph), gen.expected_work);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
}

TEST(Generators, RandomForkJoinIsValidAndReproducible) {
  for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    auto a = random_fork_join(seed, 6, 200, 16);
    auto b = random_fork_join(seed, 6, 200, 16);
    EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
    EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
    EXPECT_EQ(a.graph.num_heavy_edges(), b.graph.num_heavy_edges());
    EXPECT_EQ(span(a.graph), span(b.graph));
  }
}

TEST(Generators, RandomForkJoinHeavyTargetsHaveInDegreeOne) {
  const auto gen = random_fork_join(99, 8, 300, 32);
  const weighted_dag& g = gen.graph;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    bool heavy_in = false;
    for (const in_edge& e : g.in_edges(v)) heavy_in |= e.heavy();
    if (heavy_in) {
      EXPECT_EQ(g.in_degree(v), 1u);
    }
  }
}

class BurstWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstWidths, IoBurstCostsMatchClosedForm) {
  const std::size_t k = GetParam();
  const auto gen = io_burst_dag(k, 50);
  EXPECT_EQ(work(gen.graph), gen.expected_work);
  EXPECT_EQ(span(gen.graph), gen.expected_span);
  EXPECT_EQ(gen.graph.num_heavy_edges(), k);
}

INSTANTIATE_TEST_SUITE_P(Widths, BurstWidths,
                         ::testing::Values(1, 2, 3, 4, 16, 100, 1024));

TEST(Generators, IoBurstHandlersAllReadySimultaneously) {
  // The defining property: depth of every handler is identical, so all
  // resumes land in the same round.
  const auto gen = io_burst_dag(16, 30);
  const auto depth = weighted_depths(gen.graph);
  // Handlers are vertices [16, 32).
  for (vertex_id h = 17; h < 32; ++h) {
    EXPECT_EQ(depth[h], depth[16]) << "handler " << h;
  }
}

TEST(Generators, MapReduceFibCostsMatchClosedForm) {
  for (std::size_t n : {1u, 2u, 8u, 100u}) {
    const auto gen = map_reduce_fib_dag(n, 40, 8);
    EXPECT_EQ(work(gen.graph), gen.expected_work) << "n=" << n;
    EXPECT_EQ(span(gen.graph), gen.expected_span) << "n=" << n;
    EXPECT_EQ(gen.graph.num_heavy_edges(), n) << "n=" << n;
  }
}

TEST(Generators, MapReduceFibDegeneratestoMapReduceForFibZero) {
  // fib(0) is a single leaf vertex, i.e. leaf_work = 1.
  const auto nested = map_reduce_fib_dag(32, 25, 0);
  const auto flat = map_reduce_dag(32, 25, 1);
  EXPECT_EQ(nested.expected_work, flat.expected_work);
  EXPECT_EQ(nested.expected_span, flat.expected_span);
}

TEST(Generators, RandomForkJoinZeroPermilleHasNoHeavyEdges) {
  const auto gen = random_fork_join(5, 7, 0, 32);
  EXPECT_EQ(gen.graph.num_heavy_edges(), 0u);
}

}  // namespace
}  // namespace lhws::dag
