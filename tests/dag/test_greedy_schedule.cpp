// Theorem 1: any greedy schedule of a weighted dag on P workers has length
// at most W/P + S. Sweeps every generator family across worker counts.
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/greedy_schedule.hpp"
#include "dag/suspension_width.hpp"

namespace lhws::dag {
namespace {

void expect_theorem1(const weighted_dag& g, std::uint64_t p) {
  const auto res = greedy_schedule(g, p);
  EXPECT_LE(res.length, theorem1_bound(g, p))
      << "P=" << p << " W=" << work(g) << " S=" << span(g);
  // A schedule can never beat either lower bound.
  EXPECT_GE(res.length, (work(g) + p - 1) / p);
  EXPECT_GE(res.length + 1, span(g));  // length >= S is off-by-one safe
}

class GreedyWorkers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyWorkers, MapReduceMeetsTheorem1) {
  const auto p = GetParam();
  expect_theorem1(map_reduce_dag(100, 40, 5).graph, p);
}

TEST_P(GreedyWorkers, ServerMeetsTheorem1) {
  const auto p = GetParam();
  expect_theorem1(server_dag(50, 25, 8).graph, p);
}

TEST_P(GreedyWorkers, FibMeetsTheorem1) {
  const auto p = GetParam();
  expect_theorem1(fib_dag(14).graph, p);
}

TEST_P(GreedyWorkers, ChainMeetsTheorem1) {
  const auto p = GetParam();
  expect_theorem1(chain_dag(200, 7, 12).graph, p);
}

TEST_P(GreedyWorkers, RandomDagsMeetTheorem1) {
  const auto p = GetParam();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    expect_theorem1(random_fork_join(seed, 7, 150, 20).graph, p);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, GreedyWorkers,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 30, 64));

TEST(GreedySchedule, SerialChainTakesExactlySpanSteps) {
  const auto gen = chain_dag(50, 5, 9);
  const auto res = greedy_schedule(gen.graph, 4);
  // A chain admits no parallelism: length == span regardless of P.
  EXPECT_EQ(res.length, span(gen.graph));
}

TEST(GreedySchedule, AllWorkersCanIdleOnLatency) {
  // During a long latency with nothing else to do, every worker idles —
  // the paper notes this cannot happen with unweighted dags (hence the
  // W/P + S bound rather than ABP's W/P + S(P-1)/P).
  const auto gen = chain_dag(10, 5, 100);
  const auto res = greedy_schedule(gen.graph, 2);
  EXPECT_GT(res.all_idle_steps, 0u);
}

TEST(GreedySchedule, ComputeOnlyDagNeverFullyIdles) {
  const auto gen = fib_dag(12);
  const auto res = greedy_schedule(gen.graph, 4);
  EXPECT_EQ(res.all_idle_steps, 0u);
}

TEST(GreedySchedule, StepAssignmentIsAValidSchedule) {
  const auto gen = map_reduce_dag(32, 15, 2);
  const weighted_dag& g = gen.graph;
  const auto res = greedy_schedule(g, 3);
  // Every vertex executed exactly once, respecting readiness: a vertex runs
  // strictly after its parent, and at least delta steps after it across a
  // heavy edge.
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    ASSERT_GT(res.step_of[u], 0u) << "vertex " << u << " never executed";
    for (const out_edge& e : g.out_edges(u)) {
      EXPECT_GE(res.step_of[e.to], res.step_of[u] + e.weight);
    }
  }
}

TEST(GreedySchedule, MaxSuspendedBoundedBySuspensionWidth) {
  const auto gen = map_reduce_dag(64, 20, 2);
  const auto res = greedy_schedule(gen.graph, 8);
  EXPECT_LE(res.max_suspended, 64u);
  const auto srv = server_dag(40, 20, 3);
  EXPECT_LE(greedy_schedule(srv.graph, 8).max_suspended, 1u);
}

TEST(GreedySchedule, MoreWorkersNeverSlower) {
  const auto gen = map_reduce_dag(128, 10, 6);
  std::uint64_t prev = ~0ull;
  for (std::uint64_t p : {1ull, 2ull, 4ull, 8ull, 16ull}) {
    const auto res = greedy_schedule(gen.graph, p);
    EXPECT_LE(res.length, prev) << "P=" << p;
    prev = res.length;
  }
}

}  // namespace
}  // namespace lhws::dag
