// Structural tests for the weighted-dag model (paper, Section 2).
#include <gtest/gtest.h>

#include "dag/dot_export.hpp"
#include "dag/weighted_dag.hpp"

namespace lhws::dag {
namespace {

// The paper's Figure 1 example: fork; one branch reads input (latency
// delta) and doubles it, the other computes 6*7; join adds.
weighted_dag figure1_dag(weight_t delta) {
  weighted_dag g;
  const vertex_id fork = g.add_vertex();     // 0
  const vertex_id mul = g.add_vertex();      // 1: y = 6 * 7 (continuation)
  const vertex_id input = g.add_vertex();    // 2: x = input() (spawned)
  const vertex_id dbl = g.add_vertex();      // 3: x = 2 * x
  const vertex_id add = g.add_vertex();      // 4: x + y
  g.add_edge(fork, mul, 1);                  // left child
  g.add_edge(fork, input, 1);                // right child
  g.add_edge(input, dbl, delta);             // heavy
  g.add_edge(mul, add, 1);
  g.add_edge(dbl, add, 1);
  EXPECT_TRUE(g.validate());
  return g;
}

TEST(WeightedDag, Figure1Structure) {
  const weighted_dag g = figure1_dag(10);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.num_heavy_edges(), 1u);
  EXPECT_EQ(g.root(), 0u);
  EXPECT_EQ(g.final(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out(0, 0).to, 1u) << "left child is the continuation";
  EXPECT_EQ(g.out(0, 1).to, 2u) << "right child is the spawned thread";
  EXPECT_TRUE(g.suspends(3)) << "x = 2*x waits on the input latency";
  EXPECT_FALSE(g.suspends(4));
}

TEST(WeightedDag, LightEdgeWhenDeltaIsOne) {
  const weighted_dag g = figure1_dag(1);
  EXPECT_EQ(g.num_heavy_edges(), 0u);
  EXPECT_FALSE(g.suspends(3));
}

TEST(WeightedDag, ValidateRejectsEmpty) {
  weighted_dag g;
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("no vertices"), std::string::npos);
}

TEST(WeightedDag, ValidateRejectsMultipleRoots) {
  weighted_dag g;
  const vertex_id a = g.add_vertex();
  const vertex_id b = g.add_vertex();
  const vertex_id c = g.add_vertex();
  g.add_edge(a, c);
  g.add_edge(b, c);
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("multiple roots"), std::string::npos);
}

TEST(WeightedDag, ValidateRejectsMultipleFinals) {
  weighted_dag g;
  const vertex_id a = g.add_vertex();
  const vertex_id b = g.add_vertex();
  const vertex_id c = g.add_vertex();
  g.add_edge(a, b);
  g.add_edge(a, c);
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("multiple final"), std::string::npos);
}

TEST(WeightedDag, ValidateRejectsHeavyIntoJoin) {
  // A vertex with a heavy in-edge must have in-degree 1 (third model
  // assumption).
  weighted_dag g;
  const vertex_id a = g.add_vertex();
  const vertex_id b = g.add_vertex();
  const vertex_id c = g.add_vertex();
  const vertex_id d = g.add_vertex();
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d, 5);  // heavy into the join
  g.add_edge(c, d);
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("heavy in-edge"), std::string::npos);
}

TEST(WeightedDag, TopologicalOrderRespectsEdges) {
  const weighted_dag g = figure1_dag(4);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), g.num_vertices());
  std::vector<std::size_t> pos(g.num_vertices());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    for (const out_edge& e : g.out_edges(u)) {
      EXPECT_LT(pos[u], pos[e.to]);
    }
  }
}

TEST(WeightedDag, DotExportMentionsHeavyEdges) {
  const weighted_dag g = figure1_dag(7);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("label=\"7\""), std::string::npos);
  EXPECT_NE(dot.find("v2 -> v3"), std::string::npos);
}

TEST(WeightedDag, SingleVertexIsItsOwnRootAndFinal) {
  weighted_dag g;
  const vertex_id v = g.add_vertex();
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.root(), v);
  EXPECT_EQ(g.final(), v);
}

}  // namespace
}  // namespace lhws::dag
