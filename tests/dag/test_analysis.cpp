// Work/span analyzer tests: weights must count toward the span but never
// toward the work (the core asymmetry of the paper's cost model).
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"

namespace lhws::dag {
namespace {

TEST(Analysis, ChainWorkCountsVerticesOnly) {
  const auto gen = chain_dag(10, 3, 100);
  // 10 vertices, heavy edges at positions 3, 6, 9.
  EXPECT_EQ(work(gen.graph), 10u);
  EXPECT_EQ(gen.graph.num_heavy_edges(), 3u);
}

TEST(Analysis, ChainSpanIncludesLatency) {
  const auto gen = chain_dag(10, 3, 100);
  // Span = 10 vertices + 3 heavy edges contributing (100-1) extra each.
  EXPECT_EQ(span(gen.graph), 10u + 3u * 99u);
  EXPECT_EQ(unweighted_span(gen.graph), 10u);
}

TEST(Analysis, LightChainSpanEqualsLength) {
  const auto gen = chain_dag(42, 0, 1);
  EXPECT_EQ(span(gen.graph), 42u);
  EXPECT_EQ(unweighted_span(gen.graph), 42u);
}

TEST(Analysis, WeightedDepthsMonotoneAlongEdges) {
  const auto gen = map_reduce_dag(8, 50, 3);
  const auto depth = weighted_depths(gen.graph);
  for (vertex_id u = 0; u < gen.graph.num_vertices(); ++u) {
    for (const out_edge& e : gen.graph.out_edges(u)) {
      EXPECT_GE(depth[e.to], depth[u] + e.weight);
    }
  }
  EXPECT_EQ(depth[gen.graph.root()], 0u);
}

TEST(Analysis, CriticalPathRealizesSpan) {
  const auto gen = map_reduce_dag(16, 25, 4);
  const auto path = critical_path(gen.graph);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), gen.graph.root());
  EXPECT_EQ(path.back(), gen.graph.final());
  // Sum weights along the path and compare with span.
  weight_t total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool found = false;
    for (const out_edge& e : gen.graph.out_edges(path[i])) {
      if (e.to == path[i + 1]) {
        total += e.weight;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "critical path must follow edges";
  }
  EXPECT_EQ(total + 1, span(gen.graph));
}

TEST(Analysis, CriticalPathLatencyOnHeavyPath) {
  const auto gen = chain_dag(5, 2, 10);
  // Heavy edges at positions 2 and 4: two heavy edges, each adding 9.
  EXPECT_EQ(critical_path_latency(gen.graph), 18u);
}

TEST(Analysis, SummarizeAgreesWithIndividualAnalyzers) {
  const auto gen = server_dag(5, 20, 2);
  const auto s = summarize(gen.graph);
  EXPECT_EQ(s.work, work(gen.graph));
  EXPECT_EQ(s.span, span(gen.graph));
  EXPECT_EQ(s.unweighted_span, unweighted_span(gen.graph));
  EXPECT_EQ(s.heavy_edges, gen.graph.num_heavy_edges());
}

// Latency that is off the critical path must not inflate the span beyond
// the heavier branch: two parallel branches, one heavy-short, one
// light-long.
TEST(Analysis, OffCriticalPathLatency) {
  weighted_dag g;
  const vertex_id fork = g.add_vertex();
  // Branch A: 1 vertex behind a heavy edge of weight 5 (total depth 5).
  const vertex_id a = g.add_vertex();
  // Branch B: chain of 20 light vertices.
  vertex_id prev = g.add_vertex();
  const vertex_id b_first = prev;
  for (int i = 1; i < 20; ++i) {
    const vertex_id v = g.add_vertex();
    g.add_edge(prev, v);
    prev = v;
  }
  const vertex_id join = g.add_vertex();
  g.add_edge(fork, b_first, 1);  // left = the long light chain
  g.add_edge(fork, a, 5);        // right, heavy
  g.add_edge(a, join);
  g.add_edge(prev, join);
  ASSERT_TRUE(g.validate());
  // Depth(join) = max(5 + 1, 1 + 20) = 21; span 22.
  EXPECT_EQ(span(g), 22u);
}

}  // namespace
}  // namespace lhws::dag
