// Model checking the deque-pool publication protocol (Figure 5's newDeque /
// randomDeque): allocators bump the shared counter and release-publish
// their slot while a racing reader load-acquires random slots and touches
// the published object's plain fields. The checker must prove the
// release/acquire pairing is exactly what makes the object's construction
// visible — weakening either side is a data race on the payload.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "runtime/deque_pool.hpp"
#include "support/rng.hpp"

namespace lhws::rt {
namespace {

using chk::check;

// Minimal payload standing in for runtime_deque: one race-checked plain
// field written during construction (as runtime_deque's owner/ring fields
// are) that readers must only see through the release-published pointer.
struct dummy_deque {
  explicit dummy_deque(std::uint32_t owner) : tag(owner + 100, "deque.tag") {}
  chk::var<std::uint32_t> tag;
};

struct pool_scenario {
  static constexpr unsigned num_threads = 3;  // 2 allocators + 1 reader

  basic_deque_pool<dummy_deque, chk::check_model> pool{4};
  dummy_deque* allocated[2] = {};
  unsigned hits = 0;  // successful reader lookups

  void thread(unsigned tid) {
    if (tid < 2) {
      allocated[tid] = pool.allocate(tid);
      check(allocated[tid] != nullptr, "pool: allocate returned null");
    } else {
      xoshiro256 rng(42);
      for (int i = 0; i < 3; ++i) {
        if (dummy_deque* q = pool.random_deque(rng)) {
          const std::uint32_t tag = q->tag;  // race-checked publication read
          check(tag == 100 || tag == 101, "pool: torn/stale deque payload");
          ++hits;
        }
      }
    }
  }

  void finish() {
    check(pool.total_allocated() == 2, "pool: slot counter wrong");
    check(allocated[0] != allocated[1], "pool: duplicate slot handed out");
    // Drain the published set through the reader path once more: after
    // teardown every allocated slot must be visible and intact.
    xoshiro256 rng(7);
    std::set<dummy_deque*> seen;
    for (int i = 0; i < 64 && seen.size() < 2; ++i) {
      if (dummy_deque* q = pool.random_deque(rng)) {
        const std::uint32_t tag = q->tag;
        check(tag == 100 || tag == 101, "pool: corrupt payload after join");
        seen.insert(q);
      }
    }
    check(seen.size() == 2, "pool: allocated deque never became visible");
  }
};

TEST(DequePoolModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<pool_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
}

TEST(DequePoolModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<pool_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// allocate()'s slot store is release so that a reader's acquire load of the
// pointer also acquires the deque's construction. Relaxed publication lets
// the reader reach a half-built object: a data race on deque.tag.
TEST(DequePoolModel, WeakenedReleasePublicationCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<pool_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// Symmetric mutation on the reader side: random_deque's acquire loads.
TEST(DequePoolModel, WeakenedAcquireLookupCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_acquire_load = true;
  const chk::result res = chk::explore<pool_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

}  // namespace
}  // namespace lhws::rt
