// Sanity tests for the chk explorer and its memory model: the checker must
// (a) find classic interleaving bugs, (b) exhibit weak-memory behaviours
// when orderings are insufficient, (c) stay quiet on correct code, and
// (d) detect plain-data races via the vector-clock checker.
#include <gtest/gtest.h>

#include "chk/atomic.hpp"
#include "chk/engine.hpp"
#include "chk/explore.hpp"
#include "chk/vclock.hpp"

namespace lhws::chk {
namespace {

TEST(VClock, JoinAndCovers) {
  vclock a, b;
  a.c[0] = 3;
  b.c[1] = 5;
  EXPECT_TRUE(a.covers(0, 3));
  EXPECT_FALSE(a.covers(0, 4));
  EXPECT_TRUE(a.covers(1, 0));
  a.join(b);
  EXPECT_TRUE(a.covers(0, 3));
  EXPECT_TRUE(a.covers(1, 5));
  EXPECT_FALSE(a.is_zero());
  a.clear();
  EXPECT_TRUE(a.is_zero());
}

// Two threads increment a counter with a load/store pair instead of an RMW:
// the classic lost update. The explorer must find an interleaving where the
// final value is 1.
struct lost_update_test {
  static constexpr unsigned num_threads = 2;
  atomic<int> counter{0};

  void thread(unsigned) {
    const int v = counter.load(std::memory_order_relaxed);
    counter.store(v + 1, std::memory_order_relaxed);
  }

  void finish() {
    check(counter.load(std::memory_order_relaxed) == 2,
          "lost update: counter != 2");
  }
};

TEST(Explorer, FindsLostUpdateRandom) {
  options opt;
  opt.iterations = 2000;
  const result res = explore<lost_update_test>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("lost update"), std::string::npos);
}

TEST(Explorer, FindsLostUpdateExhaustive) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<lost_update_test>(opt);
  EXPECT_GT(res.failures, 0u);
}

// The fetch_add version is correct and must stay clean over the whole
// (small) schedule space.
struct rmw_counter_test {
  static constexpr unsigned num_threads = 2;
  atomic<int> counter{0};

  void thread(unsigned) { counter.fetch_add(1, std::memory_order_relaxed); }

  void finish() {
    check(counter.load(std::memory_order_relaxed) == 2, "rmw counter != 2");
  }
};

TEST(Explorer, RmwCounterCleanExhaustive) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<rmw_counter_test>(opt);
  EXPECT_EQ(res.failures, 0u) << res.first_failure;
  EXPECT_TRUE(res.space_exhausted);
  EXPECT_GT(res.executions, 1u);
}

// Message passing: data is published relaxed, the flag with release;
// the reader acquires the flag. Correct as written; with the release store
// weakened to relaxed the reader may observe flag==1 but stale data==0 —
// the store-history model must actually produce that stale read.
struct message_passing_test {
  static constexpr unsigned num_threads = 2;
  atomic<int> data{0};
  atomic<int> flag{0};

  void thread(unsigned tid) {
    if (tid == 0) {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_release);
    } else {
      if (flag.load(std::memory_order_acquire) == 1) {
        check(data.load(std::memory_order_relaxed) == 42,
              "stale data read after acquiring flag");
      }
    }
  }

  void finish() {}
};

TEST(Explorer, MessagePassingCleanExhaustive) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<message_passing_test>(opt);
  EXPECT_EQ(res.failures, 0u) << res.first_failure;
  EXPECT_TRUE(res.space_exhausted);
}

TEST(Explorer, MessagePassingBrokenByWeakenedRelease) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  opt.mut.weaken_release_store = true;
  const result res = explore<message_passing_test>(opt);
  EXPECT_GT(res.failures, 0u)
      << "weakened release must allow a stale data read";
}

TEST(Explorer, MessagePassingBrokenByWeakenedAcquire) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  opt.mut.weaken_acquire_load = true;
  const result res = explore<message_passing_test>(opt);
  EXPECT_GT(res.failures, 0u)
      << "weakened acquire must allow a stale data read";
}

// Store buffering (Dekker): with only release/acquire both threads may read
// 0 — the model must exhibit it. seq_cst fences forbid it.
struct store_buffering_test {
  static constexpr unsigned num_threads = 2;
  explicit store_buffering_test(bool use_fence) : fence(use_fence) {}
  bool fence;
  atomic<int> x{0};
  atomic<int> y{0};
  int r0 = 0;
  int r1 = 0;

  void thread(unsigned tid) {
    atomic<int>& mine = tid == 0 ? x : y;
    atomic<int>& other = tid == 0 ? y : x;
    mine.store(1, std::memory_order_release);
    if (fence) check_model::fence(std::memory_order_seq_cst);
    (tid == 0 ? r0 : r1) = other.load(std::memory_order_acquire);
  }

  void finish() {
    check(r0 == 1 || r1 == 1, "store buffering: both threads read 0");
  }
};

TEST(Explorer, StoreBufferingObservedWithoutFence) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<store_buffering_test>(opt, false);
  EXPECT_GT(res.failures, 0u) << "rel/acq alone cannot forbid r0==r1==0";
}

TEST(Explorer, StoreBufferingForbiddenByScFences) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<store_buffering_test>(opt, true);
  EXPECT_EQ(res.failures, 0u) << res.first_failure;
  EXPECT_TRUE(res.space_exhausted);
}

TEST(Explorer, StoreBufferingReappearsWhenScFenceWeakened) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  opt.mut.weaken_sc_fence = true;
  const result res = explore<store_buffering_test>(opt, true);
  EXPECT_GT(res.failures, 0u);
}

// Same litmus expressed with seq_cst operations instead of fences: the SC
// total order over the stores/loads themselves forbids r0 == r1 == 0, and
// downgrading the ops to acq_rel/acquire (weaken_sc_op) re-allows it.
struct store_buffering_sc_ops_test {
  static constexpr unsigned num_threads = 2;
  atomic<int> x{0};
  atomic<int> y{0};
  int r0 = 0;
  int r1 = 0;

  void thread(unsigned tid) {
    atomic<int>& mine = tid == 0 ? x : y;
    atomic<int>& other = tid == 0 ? y : x;
    mine.store(1, std::memory_order_seq_cst);
    (tid == 0 ? r0 : r1) = other.load(std::memory_order_seq_cst);
  }

  void finish() {
    check(r0 == 1 || r1 == 1, "store buffering: both threads read 0");
  }
};

TEST(Explorer, StoreBufferingForbiddenByScOps) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<store_buffering_sc_ops_test>(opt);
  EXPECT_EQ(res.failures, 0u) << res.first_failure;
  EXPECT_TRUE(res.space_exhausted);
}

TEST(Explorer, StoreBufferingReappearsWhenScOpsWeakened) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  opt.mut.weaken_sc_op = true;
  const result res = explore<store_buffering_sc_ops_test>(opt);
  EXPECT_GT(res.failures, 0u)
      << "downgraded seq_cst ops must re-allow the weak behaviour";
}

// Vector-clock race detection on plain data: an unsynchronized write/read
// pair must be reported no matter which interleaving actually ran; adding
// a release/acquire handshake silences it.
struct plain_race_test {
  static constexpr unsigned num_threads = 2;
  explicit plain_race_test(bool synchronize) : sync(synchronize) {}
  bool sync;
  var<int> data{0, "plain_race.data"};
  atomic<int> flag{0};

  void thread(unsigned tid) {
    if (tid == 0) {
      data = 7;
      flag.store(1, std::memory_order_release);
    } else {
      if (flag.load(std::memory_order_acquire) == 1 || !sync) {
        const int v = data;
        (void)v;
      }
    }
  }

  void finish() {}
};

TEST(Explorer, PlainRaceDetected) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<plain_race_test>(opt, false);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
  EXPECT_NE(res.first_failure.find("plain_race.data"), std::string::npos)
      << res.first_failure;
}

TEST(Explorer, PlainAccessRaceFreeWithHandshake) {
  options opt;
  opt.mode = exploration_mode::exhaustive;
  const result res = explore<plain_race_test>(opt, true);
  EXPECT_EQ(res.failures, 0u) << res.first_failure;
}

TEST(Explorer, RandomModeIsReproducible) {
  options opt;
  opt.iterations = 300;
  opt.seed = 1234;
  const result a = explore<lost_update_test>(opt);
  const result b = explore<lost_update_test>(opt);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.first_failure_execution, b.first_failure_execution);
  EXPECT_EQ(a.schedule_points, b.schedule_points);
}

}  // namespace
}  // namespace lhws::chk
