// Model checking the reactor→worker handoff (io::dir_gate) under
// edge-triggered delivery. Two properties:
//
//  1. No lost edge: one reactor edge against one worker arm/suspend must
//     end with the worker either retrying the syscall (it absorbed the
//     edge) or being fired (the reactor claimed its waiter) — never parked
//     with the edge dropped. Deleting the worker's post-publish recheck is
//     exactly that bug and must be caught as a mutation.
//
//  2. Publication: when the reactor claims a waiter, the acquire side of
//     take_any() must receive every plain field the worker wrote before
//     publish() — weakening the publish release is a data race on the
//     armed waiter.
#include <gtest/gtest.h>

#include <cstdint>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "io/dir_gate.hpp"

namespace lhws {
namespace {

using chk::check;

using gate = io::dir_gate<chk::check_model>;

// Thread 0 is the reactor delivering ONE readiness edge; thread 1 is a
// worker that saw EAGAIN and runs the full arm protocol. `waiter_slot`
// stands in for the io_waiter: its plain field is the publication payload.
struct handoff_scenario {
  static constexpr unsigned num_threads = 2;

  gate g;
  chk::var<std::uint32_t> armed{0, "io_gate.waiter_fields"};
  int waiter_slot = 0;  // address-only stand-in for the io_waiter
  bool fired = false;   // reactor claimed + fired the waiter
  bool retried = false; // worker absorbed the edge and retried the syscall
  bool suspended = false;

  void thread(unsigned tid) {
    if (tid == 0) {
      // Reactor, per edge: latch FIRST, then claim (reactor::fire_gate).
      // Claim-then-latch loses the edge when the worker publishes and
      // suspends between the empty claim and the latch — the checker found
      // that ordering bug in an earlier draft of fire_gate.
      g.set_ready();
      void* w = g.take_any();
      if (w != nullptr) {
        g.consume_ready();  // absorb our own latch: the claim delivers it
        fired = true;
        const std::uint32_t v = armed;  // race-checked acquire-side read
        check(v == 7, "io gate: waiter claimed before it was armed");
      }
    } else {
      // Worker, after EAGAIN.
      if (g.consume_ready()) {
        retried = true;
        return;
      }
      armed = 7;  // the arm: resume_handle + deadline token + op fields
      g.publish(&waiter_slot);
      if (g.consume_ready()) {
        if (g.take(&waiter_slot)) {
          retried = true;  // reclaimed: cancel suspension, retry syscall
          return;
        }
        suspended = true;  // reactor fired us concurrently
        return;
      }
      suspended = true;
    }
  }

  void finish() {
    // The single edge must land somewhere: absorbed by the worker's retry
    // or delivered as a fire. A suspended worker with no fire pending is a
    // hung connection.
    check(retried || fired, "io gate: readiness edge lost");
    check(!(retried && fired), "io gate: edge delivered twice");
    if (suspended) {
      check(fired, "io gate: worker suspended but nobody owns its waiter");
    }
  }
};

TEST(IoGateModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<handoff_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
}

TEST(IoGateModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<handoff_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// publish() is the release store that transfers the armed waiter's plain
// fields to the reactor; relaxing it severs the edge into take_any()'s
// acquire and the claim reads a half-armed waiter.
TEST(IoGateModel, WeakenedPublishReleaseCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<handoff_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// The protocol mutation dir_gate exists to rule out: a worker that
// publishes and commits to suspend WITHOUT rechecking the sticky bit. In
// the schedule where the reactor runs entirely between the failed syscall
// and the publish (it latched ready_ and its claim saw no waiter), nobody
// ever fires the waiter — a lost wakeup. The reactor here is the CORRECT
// latch-then-claim form, so the only injected bug is the missing recheck.
struct deleted_recheck_scenario {
  static constexpr unsigned num_threads = 2;

  gate g;
  int waiter_slot = 0;
  bool fired = false;
  bool retried = false;
  bool suspended = false;

  void thread(unsigned tid) {
    if (tid == 0) {
      g.set_ready();
      void* w = g.take_any();
      if (w != nullptr) {
        g.consume_ready();
        fired = true;
      }
    } else {
      if (g.consume_ready()) {
        retried = true;
        return;
      }
      g.publish(&waiter_slot);
      // BUG under test: no post-publish consume_ready() recheck.
      suspended = true;
    }
  }

  void finish() {
    check(!(suspended && !fired),
          "io gate: lost wakeup — edge latched as sticky-ready while the "
          "waiter suspended unobserved");
  }
};

TEST(IoGateModel, DeletedRecheckLostWakeupCaught) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<deleted_recheck_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("lost wakeup"), std::string::npos)
      << res.first_failure;
}

}  // namespace
}  // namespace lhws
