// Model checking the mpsc_stack resume channel: two producers race pushes
// against a consumer draining with pop_all. The vector-clock checker
// validates the release-CAS / acquire-exchange handshake: node fields
// written by producers before push are read race-free by the consumer, and
// weakening the push's release ordering is reported as a data race.
#include <gtest/gtest.h>

#include <cstdint>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "support/mpsc_stack.hpp"

namespace lhws {
namespace {

using chk::check;

struct chk_node {
  chk::var<chk_node*> next{nullptr, "node.next"};
  chk::var<std::uint64_t> payload{0, "node.payload"};
};

static_assert(IntrusiveNode<chk_node>);

struct mpsc_scenario {
  static constexpr unsigned num_threads = 3;  // 2 producers + 1 consumer

  mpsc_stack<chk_node, chk::check_model> stack;
  chk_node nodes[4];
  unsigned delivered[num_threads] = {};  // per-thread counters
  std::uint64_t sum[num_threads] = {};
  unsigned per_producer_edges[2] = {};  // "was empty" push results

  void drain(unsigned tid) {
    for (chk_node* n = stack.pop_all(); n != nullptr; n = n->next) {
      ++delivered[tid];
      sum[tid] += n->payload;  // race-checked read of producer-written data
    }
  }

  void thread(unsigned tid) {
    if (tid < 2) {
      for (unsigned k = 0; k < 2; ++k) {
        chk_node& n = nodes[tid * 2 + k];
        n.payload = 10 * tid + k + 1;  // written BEFORE the release push
        if (stack.push(&n)) ++per_producer_edges[tid];
      }
    } else {
      drain(tid);  // racing drain mid-stream
    }
  }

  void finish() {
    drain(2);  // driver drains the remainder through the consumer's log
    unsigned total = 0;
    std::uint64_t total_sum = 0;
    for (unsigned t = 0; t < num_threads; ++t) {
      total += delivered[t];
      total_sum += sum[t];
    }
    check(total == 4, "mpsc: nodes lost or duplicated");
    check(total_sum == 1 + 2 + 11 + 12, "mpsc: payload corrupted");
    // The empty->nonempty edge fires at least once (the paper's
    // resumedVertices.size == 1 registration test) and never more often
    // than drains could have reset it (2 drains + initial empty).
    const unsigned edges = per_producer_edges[0] + per_producer_edges[1];
    check(edges >= 1, "mpsc: empty->nonempty edge never observed");
    check(edges <= 3, "mpsc: empty->nonempty edge over-reported");
  }
};

TEST(MpscStackModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<mpsc_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
}

TEST(MpscStackModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<mpsc_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// push's CAS success ordering is release precisely so the consumer's
// acquire exchange synchronizes with the producer's preceding plain writes
// (node.payload, node.next). Weakened to relaxed, the happens-before edge
// disappears and the consumer's reads become data races.
TEST(MpscStackModel, WeakenedReleasePushCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<mpsc_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// pop_all's exchange must be acquire for the same edge, from the consumer
// side.
TEST(MpscStackModel, WeakenedAcquireDrainCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_acquire_load = true;
  const chk::result res = chk::explore<mpsc_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// Regression for the deque re-registration race found by TSan in
// worker::add_resumed_vertices. The runtime stacks are two-level: each
// deque owns a vertex stack (resumedVertices) and is itself a node of the
// worker's deque stack (resumedDeques), linked through the same intrusive
// `next` field the outer push writes. The consumer must read q->next
// BEFORE draining q's vertex stack, because a producer that observes the
// drained (empty) vertex stack immediately re-registers q in the outer
// stack, overwriting q->next. That protocol is only sound if the drain's
// store is release and the producer's head load is acquire — otherwise the
// overwrite races with (and on arm can become visible before) the
// consumer's link read.
struct chk_vertex {
  chk::var<chk_vertex*> next{nullptr, "vertex.next"};
};

struct chk_deque {
  chk::var<chk_deque*> next{nullptr, "deque.next"};
  mpsc_stack<chk_vertex, chk::check_model> resumed;
};

struct reregister_scenario {
  static constexpr unsigned num_threads = 2;  // consumer + resuming producer

  mpsc_stack<chk_deque, chk::check_model> outer;
  chk_deque q;
  chk_vertex v1, v2;
  unsigned vertices_seen = 0;

  reregister_scenario() {
    // Pre-state (driver context, happens-before both threads): one vertex
    // already delivered, deque registered with its worker.
    q.resumed.push(&v1);
    outer.push(&q);
  }

  // Mirrors worker::add_resumed_vertices.
  void consume() {
    for (chk_deque* d = outer.pop_all(); d != nullptr;) {
      chk_deque* following = d->next;  // link read BEFORE the drain
      for (chk_vertex* n = d->resumed.pop_all(); n != nullptr; n = n->next) {
        ++vertices_seen;
      }
      d = following;
    }
  }

  void thread(unsigned tid) {
    if (tid == 0) {
      consume();
    } else {
      // deliver_resume for v2: on the empty->nonempty edge, re-register the
      // deque — this push overwrites q.next.
      if (q.resumed.push(&v2)) outer.push(&q);
    }
  }

  void finish() {
    consume();  // driver drains whatever the racing consumer missed
    check(vertices_seen == 2, "reregistration: vertex lost or duplicated");
  }
};

TEST(MpscStackModel, ReregistrationCleanExhaustive) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  const chk::result res = chk::explore<reregister_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_TRUE(res.space_exhausted);
}

// Stripping the release half of pop_all's acq_rel exchange reopens the
// race: the producer's CAS still reads the drained head, but no longer
// synchronizes with the consumer, so the q.next overwrite races with the
// consumer's link read.
TEST(MpscStackModel, ReregistrationWeakenedDrainReleaseCaught) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<reregister_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// The consumer-side half of the same edge: the producer's acquire head
// loads. Relaxed, the producer may order the overwrite before the drain it
// observed.
TEST(MpscStackModel, ReregistrationWeakenedPushAcquireCaught) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  opt.mut.weaken_acquire_load = true;
  const chk::result res = chk::explore<reregister_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

}  // namespace
}  // namespace lhws
