// Model checking the park/unpark handshake (parker_core, the lock-free
// state machine under the idle-parking condvar layer). Two properties:
//
//  1. Token visibility: a waiter that receives the wake token — whether via
//     park_begin()'s pending-token fast path or park_end()'s harvest — also
//     acquires everything the waker published before unpark(). Weakening
//     the RMWs' release side is a data race on the published payload.
//
//  2. No lost wakeup: the token is never stranded. Whatever the schedule,
//     either the waiter consumes it or it stays deposited for the next
//     park_begin. The classic deleted-recheck bug (ignoring park_begin's
//     return and committing to sleep anyway) must be caught as a mutation.
#include <gtest/gtest.h>

#include <cstdint>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "support/parker.hpp"

namespace lhws {
namespace {

using chk::check;

using core = parker_core<chk::check_model>;

// One producer deposits a payload and unparks; one waiter runs the full
// park protocol (announce, pending-token check, bounded "sleep", harvest).
// The condvar sleep is modeled as a single should_sleep() poll — the model
// cannot block, and the real sleep is timeout-bounded anyway, so "woke by
// timeout" is a legal schedule the invariants must already tolerate.
struct handshake_scenario {
  static constexpr unsigned num_threads = 2;

  core pc;
  chk::var<std::uint32_t> payload{0, "parker.payload"};
  bool got_token = false;

  void thread(unsigned tid) {
    if (tid == 0) {
      payload = 42;  // published iff the token carries release/acquire
      pc.unpark();
    } else {
      if (pc.park_begin() == core::kNotified) {
        pc.park_cancel();  // pending token: consume, skip the sleep
        got_token = true;
      } else {
        (void)pc.should_sleep();      // the (modeled) bounded sleep
        got_token = pc.park_end();    // harvest a token that raced the wake
      }
      if (got_token) {
        const std::uint32_t v = payload;  // race-checked acquire-side read
        check(v == 42, "parker: token delivered without its payload");
      }
    }
  }

  void finish() {
    // The producer always deposited exactly one token. If the waiter timed
    // out without it, it must still be pending — consumable by the next
    // park_begin — or the wake was lost.
    if (!got_token) {
      check(pc.park_begin() == core::kNotified, "parker: lost wakeup");
      pc.park_cancel();
    }
    check(!pc.is_parked(), "parker: state machine left parked");
  }
};

TEST(ParkerModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<handshake_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
}

TEST(ParkerModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<handshake_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// Both sides RMW the same atomic with acq_rel: unpark's release half
// publishes the payload, park_begin/park_end's acquire half receives it.
// Relaxing the release side severs that edge: a data race on the payload.
TEST(ParkerModel, WeakenedReleaseTokenCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<handshake_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// The protocol mutation this parker exists to rule out: a waiter that
// discards park_begin()'s return value. The exchange already overwrote a
// pending kNotified with kParked — the token is destroyed — and the waiter
// then commits to sleep with no further wake coming. The checker must find
// the producer-first schedules where this strands the waiter.
struct deleted_recheck_scenario {
  static constexpr unsigned num_threads = 2;

  core pc;

  void thread(unsigned tid) {
    if (tid == 0) {
      pc.unpark();
    } else {
      const std::uint32_t prev = pc.park_begin();
      // BUG under test: the real protocol consumes a kNotified result here.
      // This waiter ignores it and falls through to the sleep decision.
      const bool commits_to_sleep = pc.should_sleep();
      check(!(prev == core::kNotified && commits_to_sleep),
            "parker: lost wakeup — pending token destroyed by park_begin and "
            "the waiter committed to sleep");
    }
  }

  void finish() {}
};

TEST(ParkerModel, DeletedRecheckLosesWakeups) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<deleted_recheck_scenario>(opt);
  EXPECT_GT(res.failures, 0u) << "the deleted-recheck bug must be caught";
  EXPECT_NE(res.first_failure.find("lost wakeup"), std::string::npos)
      << res.first_failure;
}

}  // namespace
}  // namespace lhws
