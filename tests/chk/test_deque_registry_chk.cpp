// Model checking the epoch-published deque registry (the lock-free
// replacement for the spinlock registry on the steal hot path). An owner
// churns the published set — add, add-with-grow, swap-with-last remove —
// while a racing thief probes random_slot() and takes a validated
// snapshot(). The checker must prove the release slot stores / acquire
// reader loads are exactly what make a published deque's construction
// visible: weakening either side is a data race on the payload.
#include <gtest/gtest.h>

#include <cstdint>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "runtime/deque_registry.hpp"
#include "support/rng.hpp"

namespace lhws::rt {
namespace {

using chk::check;

// Stand-in for runtime_deque: one race-checked plain field written during
// construction (as runtime_deque's owner/ring fields are) that thieves must
// only see through the release-published slot.
struct dummy_deque {
  explicit dummy_deque(std::uint32_t owner) : tag(owner + 100, "deque.tag") {}
  chk::var<std::uint32_t> tag;
};

struct registry_scenario {
  static constexpr unsigned num_threads = 2;  // 1 owner + 1 thief

  // Capacity 1 forces a grow (array republish + retire) on the second add.
  basic_deque_registry<dummy_deque, chk::check_model> reg{1};
  dummy_deque* deques[2] = {};
  unsigned hits = 0;  // successful thief probes

  ~registry_scenario() {
    delete deques[0];
    delete deques[1];
  }

  void thread(unsigned tid) {
    if (tid == 0) {
      // Owner: construct in-thread (so unpublished construction is visible
      // to the race detector), publish both, grow, then retire the first.
      deques[0] = new dummy_deque(0);
      deques[1] = new dummy_deque(1);
      reg.add(deques[0]);
      reg.add(deques[1]);
      reg.remove(deques[0]);
    } else {
      // Thief: the steal fast path — plain atomic loads, never blocks.
      xoshiro256 rng(42);
      for (int i = 0; i < 3; ++i) {
        if (dummy_deque* q = reg.random_slot(rng)) {
          const std::uint32_t tag = q->tag;  // race-checked publication read
          check(tag == 100 || tag == 101, "registry: torn/stale payload");
          ++hits;
        }
      }
      // Sampler path: a consistent snapshot must be a coherent prefix (no
      // holes); the unvalidated fallback may be torn but never invalid.
      dummy_deque* snap[4] = {};
      bool consistent = false;
      const std::uint32_t n = reg.snapshot(snap, 4, consistent);
      check(n <= 2, "registry: snapshot larger than ever published");
      for (std::uint32_t i = 0; i < n; ++i) {
        if (snap[i] == nullptr) {
          check(!consistent, "registry: hole in epoch-validated snapshot");
          continue;
        }
        const std::uint32_t tag = snap[i]->tag;
        check(tag == 100 || tag == 101, "registry: snapshot payload");
      }
    }
  }

  void finish() {
    // After the churn: exactly deques[1] remains, and the epoch counted
    // every republish (add, add, remove) with no publish left in flight.
    check(reg.size() == 1, "registry: wrong final count");
    const auto v = reg.view();
    check(v.n == 1 && v.at(0) == deques[1],
          "registry: survivor not the one published");
    check(reg.republish_count() == 3, "registry: epoch republish miscount");
    bool consistent = false;
    dummy_deque* snap[4] = {};
    const std::uint32_t n = reg.snapshot(snap, 4, consistent);
    check(consistent && n == 1 && snap[0] == deques[1],
          "registry: quiescent snapshot must validate");
  }
};

TEST(DequeRegistryModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<registry_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
}

TEST(DequeRegistryModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<registry_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// add()'s slot/count stores and publish_end()'s epoch store are release.
// Relaxing them breaks the protocol in two detectable ways: a thief can
// reach a half-built deque (a data race on deque.tag), and the seqlock
// validation can certify a mid-publish copy (a hole in a "consistent"
// snapshot). Whichever the checker trips first, the mutation is caught.
TEST(DequeRegistryModel, WeakenedReleasePublicationCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<registry_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  const bool caught =
      res.first_failure.find("data race") != std::string::npos ||
      res.first_failure.find("epoch-validated snapshot") != std::string::npos;
  EXPECT_TRUE(caught) << res.first_failure;
}

// Symmetric mutation on the thief side: view()/at()'s acquire loads.
TEST(DequeRegistryModel, WeakenedAcquireLookupCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_acquire_load = true;
  const chk::result res = chk::explore<registry_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

}  // namespace
}  // namespace lhws::rt
