// Model checking the slab allocator's remote-free protocol: threads that
// free a block from the wrong thread push it onto the owning magazine's
// MPSC list; the owner drains on its next refill and REUSES the memory.
// The property under test is the reuse edge: the freer's final writes into
// the block (the dying coroutine frame's last stores, the free-list link)
// must happen-before the owner's re-initialization of the same bytes.
// That edge exists only because the remote push is a release CAS and the
// drain an acquire exchange — the mutation tests strip each half and the
// vector-clock checker must report the write/write race on the payload.
#include <gtest/gtest.h>

#include <cstdint>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "support/mpsc_stack.hpp"

namespace lhws {
namespace {

using chk::check;

// A slab block as the protocol sees it: intrusive link, carve-time bucket
// (written before any thread sees the block, like block_header::bucket),
// and payload standing in for the block's user bytes.
struct chk_block {
  chk::var<chk_block*> next{nullptr, "block.next"};
  chk::var<unsigned> bucket{0, "block.bucket"};
  chk::var<std::uint64_t> payload{0, "block.payload"};
};

static_assert(IntrusiveNode<chk_block>);

// One owner (drains + reuses) against two remote freers. Mirrors
// magazine::release (remote branch) and magazine::refill_alloc.
struct remote_free_scenario {
  static constexpr unsigned num_threads = 3;

  mpsc_stack<chk_block, chk::check_model> remote;
  chk_block blocks[2];
  unsigned reclaimed_by[num_threads] = {};
  std::uint64_t freer_sum = 0;
  unsigned bucket_sum = 0;

  remote_free_scenario() {
    // Carve-time header writes: driver context, happens-before every
    // thread (the blocks were allocated and handed out before the race).
    blocks[0].bucket = 1;
    blocks[1].bucket = 2;
  }

  // refill_alloc's drain loop: walk the detached chain, read the header
  // bucket, then reuse the block — overwriting the bytes the freer wrote.
  void drain_and_reuse(unsigned tid) {
    for (chk_block* b = remote.pop_all(); b != nullptr;) {
      chk_block* following = b->next;
      bucket_sum += b->bucket;       // header read on the drain path
      freer_sum += b->payload;       // must see the freer's last write
      b->payload = 0xfeed;           // reuse: owner re-initializes
      ++reclaimed_by[tid];
      b = following;
    }
  }

  void thread(unsigned tid) {
    if (tid == 0) {
      drain_and_reuse(0);  // owner refills concurrently with the frees
    } else {
      chk_block& b = blocks[tid - 1];
      // The dying frame's final store, sequenced before the free; made
      // visible to the reusing owner only by the release push.
      b.payload = 100 * tid;
      remote.push(&b);
    }
  }

  void finish() {
    drain_and_reuse(0);  // owner reclaims whatever the racing drain missed
    unsigned total = 0;
    for (unsigned t = 0; t < num_threads; ++t) total += reclaimed_by[t];
    check(total == 2, "remote-free: block lost or reclaimed twice");
    check(freer_sum == 100 + 200, "remote-free: freer's write not observed");
    check(bucket_sum == 1 + 2, "remote-free: header bucket corrupted");
  }
};

TEST(SlabRemoteFreeModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<remote_free_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
}

TEST(SlabRemoteFreeModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  const chk::result res = chk::explore<remote_free_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// Weakening the remote push's release CAS to relaxed severs the edge from
// the freer's payload store to the owner's drain: the owner's reuse write
// (and its payload read) race with the freer's final store.
TEST(SlabRemoteFreeModel, WeakenedReleasePushCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<remote_free_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// The owner-side half of the same edge: pop_all's exchange must be acquire
// or the drain can read (and the reuse overwrite) before the push it
// observed is ordered.
TEST(SlabRemoteFreeModel, WeakenedAcquireDrainCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_acquire_load = true;
  const chk::result res = chk::explore<remote_free_scenario>(opt);
  EXPECT_GT(res.failures, 0u);
  EXPECT_NE(res.first_failure.find("data race"), std::string::npos)
      << res.first_failure;
}

// Drain-then-refree round trip: after the owner reuses a drained block and
// hands it back out, a second remote free of the SAME block must again
// synchronize — the recycled block's history must not leak races across
// the reuse boundary. (This is the allocator's steady state: every block
// cycles freer -> owner -> new user indefinitely.)
struct reuse_cycle_scenario {
  static constexpr unsigned num_threads = 2;

  mpsc_stack<chk_block, chk::check_model> remote;
  chk_block b;
  unsigned cycles = 0;
  std::uint64_t seen = 0;

  reuse_cycle_scenario() {
    b.bucket = 3;
    b.payload = 7;     // first user's data
    remote.push(&b);   // first remote free, before the race window
  }

  void owner_cycle() {
    for (chk_block* n = remote.pop_all(); n != nullptr;) {
      chk_block* following = n->next;
      seen += n->payload;
      n->payload = 50;  // reuse by the next allocation on the owner
      ++cycles;
      n = following;
    }
  }

  void thread(unsigned tid) {
    if (tid == 0) {
      owner_cycle();
    } else {
      // A remote freer racing the owner's drain of the first free. Only
      // pushes if it logically "owns" the block now — modeled by pushing a
      // second free after writing its own data; the checker explores both
      // orders of this push vs. the owner's exchange.
      chk_block* mine = remote.pop_all();
      if (mine != nullptr) {
        // Won the block: act as its next user, then free it again.
        seen += mine->payload;
        mine->payload = 9;
        remote.push(mine);
      }
    }
  }

  void finish() {
    owner_cycle();
    check(cycles >= 1, "reuse cycle: block lost");
    check(seen == 7 + 50 || seen == 7 + 9 || seen == 7,
          "reuse cycle: unexpected payload history");
  }
};

TEST(SlabRemoteFreeModel, ReuseCycleCleanExhaustive) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  const chk::result res = chk::explore<reuse_cycle_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_TRUE(res.space_exhausted);
}

}  // namespace
}  // namespace lhws
