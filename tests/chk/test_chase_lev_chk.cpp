// Model checking the Chase-Lev deque (Lê et al. PPoPP'13 orderings)
// under the chk engine: ≥10k random interleavings plus a bounded
// exhaustive pass must be clean, and deliberately weakening the take/steal
// seq_cst fences (the mutation the PPoPP'13 paper proves necessary) must
// produce an observable duplicated/lost element.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chk/atomic.hpp"
#include "chk/explore.hpp"
#include "deque/chase_lev_deque.hpp"

namespace lhws {
namespace {

using chk::check;

// One owner (pushes then pops from the bottom) against two thieves.
// Every pushed value must be delivered exactly once across owner pops,
// steals, and the final drain. Initial capacity 2 so the growth path is
// inside the explored window.
struct chase_lev_scenario {
  static constexpr unsigned num_threads = 3;
  static constexpr std::uintptr_t num_values = 4;

  chase_lev_deque<std::uintptr_t, chk::check_model> deque{2};
  // Per-thread delivery logs (disjoint slots; joined before finish()).
  std::vector<std::uintptr_t> got[num_threads];

  void thread(unsigned tid) {
    if (tid == 0) {
      std::uintptr_t out = 0;
      deque.push_bottom(1);
      deque.push_bottom(2);
      if (deque.pop_bottom(out)) got[0].push_back(out);
      deque.push_bottom(3);
      deque.push_bottom(4);
      if (deque.pop_bottom(out)) got[0].push_back(out);
      if (deque.pop_bottom(out)) got[0].push_back(out);
    } else {
      std::uintptr_t out = 0;
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (deque.pop_top(out)) got[tid].push_back(out);
      }
    }
  }

  void finish() {
    std::uintptr_t out = 0;
    while (deque.pop_bottom(out)) got[0].push_back(out);
    unsigned count[num_values + 1] = {};
    for (const auto& log : got) {
      for (const std::uintptr_t v : log) {
        check(v >= 1 && v <= num_values, "chase_lev: impossible value");
        if (v >= 1 && v <= num_values) ++count[v];
      }
    }
    for (std::uintptr_t v = 1; v <= num_values; ++v) {
      check(count[v] <= 1, "chase_lev: value delivered twice");
      check(count[v] >= 1, "chase_lev: value lost");
    }
  }
};

TEST(ChaseLevModel, CleanOverTenThousandRandomInterleavings) {
  chk::options opt;
  opt.iterations = 10000;
  const chk::result res = chk::explore<chase_lev_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
  EXPECT_GE(res.executions, 10000u);
  EXPECT_GT(res.schedule_points, res.executions * 10)
      << "scenario too small to mean anything";
}

TEST(ChaseLevModel, CleanUnderBoundedExhaustiveExploration) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 30000;
  const chk::result res = chk::explore<chase_lev_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// Grow-path scenario: capacity 2, three pushes, so the third push resizes
// the ring while a thief races a steal. The new buffer is published with
// buffer_.store(..., release) precisely so a thief's consume/acquire load
// of the pointer also acquires the copied slots; this scenario puts that
// edge inside the explored window.
struct chase_lev_grow_scenario {
  static constexpr unsigned num_threads = 2;
  static constexpr std::uintptr_t num_values = 3;

  chase_lev_deque<std::uintptr_t, chk::check_model> deque{2};
  std::vector<std::uintptr_t> got[num_threads];

  void thread(unsigned tid) {
    std::uintptr_t out = 0;
    if (tid == 0) {
      deque.push_bottom(1);
      deque.push_bottom(2);
      deque.push_bottom(3);  // grows the ring from 2 to 4 slots
    } else {
      if (deque.pop_top(out)) got[tid].push_back(out);
    }
  }

  void finish() {
    std::uintptr_t out = 0;
    while (deque.pop_bottom(out)) got[0].push_back(out);
    unsigned count[num_values + 1] = {};
    for (const auto& log : got) {
      for (const std::uintptr_t v : log) {
        check(v >= 1 && v <= num_values, "chase_lev: impossible value");
        if (v >= 1 && v <= num_values) ++count[v];
      }
    }
    for (std::uintptr_t v = 1; v <= num_values; ++v) {
      check(count[v] <= 1, "chase_lev: value delivered twice");
      check(count[v] >= 1, "chase_lev: value lost");
    }
  }
};

// The PPoPP'13 formalization proves the seq_cst fences in take (pop_bottom)
// and steal (pop_top) necessary: without them the owner can read a stale
// top while a thief reads a stale bottom, and one element is taken twice.
// The checker must reproduce that as a concrete failing interleaving.
TEST(ChaseLevModel, WeakenedSeqCstFenceCaught) {
  chk::options opt;
  opt.iterations = 10000;
  opt.mut.weaken_sc_fence = true;
  const chk::result res = chk::explore<chase_lev_scenario>(opt);
  EXPECT_GT(res.failures, 0u)
      << "relaxing the take/steal seq_cst fences must be detected";
}

// The grow path must be clean as written...
TEST(ChaseLevModel, GrowScenarioCleanExhaustive) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  const chk::result res = chk::explore<chase_lev_grow_scenario>(opt);
  EXPECT_EQ(res.failures, 0u)
      << res.first_failure << " (execution " << res.first_failure_execution
      << ")";
}

// ...and the release on the grow path's buffer_ publication is load-bearing:
// relaxed publication lets a thief that read a stale bottom pick up the new
// ring pointer before the copied slots are visible and steal an
// uninitialized value.
TEST(ChaseLevModel, WeakenedBufferPublicationCaught) {
  chk::options opt;
  opt.mode = chk::exploration_mode::exhaustive;
  opt.max_executions = 100000;
  opt.mut.weaken_release_store = true;
  const chk::result res = chk::explore<chase_lev_grow_scenario>(opt);
  EXPECT_GT(res.failures, 0u)
      << "relaxed ring publication must surface a bogus steal";
}

}  // namespace
}  // namespace lhws
