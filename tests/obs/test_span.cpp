// Causal span tracing (DESIGN.md §13): sink mechanics, the trace_state
// running-clock protocol, commit_span accounting, and end-to-end request
// decomposition through a real scheduler run.
#include <chrono>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "core/sync.hpp"
#include "obs/span.hpp"

namespace {

using lhws::obs::request_record;
using lhws::obs::span_kind;
using lhws::obs::span_record;
using lhws::obs::span_sink;
using lhws::obs::trace_state;

TEST(SpanSink, EmitDrainClearRoundTrip) {
  span_sink sink;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    span_record r{};
    r.trace_id = 7;
    r.span_id = i;
    sink.emit(r);
  }
  EXPECT_EQ(sink.size(), 1000U);
  EXPECT_EQ(sink.dropped(), 0U);
  std::vector<span_record> out;
  sink.drain_into(out);
  ASSERT_EQ(out.size(), 1000U);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i].span_id, i);
  sink.clear();
  EXPECT_EQ(sink.size(), 0U);
  out.clear();
  sink.drain_into(out);
  EXPECT_TRUE(out.empty());
}

TEST(SpanSink, CapacityDropsAndCounts) {
  span_sink sink;
  sink.set_capacity(10);
  for (std::uint32_t i = 0; i < 25; ++i) {
    span_record r{};
    r.span_id = i;
    sink.emit(r);
  }
  EXPECT_EQ(sink.size(), 10U);
  EXPECT_EQ(sink.dropped(), 15U);
  std::vector<span_record> out;
  sink.drain_into(out);
  ASSERT_EQ(out.size(), 10U);
  EXPECT_EQ(out.back().span_id, 9U);  // first 10 kept, later ones dropped
}

TEST(TraceState, RunningClockPauseResumeBanking) {
  trace_state st;
  st.resume_running_at(100);
  st.pause_running(350);  // banks 250
  EXPECT_EQ(st.running_ns.load(), 250);
  st.pause_running(400);  // already paused: no double banking
  EXPECT_EQ(st.running_ns.load(), 250);
  st.resume_running_at(1000);
  st.pause_running(1001);
  EXPECT_EQ(st.running_ns.load(), 251);
}

TEST(TraceState, CommitSpanClampsAndAccumulates) {
  trace_state st;
  // Timestamp 0 is the "paused" sentinel, so the clock starts at 10.
  st.resume_running_at(10);
  st.pause_running(60);  // running: 50 up to the arm
  span_sink sink;
  // Monotone stamps: arm=50 fire=80 drain=95 exec=100.
  lhws::obs::commit_span(sink, &st, /*span_id=*/2, /*parent_span=*/1,
                         static_cast<std::uint8_t>(span_kind::timer),
                         /*arm_worker=*/0, /*exec_worker=*/1, /*hops=*/3,
                         /*arm_ns=*/50, /*fire_ns=*/80, /*drain_ns=*/95,
                         /*exec_ns=*/100);
  EXPECT_EQ(st.delta_ns.load(), 30);
  EXPECT_EQ(st.wake_ns.load(), 15);
  EXPECT_EQ(st.deque_ns.load(), 5);
  EXPECT_EQ(st.hops.load(), 3U);
  // The running clock restarted at exec: pausing 20ns later banks 20 more.
  st.pause_running(120);
  EXPECT_EQ(st.running_ns.load(), 70);
  ASSERT_EQ(sink.size(), 1U);
  std::vector<span_record> out;
  sink.drain_into(out);
  EXPECT_EQ(out[0].span_id, 2U);
  EXPECT_EQ(out[0].parent_span, 1U);
  EXPECT_EQ(out[0].hops, 3U);

  // Out-of-order stamps (a completer's clock read raced the arm) clamp to
  // monotone rather than going negative.
  trace_state st2;
  st2.resume_running_at(10);
  st2.pause_running(200);
  lhws::obs::commit_span(sink, &st2, 4, 3,
                         static_cast<std::uint8_t>(span_kind::event), 0, 0, 0,
                         /*arm_ns=*/200, /*fire_ns=*/150, /*drain_ns=*/140,
                         /*exec_ns=*/260);
  EXPECT_EQ(st2.delta_ns.load(), 0);
  EXPECT_EQ(st2.wake_ns.load(), 0);
  EXPECT_EQ(st2.deque_ns.load(), 60);
}

TEST(SpanIds, FreshAndNonZero) {
  const std::uint32_t a = lhws::obs::next_span_id();
  const std::uint32_t b = lhws::obs::next_span_id();
  EXPECT_NE(a, 0U);
  EXPECT_NE(b, 0U);
  EXPECT_NE(a, b);
  const std::uint64_t t1 = lhws::obs::next_trace_id();
  const std::uint64_t t2 = lhws::obs::next_trace_id();
  EXPECT_NE(t1, 0U);
  EXPECT_NE(t2, 0U);
  EXPECT_NE(t1, t2);
}

// One request scope around two heavy edges (timer latencies). The span
// layer must record exactly those spans, chain them off the request root,
// and decompose end-to-end latency with zero residual (one clock, exact
// pause/resume accounting on the serial spine).
lhws::task<long> traced_request(unsigned edges) {
  const bool began = co_await lhws::obs::begin_request();
  long acc = began ? 1 : 0;
  for (unsigned i = 0; i < edges; ++i) {
    acc += co_await lhws::latency(std::chrono::milliseconds(2), 1L);
  }
  co_await lhws::obs::end_request();
  co_return acc;
}

TEST(SpanEndToEnd, RequestDecompositionIsExact) {
  lhws::scheduler_options opts;
  opts.workers = 2;
  opts.spans = true;
  lhws::scheduler sched(opts);
  const long got = sched.run(traced_request(3));
  EXPECT_EQ(got, 4);  // began + 3 latency values

  ASSERT_EQ(sched.requests().size(), 1U);
  const request_record& rq = sched.requests()[0];
  EXPECT_EQ(sched.stats().request_records, 1U);
  EXPECT_EQ(rq.spans, 3U);
  ASSERT_EQ(sched.spans().size(), 3U);

  // Exact decomposition: end - begin == running + delta + wake + deque.
  const std::int64_t total = rq.end_ns - rq.begin_ns;
  const std::int64_t parts =
      rq.running_ns + rq.delta_ns + rq.wake_ns + rq.deque_ns;
  EXPECT_EQ(total, parts);
  EXPECT_GE(rq.delta_ns, 3 * 1'500'000);  // three ~2ms timer waits

  // Tree closure: spans chain root -> s1 -> s2 -> s3 on the serial spine.
  // Records drain per-worker, not in spine order, so collect ids first.
  std::set<std::uint32_t> known{rq.root_span};
  for (const span_record& sp : sched.spans()) known.insert(sp.span_id);
  std::size_t closed = 0;
  for (const span_record& sp : sched.spans()) {
    EXPECT_EQ(sp.trace_id, rq.trace_id);
    EXPECT_EQ(sp.kind, static_cast<std::uint8_t>(span_kind::timer));
    if (known.count(sp.parent_span) != 0) ++closed;
    // Stamps are monotone after commit clamping.
    EXPECT_LE(sp.arm_ns, sp.fire_ns);
    EXPECT_LE(sp.fire_ns, sp.drain_ns);
    EXPECT_LE(sp.drain_ns, sp.exec_ns);
  }
  EXPECT_EQ(closed, 3U);
}

TEST(SpanEndToEnd, WireContextJoinsRemoteTrace) {
  lhws::scheduler_options opts;
  opts.workers = 1;
  opts.spans = true;
  lhws::scheduler sched(opts);
  const std::uint64_t wire_trace = 0xfeedfacecafef00dULL;
  const std::uint32_t wire_parent = 77;
  sched.run([](std::uint64_t t, std::uint32_t p) -> lhws::task<long> {
    const bool began = co_await lhws::obs::begin_request(t, p);
    co_await lhws::latency(std::chrono::milliseconds(1), 1L);
    co_await lhws::obs::end_request();
    co_return began ? 1 : 0;
  }(wire_trace, wire_parent));
  ASSERT_EQ(sched.requests().size(), 1U);
  EXPECT_EQ(sched.requests()[0].trace_id, wire_trace);
  EXPECT_EQ(sched.requests()[0].remote_parent, wire_parent);
  ASSERT_EQ(sched.spans().size(), 1U);
  EXPECT_EQ(sched.spans()[0].trace_id, wire_trace);
}

TEST(SpanEndToEnd, DisabledByDefaultCostsNothing) {
  lhws::scheduler_options opts;
  opts.workers = 2;
  ASSERT_FALSE(opts.spans);
  lhws::scheduler sched(opts);
  const long got = sched.run(traced_request(2));
  EXPECT_EQ(got, 2);  // begin_request() reported "not began"
  EXPECT_TRUE(sched.spans().empty());
  EXPECT_TRUE(sched.requests().empty());
  EXPECT_EQ(sched.stats().span_records, 0U);
  EXPECT_EQ(sched.stats().request_records, 0U);
}

TEST(SpanEndToEnd, ReadyEventProducesNoSpan) {
  // A heavy-edge primitive that never suspends (value already there) must
  // not create a span: arm/cancel rolls the context back.
  lhws::scheduler_options opts;
  opts.workers = 1;
  opts.spans = true;
  lhws::scheduler sched(opts);
  sched.run([]() -> lhws::task<long> {
    co_await lhws::obs::begin_request();
    lhws::event<int> ev;
    ev.set(5);
    const int v = co_await ev;  // await_ready fast path
    co_await lhws::obs::end_request();
    co_return v;
  }());
  ASSERT_EQ(sched.requests().size(), 1U);
  EXPECT_EQ(sched.requests()[0].spans, 0U);
  EXPECT_TRUE(sched.spans().empty());
  // No suspension: the whole scope is running time.
  const request_record& rq = sched.requests()[0];
  EXPECT_EQ(rq.end_ns - rq.begin_ns, rq.running_ns);
}

TEST(SpanEndToEnd, SinkCapacityDropsAreCounted) {
  lhws::scheduler_options opts;
  opts.workers = 1;
  opts.spans = true;
  opts.span_capacity = 2;
  lhws::scheduler sched(opts);
  sched.run(traced_request(5));
  EXPECT_EQ(sched.spans().size(), 2U);
  EXPECT_EQ(sched.stats().span_records_dropped, 3U);
  // The request-level accumulators still saw every edge.
  ASSERT_EQ(sched.requests().size(), 1U);
  EXPECT_EQ(sched.requests()[0].spans, 5U);
}

}  // namespace
