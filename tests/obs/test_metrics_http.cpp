// metrics_http_server: real-socket round trips on an ephemeral port.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_http.hpp"

namespace {

using lhws::obs::metrics_http_server;

std::string http_get(std::uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = method + " " + target + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(MetricsHttp, ServesPrometheusAndJson) {
  metrics_http_server srv;
  ASSERT_TRUE(srv.start(0, [](metrics_http_server::format f) {
    return f == metrics_http_server::format::json
               ? std::string("{\"ok\":1}\n")
               : std::string("lhws_up 1\n");
  }));
  ASSERT_TRUE(srv.running());
  ASSERT_NE(srv.port(), 0);

  const std::string prom = http_get(srv.port(), "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("text/plain"), std::string::npos);
  EXPECT_NE(prom.find("lhws_up 1"), std::string::npos);

  const std::string json = http_get(srv.port(), "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("{\"ok\":1}"), std::string::npos);

  srv.stop();
  EXPECT_FALSE(srv.running());
}

TEST(MetricsHttp, UnknownPathIs404) {
  metrics_http_server srv;
  ASSERT_TRUE(srv.start(0, [](metrics_http_server::format) {
    return std::string("x");
  }));
  const std::string resp = http_get(srv.port(), "/nope");
  EXPECT_NE(resp.find("404"), std::string::npos);
  srv.stop();
}

TEST(MetricsHttp, NonGetIs405) {
  metrics_http_server srv;
  ASSERT_TRUE(srv.start(0, [](metrics_http_server::format) {
    return std::string("x");
  }));
  const std::string resp = http_get(srv.port(), "/metrics", "POST");
  EXPECT_NE(resp.find("405"), std::string::npos);
  srv.stop();
}

TEST(MetricsHttp, StopIsIdempotentAndRestartable) {
  metrics_http_server srv;
  ASSERT_TRUE(srv.start(0, [](metrics_http_server::format) {
    return std::string("a");
  }));
  srv.stop();
  srv.stop();
  ASSERT_TRUE(srv.start(0, [](metrics_http_server::format) {
    return std::string("b");
  }));
  const std::string resp = http_get(srv.port(), "/metrics");
  EXPECT_NE(resp.find("\r\n\r\nb"), std::string::npos);
  srv.stop();
}

}  // namespace
