// metrics_registry exporters: golden JSON output and a line-by-line parse of
// the Prometheus text exposition (HELP/TYPE structure, cumulative buckets).
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace {

using lhws::obs::log_histogram;
using lhws::obs::metrics_registry;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

TEST(Exporters, JsonGolden) {
  metrics_registry reg;
  reg.add_counter("lhws_steals_total", "Successful steals", 42);
  reg.add_gauge("lhws_elapsed_ms", "Wall time", 1.5);
  reg.add_counter("lhws_worker_segments_total", "Per-worker segments", 7,
                  "worker=\"0\"");
  const std::string expected =
      "{\"lhws_metrics\":1,\"metrics\":[\n"
      " {\"name\":\"lhws_steals_total\",\"type\":\"counter\",\"value\":42},\n"
      " {\"name\":\"lhws_elapsed_ms\",\"type\":\"gauge\",\"value\":1.5},\n"
      " {\"name\":\"lhws_worker_segments_total\",\"type\":\"counter\","
      "\"labels\":\"worker=\\\"0\\\"\",\"value\":7}\n"
      "]}\n";
  EXPECT_EQ(reg.json_text(), expected);
}

TEST(Exporters, JsonHistogramSummary) {
  log_histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  metrics_registry reg;
  reg.add_histogram("lhws_wake_latency_ns", "Wake latency", &h);
  const std::string json = reg.json_text();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":60"), std::string::npos);
  EXPECT_NE(json.find("\"min\":10"), std::string::npos);
  EXPECT_NE(json.find("\"max\":30"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":20"), std::string::npos);  // exact: v < 32
}

TEST(Exporters, JsonEscaping) {
  EXPECT_EQ(lhws::obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(lhws::obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Exporters, PrometheusCountersAndGauges) {
  metrics_registry reg;
  reg.add_counter("lhws_steals_total", "Successful steals", 42);
  reg.add_gauge("lhws_elapsed_ms", "Wall time", 2.25);
  const auto lines = lines_of(reg.prometheus_text());
  ASSERT_EQ(lines.size(), 6U);
  EXPECT_EQ(lines[0], "# HELP lhws_steals_total Successful steals");
  EXPECT_EQ(lines[1], "# TYPE lhws_steals_total counter");
  EXPECT_EQ(lines[2], "lhws_steals_total 42");
  EXPECT_EQ(lines[3], "# HELP lhws_elapsed_ms Wall time");
  EXPECT_EQ(lines[4], "# TYPE lhws_elapsed_ms gauge");
  EXPECT_EQ(lines[5], "lhws_elapsed_ms 2.25");
}

TEST(Exporters, PrometheusLabeledFamilyEmitsHelpOnce) {
  metrics_registry reg;
  reg.add_counter("lhws_worker_steals_total", "Per-worker steals", 1,
                  "worker=\"0\"");
  reg.add_counter("lhws_worker_steals_total", "Per-worker steals", 2,
                  "worker=\"1\"");
  const auto lines = lines_of(reg.prometheus_text());
  ASSERT_EQ(lines.size(), 4U);
  EXPECT_EQ(lines[0], "# HELP lhws_worker_steals_total Per-worker steals");
  EXPECT_EQ(lines[1], "# TYPE lhws_worker_steals_total counter");
  EXPECT_EQ(lines[2], "lhws_worker_steals_total{worker=\"0\"} 1");
  EXPECT_EQ(lines[3], "lhws_worker_steals_total{worker=\"1\"} 2");
}

TEST(Exporters, PrometheusHistogramCumulativeBuckets) {
  log_histogram h;
  // Three values in distinct exact buckets: 5, 10, 10, 20.
  h.record(5);
  h.record(10);
  h.record(10);
  h.record(20);
  metrics_registry reg;
  reg.add_histogram("lhws_seg_ns", "Segment duration", &h);
  const auto lines = lines_of(reg.prometheus_text());
  // HELP, TYPE, 3 buckets, +Inf, _sum, _count
  ASSERT_EQ(lines.size(), 8U);
  EXPECT_EQ(lines[0], "# HELP lhws_seg_ns Segment duration");
  EXPECT_EQ(lines[1], "# TYPE lhws_seg_ns histogram");
  // Exact buckets below 32: value v lives in [v, v+1).
  EXPECT_EQ(lines[2], "lhws_seg_ns_bucket{le=\"6\"} 1");
  EXPECT_EQ(lines[3], "lhws_seg_ns_bucket{le=\"11\"} 3");   // cumulative
  EXPECT_EQ(lines[4], "lhws_seg_ns_bucket{le=\"21\"} 4");
  EXPECT_EQ(lines[5], "lhws_seg_ns_bucket{le=\"+Inf\"} 4");
  EXPECT_EQ(lines[6], "lhws_seg_ns_sum 45");
  EXPECT_EQ(lines[7], "lhws_seg_ns_count 4");
}

TEST(Exporters, PrometheusHistogramWithLabels) {
  log_histogram h;
  h.record(1);
  metrics_registry reg;
  reg.add_histogram("lhws_lat_ns", "Latency", &h, "worker=\"3\"");
  const auto lines = lines_of(reg.prometheus_text());
  ASSERT_EQ(lines.size(), 6U);
  EXPECT_EQ(lines[2], "lhws_lat_ns_bucket{worker=\"3\",le=\"2\"} 1");
  EXPECT_EQ(lines[3], "lhws_lat_ns_bucket{worker=\"3\",le=\"+Inf\"} 1");
  EXPECT_EQ(lines[4], "lhws_lat_ns_sum{worker=\"3\"} 1");
  EXPECT_EQ(lines[5], "lhws_lat_ns_count{worker=\"3\"} 1");
}

// Structural parse: every Prometheus line must be a comment or
// `name[{labels}] value`, bucket series must be non-decreasing, and the
// +Inf bucket must equal _count.
TEST(Exporters, PrometheusParsesLineByLine) {
  log_histogram h;
  for (std::uint64_t v = 1; v < 5000; v += 7) h.record(v);
  metrics_registry reg;
  reg.add_counter("lhws_a_total", "A", 1);
  reg.add_histogram("lhws_h_ns", "H", &h);
  reg.add_gauge("lhws_g", "G", 0.5);

  std::map<std::string, std::uint64_t> last_bucket_cum;
  std::map<std::string, std::uint64_t> inf_bucket;
  std::map<std::string, std::uint64_t> count_series;
  for (const std::string& line : lines_of(reg.prometheus_text())) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string key = line.substr(0, sp);
    const std::string val = line.substr(sp + 1);
    ASSERT_FALSE(val.empty()) << line;
    // Metric names start with our prefix and contain no spaces.
    EXPECT_EQ(key.rfind("lhws_", 0), 0U) << line;
    if (key.find("_bucket{") != std::string::npos) {
      const std::string base = key.substr(0, key.find("_bucket{"));
      const std::uint64_t cum = std::stoull(val);
      if (key.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket[base] = cum;
      } else {
        EXPECT_GE(cum, last_bucket_cum[base]) << line;
        last_bucket_cum[base] = cum;
      }
    } else if (key.size() > 6 &&
               key.compare(key.size() - 6, 6, "_count") == 0) {
      count_series[key.substr(0, key.size() - 6)] = std::stoull(val);
    }
  }
  ASSERT_EQ(inf_bucket.size(), 1U);
  EXPECT_EQ(inf_bucket["lhws_h_ns"], h.count());
  EXPECT_EQ(count_series["lhws_h_ns"], h.count());
  EXPECT_LE(last_bucket_cum["lhws_h_ns"], h.count());
}

}  // namespace
