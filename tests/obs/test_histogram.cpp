// log_histogram: bucket geometry, recording, merging, and quantile accuracy
// against a sorted-vector oracle.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.hpp"

namespace {

using lhws::obs::log_histogram;

TEST(LogHistogram, SmallValuesAreExact) {
  // Below kSubCount every value has its own width-1 bucket.
  for (std::uint64_t v = 0; v < log_histogram::kSubCount; ++v) {
    const std::size_t i = log_histogram::bucket_index(v);
    EXPECT_EQ(i, static_cast<std::size_t>(v));
    EXPECT_EQ(log_histogram::bucket_lower_bound(i), v);
    EXPECT_EQ(log_histogram::bucket_width(i), 1U);
  }
}

TEST(LogHistogram, BucketIndexIsMonotonicAndContinuous) {
  // Walk all buckets: lower bounds must tile the value space with no gaps.
  std::uint64_t expected_lower = 0;
  for (std::size_t i = 0; i < log_histogram::kNumBuckets; ++i) {
    EXPECT_EQ(log_histogram::bucket_lower_bound(i), expected_lower)
        << "bucket " << i;
    expected_lower += log_histogram::bucket_width(i);
  }
  // The last bucket's range ends exactly at 2^64 (wraps to 0).
  EXPECT_EQ(expected_lower, 0U);
}

TEST(LogHistogram, ValueMapsIntoItsBucketRange) {
  std::mt19937_64 rng(42);
  for (int t = 0; t < 100000; ++t) {
    const int bits = 1 + static_cast<int>(rng() % 63);
    const std::uint64_t v = rng() >> (64 - bits);
    const std::size_t i = log_histogram::bucket_index(v);
    ASSERT_LT(i, log_histogram::kNumBuckets);
    EXPECT_GE(v, log_histogram::bucket_lower_bound(i));
    EXPECT_LT(v, log_histogram::bucket_lower_bound(i) +
                     log_histogram::bucket_width(i));
  }
}

TEST(LogHistogram, BoundaryValues) {
  // Exact powers of two land at the start of their bucket.
  for (unsigned exp = log_histogram::kSubBits; exp < 63; ++exp) {
    const std::uint64_t v = std::uint64_t{1} << exp;
    const std::size_t i = log_histogram::bucket_index(v);
    EXPECT_EQ(log_histogram::bucket_lower_bound(i), v);
    // The value just below is in the previous bucket.
    EXPECT_EQ(log_histogram::bucket_index(v - 1), i - 1);
  }
  EXPECT_EQ(log_histogram::bucket_index(UINT64_MAX),
            log_histogram::kNumBuckets - 1);
}

TEST(LogHistogram, RelativeErrorBound) {
  // Bucket width <= lower_bound / kSubCount for all log buckets, i.e. ~3%
  // max quantile error with 5 sub-bits.
  for (std::size_t i = log_histogram::kSubCount; i < log_histogram::kNumBuckets;
       ++i) {
    EXPECT_LE(log_histogram::bucket_width(i) * log_histogram::kSubCount,
              log_histogram::bucket_lower_bound(i))
        << "bucket " << i;
  }
}

TEST(LogHistogram, CountSumMinMax) {
  log_histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0U);  // empty -> 0, not UINT64_MAX
  h.record(7);
  h.record(100);
  h.record(3);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.sum(), 110U);
  EXPECT_EQ(h.min(), 3U);
  EXPECT_EQ(h.max(), 100U);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.sum(), 0U);
}

TEST(LogHistogram, QuantileMatchesOracleWithinOneBucketWidth) {
  std::mt19937_64 rng(1234);
  log_histogram h;
  std::vector<std::uint64_t> oracle;
  // A mix of scales: uniform small, log-uniform large.
  for (int t = 0; t < 20000; ++t) {
    std::uint64_t v = 0;
    if (t % 2 == 0) {
      v = rng() % 1000;
    } else {
      const int bits = 1 + static_cast<int>(rng() % 40);
      v = rng() >> (64 - bits);
    }
    h.record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    auto rank =
        static_cast<std::size_t>(q * static_cast<double>(oracle.size()));
    if (rank >= oracle.size()) rank = oracle.size() - 1;
    const std::uint64_t exact = oracle[rank];
    const std::uint64_t est = h.quantile(q);
    // The estimate is the midpoint of the bucket containing the exact value,
    // so it is within one bucket width of the exact answer.
    const std::uint64_t width =
        log_histogram::bucket_width(log_histogram::bucket_index(exact));
    EXPECT_LE(est > exact ? est - exact : exact - est, width)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LogHistogram, MergeIsAssociativeAndOrderIndependent) {
  std::mt19937_64 rng(99);
  log_histogram a, b, c;
  for (int t = 0; t < 5000; ++t) {
    const std::uint64_t v = rng() % 1000000;
    if (t % 3 == 0) a.record(v);
    else if (t % 3 == 1) b.record(v);
    else c.record(v);
  }
  // (a + b) + c
  log_histogram ab = a;
  ab.merge(b);
  log_histogram abc1 = ab;
  abc1.merge(c);
  // a + (b + c)
  log_histogram bc = b;
  bc.merge(c);
  log_histogram abc2 = a;
  abc2.merge(bc);
  // c + b + a
  log_histogram abc3 = c;
  abc3.merge(b);
  abc3.merge(a);

  EXPECT_EQ(abc1.count(), abc2.count());
  EXPECT_EQ(abc1.sum(), abc2.sum());
  EXPECT_EQ(abc1.min(), abc2.min());
  EXPECT_EQ(abc1.max(), abc2.max());
  EXPECT_EQ(abc1.count(), abc3.count());
  EXPECT_EQ(abc1.sum(), abc3.sum());
  for (std::size_t i = 0; i < log_histogram::kNumBuckets; ++i) {
    ASSERT_EQ(abc1.bucket_count(i), abc2.bucket_count(i)) << "bucket " << i;
    ASSERT_EQ(abc1.bucket_count(i), abc3.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(abc1.quantile(0.5), abc2.quantile(0.5));
  EXPECT_EQ(abc1.quantile(0.5), abc3.quantile(0.5));
}

TEST(LogHistogram, MergeWithEmptyKeepsMinMax) {
  log_histogram a, empty;
  a.record(5);
  a.record(50);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_EQ(a.min(), 5U);
  EXPECT_EQ(a.max(), 50U);
  log_histogram b;
  b.merge(a);
  EXPECT_EQ(b.min(), 5U);
  EXPECT_EQ(b.max(), 50U);
}

TEST(LogHistogram, CopySnapshots) {
  log_histogram a;
  a.record(17);
  const log_histogram snap = a;  // copy
  a.record(1000);
  EXPECT_EQ(snap.count(), 1U);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_EQ(snap.sum(), 17U);
}

TEST(LatencyHistograms, MergeAndReset) {
  lhws::obs::latency_histograms a, b;
  a.wake_latency.record(10);
  b.wake_latency.record(20);
  b.steal_latency.record(30);
  a.merge(b);
  EXPECT_EQ(a.wake_latency.count(), 2U);
  EXPECT_EQ(a.steal_latency.count(), 1U);
  a.reset();
  EXPECT_TRUE(a.wake_latency.empty());
  EXPECT_TRUE(a.steal_latency.empty());
}

}  // namespace
