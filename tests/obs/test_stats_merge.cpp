// Quantile accuracy of merged histograms and run_stats::absorb aggregation:
// the run-level numbers the bench gate and trace metadata report are built
// by merging per-worker state, so merging must not degrade accuracy beyond
// the documented one-bucket bound.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.hpp"
#include "runtime/stats.hpp"

namespace {

using lhws::obs::log_histogram;

// |estimate - oracle| must stay within the width of the oracle's bucket
// (quantile() returns the midpoint of the bucket holding the rank-th
// value, and the oracle value lives in that same bucket).
void expect_within_one_bucket(std::uint64_t est, std::uint64_t oracle) {
  const std::size_t b = log_histogram::bucket_index(oracle);
  const std::uint64_t w = log_histogram::bucket_width(b);
  const std::uint64_t lo = log_histogram::bucket_lower_bound(b);
  EXPECT_GE(est, lo) << "oracle=" << oracle;
  EXPECT_LT(est, lo + w) << "oracle=" << oracle;
}

TEST(HistogramMerge, SkewedPerWorkerMergeMatchesOracle) {
  // Three workers with deliberately skewed, non-overlapping latency
  // profiles: a fast path (~1us), a heavy tail (~1ms), and a uniform
  // mid-range. The merged histogram must agree with a sorted-vector oracle
  // over the pooled samples at every probed quantile.
  std::mt19937_64 rng(12345);
  log_histogram workers[3];
  std::vector<std::uint64_t> oracle;

  auto record = [&](std::size_t w, std::uint64_t v) {
    workers[w].record(v);
    oracle.push_back(v);
  };
  for (int i = 0; i < 20000; ++i) record(0, 800 + rng() % 400);  // ~1us
  for (int i = 0; i < 500; ++i) {
    record(1, 900'000 + rng() % 200'000);  // ~1ms tail
  }
  for (int i = 0; i < 5000; ++i) record(2, rng() % 100'000);  // mid

  log_histogram merged;
  for (const auto& w : workers) merged.merge(w);
  ASSERT_EQ(merged.count(), oracle.size());

  std::sort(oracle.begin(), oracle.end());
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    auto rank = static_cast<std::size_t>(
        q * static_cast<double>(oracle.size()));
    if (rank >= oracle.size()) rank = oracle.size() - 1;
    expect_within_one_bucket(merged.quantile(q), oracle[rank]);
  }
}

TEST(HistogramMerge, MergeOrderDoesNotMatter) {
  std::mt19937_64 rng(7);
  log_histogram a, b, ab, ba;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v1 = rng() % 1000;
    const std::uint64_t v2 = 1'000'000 + rng() % 1000;
    a.record(v1);
    b.record(v2);
  }
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  ASSERT_EQ(ab.count(), ba.count());
  for (std::size_t i = 0; i < log_histogram::kNumBuckets; ++i) {
    ASSERT_EQ(ab.bucket_count(i), ba.bucket_count(i)) << "bucket " << i;
  }
  for (const double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(ab.quantile(q), ba.quantile(q));
  }
}

TEST(RunStatsAbsorb, SumsAndPeaksAcrossWorkers) {
  lhws::rt::run_stats rs;
  for (std::uint64_t w = 0; w < 4; ++w) {
    lhws::rt::worker_stats ws{};
    ws.segments_executed = 100 * (w + 1);
    ws.steal_attempts = 10 * (w + 1);
    ws.successful_steals = w;
    ws.suspensions = 5 + w;
    ws.resumes_delivered = 5 + w;
    ws.deque_switches = 2 * w;
    ws.max_deques_owned = w == 2 ? 7 : 2;  // peak on worker 2
    rs.absorb(ws);
  }
  EXPECT_EQ(rs.segments_executed, 100U + 200U + 300U + 400U);
  EXPECT_EQ(rs.steal_attempts, 10U + 20U + 30U + 40U);
  EXPECT_EQ(rs.successful_steals, 0U + 1U + 2U + 3U);
  EXPECT_EQ(rs.suspensions, 5U + 6U + 7U + 8U);
  EXPECT_EQ(rs.resumes_delivered, 5U + 6U + 7U + 8U);
  EXPECT_EQ(rs.deque_switches, 0U + 2U + 4U + 6U);
  // absorb takes the max, not the sum, for the Lemma 7 bound.
  EXPECT_EQ(rs.max_deques_per_worker, 7U);
  // Attribution preserved for the trace metadata.
  ASSERT_EQ(rs.per_worker.size(), 4U);
  EXPECT_EQ(rs.per_worker[2].max_deques_owned, 7U);
  // Span counters are run-level (filled after the join), not absorbed.
  EXPECT_EQ(rs.span_records, 0U);
  EXPECT_EQ(rs.request_records, 0U);
}

}  // namespace
