// Integration matrix: realistic composite workloads executed under every
// engine x steal-policy x timer-mode x worker-count combination must
// produce identical results. This is the top-level contract of the
// library: scheduling choices never change program meaning.
#include <gtest/gtest.h>

#include <chrono>

#include "core/algorithms.hpp"
#include "core/channel.hpp"
#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

// --- Workload 1: the paper's dist-map-reduce with nested parallel fib ---

task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

task<long> mr_leaf(std::size_t i) {
  const auto x = co_await latency(2ms, 10 + i % 3);
  co_return co_await fib(static_cast<unsigned>(x));
}

task<long> workload_map_reduce() {
  return map_reduce<long>(0, 24, 0L, mr_leaf,
                          [](long a, long b) { return a + b; });
}

// --- Workload 2: the Fig. 10 server over a channel of requests ----------

task<long> serve(channel<unsigned>& requests) {
  const std::optional<unsigned> input = co_await requests.receive();
  if (!input.has_value()) co_return 0;
  auto [res1, res2] = co_await fork2(fib(*input), serve(requests));
  co_return res1 + res2;
}

task<long> workload_server(channel<unsigned>& requests) {
  // The feeder must be the LEFT child (it runs before the spawned server):
  // on the blocking engine with one worker, a left-child server would block
  // on its first receive with the feeder stranded on the deque — the
  // blocking-baseline deadlock mode documented in the README.
  auto [fed, served] = co_await fork2(
      [](channel<unsigned>& ch) -> task<long> {
        for (unsigned i = 0; i < 12; ++i) {
          co_await delay(500us);  // the user's typing gap
          ch.send(8 + i % 4);
        }
        ch.close();
        co_return 1;
      }(requests),
      serve(requests));
  (void)fed;
  co_return served;
}

struct Config {
  engine eng;
  unsigned workers;
  rt::runtime_steal_policy policy;
  rt::timer_mode timer;
};

std::vector<Config> matrix() {
  std::vector<Config> out;
  for (const engine e : {engine::latency_hiding, engine::blocking}) {
    for (const unsigned w : {1u, 2u, 4u}) {
      for (const auto p : {rt::runtime_steal_policy::random_worker,
                           rt::runtime_steal_policy::random_deque}) {
        out.push_back({e, w, p, rt::timer_mode::dedicated_thread});
      }
    }
  }
  // Polled timers only make sense for the latency-hiding engine.
  out.push_back({engine::latency_hiding, 2,
                 rt::runtime_steal_policy::random_worker,
                 rt::timer_mode::polled});
  out.push_back({engine::latency_hiding, 4,
                 rt::runtime_steal_policy::random_deque,
                 rt::timer_mode::polled});
  return out;
}

scheduler make_scheduler(const Config& c) {
  scheduler_options o;
  o.workers = c.workers;
  o.engine_kind = c.eng;
  o.steal = c.policy;
  o.timer = c.timer;
  o.seed = 2718;
  return scheduler(o);
}

class CrossConfig : public ::testing::TestWithParam<Config> {};

TEST_P(CrossConfig, MapReduceResultInvariant) {
  scheduler reference(scheduler_options{.workers = 1});
  const long expect = reference.run(workload_map_reduce());
  scheduler sched = make_scheduler(GetParam());
  EXPECT_EQ(sched.run(workload_map_reduce()), expect);
}

TEST_P(CrossConfig, ServerResultInvariant) {
  long expect = 0;
  {
    scheduler reference(scheduler_options{.workers = 1});
    channel<unsigned> requests;
    expect = reference.run(workload_server(requests));
  }
  scheduler sched = make_scheduler(GetParam());
  channel<unsigned> requests;
  EXPECT_EQ(sched.run(workload_server(requests)), expect);
}

INSTANTIATE_TEST_SUITE_P(Matrix, CrossConfig, ::testing::ValuesIn(matrix()));

TEST(CrossConfig, LatencyHidingWinsOnTheMatrixWorkload) {
  // End-to-end sanity of the headline effect with identical source.
  scheduler_options o;
  o.workers = 2;
  o.engine_kind = engine::blocking;
  scheduler ws(o);
  (void)ws.run(workload_map_reduce());
  o.engine_kind = engine::latency_hiding;
  scheduler lh(o);
  (void)lh.run(workload_map_reduce());
  EXPECT_LT(lh.stats().elapsed_ms, ws.stats().elapsed_ms);
}

}  // namespace
}  // namespace lhws
