// Stress for the suspend/cancel race in event<T>: set() from an external
// thread racing the awaiter's begin_suspension -> CAS(empty ->
// waiter_installed) window (Fig. 3's handleChild). Three outcomes are
// legal and all must be exercised over enough repetitions:
//   - await_ready already sees value_ready (no suspension machinery),
//   - the CAS fails because set() won: cancel_suspension must retract the
//     suspension counter and resume inline,
//   - the CAS wins: set() must deliver the resume through the deque.
// The producer is released by a flag the consumer raises immediately
// before co_await, so set() lands inside (or a few instructions around)
// the race window instead of long before/after it. Lost continuations
// show up as a hang; miscounted suspensions as a stats/assertion failure
// (cancel_suspension underflow trips LHWS_ASSERT in debug builds).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "core/scheduler.hpp"
#include "core/sync.hpp"

namespace lhws {
namespace {

constexpr int events_per_run = 8;

task<int> consume(std::array<event<int>, events_per_run>& evs,
                  std::array<std::atomic<bool>, events_per_run>& go) {
  int sum = 0;
  for (int i = 0; i < events_per_run; ++i) {
    go[static_cast<std::size_t>(i)].store(true, std::memory_order_release);
    sum += co_await evs[static_cast<std::size_t>(i)];
  }
  co_return sum;
}

void run_race_iterations(unsigned workers, rt::timer_mode timer, int iters) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = engine::latency_hiding;
  o.timer = timer;
  scheduler sched(o);
  int expected = 0;
  for (int i = 0; i < events_per_run; ++i) expected += 7 * i + 1;
  std::uint64_t suspended_total = 0;
  for (int iter = 0; iter < iters; ++iter) {
    std::array<event<int>, events_per_run> evs;
    std::array<std::atomic<bool>, events_per_run> go{};
    std::thread producer([&] {
      for (int i = 0; i < events_per_run; ++i) {
        while (!go[static_cast<std::size_t>(i)].load(
            std::memory_order_acquire)) {
        }
        evs[static_cast<std::size_t>(i)].set(7 * i + 1);
      }
    });
    EXPECT_EQ(sched.run(consume(evs, go)), expected);
    producer.join();
    suspended_total += sched.stats().suspensions;
  }
  // Sanity on the race distribution: with the producer gated on the flag,
  // some awaits must have genuinely suspended and some must have hit the
  // fast/cancel path. Only assert the direction that is deterministic:
  // a suspension can never be recorded for more events than were awaited.
  EXPECT_LE(suspended_total,
            static_cast<std::uint64_t>(iters) * events_per_run);
}

TEST(SuspendCancelRace, SingleWorkerDedicatedTimer) {
  run_race_iterations(1, rt::timer_mode::dedicated_thread, 75);
}

TEST(SuspendCancelRace, MultiWorkerDedicatedTimer) {
  run_race_iterations(4, rt::timer_mode::dedicated_thread, 75);
}

TEST(SuspendCancelRace, MultiWorkerPolledTimer) {
  run_race_iterations(2, rt::timer_mode::polled, 75);
}

// Deterministic cancel-path coverage: the event is set before the await
// even starts, so await_ready is usually true; and a second variant where
// set() happens concurrently with near-zero skew by omitting the gate.
task<int> consume_presets(std::array<event<int>, events_per_run>& evs) {
  int sum = 0;
  for (auto& ev : evs) sum += co_await ev;
  co_return sum;
}

TEST(SuspendCancelRace, UngatedProducerBarrage) {
  scheduler_options o;
  o.workers = 2;
  o.engine_kind = engine::latency_hiding;
  scheduler sched(o);
  int expected = 0;
  for (int i = 0; i < events_per_run; ++i) expected += 7 * i + 1;
  for (int iter = 0; iter < 75; ++iter) {
    std::array<event<int>, events_per_run> evs;
    std::thread producer([&] {
      for (int i = 0; i < events_per_run; ++i) {
        evs[static_cast<std::size_t>(i)].set(7 * i + 1);
      }
    });
    EXPECT_EQ(sched.run(consume_presets(evs)), expected);
    producer.join();
  }
}

}  // namespace
}  // namespace lhws
