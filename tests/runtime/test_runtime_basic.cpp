// Functional tests of the coroutine runtime: task composition, fork2
// joins, combinators, and exception propagation — on both engines and
// several worker counts. Correctness here means the runtime computes the
// same values a serial execution would.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/algorithms.hpp"
#include "core/fork_join.hpp"
#include "core/scheduler.hpp"
#include "core/task.hpp"

namespace lhws {
namespace {

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  o.seed = 12345;
  return o;
}

task<int> just(int v) { co_return v; }

task<int> add_serial(int a, int b) {
  const int x = co_await just(a);
  const int y = co_await just(b);
  co_return x + y;
}

task<int> fib(unsigned n) {
  if (n < 2) co_return static_cast<int>(n);
  auto [a, b] = co_await fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

int fib_serial(unsigned n) {
  return n < 2 ? static_cast<int>(n)
               : fib_serial(n - 1) + fib_serial(n - 2);
}

struct EngineParam {
  engine e;
  unsigned workers;
};

class BothEngines : public ::testing::TestWithParam<EngineParam> {};

TEST_P(BothEngines, TrivialTask) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  EXPECT_EQ(sched.run(just(42)), 42);
}

TEST_P(BothEngines, SerialAwaitChains) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  EXPECT_EQ(sched.run(add_serial(20, 22)), 42);
}

TEST_P(BothEngines, Fork2ReturnsBothResults) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  auto root = []() -> task<int> {
    auto [a, b] = co_await fork2(just(5), just(7));
    co_return a * b;
  };
  EXPECT_EQ(sched.run(root()), 35);
}

TEST_P(BothEngines, NestedForkJoinFib) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  EXPECT_EQ(sched.run(fib(15)), fib_serial(15));
}

TEST_P(BothEngines, MapReduceSumsRange) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  auto mapper = [](std::size_t i) -> task<long> {
    co_return static_cast<long>(i);
  };
  const long total = sched.run(map_reduce<long>(
      0, 1000, 0L, mapper, [](long a, long b) { return a + b; }));
  EXPECT_EQ(total, 999L * 1000 / 2);
}

TEST_P(BothEngines, ParallelForTouchesEveryIndex) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  constexpr std::size_t n = 4096;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  sched.run(parallel_for(0, n, 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(BothEngines, ExceptionsPropagateThroughJoins) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  auto thrower = []() -> task<int> {
    throw std::runtime_error("leaf failure");
    co_return 0;
  };
  auto root = [&]() -> task<int> {
    auto [a, b] = co_await fork2(thrower(), just(1));
    co_return a + b;
  };
  EXPECT_THROW(sched.run(root()), std::runtime_error);
}

TEST_P(BothEngines, DeepSerialRecursion) {
  scheduler sched(opts(GetParam().workers, GetParam().e));
  auto countdown = [](auto&& self, int n) -> task<int> {
    if (n == 0) co_return 0;
    co_return 1 + co_await self(self, n - 1);
  };
  EXPECT_EQ(sched.run(countdown(countdown, 2000)), 2000);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, BothEngines,
    ::testing::Values(EngineParam{engine::latency_hiding, 1},
                      EngineParam{engine::latency_hiding, 2},
                      EngineParam{engine::latency_hiding, 4},
                      EngineParam{engine::blocking, 1},
                      EngineParam{engine::blocking, 2},
                      EngineParam{engine::blocking, 4}));

TEST(RuntimeBasic, StatsCountSegments) {
  scheduler sched(opts(2));
  sched.run(fib(10));
  const auto& s = sched.stats();
  EXPECT_GT(s.segments_executed, 0u);
  EXPECT_EQ(s.suspensions, 0u) << "compute-only program never suspends";
  EXPECT_EQ(s.batches_injected, 0u);
}

TEST(RuntimeBasic, ComputeOnlyUsesOneDequePerWorker) {
  // The U = 0 degeneration: LHWS behaves like standard work stealing.
  scheduler sched(opts(4));
  sched.run(fib(16));
  EXPECT_EQ(sched.stats().max_deques_per_worker, 1u);
  EXPECT_LE(sched.stats().total_deques_allocated, 2u * 4u)
      << "at most one live + one recycled slot per worker";
  EXPECT_GE(sched.stats().total_deques_allocated, 4u);
}

TEST(RuntimeBasic, RandomDequeStealPolicyWorks) {
  scheduler_options o = opts(4);
  o.steal = rt::runtime_steal_policy::random_deque;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fib(15)), fib_serial(15));
}

TEST(RuntimeBasic, SchedulerIsReusableAcrossRuns) {
  scheduler sched(opts(2));
  EXPECT_EQ(sched.run(just(1)), 1);
  EXPECT_EQ(sched.run(just(2)), 2);
  EXPECT_EQ(sched.run(fib(10)), fib_serial(10));
}

TEST(RuntimeBasic, ManyWorkersOnTinyTask) {
  // More workers than work: thieves must fail gracefully and terminate.
  scheduler sched(opts(8));
  EXPECT_EQ(sched.run(just(9)), 9);
}

}  // namespace
}  // namespace lhws
