// The epoch-published deque registry under real concurrency: an owner
// churning add/remove/grow while reader threads probe the lock-free fast
// path and take seqlock snapshots. Run under TSan this doubles as the race
// check on real hardware; the interleaving-level proof is in
// tests/chk/test_deque_registry_chk.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "runtime/deque_registry.hpp"
#include "support/rng.hpp"

namespace lhws::rt {
namespace {

using namespace std::chrono_literals;

struct node {
  std::uint64_t magic = 0xfeedfacecafebeefULL;
};

TEST(DequeRegistry, OwnerChurnWithConcurrentReaders) {
  constexpr std::size_t kNodes = 16;
  constexpr int kCycles = 2000;

  // All nodes outlive the test — the registry's safety story assumes
  // pool-recycled deques that are never deallocated mid-run.
  std::vector<std::unique_ptr<node>> storage;
  std::set<const node*> known;
  for (std::size_t i = 0; i < kNodes; ++i) {
    storage.push_back(std::make_unique<node>());
    known.insert(storage.back().get());
  }

  basic_deque_registry<node> reg{2};  // small: every run exercises grow
  std::atomic<bool> done{false};

  auto reader = [&](std::uint64_t seed) {
    xoshiro256 rng(seed);
    std::uint64_t probes = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (node* q = reg.random_slot(rng)) {
        EXPECT_EQ(q->magic, 0xfeedfacecafebeefULL);
        EXPECT_TRUE(known.count(q) == 1) << "pointer from outside the pool";
        ++probes;
      }
      node* snap[kNodes + 4] = {};
      bool consistent = false;
      const std::uint32_t n =
          reg.snapshot(snap, kNodes + 4, consistent);
      EXPECT_LE(n, kNodes);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (snap[i] == nullptr) {
          // Holes can only come from the unvalidated fallback's source view;
          // the fallback itself compacts, so a validated copy has none.
          EXPECT_FALSE(consistent);
          continue;
        }
        EXPECT_EQ(snap[i]->magic, 0xfeedfacecafebeefULL);
      }
    }
    return probes;
  };

  std::atomic<std::uint64_t> total_probes{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      total_probes.fetch_add(reader(41 + static_cast<std::uint64_t>(r)));
    });
  }

  // Owner: ramp the registry up and down, repeatedly crossing the grow
  // threshold and exercising swap-with-last removal at every size.
  xoshiro256 owner_rng(7);
  std::size_t adds = 0;
  std::size_t removes = 0;
  std::vector<node*> free_nodes;
  for (auto& up : storage) free_nodes.push_back(up.get());
  std::vector<node*> in_reg;
  for (int c = 0; c < kCycles; ++c) {
    if (!free_nodes.empty() &&
        (in_reg.empty() || owner_rng.below(3) != 0)) {
      node* q = free_nodes.back();
      free_nodes.pop_back();
      reg.add(q);
      in_reg.push_back(q);
      ++adds;
    } else {
      const std::size_t i = owner_rng.below(in_reg.size());
      reg.remove(in_reg[i]);
      free_nodes.push_back(in_reg[i]);
      in_reg[i] = in_reg.back();
      in_reg.pop_back();
      ++removes;
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(reg.size(), in_reg.size());
  EXPECT_EQ(reg.republish_count(),
            static_cast<std::uint64_t>(adds + removes));

  // Quiescent: the validated snapshot must succeed and match exactly.
  node* snap[kNodes + 4] = {};
  bool consistent = false;
  const std::uint32_t n = reg.snapshot(snap, kNodes + 4, consistent);
  EXPECT_TRUE(consistent);
  EXPECT_EQ(n, in_reg.size());
  std::set<node*> got(snap, snap + n);
  std::set<node*> want(in_reg.begin(), in_reg.end());
  EXPECT_EQ(got, want);
}

TEST(DequeRegistry, SchedulerChurnKeepsLemma7AndCountsRepublishes) {
  // A serial latency chain forces constant deque retire/re-register churn
  // (every suspension parks the current deque, every resume re-injects).
  // Lemma 7's bound must survive the lock-free registry: U = 1 here, so no
  // worker may ever own more than 2 deques.
  scheduler_options o;
  o.workers = 3;
  o.seed = 17;
  scheduler sched(o);
  auto root = []() -> task<int> {
    int total = 0;
    for (int i = 0; i < 40; ++i) {
      total += co_await latency(1ms, 1);
    }
    co_return total;
  };
  EXPECT_EQ(sched.run(root()), 40);
  EXPECT_LE(sched.stats().max_deques_per_worker, 2u);
  EXPECT_GT(sched.stats().registry_republishes, 0u)
      << "deque churn must flow through the epoch registry";
}

}  // namespace
}  // namespace lhws::rt
