// Unit tests for runtime substrates used by the scheduler: the global
// deque pool (Fig. 5), the event hub (both timer modes), work items, and
// the runtime deque's suspension bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/deque_pool.hpp"
#include "runtime/event_hub.hpp"
#include "runtime/runtime_deque.hpp"
#include "runtime/work_item.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

namespace lhws::rt {
namespace {

TEST(DequePool, AllocatesSequentialSlots) {
  deque_pool pool(16);
  EXPECT_EQ(pool.total_allocated(), 0u);
  runtime_deque* a = pool.allocate(0);
  runtime_deque* b = pool.allocate(1);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.total_allocated(), 2u);
  EXPECT_EQ(a->owner(), 0u);
  EXPECT_EQ(b->owner(), 1u);
}

TEST(DequePool, RandomDequeCoversAllocatedSlots) {
  deque_pool pool(16);
  runtime_deque* deques[4];
  for (auto& d : deques) d = pool.allocate(0);
  xoshiro256 rng(3);
  bool seen[4] = {};
  for (int i = 0; i < 400; ++i) {
    runtime_deque* q = pool.random_deque(rng);
    ASSERT_NE(q, nullptr);
    bool known = false;
    for (int k = 0; k < 4; ++k) {
      if (q == deques[k]) {
        seen[k] = true;
        known = true;
      }
    }
    EXPECT_TRUE(known);
  }
  for (const bool s : seen) EXPECT_TRUE(s) << "every deque reachable";
}

TEST(DequePool, RandomDequeOnEmptyPoolIsNull) {
  deque_pool pool(4);
  xoshiro256 rng(1);
  EXPECT_EQ(pool.random_deque(rng), nullptr);
}

TEST(EventHub, DedicatedThreadFiresInOrder) {
  event_hub hub(timer_mode::dedicated_thread);
  std::atomic<int> fired{0};
  std::atomic<int> first{-1};
  struct ctx {
    std::atomic<int>* fired;
    std::atomic<int>* first;
    int id;
  };
  ctx a{&fired, &first, 1}, b{&fired, &first, 2};
  const auto base = now_ns();
  auto fire = [](void* p) {
    auto* c = static_cast<ctx*>(p);
    int expected = -1;
    c->first->compare_exchange_strong(expected, c->id);
    c->fired->fetch_add(1);
  };
  // Schedule out of order; the earlier deadline must fire first.
  hub.schedule(base + 20'000'000, fire, &b);
  hub.schedule(base + 5'000'000, fire, &a);
  const stopwatch timer;
  while (fired.load() < 2 && timer.elapsed_ms() < 2000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(first.load(), 1);
}

TEST(EventHub, PolledModeFiresOnlyOnPoll) {
  event_hub hub(timer_mode::polled);
  std::atomic<int> fired{0};
  hub.schedule(now_ns() - 1, [](void* p) {
    static_cast<std::atomic<int>*>(p)->fetch_add(1);
  }, &fired);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(fired.load(), 0) << "nothing fires without a poll";
  EXPECT_EQ(hub.poll(), 1u);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(hub.poll(), 0u) << "entries fire once";
}

TEST(EventHub, PollRespectsDeadlines) {
  event_hub hub(timer_mode::polled);
  std::atomic<int> fired{0};
  hub.schedule(now_ns() + 50'000'000, [](void* p) {
    static_cast<std::atomic<int>*>(p)->fetch_add(1);
  }, &fired);
  EXPECT_EQ(hub.poll(), 0u) << "not due yet";
  EXPECT_EQ(fired.load(), 0);
}

TEST(WorkItem, RoundTripsCoroutineAndBatch) {
  // Coroutine handles and batch pointers share one tagged word.
  auto* batch = new batch_node{};
  const work_item wb = work_item::from_batch(batch);
  EXPECT_TRUE(wb.is_batch());
  EXPECT_EQ(wb.batch(), batch);
  EXPECT_FALSE(wb.empty());
  delete batch;

  const work_item we{};
  EXPECT_TRUE(we.empty());
}

TEST(RuntimeDeque, SuspensionCounterLifecycle) {
  runtime_deque q(0);
  EXPECT_FALSE(q.has_pending_suspensions());
  q.add_suspension();
  q.add_suspension();
  EXPECT_TRUE(q.has_pending_suspensions());
  q.cancel_suspension();
  resume_node node;
  EXPECT_TRUE(q.deliver_resume(&node)) << "first resume reports empty->nonempty";
  EXPECT_FALSE(q.has_pending_suspensions());
  EXPECT_TRUE(q.has_undrained_resumes());
  resume_node* chain = q.drain_resumed();
  ASSERT_EQ(chain, &node);
  EXPECT_EQ(chain->next, nullptr);
  EXPECT_FALSE(q.has_undrained_resumes());
}

TEST(RuntimeDeque, SecondResumeDoesNotReportEmpty) {
  runtime_deque q(0);
  q.add_suspension();
  q.add_suspension();
  resume_node a, b;
  EXPECT_TRUE(q.deliver_resume(&a));
  EXPECT_FALSE(q.deliver_resume(&b))
      << "the paper's size==1 test must fire exactly once per drain";
  resume_node* chain = q.drain_resumed();
  ASSERT_EQ(chain, &b);  // LIFO
  EXPECT_EQ(chain->next, &a);
}

TEST(RuntimeDeque, WorkItemsFlowThroughBothEnds) {
  runtime_deque q(0);
  auto* b1 = new batch_node{};
  auto* b2 = new batch_node{};
  q.push_bottom(work_item::from_batch(b1));
  q.push_bottom(work_item::from_batch(b2));
  work_item out;
  ASSERT_TRUE(q.pop_top(out));
  EXPECT_EQ(out.batch(), b1);
  ASSERT_TRUE(q.pop_bottom(out));
  EXPECT_EQ(out.batch(), b2);
  EXPECT_TRUE(q.empty());
  delete b1;
  delete b2;
}

}  // namespace
}  // namespace lhws::rt
