// Latency-hiding behaviour of the real runtime: the LHWS engine must
// overlap latency with work (and with other latency), the WS engine must
// pay it. Timing assertions use generous margins — this host has one core
// and tests run under load — but the contrasts checked are multiples, not
// percentages.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/algorithms.hpp"
#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "core/sync.hpp"
#include "support/timing.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  o.seed = 99;
  return o;
}

task<int> fetch_leaf(std::chrono::milliseconds delay, int value) {
  const int got = co_await latency(delay, value);
  co_return got * 2;
}

// n parallel fetches of `delay` each, summed.
task<int> fan_out(std::size_t n, std::chrono::milliseconds delay) {
  return map_reduce<int>(
      0, n, 0,
      [delay](std::size_t i) {
        return fetch_leaf(delay, static_cast<int>(i));
      },
      [](int a, int b) { return a + b; });
}

int expected_fan_out(std::size_t n) {
  int total = 0;
  for (std::size_t i = 0; i < n; ++i) total += 2 * static_cast<int>(i);
  return total;
}

TEST(RuntimeLatency, SingleLatencyOpReturnsValue) {
  scheduler sched(opts(1));
  auto root = []() -> task<int> { co_return co_await latency(5ms, 123); };
  EXPECT_EQ(sched.run(root()), 123);
  EXPECT_EQ(sched.stats().suspensions, 1u);
}

TEST(RuntimeLatency, BlockingEngineAlsoReturnsValue) {
  scheduler sched(opts(1, engine::blocking));
  auto root = []() -> task<int> { co_return co_await latency(5ms, 123); };
  EXPECT_EQ(sched.run(root()), 123);
  EXPECT_EQ(sched.stats().suspensions, 0u);
  EXPECT_EQ(sched.stats().blocked_waits, 1u);
}

TEST(RuntimeLatency, LhwsOverlapsParallelLatencies) {
  // 32 fetches x 30ms on ONE worker: latency hiding runs them all
  // concurrently, so wall time is ~30ms, not ~960ms. Assert < a third of
  // the serial total.
  constexpr std::size_t n = 32;
  scheduler sched(opts(1));
  const stopwatch timer;
  EXPECT_EQ(sched.run(fan_out(n, 30ms)), expected_fan_out(n));
  const double ms = timer.elapsed_ms();
  EXPECT_LT(ms, static_cast<double>(n) * 30.0 / 3.0)
      << "latencies must overlap";
  EXPECT_GE(ms, 30.0 * 0.5) << "cannot beat the latency itself";
  EXPECT_EQ(sched.stats().suspensions, n);
}

TEST(RuntimeLatency, BlockingEngineSerializesLatencies) {
  // The same program on the blocking engine with ONE worker pays every
  // latency in sequence.
  constexpr std::size_t n = 8;
  scheduler sched(opts(1, engine::blocking));
  const stopwatch timer;
  EXPECT_EQ(sched.run(fan_out(n, 20ms)), expected_fan_out(n));
  EXPECT_GE(timer.elapsed_ms(), static_cast<double>(n) * 20.0 * 0.85);
}

TEST(RuntimeLatency, BlockingEngineHidesNothingButStealsHelp) {
  // With 4 blocking workers the 8 fetches split across workers: the run
  // should take roughly n/P latencies, clearly less than the 1-worker run.
  constexpr std::size_t n = 8;
  scheduler sched(opts(4, engine::blocking));
  const stopwatch timer;
  EXPECT_EQ(sched.run(fan_out(n, 20ms)), expected_fan_out(n));
  EXPECT_LT(timer.elapsed_ms(), static_cast<double>(n) * 20.0 * 0.85);
  EXPECT_GT(sched.stats().successful_steals, 0u);
}

TEST(RuntimeLatency, PolledTimerModeWorks) {
  // The paper's own delivery scheme: events polled at scheduler
  // invocations.
  scheduler_options o = opts(2);
  o.timer = rt::timer_mode::polled;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fan_out(16, 10ms)), expected_fan_out(16));
  EXPECT_EQ(sched.stats().suspensions, 16u);
}

TEST(RuntimeLatency, RandomDequePolicyWithLatency) {
  scheduler_options o = opts(3);
  o.steal = rt::runtime_steal_policy::random_deque;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fan_out(24, 10ms)), expected_fan_out(24));
}

TEST(RuntimeLatency, ExternalEventCompletion) {
  // An event satisfied by a non-worker thread (a "remote server").
  scheduler sched(opts(2));
  event<int> ev;
  std::thread producer([&] {
    std::this_thread::sleep_for(15ms);
    ev.set(77);
  });
  auto root = [&]() -> task<int> {
    // Do some work, then wait for the remote value.
    auto [a, b] = co_await fork2(
        []() -> task<int> { co_return 1; }(),
        [&]() -> task<int> { co_return co_await ev; }());
    co_return a + b;
  };
  EXPECT_EQ(sched.run(root()), 78);
  producer.join();
}

TEST(RuntimeLatency, EventAlreadySetDoesNotSuspend) {
  scheduler sched(opts(1));
  event<int> ev;
  ev.set(5);
  auto root = [&]() -> task<int> { co_return co_await ev; };
  EXPECT_EQ(sched.run(root()), 5);
  EXPECT_EQ(sched.stats().suspensions, 0u);
}

TEST(RuntimeLatency, Lemma7DequeBoundUEquals1) {
  // A serial chain of latency ops: U = 1, so no worker may hold more than
  // 2 allocated deques at once (Lemma 7).
  scheduler sched(opts(2));
  auto root = []() -> task<int> {
    int total = 0;
    for (int i = 0; i < 20; ++i) {
      total += co_await latency(1ms, 1);
    }
    co_return total;
  };
  EXPECT_EQ(sched.run(root()), 20);
  EXPECT_LE(sched.stats().max_deques_per_worker, 2u);
}

TEST(RuntimeLatency, SuspensionsProduceBatchesAndResumes) {
  constexpr std::size_t n = 64;
  scheduler sched(opts(2));
  EXPECT_EQ(sched.run(fan_out(n, 8ms)), expected_fan_out(n));
  const auto& s = sched.stats();
  EXPECT_EQ(s.suspensions, n);
  EXPECT_EQ(s.resumes_delivered, n);
  // Every resume is re-injected exactly once: multi-resume drains become
  // pfor batches, single-resume drains take the direct push fast path.
  EXPECT_GE(s.batches_injected + s.resumes_direct, 1u);
  EXPECT_LE(s.batches_injected + s.resumes_direct, n);
}

TEST(RuntimeLatency, MixedComputeAndLatency) {
  // Leaves alternate between pure compute and latency; results must match
  // the serial sum and the run must finish well under the serial latency
  // total.
  constexpr std::size_t n = 40;
  scheduler sched(opts(2));
  auto mapper = [](std::size_t i) -> task<int> {
    if (i % 2 == 0) {
      co_return static_cast<int>(i);
    }
    co_return co_await latency(5ms, static_cast<int>(i));
  };
  const stopwatch timer;
  const int total =
      sched.run(map_reduce<int>(0, n, 0, mapper,
                                [](int a, int b) { return a + b; }));
  EXPECT_EQ(total, static_cast<int>(n * (n - 1) / 2));
  EXPECT_LT(timer.elapsed_ms(), 20.0 * 5.0);
}

TEST(RuntimeLatency, ManySimultaneousSuspensions) {
  // SCALE-SUSP smoke: thousands of concurrently suspended continuations.
  constexpr std::size_t n = 4000;
  scheduler sched(opts(2));
  const stopwatch timer;
  auto mapper = [](std::size_t) -> task<int> {
    co_return co_await latency(25ms, 1);
  };
  const int total = sched.run(map_reduce<int>(
      0, n, 0, mapper, [](int a, int b) { return a + b; }));
  EXPECT_EQ(total, static_cast<int>(n));
  EXPECT_LT(timer.elapsed_ms(), 4000.0) << "must not serialize 100s of latency";
  EXPECT_EQ(sched.stats().suspensions, n);
}

}  // namespace
}  // namespace lhws
