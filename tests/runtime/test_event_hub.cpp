// event_hub scheduling, cancellation, and shutdown semantics — including
// the regression the header long documented but never tested: shutting
// down with pending not-yet-due entries must drop them without firing
// (and without crashing or hanging).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/event_hub.hpp"
#include "support/timing.hpp"

namespace lhws::rt {
namespace {

using namespace std::chrono_literals;

void set_flag(void* arg) {
  static_cast<std::atomic<bool>*>(arg)->store(true,
                                              std::memory_order_release);
}

bool wait_for_flag(const std::atomic<bool>& flag,
                   std::chrono::milliseconds budget) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!flag.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(200us);
  }
  return true;
}

TEST(EventHub, TokensAreUniqueAndNonZero) {
  event_hub hub(timer_mode::polled);
  std::atomic<bool> a{false};
  const auto far = now_ns() + 3'600'000'000'000LL;
  const event_hub::token t1 = hub.schedule(far, &set_flag, &a);
  const event_hub::token t2 = hub.schedule(far, &set_flag, &a);
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t2, 0u);
  EXPECT_NE(t1, t2);
  EXPECT_EQ(hub.pending(), 2u);
  EXPECT_TRUE(hub.cancel(t1));
  EXPECT_TRUE(hub.cancel(t2));
  EXPECT_EQ(hub.pending(), 0u);
}

TEST(EventHub, CancelPreventsFire) {
  event_hub hub(timer_mode::dedicated_thread);
  std::atomic<bool> cancelled_fired{false};
  std::atomic<bool> kept_fired{false};
  const event_hub::token doomed =
      hub.schedule(now_ns() + 20'000'000, &set_flag, &cancelled_fired);
  hub.schedule(now_ns() + 20'000'000, &set_flag, &kept_fired);
  EXPECT_TRUE(hub.cancel(doomed));
  EXPECT_FALSE(hub.cancel(doomed)) << "second cancel must be a no-op";
  ASSERT_TRUE(wait_for_flag(kept_fired, 2000ms));
  // The sibling with the same deadline fired; the cancelled one must not
  // have (they were collected by the same heap sweep).
  EXPECT_FALSE(cancelled_fired.load());
  EXPECT_EQ(hub.pending(), 0u);
}

TEST(EventHub, CancelAfterFireReturnsFalse) {
  event_hub hub(timer_mode::dedicated_thread);
  std::atomic<bool> fired{false};
  const event_hub::token t = hub.schedule(now_ns() + 1'000'000, &set_flag,
                                          &fired);
  ASSERT_TRUE(wait_for_flag(fired, 2000ms));
  EXPECT_FALSE(hub.cancel(t));
}

TEST(EventHub, PolledModeCancelSkipsDueEntry) {
  event_hub hub(timer_mode::polled);
  std::atomic<bool> fired{false};
  const event_hub::token t = hub.schedule(now_ns() - 1, &set_flag, &fired);
  EXPECT_TRUE(hub.cancel(t));
  EXPECT_EQ(hub.poll(), 0u) << "cancelled entry must not fire";
  EXPECT_FALSE(fired.load());
}

// The regression test: entries scheduled far in the future when shutdown()
// runs are dropped — their callbacks never run, shutdown doesn't block on
// them, and the destructor after an explicit shutdown stays idempotent.
TEST(EventHub, ShutdownWithPendingNotYetDueEntries) {
  std::atomic<bool> fired{false};
  {
    event_hub hub(timer_mode::dedicated_thread);
    const auto far = now_ns() + 3'600'000'000'000LL;  // one hour out
    hub.schedule(far, &set_flag, &fired);
    hub.schedule(far + 1, &set_flag, &fired);
    EXPECT_EQ(hub.pending(), 2u);
    const stopwatch timer;
    hub.shutdown();
    // Dropping must not wait out the deadlines.
    EXPECT_LT(timer.elapsed_ms(), 1000.0);
    EXPECT_EQ(hub.pending(), 0u);
    // Destructor runs a second shutdown — must be a no-op.
  }
  EXPECT_FALSE(fired.load()) << "not-yet-due entries must be dropped";
}

TEST(EventHub, ShutdownStillFiresAlreadyDueEntries) {
  event_hub hub(timer_mode::dedicated_thread);
  std::atomic<bool> fired{false};
  hub.schedule(now_ns() + 500'000, &set_flag, &fired);
  ASSERT_TRUE(wait_for_flag(fired, 2000ms));
  hub.shutdown();
  EXPECT_TRUE(fired.load());
}

}  // namespace
}  // namespace lhws::rt
