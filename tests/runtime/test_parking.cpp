// Adaptive idle parking at the scheduler level: idle workers must park
// (not spin) once they exhaust the spin/yield budget, resume deliveries
// must wake them, and the two configurations that forbid parking (zero
// timeout, polled timers) must never park. Timing assertions are avoided —
// this runs under TSan on a loaded single-core host — the checks are on
// counters and results.
#include <gtest/gtest.h>

#include <chrono>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options parky_opts(unsigned workers) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = engine::latency_hiding;
  o.seed = 31;
  o.metrics = true;
  // Tiny spin/yield budgets so idle workers reach the park state quickly.
  o.idle_spin_limit = 2;
  o.idle_yield_limit = 4;
  o.idle_park_timeout_us = 2000;
  return o;
}

task<int> serial_chain(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    total += co_await latency(2ms, 1);
  }
  co_return total;
}

task<int> fan_out(std::size_t n, std::chrono::milliseconds delay) {
  return map_reduce<int>(
      0, n, 0,
      [delay](std::size_t i) -> task<int> {
        co_return co_await latency(delay, static_cast<int>(i));
      },
      [](int a, int b) { return a + b; });
}

TEST(RuntimeParking, IdleWorkersParkDuringSerialChain) {
  // A serial latency chain keeps at most one worker busy; the other three
  // must park rather than burn the core for the whole run.
  scheduler sched(parky_opts(4));
  EXPECT_EQ(sched.run(serial_chain(30)), 30);
  const auto& s = sched.stats();
  EXPECT_GT(s.parks, 0u) << "idle workers never reached the park state";
}

TEST(RuntimeParking, ParkedWorkersWakeForResumesAndFinish) {
  // Wide fan-out with parking enabled: every latency completion must get
  // through to a (possibly parked) owner. Correct result + all suspensions
  // resumed proves no wake was lost; the 2ms park timeout would otherwise
  // turn a lost wake into a visible hang, not a silent pass.
  constexpr std::size_t n = 48;
  int want = 0;
  for (std::size_t i = 0; i < n; ++i) want += static_cast<int>(i);
  // On a heavily loaded host the idle yield rounds can outlast the whole
  // latency window, in which case no worker ever reaches the park state.
  // The correctness checks hold on every attempt; only the parks > 0
  // liveness check retries with a wider window instead of flaking.
  std::uint64_t parks = 0;
  for (int attempt = 0; attempt < 3 && parks == 0; ++attempt) {
    scheduler sched(parky_opts(4));
    EXPECT_EQ(sched.run(fan_out(n, 40ms)), want);
    const auto& s = sched.stats();
    EXPECT_EQ(s.suspensions, n);
    EXPECT_EQ(s.resumes_delivered, n);
    // Parks end either by a delivered wake or by the bounded timeout; the
    // accounting must agree.
    EXPECT_LE(s.park_timeouts, s.parks);
    parks = s.parks;
  }
  EXPECT_GT(parks, 0u);
}

TEST(RuntimeParking, WakeLatencyStaysMeasuredUnderParking) {
  scheduler sched(parky_opts(2));
  EXPECT_EQ(sched.run(serial_chain(20)), 20);
  // The wake-latency histogram must keep recording when wakes land on
  // parked workers (one sample per resume delivery).
  EXPECT_GE(sched.histograms().wake_latency.count(), 20u);
}

TEST(RuntimeParking, ZeroTimeoutDisablesParking) {
  scheduler_options o = parky_opts(4);
  o.idle_park_timeout_us = 0;
  scheduler sched(o);
  EXPECT_EQ(sched.run(serial_chain(10)), 10);
  EXPECT_EQ(sched.stats().parks, 0u);
  EXPECT_EQ(sched.stats().unparks, 0u);
}

TEST(RuntimeParking, PolledTimerModeNeverParks) {
  // Polled delivery requires workers to keep invoking the scheduler; a
  // parked worker would never poll, so parking must auto-disable.
  scheduler_options o = parky_opts(2);
  o.timer = rt::timer_mode::polled;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fan_out(16, 5ms)), 120);
  EXPECT_EQ(sched.stats().parks, 0u);
}

TEST(RuntimeParking, BlockingEngineAlsoParksWhenIdle)  {
  // The WS engine shares the idle loop: its thieves must park too.
  scheduler_options o = parky_opts(4);
  o.engine_kind = engine::blocking;
  scheduler sched(o);
  EXPECT_EQ(sched.run(serial_chain(20)), 20);
  EXPECT_GT(sched.stats().parks, 0u);
}

}  // namespace
}  // namespace lhws
