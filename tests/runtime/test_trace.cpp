// Chrome-trace export: event capture, JSON shape, and zero-cost-when-off.
#include <gtest/gtest.h>

#include <chrono>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "runtime/trace.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

task<int> fetchy(std::size_t) { co_return co_await latency(2ms, 1); }

task<int> fanout(std::size_t n) {
  return map_reduce<int>(0, n, 0, fetchy, [](int a, int b) { return a + b; });
}

TEST(Trace, DisabledByDefault) {
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(8)), 8);
  EXPECT_TRUE(sched.trace_json().empty());
}

TEST(Trace, CapturesSegmentsAndSuspensions) {
  scheduler_options o;
  o.workers = 2;
  o.trace = true;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(16)), 16);
  const std::string& json = sched.trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"segment\""), std::string::npos);
  EXPECT_NE(json.find("\"suspend\""), std::string::npos);
  EXPECT_NE(json.find("\"resume\""), std::string::npos);
  // Duration events carry a dur field; instants carry ph:i.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, BlockingEngineRecordsBlockedSpans) {
  scheduler_options o;
  o.workers = 2;
  o.engine_kind = engine::blocking;
  o.trace = true;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(4)), 4);
  EXPECT_NE(sched.trace_json().find("\"blocked\""), std::string::npos);
}

TEST(Trace, FreshPerRun) {
  scheduler_options o;
  o.workers = 1;
  o.trace = true;
  scheduler sched(o);
  (void)sched.run(fanout(4));
  const auto first_size = sched.trace_json().size();
  (void)sched.run(fanout(4));
  // Same workload, same shape: the second trace must not accumulate the
  // first run's events (sizes within 2x of each other).
  EXPECT_LT(sched.trace_json().size(), first_size * 2);
  EXPECT_GT(sched.trace_json().size(), first_size / 2);
}

TEST(TraceBuffer, RecordRespectsEnableFlag) {
  rt::trace_buffer buf;
  buf.record(rt::trace_kind::segment, 0, 10);
  EXPECT_TRUE(buf.events().empty()) << "disabled buffer must drop events";
  buf.enable();
  buf.record(rt::trace_kind::segment, 0, 10);
  ASSERT_EQ(buf.events().size(), 1u);
  EXPECT_EQ(buf.events()[0].end_ns, 10);
}

TEST(TraceBuffer, ChromeJsonWellFormedForEmptyTrace) {
  rt::trace_buffer buf;
  const auto json = rt::to_chrome_trace({&buf}, 0);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

}  // namespace
}  // namespace lhws
