// Randomized stress: seeded random computation trees mixing forks, serial
// awaits, latency suspensions, and compute — executed on every engine /
// policy / timer-mode combination and compared against a serial oracle
// evaluating the same recursion. Any lost continuation, duplicated
// execution, or result race shows up as a value mismatch or a hang.
#include <gtest/gtest.h>

#include <chrono>
#include <tuple>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "support/rng.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

// Deterministic node kind derived from (seed, path): both the coroutine
// evaluator and the serial oracle follow the identical recursion.
enum class node_kind : std::uint8_t { leaf, fork, serial, latency_leaf };

node_kind kind_of(std::uint64_t seed, std::uint64_t path, unsigned depth) {
  if (depth == 0) {
    return (splitmix64(seed ^ path).next() & 1) != 0 ? node_kind::leaf
                                                     : node_kind::latency_leaf;
  }
  const std::uint64_t r = splitmix64(seed * 31 + path).next();
  switch (r % 4) {
    case 0:
      return (r & 16) != 0 ? node_kind::leaf : node_kind::latency_leaf;
    case 1:
    case 2:
      return node_kind::fork;
    default:
      return node_kind::serial;
  }
}

std::uint64_t leaf_value(std::uint64_t seed, std::uint64_t path) {
  return splitmix64(seed ^ (path * 0x9e3779b97f4a7c15ULL)).next() % 1000;
}

std::uint64_t oracle(std::uint64_t seed, std::uint64_t path, unsigned depth) {
  switch (kind_of(seed, path, depth)) {
    case node_kind::leaf:
    case node_kind::latency_leaf:
      return leaf_value(seed, path);
    case node_kind::fork:
      return oracle(seed, path * 2 + 1, depth - 1) ^
             (3 * oracle(seed, path * 2 + 2, depth - 1));
    case node_kind::serial:
      return 7 + oracle(seed, path * 2 + 1, depth - 1);
  }
  return 0;
}

task<std::uint64_t> evaluate(std::uint64_t seed, std::uint64_t path,
                             unsigned depth) {
  switch (kind_of(seed, path, depth)) {
    case node_kind::leaf:
      co_return leaf_value(seed, path);
    case node_kind::latency_leaf: {
      const auto v = leaf_value(seed, path);
      // Sub-millisecond latency keeps total runtime sane while still
      // exercising real suspension/resume on every latency leaf.
      co_return co_await latency(std::chrono::microseconds(50 + v % 400), v);
    }
    case node_kind::fork: {
      auto [a, b] = co_await fork2(evaluate(seed, path * 2 + 1, depth - 1),
                                   evaluate(seed, path * 2 + 2, depth - 1));
      co_return a ^ (3 * b);
    }
    case node_kind::serial:
      co_return 7 + co_await evaluate(seed, path * 2 + 1, depth - 1);
  }
  co_return 0;
}

struct StressParam {
  std::uint64_t seed;
  unsigned workers;
  engine eng;
  rt::runtime_steal_policy policy;
  rt::timer_mode timer;
};

class RuntimeStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(RuntimeStress, MatchesSerialOracle) {
  const auto param = GetParam();
  scheduler_options o;
  o.workers = param.workers;
  o.engine_kind = param.eng;
  o.steal = param.policy;
  o.timer = param.timer;
  o.seed = param.seed * 977 + 5;
  scheduler sched(o);
  const unsigned depth = 8;
  const std::uint64_t expect = oracle(param.seed, 0, depth);
  EXPECT_EQ(sched.run(evaluate(param.seed, 0, depth)), expect);
}

std::vector<StressParam> stress_matrix() {
  std::vector<StressParam> out;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 5ull, 17ull}) {
    for (unsigned workers : {1u, 2u, 4u}) {
      out.push_back({seed, workers, engine::latency_hiding,
                     rt::runtime_steal_policy::random_worker,
                     rt::timer_mode::dedicated_thread});
      out.push_back({seed, workers, engine::latency_hiding,
                     rt::runtime_steal_policy::random_deque,
                     rt::timer_mode::dedicated_thread});
      out.push_back({seed, workers, engine::latency_hiding,
                     rt::runtime_steal_policy::random_worker,
                     rt::timer_mode::polled});
      out.push_back({seed, workers, engine::blocking,
                     rt::runtime_steal_policy::random_worker,
                     rt::timer_mode::dedicated_thread});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, RuntimeStress,
                         ::testing::ValuesIn(stress_matrix()));

TEST(RuntimeStress, RepeatedRunsAreStable) {
  // The same computation, many runs on one scheduler: flushes out state
  // leaking between runs (deque pool reuse, stats, done-flag reset).
  scheduler_options o;
  o.workers = 3;
  scheduler sched(o);
  const std::uint64_t expect = oracle(99, 0, 7);
  for (int run = 0; run < 20; ++run) {
    ASSERT_EQ(sched.run(evaluate(99, 0, 7)), expect) << "run " << run;
  }
}

std::uint64_t count_latency_leaves(std::uint64_t seed, std::uint64_t path,
                                   unsigned depth) {
  switch (kind_of(seed, path, depth)) {
    case node_kind::leaf:
      return 0;
    case node_kind::latency_leaf:
      return 1;
    case node_kind::fork:
      return count_latency_leaves(seed, path * 2 + 1, depth - 1) +
             count_latency_leaves(seed, path * 2 + 2, depth - 1);
    case node_kind::serial:
      return count_latency_leaves(seed, path * 2 + 1, depth - 1);
  }
  return 0;
}

TEST(RuntimeStress, DeepForkTreeWithLatencyLeaves) {
  // Pick (deterministically) a seed whose depth-11 tree has a substantial
  // number of latency leaves, then check the suspension count matches the
  // oracle exactly: every latency leaf suspends exactly once.
  const unsigned depth = 11;
  std::uint64_t seed = 0;
  std::uint64_t leaves = 0;
  for (std::uint64_t candidate = 0; candidate < 200; ++candidate) {
    leaves = count_latency_leaves(candidate, 0, depth);
    if (leaves >= 50) {
      seed = candidate;
      break;
    }
  }
  ASSERT_GE(leaves, 50u) << "no suitable seed found";
  scheduler_options o;
  o.workers = 4;
  scheduler sched(o);
  EXPECT_EQ(sched.run(evaluate(seed, 0, depth)), oracle(seed, 0, depth));
  EXPECT_EQ(sched.stats().suspensions, leaves);
}

}  // namespace
}  // namespace lhws
