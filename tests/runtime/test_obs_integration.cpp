// Observability wiring through the runtime: histograms fill during a run,
// the gauge sampler lands counter tracks in the trace, thread metadata is
// emitted, trace capacity caps surface dropped counts, and the per-worker
// stats breakdown stays consistent with the aggregate.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "obs/metrics.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

task<int> fetchy(std::size_t) { co_return co_await latency(2ms, 1); }

task<int> fanout(std::size_t n) {
  return map_reduce<int>(0, n, 0, fetchy, [](int a, int b) { return a + b; });
}

TEST(ObsIntegration, HistogramsPopulatedWhenMetricsOn) {
  scheduler_options o;
  o.workers = 2;
  o.metrics = true;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(16)), 16);
  const auto& h = sched.histograms();
  EXPECT_GT(h.segment_duration.count(), 0U);
  EXPECT_GT(h.wake_latency.count(), 0U);
  // Every resume delivery produces one wake sample.
  EXPECT_EQ(h.wake_latency.count(), sched.stats().resumes_delivered);
  // Deque lifetimes: at least the root deque cycle.
  EXPECT_GT(h.deque_lifetime.count(), 0U);
  EXPECT_GT(h.segment_duration.sum(), 0U);
}

TEST(ObsIntegration, HistogramsEmptyWhenMetricsOff) {
  scheduler_options o;
  o.workers = 2;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(8)), 8);
  EXPECT_EQ(sched.histograms().segment_duration.count(), 0U);
  EXPECT_EQ(sched.histograms().wake_latency.count(), 0U);
}

TEST(ObsIntegration, HistogramsResetBetweenRuns) {
  scheduler_options o;
  o.workers = 1;
  o.metrics = true;
  scheduler sched(o);
  (void)sched.run(fanout(8));
  const auto first = sched.histograms().segment_duration.count();
  (void)sched.run(fanout(8));
  // Same workload: counts comparable, not accumulating run over run.
  EXPECT_LT(sched.histograms().segment_duration.count(), first * 2);
}

TEST(ObsIntegration, ThreadMetadataInTrace) {
  scheduler_options o;
  o.workers = 2;
  o.trace = true;
  scheduler sched(o);
  (void)sched.run(fanout(8));
  const std::string& json = sched.trace_json();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("worker 1"), std::string::npos);
  EXPECT_NE(json.find("\"thread_sort_index\""), std::string::npos);
  // Run metadata object for the trace-stats CLI.
  EXPECT_NE(json.find("\"lhws\":{\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"per_worker\":["), std::string::npos);
}

TEST(ObsIntegration, SamplerEmitsCounterTracks) {
  scheduler_options o;
  o.workers = 2;
  o.trace = true;
  o.metrics = true;
  o.sample_interval_us = 100;
  scheduler sched(o);
  (void)sched.run(fanout(32));
  const std::string& json = sched.trace_json();
  // The run takes >= one 2ms latency, so the 100us sampler fires; the stop
  // path also takes a final sample unconditionally.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("w0/deques_owned"), std::string::npos);
  EXPECT_NE(json.find("w0/steal_pressure"), std::string::npos);
  EXPECT_NE(json.find("w1/suspended"), std::string::npos);
}

TEST(ObsIntegration, TraceCapacityDropsAreCounted) {
  scheduler_options o;
  o.workers = 2;
  o.trace = true;
  o.trace_capacity = 8;  // tiny: the fanout generates far more events
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(32)), 32);
  EXPECT_GT(sched.stats().trace_events_dropped, 0U);
  const std::string& json = sched.trace_json();
  // Dropped count surfaces in the trace metadata, and the trace is still
  // well-formed with at most capacity events per worker.
  EXPECT_NE(json.find("\"dropped_events\":"), std::string::npos);
  EXPECT_EQ(json.find("\"dropped_events\":0,"), std::string::npos);
}

TEST(ObsIntegration, UnboundedCapacityDropsNothing) {
  scheduler_options o;
  o.workers = 2;
  o.trace = true;
  o.trace_capacity = 0;  // unbounded
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(16)), 16);
  EXPECT_EQ(sched.stats().trace_events_dropped, 0U);
}

TEST(ObsIntegration, PerWorkerBreakdownSumsToAggregate) {
  scheduler_options o;
  o.workers = 3;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(24)), 24);
  const auto& s = sched.stats();
  ASSERT_EQ(s.per_worker.size(), 3U);
  std::uint64_t segments = 0, steals = 0, suspensions = 0, resumes = 0;
  std::uint64_t max_deques = 0;
  for (const auto& w : s.per_worker) {
    segments += w.segments_executed;
    steals += w.successful_steals;
    suspensions += w.suspensions;
    resumes += w.resumes_delivered;
    max_deques = std::max(max_deques, w.max_deques_owned);
  }
  EXPECT_EQ(segments, s.segments_executed);
  EXPECT_EQ(steals, s.successful_steals);
  EXPECT_EQ(suspensions, s.suspensions);
  EXPECT_EQ(resumes, s.resumes_delivered);
  EXPECT_EQ(max_deques, s.max_deques_per_worker);
}

TEST(ObsIntegration, ObservedSuspensionWidthBoundsLemma7) {
  scheduler_options o;
  o.workers = 2;
  o.metrics = true;
  scheduler sched(o);
  EXPECT_EQ(sched.run(fanout(16)), 16);
  const auto& s = sched.stats();
  ASSERT_GT(s.suspensions, 0U);
  EXPECT_GT(s.max_concurrent_suspended, 0U);
  EXPECT_LE(s.max_concurrent_suspended, 16U);  // U <= n for this dag
  // Lemma 7 with the observed width.
  EXPECT_LE(s.max_deques_per_worker, s.max_concurrent_suspended + 1);
}

TEST(ObsIntegration, ExportMetricsProducesFullFamily) {
  scheduler_options o;
  o.workers = 2;
  o.metrics = true;
  scheduler sched(o);
  (void)sched.run(fanout(16));
  obs::metrics_registry reg;
  sched.export_metrics(reg);
  const std::string prom = reg.prometheus_text();
  for (const char* name :
       {"lhws_segments_total", "lhws_steals_total", "lhws_suspensions_total",
        "lhws_max_deques_per_worker", "lhws_max_concurrent_suspended",
        "lhws_worker_segments_total{worker=\"0\"}",
        "lhws_worker_segments_total{worker=\"1\"}",
        "lhws_wake_latency_ns_count", "lhws_segment_duration_ns_bucket"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  const std::string json = reg.json_text();
  EXPECT_NE(json.find("\"lhws_metrics\":1"), std::string::npos);
  EXPECT_NE(json.find("lhws_wake_latency_ns"), std::string::npos);
}

}  // namespace
}  // namespace lhws
