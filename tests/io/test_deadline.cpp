// with_deadline semantics and the cancel-vs-complete race: the deadline
// wheel and the io completion contend for one suspended waiter through an
// exact dir_gate claim; exactly one side may win, whatever the timing.
// Run under TSan/ASan in CI (the sanitizer matrix builds this suite).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>

#include "core/scheduler.hpp"
#include "io/async_ops.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"
#include "support/timing.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  o.seed = 13;
  return o;
}

// Accepts one connection and hands the peer's blocking-side fd out.
struct peer_pair {
  io::socket server;  // in-scheduler end
  int client_fd = -1;  // blocking end (caller closes)
};

task<long> accept_one(io::reactor& r, io::socket& listener,
                      io::socket* out) {
  const long fd = co_await io::async_accept(r, listener);
  if (fd < 0) co_return fd;
  *out = io::socket(r, static_cast<int>(fd));
  co_return 0;
}

TEST(Deadline, ReadTimesOutWhenPeerStaysSilent) {
  io::reactor r;
  scheduler sched(opts(1));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const int peer = io::connect_loopback_blocking(listener.local_port());
  ASSERT_GE(peer, 0);
  const stopwatch timer;
  auto root = [&]() -> task<long> {
    io::socket conn;
    const long rc = co_await accept_one(r, listener, &conn);
    if (rc != 0) co_return rc;
    char byte = 0;
    co_return co_await io::async_read(r, conn, &byte, 1,
                                      io::with_deadline(30ms));
  };
  EXPECT_EQ(sched.run(root()), -ETIMEDOUT);
  EXPECT_GE(timer.elapsed_ms(), 25.0);
  EXPECT_EQ(r.timeouts_fired(), 1u);
  EXPECT_EQ(r.deadlines_pending(), 0u);
  ::close(peer);
}

TEST(Deadline, CompletionBeforeDeadlineCancelsTheTimer) {
  io::reactor r;
  scheduler sched(opts(1));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const int peer = io::connect_loopback_blocking(listener.local_port());
  ASSERT_GE(peer, 0);
  std::thread writer([peer] {
    std::this_thread::sleep_for(5ms);
    char byte = 0x7E;
    ASSERT_EQ(io::write_full_fd(peer, &byte, 1), 1);
  });
  auto root = [&]() -> task<long> {
    io::socket conn;
    const long rc = co_await accept_one(r, listener, &conn);
    if (rc != 0) co_return rc;
    char byte = 0;
    const long got = co_await io::async_read(r, conn, &byte, 1,
                                             io::with_deadline(10s));
    co_return got == 1 && byte == 0x7E ? 1 : -1;
  };
  EXPECT_EQ(sched.run(root()), 1);
  EXPECT_EQ(r.timeouts_fired(), 0u);
  // The completion cancelled the wheel entry — nothing may linger.
  EXPECT_EQ(r.deadlines_pending(), 0u);
  writer.join();
  ::close(peer);
}

TEST(Deadline, WsEngineTimesOutThroughPoll) {
  io::reactor r;
  scheduler sched(opts(1, engine::blocking));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const int peer = io::connect_loopback_blocking(listener.local_port());
  ASSERT_GE(peer, 0);
  auto root = [&]() -> task<long> {
    io::socket conn;
    const long rc = co_await accept_one(r, listener, &conn);
    if (rc != 0) co_return rc;
    char byte = 0;
    co_return co_await io::async_read(r, conn, &byte, 1,
                                      io::with_deadline(20ms));
  };
  EXPECT_EQ(sched.run(root()), -ETIMEDOUT);
  EXPECT_GT(sched.stats().blocked_waits, 0u);
  ::close(peer);
}

TEST(Deadline, AcceptWithDeadlineTimesOut) {
  io::reactor r;
  scheduler sched(opts(1));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  auto root = [&]() -> task<long> {
    co_return co_await io::async_accept(r, listener,
                                        io::with_deadline(15ms));
  };
  EXPECT_EQ(sched.run(root()), -ETIMEDOUT);
}

// The satellite's headline test: with_deadline firing CONCURRENTLY with
// the io completion, over and over, with the writer's delay swept through
// the deadline. Every iteration must resolve to exactly one of {data,
// timeout}; the one byte per round is always accounted for (consumed now
// or drained after a timeout), and nothing crashes, hangs, or double
// fires — under TSan this is the cancel/complete race detector.
TEST(Deadline, CancelVersusCompleteRaceStress) {
#ifdef NDEBUG
  constexpr int kRounds = 400;
#else
  constexpr int kRounds = 150;
#endif
  io::reactor r;
  scheduler sched(opts(2));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const int peer = io::connect_loopback_blocking(listener.local_port());
  ASSERT_GE(peer, 0);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> delay_us{0};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!go.exchange(false, std::memory_order_acq_rel)) {
        std::this_thread::yield();
        continue;
      }
      const std::uint32_t d = delay_us.load(std::memory_order_relaxed);
      if (d != 0) {
        const std::int64_t until = now_ns() + std::int64_t{d} * 1000;
        while (now_ns() < until) {
        }  // busy-wait: μs-precision around the deadline
      }
      char byte = 0x55;
      if (io::write_full_fd(peer, &byte, 1) != 1) break;
    }
  });

  int timeouts = 0;
  int completions = 0;
  auto root = [&]() -> task<long> {
    io::socket conn;
    const long rc = co_await accept_one(r, listener, &conn);
    if (rc != 0) co_return rc;
    std::mt19937 rng(29);
    for (int i = 0; i < kRounds; ++i) {
      // Deadline ~1ms; writer delay swept 0..2ms so completion lands
      // before, around, and after the wheel fire.
      const auto d = static_cast<std::uint32_t>(rng() % 2000);
      delay_us.store(d, std::memory_order_relaxed);
      go.store(true, std::memory_order_release);
      char byte = 0;
      const long got = co_await io::async_read(r, conn, &byte, 1,
                                               io::with_deadline(1ms));
      if (got == 1) {
        if (byte != 0x55) co_return -100;
        ++completions;
      } else if (got == -ETIMEDOUT) {
        ++timeouts;
        // The byte for this round is still in flight: drain it so rounds
        // stay one-to-one with bytes.
        const long drained = co_await io::async_read(
            r, conn, &byte, 1, io::with_deadline(2s));
        if (drained != 1 || byte != 0x55) co_return -200;
      } else {
        co_return got;
      }
    }
    co_return static_cast<long>(kRounds);
  };
  EXPECT_EQ(sched.run(root()), kRounds);
  stop.store(true, std::memory_order_release);
  writer.join();
  ::close(peer);
  EXPECT_EQ(timeouts + completions, kRounds);
  EXPECT_EQ(r.deadlines_pending(), 0u) << "no wheel entry may leak";
  // The sweep must actually exercise both outcomes (generous bounds: CI
  // hosts are slow and loopback jitter is real, but 400 draws across a
  // 0-2x deadline sweep hitting one side 400:0 means the harness broke).
  EXPECT_GT(timeouts, 0) << "sweep never produced a timeout";
  EXPECT_GT(completions, 0) << "sweep never produced a completion";
}

}  // namespace
}  // namespace lhws
