// Real-socket heavy edges: accept/connect/read/write over loopback TCP
// with the LHWS engine suspending on every EAGAIN. Includes the satellite
// edge cases: zero-byte reads, EOF, and peer reset during a suspended
// write.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "core/fork_join.hpp"
#include "core/scheduler.hpp"
#include "io/async_ops.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  o.seed = 11;
  return o;
}

// Reads exactly n bytes with async ops (0 = clean EOF before any byte).
task<long> read_exact(io::reactor& r, io::socket& s, void* buf,
                      std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const long got = co_await io::async_read(r, s, p + done, n - done);
    if (got <= 0) co_return got == 0 && done == 0 ? 0 : -ECONNRESET;
    done += static_cast<std::size_t>(got);
  }
  co_return static_cast<long>(done);
}

// In-scheduler echo of `total` bytes: accept one connection, echo until
// the byte budget is met, return bytes echoed.
task<long> echo_once(io::reactor& r, io::socket& listener,
                     std::size_t total) {
  const long fd = co_await io::async_accept(r, listener);
  if (fd < 0) co_return fd;
  io::socket conn(r, static_cast<int>(fd));
  std::vector<unsigned char> buf(4096);
  std::size_t echoed = 0;
  while (echoed < total) {
    const long got =
        co_await io::async_read(r, conn, buf.data(), buf.size());
    if (got <= 0) co_return got;
    const long put = co_await io::async_write(
        r, conn, buf.data(), static_cast<std::size_t>(got));
    if (put < 0) co_return put;
    echoed += static_cast<std::size_t>(got);
  }
  co_return static_cast<long>(echoed);
}

// In-scheduler client: connect, send `payload`, read it back, verify.
task<long> echo_client(io::reactor& r, std::uint16_t port,
                       const std::vector<unsigned char>& payload) {
  io::socket s = io::socket::create_tcp(r);
  if (!s.valid()) co_return -1;
  const long rc = co_await io::async_connect(r, s, port);
  if (rc != 0) co_return rc;
  const long put =
      co_await io::async_write(r, s, payload.data(), payload.size());
  if (put < 0) co_return put;
  std::vector<unsigned char> back(payload.size());
  const long got = co_await read_exact(r, s, back.data(), back.size());
  if (got <= 0) co_return got - 1000;  // distinguish from success
  co_return back == payload ? static_cast<long>(payload.size()) : -999;
}

TEST(AsyncSocket, EchoRoundTripWithinOneScheduler) {
  io::reactor r;
  scheduler sched(opts(2));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.local_port();
  std::vector<unsigned char> payload(64 * 1024);
  std::iota(payload.begin(), payload.end(), 0);
  auto root = [&]() -> task<long> {
    auto [served, got] =
        co_await fork2(echo_once(r, listener, payload.size()),
                       echo_client(r, port, payload));
    co_return served == static_cast<long>(payload.size()) ? got : -served;
  };
  EXPECT_EQ(sched.run(root()), static_cast<long>(payload.size()));
  // 64 KiB through default socket buffers forces suspensions on both
  // sides; the paper's economy must hold (bounded deques — checked
  // internally by runtime asserts) while δ lands in the read histograms.
  EXPECT_GT(sched.stats().suspensions, 0u);
}

TEST(AsyncSocket, ZeroByteReadNeverSuspends) {
  io::reactor r;
  scheduler sched(opts(1));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.local_port();
  auto root = [&]() -> task<long> {
    io::socket s = io::socket::create_tcp(r);
    const long rc = co_await io::async_connect(r, s, port);
    if (rc != 0) co_return rc;
    const std::uint64_t before = sched.stats().suspensions;
    char byte = 0;
    const long got = co_await io::async_read(r, s, &byte, 0);
    // n == 0 resolves immediately even though no data is pending.
    co_return got == 0 && sched.stats().suspensions == before ? 0 : -1;
  };
  EXPECT_EQ(sched.run(root()), 0);
}

TEST(AsyncSocket, ReadReturnsZeroOnEof) {
  io::reactor r;
  scheduler sched(opts(1));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.local_port();
  std::thread peer([port] {
    const int fd = io::connect_loopback_blocking(port);
    ASSERT_GE(fd, 0);
    std::this_thread::sleep_for(10ms);  // let the reader suspend first
    ::close(fd);
  });
  auto root = [&]() -> task<long> {
    const long fd = co_await io::async_accept(r, listener);
    if (fd < 0) co_return fd;
    io::socket conn(r, static_cast<int>(fd));
    char byte = 0;
    co_return co_await io::async_read(r, conn, &byte, 1);
  };
  EXPECT_EQ(sched.run(root()), 0);
  peer.join();
}

TEST(AsyncSocket, PeerResetDuringSuspendedWriteSurfacesError) {
  io::reactor r;
  scheduler sched(opts(1));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.local_port();
  std::atomic<int> peer_fd{-1};
  std::thread peer([&] {
    const int fd = io::connect_loopback_blocking(port);
    ASSERT_GE(fd, 0);
    peer_fd.store(fd);
    // Never read; wait for the writer to fill both socket buffers and
    // suspend, then reset the connection (SO_LINGER 0 => RST on close).
    std::this_thread::sleep_for(50ms);
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  });
  auto root = [&]() -> task<long> {
    const long fd = co_await io::async_accept(r, listener);
    if (fd < 0) co_return fd;
    io::socket conn(r, static_cast<int>(fd));
    // Shrink the send buffer so the 8 MiB payload cannot possibly fit.
    const int small = 4096;
    ::setsockopt(conn.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
    std::vector<unsigned char> blob(8 * 1024 * 1024, 0xAB);
    co_return co_await io::async_write(r, conn, blob.data(), blob.size());
  };
  const long rc = sched.run(root());
  // The write was parked mid-buffer when the RST arrived: it must fail
  // (ECONNRESET or EPIPE depending on which syscall sees it), not hang or
  // report success.
  EXPECT_TRUE(rc == -ECONNRESET || rc == -EPIPE) << "rc=" << rc;
  EXPECT_GT(sched.stats().suspensions, 0u);
  peer.join();
}

TEST(AsyncSocket, WsEngineServesTheSameEcho) {
  io::reactor r;
  scheduler sched(opts(2, engine::blocking));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.local_port();
  std::vector<unsigned char> payload(16 * 1024, 0x5C);
  auto root = [&]() -> task<long> {
    auto [served, got] =
        co_await fork2(echo_once(r, listener, payload.size()),
                       echo_client(r, port, payload));
    co_return served == static_cast<long>(payload.size()) ? got : -served;
  };
  EXPECT_EQ(sched.run(root()), static_cast<long>(payload.size()));
  EXPECT_EQ(sched.stats().suspensions, 0u) << "ws engine must block instead";
  EXPECT_GT(sched.stats().blocked_waits, 0u);
}

TEST(AsyncSocket, ManyConcurrentConnections) {
  // 8 clients against one accept loop on 2 workers: connection handlers
  // are forked per accept, all suspending on their own sockets.
  constexpr int kConns = 8;
  io::reactor r;
  scheduler sched(opts(2));
  io::socket listener = io::socket::listen_loopback(r, 0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.local_port();

  std::function<task<long>(int)> accept_n = [&](int remaining) -> task<long> {
    if (remaining == 0) co_return 0;
    const long fd = co_await io::async_accept(r, listener);
    if (fd < 0) co_return fd;
    auto handle = [&r](int cfd) -> task<long> {
      io::socket conn(r, cfd);
      char byte = 0;
      const long got = co_await io::async_read(r, conn, &byte, 1);
      if (got != 1) co_return -1;
      co_return co_await io::async_write(r, conn, &byte, 1);
    };
    auto [rest, one] = co_await fork2(accept_n(remaining - 1),
                                      handle(static_cast<int>(fd)));
    co_return rest == 0 && one == 1 ? 0 : -1;
  };

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    clients.emplace_back([&ok, port] {
      const int fd = io::connect_loopback_blocking(port);
      if (fd < 0) return;
      char byte = 0x42;
      if (io::write_full_fd(fd, &byte, 1) == 1 &&
          io::read_full_fd(fd, &byte, 1) == 1 && byte == 0x42) {
        ok.fetch_add(1);
      }
      ::close(fd);
    });
  }
  EXPECT_EQ(sched.run(accept_n(kConns)), 0);
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kConns);
}

}  // namespace
}  // namespace lhws
