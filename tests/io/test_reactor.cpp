// Reactor timer edges (sleep_until / sleep_for) and observability surface.
// Socket ops are covered in test_async_socket.cpp; deadline races in
// test_deadline.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "core/algorithms.hpp"
#include "core/scheduler.hpp"
#include "io/async_ops.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"
#include "obs/metrics.hpp"
#include "support/timing.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers, engine e = engine::latency_hiding) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = e;
  o.seed = 7;
  return o;
}

TEST(Reactor, StartStopIsClean) {
  io::reactor r;
  EXPECT_EQ(r.registered_fds(), 0u);
  EXPECT_EQ(r.deadlines_pending(), 0u);
}

TEST(Reactor, RegisterDeregisterTracksGauges) {
  io::reactor r;
  {
    io::socket l = io::socket::listen_loopback(r, 0);
    ASSERT_TRUE(l.valid());
    EXPECT_NE(l.local_port(), 0);
    EXPECT_EQ(r.registered_fds(), 1u);
  }
  EXPECT_EQ(r.registered_fds(), 0u);
  EXPECT_EQ(r.peak_registered_fds(), 1u);
}

TEST(Reactor, SleepUntilInThePastDoesNotSuspend) {
  io::reactor r;
  scheduler sched(opts(1));
  auto root = [&]() -> task<int> {
    co_await io::sleep_until(r, now_ns() - 1'000'000);
    co_return 1;
  };
  EXPECT_EQ(sched.run(root()), 1);
  EXPECT_EQ(sched.stats().suspensions, 0u);
  EXPECT_EQ(r.delta_hist(io::op_kind::sleep).count(), 0u);
}

TEST(Reactor, SleepForSuspendsAndWaitsOutTheDelay) {
  io::reactor r;
  scheduler sched(opts(1));
  const stopwatch timer;
  auto root = [&]() -> task<int> {
    co_await io::sleep_for(r, 20ms);
    co_return 1;
  };
  EXPECT_EQ(sched.run(root()), 1);
  EXPECT_GE(timer.elapsed_ms(), 18.0);
  EXPECT_EQ(sched.stats().suspensions, 1u);
  // The observed δ ends up in the reactor's sleep histogram.
  EXPECT_EQ(r.delta_hist(io::op_kind::sleep).count(), 1u);
  EXPECT_GE(r.delta_hist(io::op_kind::sleep).quantile(0.5), 15'000'000u);
}

TEST(Reactor, ConcurrentSleepsOverlapOnOneWorker) {
  // 16 sleeps x 30ms on ONE worker: real timer edges must overlap exactly
  // like simulated ones (test_runtime_latency.cpp's contrast).
  constexpr std::size_t n = 16;
  io::reactor r;
  scheduler sched(opts(1));
  const stopwatch timer;
  auto root = [&]() -> task<int> {
    co_return co_await map_reduce<int>(
        0, n, 0,
        [&r](std::size_t) -> task<int> {
          co_await io::sleep_for(r, 30ms);
          co_return 1;
        },
        [](int a, int b) { return a + b; });
  };
  EXPECT_EQ(sched.run(root()), static_cast<int>(n));
  EXPECT_LT(timer.elapsed_ms(), static_cast<double>(n) * 30.0 / 3.0)
      << "sleeps must overlap, not serialize";
  EXPECT_EQ(r.delta_hist(io::op_kind::sleep).count(), n);
}

TEST(Reactor, TeardownWaitsOutInFlightCompletions) {
  // Regression (TSan): the reactor thread delivers the resume that lets the
  // root finish, and the scheduler is destroyed right behind it. The node
  // push inside deliver_resume publishes the continuation, so the reactor
  // can still be between that push and its suspension-counter decrement
  // when ~scheduler_core frees the deque pool — unless fire() holds the
  // external-completer guard across the whole delivery. Hammer exactly that
  // window: the sleep completion is the run's last act, and the scheduler
  // dies immediately after run() returns.
  io::reactor r;
  for (int i = 0; i < 100; ++i) {
    scheduler sched(opts(1));
    auto root = [&]() -> task<int> {
      co_await io::sleep_for(r, 300us);
      co_return 1;
    };
    ASSERT_EQ(sched.run(root()), 1);
  }
}

TEST(Reactor, WsEngineSleepBlocksTheWorker) {
  io::reactor r;
  scheduler sched(opts(1, engine::blocking));
  auto root = [&]() -> task<int> {
    co_await io::sleep_for(r, 5ms);
    co_return 1;
  };
  EXPECT_EQ(sched.run(root()), 1);
  EXPECT_EQ(sched.stats().suspensions, 0u);
  EXPECT_EQ(sched.stats().blocked_waits, 1u);
}

TEST(Reactor, ExportMetricsPublishesIoSurface) {
  io::reactor r;
  {
    scheduler sched(opts(1));
    auto root = [&]() -> task<int> {
      co_await io::sleep_for(r, 2ms);
      co_return 1;
    };
    ASSERT_EQ(sched.run(root()), 1);
  }
  obs::metrics_registry reg;
  r.export_metrics(reg);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("lhws_io_registered_fds"), std::string::npos);
  EXPECT_NE(text.find("lhws_io_epoll_wakeups_total"), std::string::npos);
  EXPECT_NE(text.find("lhws_io_deadlines_pending"), std::string::npos);
  EXPECT_NE(text.find("lhws_io_observed_delta_ns"), std::string::npos);
  EXPECT_NE(text.find("op=\"sleep\""), std::string::npos);
}

}  // namespace
}  // namespace lhws
