// Sharded reactor plane (DESIGN.md §14): fd→shard affinity stability,
// SO_REUSEPORT listener pinning, cross-shard timer fan-out, and the
// generalized teardown race from test_reactor.cpp run against N shard
// threads at once.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <vector>

#include "core/algorithms.hpp"
#include "core/fork_join.hpp"
#include "core/scheduler.hpp"
#include "io/async_ops.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"
#include "support/timing.hpp"

namespace lhws {
namespace {

using namespace std::chrono_literals;

scheduler_options opts(unsigned workers) {
  scheduler_options o;
  o.workers = workers;
  o.engine_kind = engine::latency_hiding;
  o.seed = 13;
  return o;
}

TEST(ReactorShard, ShardCountIsClamped) {
  io::reactor one(0);
  EXPECT_EQ(one.shards(), 1u);
  io::reactor four(4);
  EXPECT_EQ(four.shards(), 4u);
  EXPECT_EQ(four.registered_fds(), 0u);
  EXPECT_EQ(four.deadlines_pending(), 0u);
}

TEST(ReactorShard, FdAffinityIsStableAcrossReconnects) {
  // The affinity function is pure in the fd number, so when the kernel
  // hands a closed descriptor back out, the new connection lands on the
  // shard the old one had. Track every (fd → shard) binding over repeated
  // connect/close churn and require it never changes.
  io::reactor r(4);
  std::map<int, unsigned> seen;
  for (int round = 0; round < 32; ++round) {
    io::socket s = io::socket::create_tcp(r);
    ASSERT_TRUE(s.valid());
    EXPECT_EQ(s.shard(), r.shard_of(s.fd()));
    const auto [it, fresh] = seen.emplace(s.fd(), s.shard());
    if (!fresh) {
      EXPECT_EQ(it->second, s.shard())
          << "reused fd " << s.fd() << " moved shards";
    }
  }
  // Single-threaded close/reopen reuses the lowest free descriptor, so the
  // loop above must actually have exercised reuse.
  EXPECT_LT(seen.size(), 32u);
  EXPECT_EQ(r.registered_fds(), 0u);
}

TEST(ReactorShard, ReuseportListenersPinTheirShard) {
  io::reactor r(4);
  std::vector<io::socket> listeners;
  listeners.push_back(io::socket::listen_reuseport(r, 0, 0));
  ASSERT_TRUE(listeners[0].valid());
  const std::uint16_t port = listeners[0].local_port();
  ASSERT_NE(port, 0);
  for (unsigned sh = 1; sh < 4; ++sh) {
    listeners.push_back(io::socket::listen_reuseport(r, port, sh));
    ASSERT_TRUE(listeners[sh].valid()) << "shard " << sh;
    EXPECT_EQ(listeners[sh].local_port(), port);
  }
  for (unsigned sh = 0; sh < 4; ++sh) {
    EXPECT_EQ(listeners[sh].shard(), sh);
    EXPECT_EQ(r.shard_registered_fds(sh), 1u);
  }
  EXPECT_EQ(r.registered_fds(), 4u);
}

TEST(ReactorShard, SleepsFanOutAcrossShardsAndMerge) {
  // schedule_sleep round-robins across shards; the merged δ histogram and
  // the aggregate timeout counter must still see every edge exactly once.
  constexpr std::size_t n = 16;
  io::reactor r(4);
  scheduler sched(opts(2));
  const stopwatch timer;
  auto root = [&]() -> task<int> {
    co_return co_await map_reduce<int>(
        0, n, 0,
        [&r](std::size_t) -> task<int> {
          co_await io::sleep_for(r, 25ms);
          co_return 1;
        },
        [](int a, int b) { return a + b; });
  };
  EXPECT_EQ(sched.run(root()), static_cast<int>(n));
  EXPECT_LT(timer.elapsed_ms(), static_cast<double>(n) * 25.0 / 3.0)
      << "sleeps must overlap across shards, not serialize";
  EXPECT_EQ(r.delta_hist(io::op_kind::sleep).count(), n);
  EXPECT_EQ(r.deadlines_pending(), 0u);
}

TEST(ReactorShard, CancelRoutesByTokenShard) {
  // Tokens carry their shard in the high bits; cancelling the 3rd of four
  // round-robined sleeps must hit the right shard's wheel.
  io::reactor r(4);
  scheduler sched(opts(1));
  auto root = [&]() -> task<int> {
    co_await io::sleep_for(r, 1ms);
    co_return 1;
  };
  EXPECT_EQ(sched.run(root()), 1);
  // All wheels drained; a stale/zero token cancels nothing on any shard.
  EXPECT_FALSE(r.cancel(0));
  EXPECT_EQ(r.deadlines_pending(), 0u);
}

TEST(ReactorShard, ShardedTeardownWaitsOutInFlightCompletions) {
  // Generalizes Reactor.TeardownWaitsOutInFlightCompletions (PR 4) to a
  // 4-shard plane: every iteration parks sleeps on all four shard wheels,
  // so the final resume of the run can be delivered by ANY shard thread
  // while ~scheduler_core tears the deque pool down right behind it. Each
  // shard's fire() must hold the external-completer guard across the whole
  // delivery for this to stay TSan-clean.
  io::reactor r(4);
  for (int i = 0; i < 100; ++i) {
    scheduler sched(opts(2));
    auto root = [&]() -> task<int> {
      co_return co_await map_reduce<int>(
          0, 4, 0,
          [&r](std::size_t) -> task<int> {
            co_await io::sleep_for(r, 300us);
            co_return 1;
          },
          [](int a, int b) { return a + b; });
    };
    ASSERT_EQ(sched.run(root()), 4);
  }
}

TEST(ReactorShard, EchoOnNonZeroShardCompletes) {
  // A connection pinned to shard 3 (listener hint inheritance) must run
  // its whole accept/read/write life on that shard and still complete.
  io::reactor r(4);
  io::socket listener = io::socket::listen_reuseport(r, 0, 3);
  ASSERT_TRUE(listener.valid());
  EXPECT_EQ(listener.shard(), 3u);
  scheduler sched(opts(2));
  auto root = [&]() -> task<long> {
    auto server = [&]() -> task<long> {
      const long fd = co_await io::async_accept(r, listener);
      if (fd < 0) co_return fd;
      io::socket conn(r, static_cast<int>(fd), listener.shard());
      EXPECT_EQ(conn.shard(), 3u);
      unsigned char buf[8];
      const long got = co_await io::async_read(r, conn, buf, sizeof buf);
      if (got <= 0) co_return -1;
      co_return co_await io::async_write(r, conn, buf,
                                         static_cast<std::size_t>(got));
    };
    auto client = [&]() -> task<long> {
      io::socket c = io::socket::create_tcp(r);
      const long rc =
          co_await io::async_connect(r, c, listener.local_port());
      if (rc != 0) co_return rc;
      unsigned char msg[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      if (co_await io::async_write(r, c, msg, sizeof msg) !=
          static_cast<long>(sizeof msg)) {
        co_return -1;
      }
      unsigned char back[8] = {};
      std::size_t done = 0;
      while (done < sizeof back) {
        const long got =
            co_await io::async_read(r, c, back + done, sizeof back - done);
        if (got <= 0) co_return -1;
        done += static_cast<std::size_t>(got);
      }
      co_return std::memcmp(msg, back, sizeof back) == 0 ? 8 : -2;
    };
    auto [s, c] = co_await fork2(server(), client());
    co_return s == 8 && c == 8 ? 0 : -1;
  };
  EXPECT_EQ(sched.run(root()), 0);
}

}  // namespace
}  // namespace lhws
