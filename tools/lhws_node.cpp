// lhws_node — one process of an LHWS cluster (DESIGN.md §15).
//
//   lhws_node --id N [--port P] [--peers id:port,id:port,...]
//             [--workers W] [--policy never|threshold|always]
//             [--delta-ms D] [--batch B] [--spans] [--trace FILE]
//             [--port-file FILE] [--drive N] [--fib K]
//
//   --id N          this node's id (unique across the cluster)
//   --port P        listen port (default 0 = ephemeral; see --port-file)
//   --peers L       every other node as id:port pairs. Ports are only
//                   dialed for ids < --id (the mesh rule: dial down,
//                   accept up), so an accept-side peer may use port 0.
//   --policy P      remote steal policy (default never)
//   --delta-ms D    injected per-peer one-way latency in ms (default 0)
//   --batch B       items requested per steal probe (default 4)
//   --port-file F   write the bound port to F (write+rename, pollable)
//   --drive N       driver mode: submit N fib calls round-robin across all
//                   nodes (self included), verify every result, then
//                   broadcast SHUTDOWN. Without --drive the node serves
//                   until a SHUTDOWN frame arrives.
//   --fib K         driver workload argument (default 20)
//   --spans         record causal spans; with --trace the merged traces of
//                   all nodes feed `lhws_trace_stats --spans a.json b.json`
//
// Exit codes: 0 ok, 1 mesh/driver failure, 2 bad usage or setup failure.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/node_runner.hpp"
#include "obs/span.hpp"

namespace {

using lhws::dist::cluster;

unsigned long long fib_seq(unsigned n) {
  unsigned long long a = 0, b = 1;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned long long t = a + b;
    a = b;
    b = t;
  }
  return a;
}

// Driver workload: `count` remote fib calls spread round-robin over every
// node of the cluster, as a fork-join tree so calls overlap (each remote
// join is a heavy delta edge the local scheduler hides). Returns the number
// of wrong answers.
lhws::task<long> drive_calls(cluster& c,
                             const std::vector<std::uint32_t>& targets,
                             std::size_t lo, std::size_t hi, unsigned fib_n) {
  if (hi - lo == 1) {
    const bool traced = co_await lhws::obs::begin_request();
    const std::uint64_t got = co_await c.call(
        targets[lo % targets.size()], lhws::dist::kWorkFib, fib_n);
    if (traced) co_await lhws::obs::end_request();
    co_return got == fib_seq(fib_n) ? 0 : 1;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  auto [a, b] = co_await lhws::fork2(drive_calls(c, targets, lo, mid, fib_n),
                                     drive_calls(c, targets, mid, hi, fib_n));
  co_return a + b;
}

// --drive 0: own the shutdown without submitting any work.
lhws::task<long> empty_driver() { co_return 0; }

int usage() {
  std::fprintf(stderr,
               "usage: lhws_node --id N [--port P] [--peers id:port,...]\n"
               "                 [--workers W] [--policy never|threshold|"
               "always]\n"
               "                 [--delta-ms D] [--batch B] [--spans]\n"
               "                 [--trace FILE] [--port-file FILE]\n"
               "                 [--drive N] [--fib K]\n");
  return 2;
}

bool parse_peers(const char* s, std::vector<lhws::dist::peer_endpoint>& out) {
  const std::string text(s);
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return false;
    char* end = nullptr;
    const unsigned long id = std::strtoul(item.c_str(), &end, 10);
    if (end != item.c_str() + colon) return false;
    const unsigned long port =
        std::strtoul(item.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || port > 65535) return false;
    out.push_back({static_cast<std::uint32_t>(id),
                   static_cast<std::uint16_t>(port)});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  lhws::dist::node_options no;
  bool have_id = false;
  long drive = -1;
  unsigned fib_n = 20;

  auto need = [&](int& i) -> const char* {
    return ++i < argc ? argv[i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--id" && (v = need(i)) != nullptr) {
      no.cfg.node_id = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      have_id = true;
    } else if (arg == "--port" && (v = need(i)) != nullptr) {
      no.cfg.listen_port =
          static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--peers" && (v = need(i)) != nullptr) {
      if (!parse_peers(v, no.cfg.peers)) {
        std::fprintf(stderr, "lhws_node: bad --peers list: %s\n", v);
        return 2;
      }
    } else if (arg == "--workers" && (v = need(i)) != nullptr) {
      no.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--policy" && (v = need(i)) != nullptr) {
      if (!lhws::dist::parse_policy(v, no.cfg.policy)) {
        std::fprintf(stderr, "lhws_node: bad --policy: %s\n", v);
        return 2;
      }
    } else if (arg == "--delta-ms" && (v = need(i)) != nullptr) {
      no.cfg.injected_delta_ns =
          static_cast<std::int64_t>(std::strtod(v, nullptr) * 1e6);
    } else if (arg == "--batch" && (v = need(i)) != nullptr) {
      no.cfg.steal_batch =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--spans") {
      no.spans = true;
    } else if (arg == "--trace" && (v = need(i)) != nullptr) {
      no.trace_path = v;
    } else if (arg == "--port-file" && (v = need(i)) != nullptr) {
      no.port_file = v;
    } else if (arg == "--drive" && (v = need(i)) != nullptr) {
      drive = std::strtol(v, nullptr, 10);
    } else if (arg == "--fib" && (v = need(i)) != nullptr) {
      fib_n = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "lhws_node: bad argument: %s\n", arg.c_str());
      return usage();
    }
  }
  if (!have_id || no.workers == 0) return usage();

  lhws::dist::driver_fn driver;
  if (drive == 0) {
    driver = [](cluster&) { return empty_driver(); };
  } else if (drive > 0) {
    std::vector<std::uint32_t> targets{no.cfg.node_id};
    for (const auto& p : no.cfg.peers) targets.push_back(p.id);
    const auto count = static_cast<std::size_t>(drive);
    driver = [targets, count, fib_n](cluster& c) {
      return drive_calls(c, targets, 0, count, fib_n);
    };
  }

  lhws::dist::node_report rep;
  const int rc = lhws::dist::run_node(no, std::move(driver), &rep);
  const auto& s = rep.stats;
  std::printf("node %u: rc=%d port=%u wall=%.1fms calls=%llu executed=%llu "
              "(stolen=%llu) probes=%llu grants=%llu/%llu routed=%llu "
              "wire_errors=%llu tx=%llu rx=%llu\n",
              no.cfg.node_id, rc, rep.port, rep.elapsed_ms,
              static_cast<unsigned long long>(s.calls),
              static_cast<unsigned long long>(s.executed),
              static_cast<unsigned long long>(s.stolen_executed),
              static_cast<unsigned long long>(s.probes),
              static_cast<unsigned long long>(s.granted_items),
              static_cast<unsigned long long>(s.empty_grants),
              static_cast<unsigned long long>(s.results_routed),
              static_cast<unsigned long long>(s.wire_errors),
              static_cast<unsigned long long>(s.bytes_tx),
              static_cast<unsigned long long>(s.bytes_rx));
  return rc;
}
