// lhws_trace_stats — parse an exported Chrome trace (runtime/trace.cpp
// format) and report per-worker utilization, idle/steal breakdown, and wake
// latency percentiles; with --check-bounds, audit the paper's invariants:
//
//   Lemma 7   max deques owned by any worker <= U + 1, checked against both
//             the per-worker stats in the "lhws" metadata object and the
//             sampler's deques_owned counter track;
//   Thm 2-3   successful steals within a configurable factor of the
//             P * S*U*(1 + lg U) overhead budget (an order-of-magnitude
//             regression tripwire, not a proof: the theorems bound
//             expectations and also carry a work/span term).
//
// With --spans, audit the causal-span layer (DESIGN.md §13) instead:
// reconstruct span trees from the "lhws" object's spans/requests arrays,
// require >= 99% of spans to close into a tree rooted at a request, check
// every request's component breakdown (running + delta + wake + deque)
// sums to its end-to-end latency within max(1%, 20us), report per-component
// p50/p99/p999, and tripwire per-request steal hops against the Thm 2-3
// shape factor*(spans+1)*U*(1+lg U).
//
// Truncated input (e.g. a crash mid-write) is salvaged instead of rejected:
// complete events are recovered from the traceEvents array, the tally is
// reported, and bound audits that need the (lost) metadata are skipped.
// Inputs with no recoverable events still fail with exit 2.
//
// Several trace files merge into one model (cluster mode writes FILE.<id>
// per node): worker rows are offset per file so tids stay distinct, span
// and request records concatenate, and the --spans audit then closes
// cross-process trees — a remote_parent on node k resolves against spans
// exported by node 0 because span ids are node-seeded (obs::seed_span_ids).
// Remote spans are reported per peer/<id> lane alongside the reactor lanes.
//
//   lhws_trace_stats [trace.json|-]... [--check-bounds] [--spans] [--u N]
//                    [--steal-factor F] [--json]
//
// Exit codes: 0 ok, 1 bound violation, 2 malformed/corrupt input.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON value parser (self-contained; rejects anything that
// is not valid JSON so corrupted traces fail loudly).
// ---------------------------------------------------------------------------

struct jvalue;
using jobject = std::map<std::string, jvalue>;
using jarray = std::vector<jvalue>;

struct jvalue {
  enum class kind : std::uint8_t {
    null,
    boolean,
    number,
    string,
    array,
    object
  };
  kind k = kind::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::shared_ptr<jarray> arr;
  std::shared_ptr<jobject> obj;

  [[nodiscard]] const jvalue* find(const std::string& key) const {
    if (k != kind::object || !obj) return nullptr;
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
};

class json_parser {
 public:
  explicit json_parser(std::string_view text) : text_(text) {}

  std::optional<jvalue> parse(std::string* why) {
    jvalue v;
    if (!value(v)) {
      if (why != nullptr) *why = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (why != nullptr) {
        *why = "trailing garbage at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " (at offset " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.substr(pos_, n) != lit) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool string_body(std::string& out) {
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            pos_ += 4;  // keep ASCII placeholder; trace strings are ASCII
            c = '?';
            break;
          }
          default:
            return fail("bad escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool value(jvalue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      ++pos_;
      out.k = jvalue::kind::string;
      return string_body(out.str);
    }
    if (c == 't') {
      out.k = jvalue::kind::boolean;
      out.b = true;
      return literal("true");
    }
    if (c == 'f') {
      out.k = jvalue::kind::boolean;
      out.b = false;
      return literal("false");
    }
    if (c == 'n') {
      out.k = jvalue::kind::null;
      return literal("null");
    }
    return number(out);
  }

  bool number(jvalue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      digits();
    }
    if (!any) return fail("expected number");
    out.k = jvalue::kind::number;
    const std::string token(text_.substr(start, pos_ - start));
    out.num = std::strtod(token.c_str(), nullptr);
    return true;
  }

  bool array(jvalue& out) {
    ++pos_;  // '['
    out.k = jvalue::kind::array;
    out.arr = std::make_shared<jarray>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      jvalue elem;
      if (!value(elem)) return false;
      out.arr->push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(jvalue& out) {
    ++pos_;  // '{'
    out.k = jvalue::kind::object;
    out.obj = std::make_shared<jobject>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      ++pos_;
      std::string key;
      if (!string_body(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      jvalue val;
      if (!value(val)) return false;
      (*out.obj)[key] = std::move(val);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace model
// ---------------------------------------------------------------------------

struct worker_summary {
  double busy_us = 0;        // segment + batch execution
  double blocked_us = 0;     // WS-engine blocking waits
  double parked_us = 0;      // idle-park duration events
  std::uint64_t segments = 0;
  std::uint64_t steals = 0;
  std::uint64_t switches = 0;
  std::uint64_t suspends = 0;
  std::uint64_t resumes = 0;
  std::uint64_t max_deques_sampled = 0;  // from the counter track
  // From metadata (authoritative; sampling can miss peaks).
  std::uint64_t max_deques_owned = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t failed_empty = 0;
  std::uint64_t failed_contended = 0;
  std::uint64_t parks = 0;
  std::uint64_t park_timeouts = 0;
  std::uint64_t unparks = 0;
  std::uint64_t registry_republishes = 0;
  std::uint64_t suspensions_meta = 0;
};

// Mirrors io::op_kind (arg n in io_wake events is op + 1 so a zero arg is
// never dropped by the serializer).
constexpr std::size_t kNumIoOps = 5;
constexpr const char* kIoOpNames[kNumIoOps] = {"accept", "connect", "read",
                                               "write", "sleep"};

// One committed heavy-edge span from the "lhws".spans array (origin-relative
// nanosecond timestamps, exact — unlike the microsecond timeline doubles).
struct span_entry {
  std::uint64_t trace_id = 0;
  std::uint32_t span = 0;
  std::uint32_t parent = 0;
  std::string kind;
  std::int64_t arm_ns = 0;
  std::int64_t fire_ns = 0;
  std::int64_t drain_ns = 0;
  std::int64_t exec_ns = 0;
  std::uint64_t hops = 0;
  // Reactor shard whose thread delivered the completion (io kinds only;
  // absent in pre-sharding traces and 0 for sim/event spans).
  std::uint32_t shard = 0;
};

// One completed request scope from the "lhws".requests array.
struct request_entry {
  std::uint64_t trace_id = 0;
  std::uint32_t root_span = 0;
  std::uint32_t remote_parent = 0;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t running_ns = 0;
  std::int64_t deque_ns = 0;
  std::int64_t delta_ns = 0;
  std::int64_t wake_ns = 0;
  std::uint64_t spans = 0;
  std::uint64_t hops = 0;
};

struct trace_model {
  std::map<std::uint32_t, worker_summary> workers;
  std::vector<std::uint64_t> wake_ns;
  std::vector<std::uint64_t> io_wake_ns[kNumIoOps];  // observed delta per op
  std::vector<span_entry> spans;
  std::vector<request_entry> requests;
  std::uint64_t span_records_dropped = 0;
  double first_ts_us = 0;
  double last_ts_us = 0;
  bool has_span = false;
  std::uint64_t schema = 0;
  std::uint64_t meta_workers = 0;
  std::uint64_t max_concurrent_suspended = 0;
  std::uint64_t dropped_events = 0;
  bool has_meta_stats = false;
  std::string engine;
  // Slab-allocator block ("alloc"), present from schema 1 + PR 5 traces.
  bool has_alloc = false;
  std::uint64_t alloc_hits = 0;
  std::uint64_t alloc_misses = 0;
  std::uint64_t alloc_remote_pushes = 0;
  std::uint64_t alloc_remote_drained = 0;
  std::uint64_t alloc_fallback = 0;
  std::uint64_t alloc_slab_bytes = 0;
};

double num_or(const jvalue* v, double fallback) {
  return v != nullptr && v->k == jvalue::kind::number ? v->num : fallback;
}

std::uint64_t unum_or(const jvalue* v, std::uint64_t fallback) {
  if (v == nullptr || v->k != jvalue::kind::number || v->num < 0) {
    return fallback;
  }
  return static_cast<std::uint64_t>(v->num);
}

bool build_model(const jvalue& root, trace_model& m, std::string& why) {
  if (root.k != jvalue::kind::object) {
    why = "top level is not an object";
    return false;
  }
  const jvalue* events = root.find("traceEvents");
  if (events == nullptr || events->k != jvalue::kind::array) {
    why = "missing traceEvents array";
    return false;
  }
  const jvalue* lhws = root.find("lhws");
  if (lhws == nullptr || lhws->k != jvalue::kind::object) {
    why = "missing lhws metadata object (not an lhws trace?)";
    return false;
  }
  m.schema = unum_or(lhws->find("schema"), 0);
  if (m.schema != 1) {
    why = "unsupported lhws schema version " + std::to_string(m.schema);
    return false;
  }
  m.meta_workers = unum_or(lhws->find("workers"), 0);
  m.max_concurrent_suspended =
      unum_or(lhws->find("max_concurrent_suspended"), 0);
  m.dropped_events = unum_or(lhws->find("dropped_events"), 0);
  if (const jvalue* eng = lhws->find("engine");
      eng != nullptr && eng->k == jvalue::kind::string) {
    m.engine = eng->str;
  }
  if (const jvalue* alloc = lhws->find("alloc");
      alloc != nullptr && alloc->k == jvalue::kind::object) {
    m.has_alloc = true;
    m.alloc_hits = unum_or(alloc->find("magazine_hits"), 0);
    m.alloc_misses = unum_or(alloc->find("magazine_misses"), 0);
    m.alloc_remote_pushes = unum_or(alloc->find("remote_pushes"), 0);
    m.alloc_remote_drained = unum_or(alloc->find("remote_drained"), 0);
    m.alloc_fallback = unum_or(alloc->find("fallback_allocs"), 0);
    m.alloc_slab_bytes = unum_or(alloc->find("slab_bytes"), 0);
  }
  m.span_records_dropped = unum_or(lhws->find("span_records_dropped"), 0);
  if (const jvalue* sp = lhws->find("spans");
      sp != nullptr && sp->k == jvalue::kind::array) {
    for (const jvalue& s : *sp->arr) {
      if (s.k != jvalue::kind::object) {
        why = "spans entry is not an object";
        return false;
      }
      span_entry e;
      e.trace_id = unum_or(s.find("trace_id"), 0);
      e.span = static_cast<std::uint32_t>(unum_or(s.find("span"), 0));
      e.parent = static_cast<std::uint32_t>(unum_or(s.find("parent"), 0));
      if (const jvalue* k = s.find("kind");
          k != nullptr && k->k == jvalue::kind::string) {
        e.kind = k->str;
      }
      e.arm_ns = static_cast<std::int64_t>(num_or(s.find("arm_ns"), 0));
      e.fire_ns = static_cast<std::int64_t>(num_or(s.find("fire_ns"), 0));
      e.drain_ns = static_cast<std::int64_t>(num_or(s.find("drain_ns"), 0));
      e.exec_ns = static_cast<std::int64_t>(num_or(s.find("exec_ns"), 0));
      e.hops = unum_or(s.find("hops"), 0);
      e.shard = static_cast<std::uint32_t>(unum_or(s.find("shard"), 0));
      m.spans.push_back(std::move(e));
    }
  }
  if (const jvalue* rq = lhws->find("requests");
      rq != nullptr && rq->k == jvalue::kind::array) {
    for (const jvalue& r : *rq->arr) {
      if (r.k != jvalue::kind::object) {
        why = "requests entry is not an object";
        return false;
      }
      request_entry e;
      e.trace_id = unum_or(r.find("trace_id"), 0);
      e.root_span = static_cast<std::uint32_t>(unum_or(r.find("root_span"), 0));
      e.remote_parent =
          static_cast<std::uint32_t>(unum_or(r.find("remote_parent"), 0));
      e.begin_ns = static_cast<std::int64_t>(num_or(r.find("begin_ns"), 0));
      e.end_ns = static_cast<std::int64_t>(num_or(r.find("end_ns"), 0));
      e.running_ns =
          static_cast<std::int64_t>(num_or(r.find("running_ns"), 0));
      e.deque_ns = static_cast<std::int64_t>(num_or(r.find("deque_ns"), 0));
      e.delta_ns = static_cast<std::int64_t>(num_or(r.find("delta_ns"), 0));
      e.wake_ns = static_cast<std::int64_t>(num_or(r.find("wake_ns"), 0));
      e.spans = unum_or(r.find("spans"), 0);
      e.hops = unum_or(r.find("hops"), 0);
      m.requests.push_back(e);
    }
  }
  if (const jvalue* pw = lhws->find("per_worker");
      pw != nullptr && pw->k == jvalue::kind::array) {
    m.has_meta_stats = true;
    std::uint32_t idx = 0;
    for (const jvalue& w : *pw->arr) {
      if (w.k != jvalue::kind::object) {
        why = "per_worker entry is not an object";
        return false;
      }
      worker_summary& ws = m.workers[idx];
      ws.max_deques_owned = unum_or(w.find("max_deques_owned"), 0);
      ws.steal_attempts = unum_or(w.find("steal_attempts"), 0);
      ws.successful_steals = unum_or(w.find("successful_steals"), 0);
      ws.failed_empty = unum_or(w.find("failed_empty"), 0);
      ws.failed_contended = unum_or(w.find("failed_contended"), 0);
      ws.parks = unum_or(w.find("parks"), 0);
      ws.park_timeouts = unum_or(w.find("park_timeouts"), 0);
      ws.unparks = unum_or(w.find("unparks"), 0);
      ws.registry_republishes = unum_or(w.find("registry_republishes"), 0);
      ws.suspensions_meta = unum_or(w.find("suspensions"), 0);
      ++idx;
    }
  }

  for (const jvalue& ev : *events->arr) {
    if (ev.k != jvalue::kind::object) {
      why = "trace event is not an object";
      return false;
    }
    const jvalue* name = ev.find("name");
    const jvalue* ph = ev.find("ph");
    if (name == nullptr || name->k != jvalue::kind::string ||
        ph == nullptr || ph->k != jvalue::kind::string ||
        ev.find("pid") == nullptr || ev.find("tid") == nullptr) {
      why = "trace event missing required name/ph/pid/tid fields";
      return false;
    }
    if (ph->str == "M") continue;  // metadata events carry no ts
    // Span flows and request slices live on synthetic rows (reactor /
    // requests); the authoritative copies are in the "lhws" object, so
    // they don't feed the per-worker aggregation.
    if (const jvalue* cat = ev.find("cat");
        cat != nullptr && cat->k == jvalue::kind::string &&
        (cat->str == "span" || cat->str == "request")) {
      continue;
    }
    if (ev.find("ts") == nullptr) {
      why = "non-metadata trace event missing ts";
      return false;
    }
    const double ts = num_or(ev.find("ts"), 0);
    const auto tid =
        static_cast<std::uint32_t>(num_or(ev.find("tid"), 0));
    const double dur = num_or(ev.find("dur"), 0);
    if (!m.has_span || ts < m.first_ts_us) m.first_ts_us = ts;
    if (!m.has_span || ts + dur > m.last_ts_us) m.last_ts_us = ts + dur;
    m.has_span = true;

    if (ph->str == "C") {
      if (name->str.find("deques_owned") != std::string::npos) {
        const jvalue* args = ev.find("args");
        const std::uint64_t v =
            args != nullptr ? unum_or(args->find("deques_owned"), 0) : 0;
        worker_summary& ws = m.workers[tid];
        ws.max_deques_sampled = std::max(ws.max_deques_sampled, v);
      }
      continue;
    }

    worker_summary& ws = m.workers[tid];
    if (name->str == "segment" || name->str == "batch") {
      ws.busy_us += dur;
      ws.segments += 1;
    } else if (name->str == "blocked") {
      ws.blocked_us += dur;
    } else if (name->str == "park") {
      ws.parked_us += dur;
    } else if (name->str == "steal") {
      ws.steals += 1;
    } else if (name->str == "switch") {
      ws.switches += 1;
    } else if (name->str == "suspend") {
      ws.suspends += 1;
    } else if (name->str == "resume") {
      const jvalue* args = ev.find("args");
      ws.resumes += args != nullptr ? unum_or(args->find("n"), 1) : 1;
    } else if (name->str == "wake") {
      const jvalue* args = ev.find("args");
      m.wake_ns.push_back(args != nullptr ? unum_or(args->find("n"), 0) : 0);
    } else if (name->str == "io_wake") {
      // Duration = observed delta of a suspended io op (arm -> completion);
      // args.n identifies the op (op_kind + 1).
      const jvalue* args = ev.find("args");
      const std::uint64_t n =
          args != nullptr ? unum_or(args->find("n"), 0) : 0;
      if (n >= 1 && n <= kNumIoOps) {
        m.io_wake_ns[n - 1].push_back(
            static_cast<std::uint64_t>(dur * 1000.0));  // us -> ns
      }
    }
  }
  return true;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

// ---------------------------------------------------------------------------
// Truncated-trace salvage: a crash mid-write leaves a syntactically broken
// document. Recover every complete event object from the traceEvents array
// (balanced-brace scan, string-aware; each candidate is still re-parsed
// strictly) and synthesize a minimal root so the normal reporting path
// runs. Returns nullopt if not even one event can be recovered.
// ---------------------------------------------------------------------------
std::optional<jvalue> salvage_truncated(const std::string& text,
                                        std::size_t* salvaged) {
  const std::size_t key = text.find("\"traceEvents\"");
  if (key == std::string::npos) return std::nullopt;
  const std::size_t open = text.find('[', key);
  if (open == std::string::npos) return std::nullopt;

  jvalue events;
  events.k = jvalue::kind::array;
  events.arr = std::make_shared<jarray>();
  std::size_t i = open + 1;
  for (;;) {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
            text[i] == ',')) {
      ++i;
    }
    if (i >= text.size() || text[i] != '{') break;
    const std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t end = std::string::npos;
    for (std::size_t j = start; j < text.size(); ++j) {
      const char c = text[j];
      if (in_string) {
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          end = j + 1;
          break;
        }
      }
    }
    if (end == std::string::npos) break;  // truncated mid-object: stop here
    json_parser event_parser(std::string_view(text).substr(start, end - start));
    auto ev = event_parser.parse(nullptr);
    if (!ev) break;
    events.arr->push_back(std::move(*ev));
    i = end;
  }
  if (events.arr->empty()) return std::nullopt;
  *salvaged = events.arr->size();

  // Minimal metadata stand-in: the real "lhws" object lives at the end of
  // the document and is gone in any truncation worth salvaging.
  jvalue meta;
  meta.k = jvalue::kind::object;
  meta.obj = std::make_shared<jobject>();
  jvalue schema;
  schema.k = jvalue::kind::number;
  schema.num = 1.0;
  (*meta.obj)["schema"] = std::move(schema);

  jvalue root;
  root.k = jvalue::kind::object;
  root.obj = std::make_shared<jobject>();
  (*root.obj)["traceEvents"] = std::move(events);
  (*root.obj)["lhws"] = std::move(meta);
  return root;
}

int usage() {
  std::fprintf(stderr,
               "usage: lhws_trace_stats [trace.json|-]... [--check-bounds] "
               "[--spans] [--u N] [--steal-factor F] [--json]\n");
  return 2;
}

// Folds `src` (one per-node trace of a cluster run) into `dst`. Worker rows
// are re-keyed past `tid_base` so per-worker tables stay distinct; span and
// request records concatenate unchanged (their ids are node-seeded and
// globally unique, so the closure audit just works on the union).
void merge_model(trace_model& dst, trace_model&& src, std::uint32_t tid_base) {
  for (auto& [tid, ws] : src.workers) dst.workers[tid_base + tid] = ws;
  dst.wake_ns.insert(dst.wake_ns.end(), src.wake_ns.begin(),
                     src.wake_ns.end());
  for (std::size_t op = 0; op < kNumIoOps; ++op) {
    dst.io_wake_ns[op].insert(dst.io_wake_ns[op].end(),
                              src.io_wake_ns[op].begin(),
                              src.io_wake_ns[op].end());
  }
  dst.spans.insert(dst.spans.end(),
                   std::make_move_iterator(src.spans.begin()),
                   std::make_move_iterator(src.spans.end()));
  dst.requests.insert(dst.requests.end(), src.requests.begin(),
                      src.requests.end());
  dst.span_records_dropped += src.span_records_dropped;
  dst.dropped_events += src.dropped_events;
  if (src.has_span) {
    if (!dst.has_span || src.first_ts_us < dst.first_ts_us) {
      dst.first_ts_us = src.first_ts_us;
    }
    if (!dst.has_span || src.last_ts_us > dst.last_ts_us) {
      dst.last_ts_us = src.last_ts_us;
    }
    dst.has_span = true;
  }
  dst.meta_workers += src.meta_workers;
  dst.max_concurrent_suspended =
      std::max(dst.max_concurrent_suspended, src.max_concurrent_suspended);
  dst.has_meta_stats = dst.has_meta_stats && src.has_meta_stats;
  if (dst.engine != src.engine) dst.engine = "mixed";
  if (src.has_alloc) {
    dst.has_alloc = true;
    dst.alloc_hits += src.alloc_hits;
    dst.alloc_misses += src.alloc_misses;
    dst.alloc_remote_pushes += src.alloc_remote_pushes;
    dst.alloc_remote_drained += src.alloc_remote_drained;
    dst.alloc_fallback += src.alloc_fallback;
    dst.alloc_slab_bytes += src.alloc_slab_bytes;
  }
}

// --spans audit (see the file header). Returns 0 ok / 1 violation.
int audit_spans(const trace_model& m, std::uint64_t u, double steal_factor) {
  if (m.requests.empty()) {
    std::fprintf(stderr,
                 "lhws_trace_stats: --spans: no request records in trace "
                 "(run with --spans / scheduler_options::spans?)\n");
    return 1;
  }
  int rc = 0;

  // --- Tree closure: every span's parent must be a request root or another
  // span of the same trace (>= 99%). ------------------------------------
  std::map<std::uint64_t, std::vector<std::uint32_t>> ids_by_trace;
  for (const request_entry& r : m.requests) {
    ids_by_trace[r.trace_id].push_back(r.root_span);
  }
  for (const span_entry& s : m.spans) {
    ids_by_trace[s.trace_id].push_back(s.span);
  }
  for (auto& [tid, ids] : ids_by_trace) std::sort(ids.begin(), ids.end());
  std::size_t orphans = 0;
  for (const span_entry& s : m.spans) {
    const auto& ids = ids_by_trace[s.trace_id];
    if (!std::binary_search(ids.begin(), ids.end(), s.parent)) ++orphans;
  }
  const double closed =
      m.spans.empty()
          ? 1.0
          : 1.0 - static_cast<double>(orphans) /
                      static_cast<double>(m.spans.size());
  std::printf("spans: %zu records across %zu requests; closed trees %.2f%% "
              "(%zu orphans); %llu dropped\n",
              m.spans.size(), m.requests.size(), 100.0 * closed, orphans,
              static_cast<unsigned long long>(m.span_records_dropped));
  if (closed < 0.99) {
    std::fprintf(stderr,
                 "SPAN VIOLATION: only %.2f%% of spans close into a request "
                 "tree (need >= 99%%)\n",
                 100.0 * closed);
    rc = 1;
  }

  // --- Per-shard reactor lanes: io completions grouped by the shard
  // thread that delivered them (sharded reactor, DESIGN.md §14). ---------
  {
    std::map<std::uint32_t, std::uint64_t> by_shard;
    for (const span_entry& s : m.spans) {
      if (s.kind.rfind("io_", 0) == 0) ++by_shard[s.shard];
    }
    if (!by_shard.empty()) {
      std::printf("reactor lanes: %u shard(s) delivered io completions\n",
                  static_cast<unsigned>(by_shard.size()));
      for (const auto& [shard, count] : by_shard) {
        std::printf("  reactor/%u: %llu io spans\n", shard,
                    static_cast<unsigned long long>(count));
      }
    }
  }

  // --- Peer lanes: remote spans (cluster mode, DESIGN.md §15) grouped by
  // the node that executed the work; shard carries the executing node id.
  {
    std::map<std::uint32_t, std::uint64_t> by_peer;
    std::map<std::uint32_t, std::int64_t> delta_by_peer;
    for (const span_entry& s : m.spans) {
      if (s.kind != "remote") continue;
      ++by_peer[s.shard];
      delta_by_peer[s.shard] += s.fire_ns - s.arm_ns;
    }
    if (!by_peer.empty()) {
      std::printf("peer lanes: remote spans executed on %u node(s)\n",
                  static_cast<unsigned>(by_peer.size()));
      for (const auto& [peer, count] : by_peer) {
        std::printf("  peer/%u: %llu remote spans, mean delta %.1fus\n",
                    peer, static_cast<unsigned long long>(count),
                    static_cast<double>(delta_by_peer[peer]) /
                        static_cast<double>(count) / 1000.0);
      }
    }
  }

  // --- Component sums: end-to-end latency must equal the critical-path
  // decomposition within max(1%, 20us). ----------------------------------
  std::size_t sum_violations = 0;
  double worst_err_us = 0.0;
  std::vector<std::uint64_t> e2e, running, deque_w, delta_w, wake_w;
  for (const request_entry& r : m.requests) {
    const std::int64_t total = r.end_ns - r.begin_ns;
    const std::int64_t parts =
        r.running_ns + r.deque_ns + r.delta_ns + r.wake_ns;
    const double err_ns = std::abs(static_cast<double>(total - parts));
    const double tol_ns =
        std::max(0.01 * static_cast<double>(total), 20000.0);
    worst_err_us = std::max(worst_err_us, err_ns / 1000.0);
    if (err_ns > tol_ns) ++sum_violations;
    e2e.push_back(static_cast<std::uint64_t>(std::max<std::int64_t>(total, 0)));
    running.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(r.running_ns, 0)));
    deque_w.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(r.deque_ns, 0)));
    delta_w.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(r.delta_ns, 0)));
    wake_w.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(r.wake_ns, 0)));
  }
  auto report = [](const char* label, std::vector<std::uint64_t>& v) {
    std::sort(v.begin(), v.end());
    std::printf("  %-11s p50=%9.1fus  p99=%9.1fus  p999=%9.1fus\n", label,
                static_cast<double>(percentile(v, 0.50)) / 1000.0,
                static_cast<double>(percentile(v, 0.99)) / 1000.0,
                static_cast<double>(percentile(v, 0.999)) / 1000.0);
  };
  std::printf("request critical-path breakdown (n=%zu):\n", e2e.size());
  report("e2e", e2e);
  report("running", running);
  report("deque-wait", deque_w);
  report("delta-wait", delta_w);
  report("wake", wake_w);
  if (sum_violations > 0) {
    std::fprintf(stderr,
                 "SPAN VIOLATION: %zu requests whose component sum misses "
                 "end-to-end latency by more than max(1%%, 20us) "
                 "(worst %.1fus)\n",
                 sum_violations, worst_err_us);
    rc = 1;
  } else {
    std::printf("component sums OK: worst error %.1fus\n", worst_err_us);
  }

  // --- Thm 2-3 tripwire: per-request steal hops vs the suspension-driven
  // overhead shape factor * (spans+1) * U * (1 + lg U). ------------------
  const double ueff = static_cast<double>(std::max<std::uint64_t>(u, 1));
  std::size_t hop_violations = 0;
  double worst_budget = 0.0;
  std::uint64_t worst_hops = 0;
  for (const request_entry& r : m.requests) {
    const double budget = steal_factor *
                          static_cast<double>(r.spans + 1) * ueff *
                          (1.0 + std::log2(ueff));
    if (static_cast<double>(r.hops) > budget) {
      ++hop_violations;
      if (r.hops > worst_hops) {
        worst_hops = r.hops;
        worst_budget = budget;
      }
    }
  }
  if (hop_violations > 0) {
    std::fprintf(stderr,
                 "SPAN VIOLATION (steal budget): %zu requests exceed "
                 "factor*(spans+1)*U*(1+lgU) hops (worst %llu > %.0f)\n",
                 hop_violations,
                 static_cast<unsigned long long>(worst_hops), worst_budget);
    rc = 1;
  } else {
    std::printf("per-request hop budget OK (factor=%.0f, U=%.0f)\n",
                steal_factor, ueff);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool check_bounds = false;
  bool spans_mode = false;
  bool json_out = false;
  std::uint64_t u_override = 0;
  bool have_u = false;
  double steal_factor = 64.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-bounds") {
      check_bounds = true;
    } else if (arg == "--spans") {
      spans_mode = true;
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--u") {
      if (++i >= argc) return usage();
      u_override =
          static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
      have_u = true;
    } else if (arg == "--steal-factor") {
      if (++i >= argc) return usage();
      steal_factor = std::strtod(argv[i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "lhws_trace_stats: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  trace_model m;
  bool salvaged = false;
  bool first_file = true;
  for (const std::string& path : paths) {
    std::string text;
    if (path == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      text = ss.str();
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "lhws_trace_stats: cannot open %s\n",
                     path.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }

    std::string why;
    json_parser parser(text);
    auto root = parser.parse(&why);
    std::size_t salvaged_events = 0;
    if (!root) {
      // Truncated mid-write? Recover what parses before giving up.
      root = salvage_truncated(text, &salvaged_events);
      if (!root) {
        std::fprintf(stderr, "lhws_trace_stats: %s: invalid JSON: %s\n",
                     path.c_str(), why.c_str());
        return 2;
      }
      salvaged = true;
      std::fprintf(stderr,
                   "lhws_trace_stats: warning: %s is truncated; salvaged "
                   "%zu complete events, run metadata lost\n",
                   path.c_str(), salvaged_events);
    }
    trace_model file_model;
    if (!build_model(*root, file_model, why)) {
      std::fprintf(stderr, "lhws_trace_stats: %s: schema check failed: %s\n",
                   path.c_str(), why.c_str());
      return 2;
    }
    if (first_file) {
      m = std::move(file_model);
      first_file = false;
    } else {
      // Re-key the new file's worker rows past the ones already merged so
      // per-worker tables from different nodes never collide.
      const std::uint32_t tid_base =
          m.workers.empty() ? 0 : m.workers.rbegin()->first + 1;
      merge_model(m, std::move(file_model), tid_base);
    }
  }

  std::sort(m.wake_ns.begin(), m.wake_ns.end());
  const std::uint64_t wake_p50 = percentile(m.wake_ns, 0.50);
  const std::uint64_t wake_p95 = percentile(m.wake_ns, 0.95);
  const std::uint64_t wake_p99 = percentile(m.wake_ns, 0.99);
  for (auto& v : m.io_wake_ns) std::sort(v.begin(), v.end());
  const double span_us = m.has_span ? m.last_ts_us - m.first_ts_us : 0;

  std::uint64_t total_steals = 0;
  std::uint64_t total_attempts = 0;
  std::uint64_t total_suspensions = 0;
  std::uint64_t total_failed_empty = 0;
  std::uint64_t total_failed_contended = 0;
  std::uint64_t total_parks = 0;
  std::uint64_t total_park_timeouts = 0;
  std::uint64_t total_unparks = 0;
  std::uint64_t total_republishes = 0;
  std::uint64_t max_deques = 0;
  double total_parked_us = 0;
  for (const auto& [tid, ws] : m.workers) {
    total_steals += ws.successful_steals;
    total_attempts += ws.steal_attempts;
    total_suspensions += ws.suspensions_meta;
    total_failed_empty += ws.failed_empty;
    total_failed_contended += ws.failed_contended;
    total_parks += ws.parks;
    total_park_timeouts += ws.park_timeouts;
    total_unparks += ws.unparks;
    total_republishes += ws.registry_republishes;
    total_parked_us += ws.parked_us;
    max_deques = std::max(
        {max_deques, ws.max_deques_owned, ws.max_deques_sampled});
  }
  if (!m.has_meta_stats) {
    // Fall back to trace events when metadata has no per-worker stats.
    for (const auto& [tid, ws] : m.workers) total_steals += ws.steals;
  }

  // U for the audits: --u wins; otherwise the observed concurrent-suspension
  // peak from the run metadata.
  const std::uint64_t u =
      have_u ? u_override : m.max_concurrent_suspended;

  // Per-io-op observed-delta percentiles, shared by both output formats.
  std::string io_ops_json = "[";
  bool first_io = true;
  for (std::size_t op = 0; op < kNumIoOps; ++op) {
    auto& v = m.io_wake_ns[op];
    if (v.empty()) continue;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s{\"op\":\"%s\",\"n\":%zu,\"p50_ns\":%llu,"
                  "\"p95_ns\":%llu,\"p99_ns\":%llu}",
                  first_io ? "" : ",", kIoOpNames[op], v.size(),
                  static_cast<unsigned long long>(percentile(v, 0.50)),
                  static_cast<unsigned long long>(percentile(v, 0.95)),
                  static_cast<unsigned long long>(percentile(v, 0.99)));
    io_ops_json += buf;
    first_io = false;
  }
  io_ops_json += "]";

  std::string alloc_json = "null";
  if (m.has_alloc) {
    char abuf[256];
    std::snprintf(abuf, sizeof abuf,
                  "{\"magazine_hits\":%llu,\"magazine_misses\":%llu,"
                  "\"remote_pushes\":%llu,\"remote_drained\":%llu,"
                  "\"fallback_allocs\":%llu,\"slab_bytes\":%llu}",
                  static_cast<unsigned long long>(m.alloc_hits),
                  static_cast<unsigned long long>(m.alloc_misses),
                  static_cast<unsigned long long>(m.alloc_remote_pushes),
                  static_cast<unsigned long long>(m.alloc_remote_drained),
                  static_cast<unsigned long long>(m.alloc_fallback),
                  static_cast<unsigned long long>(m.alloc_slab_bytes));
    alloc_json = abuf;
  }

  if (json_out) {
    std::printf("{\"lhws_trace_stats\":1,\"engine\":\"%s\",\"workers\":%llu,"
                "\"span_us\":%.1f,\"wake_p50_ns\":%llu,\"wake_p95_ns\":%llu,"
                "\"wake_p99_ns\":%llu,\"max_deques_per_worker\":%llu,"
                "\"successful_steals\":%llu,\"steal_attempts\":%llu,"
                "\"failed_empty\":%llu,\"failed_contended\":%llu,"
                "\"parks\":%llu,\"park_timeouts\":%llu,\"unparks\":%llu,"
                "\"parked_us\":%.1f,\"registry_republishes\":%llu,"
                "\"suspensions\":%llu,\"observed_u\":%llu,"
                "\"dropped_events\":%llu,\"io_ops\":%s,\"alloc\":%s}\n",
                m.engine.c_str(),
                static_cast<unsigned long long>(m.meta_workers), span_us,
                static_cast<unsigned long long>(wake_p50),
                static_cast<unsigned long long>(wake_p95),
                static_cast<unsigned long long>(wake_p99),
                static_cast<unsigned long long>(max_deques),
                static_cast<unsigned long long>(total_steals),
                static_cast<unsigned long long>(total_attempts),
                static_cast<unsigned long long>(total_failed_empty),
                static_cast<unsigned long long>(total_failed_contended),
                static_cast<unsigned long long>(total_parks),
                static_cast<unsigned long long>(total_park_timeouts),
                static_cast<unsigned long long>(total_unparks),
                total_parked_us,
                static_cast<unsigned long long>(total_republishes),
                static_cast<unsigned long long>(total_suspensions),
                static_cast<unsigned long long>(m.max_concurrent_suspended),
                static_cast<unsigned long long>(m.dropped_events),
                io_ops_json.c_str(), alloc_json.c_str());
  } else {
    std::string label = paths[0];
    for (std::size_t i = 1; i < paths.size(); ++i) label += "," + paths[i];
    std::printf("trace: %s  engine=%s  workers=%llu  span=%.1fms  "
                "dropped_events=%llu\n",
                label.c_str(), m.engine.c_str(),
                static_cast<unsigned long long>(m.meta_workers),
                span_us / 1000.0,
                static_cast<unsigned long long>(m.dropped_events));
    std::printf("%4s %10s %8s %8s %9s %9s %9s %8s\n", "tid", "busy_ms",
                "util%", "blocked", "segments", "steals", "suspends",
                "maxdq");
    for (const auto& [tid, ws] : m.workers) {
      const double util =
          span_us > 0 ? 100.0 * ws.busy_us / span_us : 0.0;
      std::printf("%4u %10.2f %7.1f%% %7.1fms %9llu %9llu %9llu %8llu\n",
                  tid, ws.busy_us / 1000.0, util, ws.blocked_us / 1000.0,
                  static_cast<unsigned long long>(ws.segments),
                  static_cast<unsigned long long>(
                      m.has_meta_stats ? ws.successful_steals : ws.steals),
                  static_cast<unsigned long long>(ws.suspends),
                  static_cast<unsigned long long>(std::max(
                      ws.max_deques_owned, ws.max_deques_sampled)));
    }
    std::printf("wake latency (n=%zu): p50=%.1fus p95=%.1fus p99=%.1fus\n",
                m.wake_ns.size(), static_cast<double>(wake_p50) / 1000.0,
                static_cast<double>(wake_p95) / 1000.0,
                static_cast<double>(wake_p99) / 1000.0);
    for (std::size_t op = 0; op < kNumIoOps; ++op) {
      auto& v = m.io_wake_ns[op];
      if (v.empty()) continue;
      std::printf("io %-7s observed delta (n=%zu): p50=%.1fus p95=%.1fus "
                  "p99=%.1fus\n",
                  kIoOpNames[op], v.size(),
                  static_cast<double>(percentile(v, 0.50)) / 1000.0,
                  static_cast<double>(percentile(v, 0.95)) / 1000.0,
                  static_cast<double>(percentile(v, 0.99)) / 1000.0);
    }
    std::printf("steals: %llu successful / %llu attempts "
                "(failed: %llu empty, %llu contended); suspensions S=%llu; "
                "observed U<=%llu\n",
                static_cast<unsigned long long>(total_steals),
                static_cast<unsigned long long>(total_attempts),
                static_cast<unsigned long long>(total_failed_empty),
                static_cast<unsigned long long>(total_failed_contended),
                static_cast<unsigned long long>(total_suspensions),
                static_cast<unsigned long long>(m.max_concurrent_suspended));
    std::printf("parking: %llu parks (%llu timeouts), %llu unparks, "
                "%.1fms parked; registry republishes=%llu\n",
                static_cast<unsigned long long>(total_parks),
                static_cast<unsigned long long>(total_park_timeouts),
                static_cast<unsigned long long>(total_unparks),
                total_parked_us / 1000.0,
                static_cast<unsigned long long>(total_republishes));
    if (m.has_alloc) {
      const std::uint64_t eligible = m.alloc_hits + m.alloc_misses;
      const double hit_rate =
          eligible > 0
              ? 100.0 * static_cast<double>(m.alloc_hits) /
                    static_cast<double>(eligible)
              : 0.0;
      std::printf("alloc: magazine hit rate %.1f%% (%llu hits, %llu misses); "
                  "remote frees %llu pushed / %llu drained; "
                  "fallback %llu; slab %.1f KiB\n",
                  hit_rate, static_cast<unsigned long long>(m.alloc_hits),
                  static_cast<unsigned long long>(m.alloc_misses),
                  static_cast<unsigned long long>(m.alloc_remote_pushes),
                  static_cast<unsigned long long>(m.alloc_remote_drained),
                  static_cast<unsigned long long>(m.alloc_fallback),
                  static_cast<double>(m.alloc_slab_bytes) / 1024.0);
    }
  }

  int rc = 0;
  if (spans_mode) {
    if (salvaged) {
      std::fprintf(stderr,
                   "lhws_trace_stats: --spans audit skipped: span metadata "
                   "was lost in the truncation\n");
    } else {
      rc = audit_spans(m, u, steal_factor);
    }
  }
  if (!check_bounds) return rc;
  if (salvaged) {
    std::fprintf(stderr,
                 "lhws_trace_stats: bound audit skipped: run metadata was "
                 "lost in the truncation\n");
    return rc;
  }

  // --- Lemma 7: max deques per worker <= U + 1 ---------------------------
  if (m.engine == "ws") {
    // The blocking engine never switches deques; bound is trivially 1.
    if (max_deques > 1) {
      std::fprintf(stderr,
                   "BOUND VIOLATION: ws engine worker owned %llu deques\n",
                   static_cast<unsigned long long>(max_deques));
      rc = 1;
    }
  } else if (u == 0 && total_suspensions > 0) {
    std::fprintf(stderr,
                 "lhws_trace_stats: cannot audit Lemma 7: no --u given and "
                 "no observed suspension width in metadata\n");
    rc = 1;
  } else {
    const std::uint64_t bound = u + 1;
    if (max_deques > bound) {
      std::fprintf(
          stderr,
          "BOUND VIOLATION (Lemma 7): max deques per worker %llu > U+1 = "
          "%llu (U=%llu)\n",
          static_cast<unsigned long long>(max_deques),
          static_cast<unsigned long long>(bound),
          static_cast<unsigned long long>(u));
      rc = 1;
    } else {
      std::printf("lemma7 OK: max deques per worker %llu <= U+1 = %llu\n",
                  static_cast<unsigned long long>(max_deques),
                  static_cast<unsigned long long>(bound));
    }
  }

  // --- Steal budget: successful steals vs P * S*U*(1+lg U) ---------------
  if (m.engine != "ws" && m.meta_workers > 0) {
    const double ueff = static_cast<double>(std::max<std::uint64_t>(u, 1));
    const double budget =
        steal_factor * static_cast<double>(m.meta_workers) *
        (static_cast<double>(total_suspensions) * ueff *
             (1.0 + std::log2(ueff)) +
         static_cast<double>(m.meta_workers));
    if (static_cast<double>(total_steals) > budget) {
      std::fprintf(stderr,
                   "BOUND VIOLATION (steal budget): %llu successful steals > "
                   "%.0f (factor %.0f * P * (S*U*(1+lgU) + P))\n",
                   static_cast<unsigned long long>(total_steals), budget,
                   steal_factor);
      rc = 1;
    } else {
      std::printf("steal budget OK: %llu <= %.0f\n",
                  static_cast<unsigned long long>(total_steals), budget);
    }
  }

  return rc;
}
