// lhws_simulate — run a dag (JSON from lhws_dag_gen or elsewhere) through
// the schedulers and report metrics.
//
//   lhws_simulate <dag.json|-> [--engine lhws|ws|greedy] [--workers P]
//                 [--seed S] [--policy deque|worker] [--injection pfor|serial]
//                 [--fresh-deque] [--etree] [--validate]
//
// The default engine is lhws. `--validate` certifies the produced schedule
// (validate_execution) and exits non-zero on an illegal schedule.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dag/analysis.hpp"
#include "dag/greedy_schedule.hpp"
#include "dag/json_io.hpp"
#include "sim/lhws_sim.hpp"
#include "sim/ws_sim.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lhws_simulate <dag.json|-> [--engine lhws|ws|greedy] "
      "[--workers P] [--seed S]\n                     [--policy deque|worker] "
      "[--injection pfor|serial] [--fresh-deque]\n                     "
      "[--etree] [--validate]\n");
  return 2;
}

void print_metrics(const lhws::sim::sim_metrics& m) {
  std::printf("rounds                 %llu\n",
              static_cast<unsigned long long>(m.rounds));
  std::printf("work_tokens            %llu\n",
              static_cast<unsigned long long>(m.work_tokens));
  std::printf("pfor_vertices          %llu\n",
              static_cast<unsigned long long>(m.pfor_vertices));
  std::printf("switch_tokens          %llu\n",
              static_cast<unsigned long long>(m.switch_tokens));
  std::printf("steal_attempts         %llu (failed %llu)\n",
              static_cast<unsigned long long>(m.steal_attempts),
              static_cast<unsigned long long>(m.failed_steals));
  std::printf("blocked_rounds         %llu\n",
              static_cast<unsigned long long>(m.blocked_rounds));
  std::printf("injection_rounds       %llu\n",
              static_cast<unsigned long long>(m.injection_rounds));
  std::printf("max_suspended          %llu\n",
              static_cast<unsigned long long>(m.max_suspended));
  std::printf("max_deques_per_worker  %llu\n",
              static_cast<unsigned long long>(m.max_deques_per_worker));
  std::printf("total_deques_allocated %llu\n",
              static_cast<unsigned long long>(m.total_deques_allocated));
  if (m.enabling_span > 0) {
    std::printf("enabling_span          %llu\n",
                static_cast<unsigned long long>(m.enabling_span));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  std::string engine = "lhws";
  lhws::sim::sim_config cfg;
  bool validate = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      engine = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.workers = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.policy = std::strcmp(v, "worker") == 0
                       ? lhws::sim::steal_policy::random_worker
                       : lhws::sim::steal_policy::random_deque;
    } else if (arg == "--injection") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.injection = std::strcmp(v, "serial") == 0
                          ? lhws::sim::resume_injection::serial_repush
                          : lhws::sim::resume_injection::pfor_tree;
    } else if (arg == "--fresh-deque") {
      cfg.fresh_deque_on_resume = true;
    } else if (arg == "--etree") {
      cfg.build_enabling_tree = true;
    } else if (arg == "--validate") {
      validate = true;
    } else {
      return usage();
    }
  }

  // Load the dag.
  std::string text;
  {
    const std::string path = argv[1];
    if (path == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      text = buf.str();
    } else {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }
  std::string why;
  auto dag = lhws::dag::from_json(text, &why);
  if (!dag.has_value()) {
    std::fprintf(stderr, "bad dag: %s\n", why.c_str());
    return 1;
  }

  const auto s = lhws::dag::summarize(*dag);
  std::printf("dag: vertices=%zu heavy=%zu W=%llu S=%llu\n",
              dag->num_vertices(), s.heavy_edges,
              static_cast<unsigned long long>(s.work),
              static_cast<unsigned long long>(s.span));
  std::printf("engine=%s workers=%llu seed=%llu\n\n", engine.c_str(),
              static_cast<unsigned long long>(cfg.workers),
              static_cast<unsigned long long>(cfg.seed));

  if (engine == "greedy") {
    const auto res = lhws::dag::greedy_schedule(*dag, cfg.workers);
    std::printf("length                 %llu\n",
                static_cast<unsigned long long>(res.length));
    std::printf("theorem1_bound         %llu\n",
                static_cast<unsigned long long>(
                    lhws::dag::theorem1_bound(*dag, cfg.workers)));
    std::printf("busy/idle/all-idle     %llu/%llu/%llu\n",
                static_cast<unsigned long long>(res.busy_steps),
                static_cast<unsigned long long>(res.idle_steps),
                static_cast<unsigned long long>(res.all_idle_steps));
    if (validate &&
        !lhws::sim::validate_execution(*dag, res.step_of, &why)) {
      std::fprintf(stderr, "ILLEGAL SCHEDULE: %s\n", why.c_str());
      return 1;
    }
    return 0;
  }

  if (engine == "lhws") {
    lhws::sim::lhws_simulator sim(*dag, cfg);
    print_metrics(sim.run());
    if (validate && !lhws::sim::validate_execution(
                        *dag, sim.executor().execution_rounds(), &why)) {
      std::fprintf(stderr, "ILLEGAL SCHEDULE: %s\n", why.c_str());
      return 1;
    }
    return 0;
  }
  if (engine == "ws") {
    lhws::sim::ws_simulator sim(*dag, cfg);
    print_metrics(sim.run());
    if (validate && !lhws::sim::validate_execution(
                        *dag, sim.executor().execution_rounds(), &why)) {
      std::fprintf(stderr, "ILLEGAL SCHEDULE: %s\n", why.c_str());
      return 1;
    }
    return 0;
  }
  return usage();
}
