// lhws_dag_gen — generate workload dags from the built-in families and
// emit them as JSON (or DOT) for use with lhws_simulate or external tools.
//
//   lhws_dag_gen <family> [options] > dag.json
//
// Families and their options:
//   map-reduce   --leaves N --delta D --leaf-work K
//   map-reduce-fib --leaves N --delta D --fib F
//   server       --requests N --delta D --handler K
//   fib          --n F
//   fork-join    --depth D --leaf-work K
//   chain        --length L --heavy-every K --delta D
//   io-burst     --width N --delta D
//   random       --seed S --depth D --heavy-permille H --max-delta D
//
// Common options: --dot (emit Graphviz instead of JSON), --summary (print
// W/S/U facts to stderr).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "dag/analysis.hpp"
#include "dag/dot_export.hpp"
#include "dag/generators.hpp"
#include "dag/json_io.hpp"

namespace {

using namespace lhws::dag;

std::uint64_t opt(const std::map<std::string, std::uint64_t>& opts,
                  const std::string& key, std::uint64_t fallback) {
  const auto it = opts.find(key);
  return it == opts.end() ? fallback : it->second;
}

int usage() {
  std::fprintf(stderr,
               "usage: lhws_dag_gen <map-reduce|map-reduce-fib|server|fib|"
               "fork-join|chain|io-burst|random> [--key value ...] "
               "[--dot] [--summary]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string family = argv[1];

  std::map<std::string, std::uint64_t> opts;
  bool dot = false, summary = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      opts[arg.substr(2)] = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }

  generated_dag gen;
  if (family == "map-reduce") {
    gen = map_reduce_dag(opt(opts, "leaves", 64), opt(opts, "delta", 50),
                         opt(opts, "leaf-work", 3));
  } else if (family == "map-reduce-fib") {
    gen = map_reduce_fib_dag(opt(opts, "leaves", 64), opt(opts, "delta", 50),
                             static_cast<unsigned>(opt(opts, "fib", 8)));
  } else if (family == "server") {
    gen = server_dag(opt(opts, "requests", 32), opt(opts, "delta", 50),
                     opt(opts, "handler", 4));
  } else if (family == "fib") {
    gen = fib_dag(static_cast<unsigned>(opt(opts, "n", 12)));
  } else if (family == "fork-join") {
    gen = fork_join_tree(static_cast<unsigned>(opt(opts, "depth", 6)),
                         opt(opts, "leaf-work", 2));
  } else if (family == "chain") {
    gen = chain_dag(opt(opts, "length", 100), opt(opts, "heavy-every", 10),
                    opt(opts, "delta", 20));
  } else if (family == "io-burst") {
    gen = io_burst_dag(opt(opts, "width", 128), opt(opts, "delta", 50));
  } else if (family == "random") {
    gen = random_fork_join(opt(opts, "seed", 1),
                           static_cast<unsigned>(opt(opts, "depth", 7)),
                           static_cast<unsigned>(
                               opt(opts, "heavy-permille", 200)),
                           opt(opts, "max-delta", 30));
  } else {
    return usage();
  }

  if (summary) {
    const auto s = summarize(gen.graph);
    std::fprintf(stderr,
                 "family=%s vertices=%zu edges=%zu heavy=%zu W=%llu S=%llu"
                 " unweighted-S=%llu%s\n",
                 family.c_str(), gen.graph.num_vertices(),
                 gen.graph.num_edges(), s.heavy_edges,
                 static_cast<unsigned long long>(s.work),
                 static_cast<unsigned long long>(s.span),
                 static_cast<unsigned long long>(s.unweighted_span),
                 gen.expected_suspension_width.has_value()
                     ? (" U=" + std::to_string(*gen.expected_suspension_width))
                           .c_str()
                     : "");
  }

  if (dot) {
    std::cout << to_dot(gen.graph);
  } else {
    std::cout << to_json(gen.graph);
  }
  return 0;
}
