// Token-level backend: a C++-aware lexer plus a brace-scope classifier,
// strong enough to enforce the five invariants on this codebase without
// clang dev libraries. The AST backend (clang_backend.cpp) implements the
// same rules on the real AST when libTooling is available; this backend is
// what guarantees the invariants are enforced *everywhere*, including
// containers with no clang dev packages.
//
// Deliberate approximations (all conservative for this codebase's style,
// and all escapable via LHWS-LINT-ALLOW):
//   - a "function body" is a brace block introduced by `(...)` that is not
//     a control statement head; lambdas are `[...](...){ }` or `[...]{ }`;
//   - a guard's lifetime is its enclosing brace scope (early .unlock() is
//     not modeled);
//   - rule 4's operator-form detection tracks names declared as
//     `std::atomic<...>` / `model_atomic<...>` within the same file.
#include <algorithm>
#include <cctype>
#include <set>
#include <string>

#include "lint_core.hpp"

namespace lhws::lint {
namespace {

enum class tk : std::uint8_t { ident, number, str, chr, punct };

struct token {
  tk kind;
  std::string text;
  int line;
  int col;
};

// --- Lexer ----------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<token> lex(const std::string& src) {
  std::vector<token> out;
  int line = 1, col = 1;
  size_t i = 0;
  const size_t n = src.size();

  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    char c = src[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Preprocessor line (only when # is the first non-ws token on the line).
    if (c == '#' && col >= 1) {
      bool line_start = true;
      for (size_t j = i; j-- > 0;) {
        if (src[j] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        // Consume to end of line, honoring backslash continuations.
        while (i < n) {
          size_t eol = src.find('\n', i);
          if (eol == std::string::npos) {
            advance(n - i);
            break;
          }
          size_t last = eol;
          while (last > i &&
                 std::isspace(static_cast<unsigned char>(src[last - 1])) &&
                 src[last - 1] != '\n')
            --last;
          bool cont = last > i && src[last - 1] == '\\';
          advance(eol - i + 1);
          if (!cont) break;
        }
        continue;
      }
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t eol = src.find('\n', i);
      advance((eol == std::string::npos ? n : eol) - i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      advance((end == std::string::npos ? n : end + 2) - i);
      continue;
    }
    // Raw strings.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      std::string close = ")" + delim + "\"";
      size_t end = src.find(close, p);
      int l = line, cl = col;
      advance((end == std::string::npos ? n : end + close.size()) - i);
      out.push_back({tk::str, "R\"...\"", l, cl});
      continue;
    }
    // Strings / chars.
    if (c == '"' || c == '\'') {
      char q = c;
      int l = line, cl = col;
      size_t p = i + 1;
      while (p < n && src[p] != q) {
        if (src[p] == '\\') ++p;
        ++p;
      }
      advance((p < n ? p + 1 : n) - i);
      out.push_back({q == '"' ? tk::str : tk::chr, std::string(1, q), l, cl});
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(c)) {
      size_t p = i;
      while (p < n && ident_char(src[p])) ++p;
      out.push_back({tk::ident, src.substr(i, p - i), line, col});
      advance(p - i);
      continue;
    }
    // Numbers (incl. hex / separators / suffixes — coarse).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t p = i;
      while (p < n && (ident_char(src[p]) || src[p] == '\'' ||
                       ((src[p] == '+' || src[p] == '-') && p > i &&
                        (src[p - 1] == 'e' || src[p - 1] == 'E' ||
                         src[p - 1] == 'p' || src[p - 1] == 'P'))))
        ++p;
      out.push_back({tk::number, src.substr(i, p - i), line, col});
      advance(p - i);
      continue;
    }
    // Multi-char punctuators we care about.
    static const char* two[] = {"::", "->", "++", "--", "+=", "-=", "|=",
                                "&=", "^=", "<<", ">>", "<=", ">=", "==",
                                "!=", "&&", "||"};
    std::string t(1, c);
    if (i + 1 < n) {
      std::string pair = src.substr(i, 2);
      for (const char* p2 : two) {
        if (pair == p2) {
          t = pair;
          break;
        }
      }
    }
    out.push_back({tk::punct, t, line, col});
    advance(t.size());
  }
  return out;
}

// --- Scope tree -----------------------------------------------------------

enum class scope_kind : std::uint8_t {
  file,
  function,  // free/member function body (incl. ctor bodies)
  lambda,    // lambda body
  klass,     // class/struct/union/enum body
  block,     // control statement or bare block — transparent
  init,      // braced initializer — transparent
  ns,        // namespace body — transparent
};

struct scope {
  scope_kind kind;
  int open = -1;           // token index of '{' (-1 for file scope)
  int close = -1;          // token index of matching '}'
  int parent = -1;
  int lambda_intro = -1;   // '[' token index for lambdas
  int lambda_params_end = -1;  // ')' of the param list, or -1
  bool coroutine = false;  // contains co_await/co_return/co_yield directly
};

struct scope_tree {
  std::vector<token> toks;
  std::vector<scope> scopes;
  std::vector<int> scope_of;  // innermost scope per token

  const token& at(int i) const { return toks[static_cast<size_t>(i)]; }
};

int match_back(const std::vector<token>& t, int close_idx, const char* open,
               const char* close) {
  int depth = 0;
  for (int j = close_idx; j >= 0; --j) {
    if (t[static_cast<size_t>(j)].text == close) ++depth;
    else if (t[static_cast<size_t>(j)].text == open && --depth == 0) return j;
  }
  return -1;
}

// `<`/`>` aware: a `>>` token closes two template levels.
int match_fwd(const std::vector<token>& t, int open_idx, const char* open,
              const char* close) {
  const bool angles = open[0] == '<';
  int depth = 0;
  for (int j = open_idx; j < static_cast<int>(t.size()); ++j) {
    const std::string& s = t[static_cast<size_t>(j)].text;
    if (s == open) ++depth;
    else if (s == close && --depth == 0) return j;
    else if (angles && s == ">>" && (depth -= 2) <= 0) return j;
  }
  return -1;
}

bool is_control_kw(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

// Classifies the brace at token index i. Sets *intro/*params_end for
// lambdas.
scope_kind classify_brace(const std::vector<token>& t, int i,
                          bool pending_class, bool pending_ns, int* intro,
                          int* params_end) {
  if (i == 0) return scope_kind::block;
  // Walk back over trailing-return-type / specifier tokens to the nearest
  // interesting anchor: ')', ']', or a statement boundary.
  int j = i - 1;
  int budget = 64;
  while (j > 0 && budget-- > 0) {
    const std::string& s = t[static_cast<size_t>(j)].text;
    if (s == ")" || s == "]" || s == ";" || s == "{" || s == "}" ||
        s == "=" || s == "," || s == "(" || s == "return" ||
        s == "co_return" || s == "co_yield" || s == "co_await" ||
        s == "else" || s == "do" || s == "try")
      break;
    if (s == ">") {
      // Skip a balanced template-argument list in a trailing return type.
      int open = match_back(t, j, "<", ">");
      if (open <= 0) break;
      j = open - 1;
      continue;
    }
    --j;
  }
  const std::string& anchor = t[static_cast<size_t>(j)].text;
  if (anchor == "]") {
    if (intro) *intro = match_back(t, j, "[", "]");
    return scope_kind::lambda;
  }
  if (anchor == ")") {
    int open = match_back(t, j, "(", ")");
    if (open > 0) {
      const token& before = t[static_cast<size_t>(open - 1)];
      if (is_control_kw(before.text)) return scope_kind::block;
      if (before.text == "constexpr" && open > 1 &&
          t[static_cast<size_t>(open - 2)].text == "if")
        return scope_kind::block;
      if (before.text == "]") {
        if (intro) *intro = match_back(t, open - 1, "[", "]");
        if (params_end) *params_end = j;
        return scope_kind::lambda;
      }
      if (before.text == "noexcept") {
        // noexcept(expr): keep walking back past it.
        return classify_brace(t, open, pending_class, pending_ns, intro,
                              params_end);
      }
      if (pending_class) return scope_kind::klass;
      return scope_kind::function;
    }
    return scope_kind::block;
  }
  if (anchor == "else" || anchor == "do" || anchor == "try")
    return scope_kind::block;
  if (anchor == "=" || anchor == "," || anchor == "(" || anchor == "return" ||
      anchor == "co_return" || anchor == "co_yield" || anchor == "co_await")
    return scope_kind::init;
  if (pending_ns) return scope_kind::ns;
  if (pending_class) return scope_kind::klass;
  return scope_kind::block;
}

scope_tree build_scopes(const std::string& src) {
  scope_tree st;
  st.toks = lex(src);
  st.scopes.push_back({scope_kind::file, -1, -1, -1, -1, -1, false});
  st.scope_of.resize(st.toks.size(), 0);

  int cur = 0;
  // Per open scope: "a class/namespace head is pending" flags, cleared on
  // ';' (a declaration ended without a body).
  std::vector<std::pair<bool, bool>> pending;  // {class, ns}
  pending.emplace_back(false, false);
  std::vector<int> stack{0};

  for (int i = 0; i < static_cast<int>(st.toks.size()); ++i) {
    const token& t = st.toks[static_cast<size_t>(i)];
    st.scope_of[static_cast<size_t>(i)] = cur;
    if (t.kind == tk::ident) {
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum")
        pending.back().first = true;
      else if (t.text == "namespace")
        pending.back().second = true;
      continue;
    }
    if (t.text == ";") {
      pending.back() = {false, false};
      continue;
    }
    if (t.text == "{") {
      int intro = -1, params_end = -1;
      scope_kind k = classify_brace(st.toks, i, pending.back().first,
                                    pending.back().second, &intro,
                                    &params_end);
      pending.back() = {false, false};
      scope s;
      s.kind = k;
      s.open = i;
      s.parent = cur;
      s.lambda_intro = intro;
      s.lambda_params_end = params_end;
      st.scopes.push_back(s);
      cur = static_cast<int>(st.scopes.size()) - 1;
      stack.push_back(cur);
      pending.emplace_back(false, false);
      st.scope_of[static_cast<size_t>(i)] = cur;
      continue;
    }
    if (t.text == "}") {
      st.scope_of[static_cast<size_t>(i)] = cur;
      if (stack.size() > 1) {
        st.scopes[static_cast<size_t>(cur)].close = i;
        stack.pop_back();
        pending.pop_back();
        cur = stack.back();
      }
      continue;
    }
  }
  // Close any unterminated scopes at EOF (defensive).
  for (scope& s : st.scopes) {
    if (s.open >= 0 && s.close < 0)
      s.close = static_cast<int>(st.toks.size()) - 1;
  }

  // Mark coroutine bodies: the innermost enclosing function/lambda of every
  // co_* keyword.
  for (int i = 0; i < static_cast<int>(st.toks.size()); ++i) {
    const std::string& s = st.toks[static_cast<size_t>(i)].text;
    if (s != "co_await" && s != "co_return" && s != "co_yield") continue;
    int sc = st.scope_of[static_cast<size_t>(i)];
    while (sc > 0) {
      scope_kind k = st.scopes[static_cast<size_t>(sc)].kind;
      if (k == scope_kind::function || k == scope_kind::lambda) {
        st.scopes[static_cast<size_t>(sc)].coroutine = true;
        break;
      }
      if (k == scope_kind::klass) break;  // member fn bodies nest deeper
      sc = st.scopes[static_cast<size_t>(sc)].parent;
    }
  }
  return st;
}

// Iterates the DIRECT token range of scope `sc` — i.e. tokens inside it but
// not inside nested function/lambda/class scopes (control/init blocks are
// transparent). Calls fn(i) for each such token index.
template <typename Fn>
void for_direct_tokens(const scope_tree& st, int sc, Fn&& fn) {
  const scope& s = st.scopes[static_cast<size_t>(sc)];
  int i = s.open + 1;
  const int end = s.close;
  while (i < end && i >= 0) {
    int isc = st.scope_of[static_cast<size_t>(i)];
    if (isc != sc) {
      // Entered a nested scope: transparent kinds recurse naturally via
      // scope_of (their tokens still get visited); opaque kinds are skipped.
      // Find the innermost child of `sc` on the path.
      int child = isc;
      while (st.scopes[static_cast<size_t>(child)].parent != sc &&
             st.scopes[static_cast<size_t>(child)].parent >= 0)
        child = st.scopes[static_cast<size_t>(child)].parent;
      scope_kind k = st.scopes[static_cast<size_t>(child)].kind;
      if (k == scope_kind::function || k == scope_kind::lambda ||
          k == scope_kind::klass || k == scope_kind::ns) {
        i = st.scopes[static_cast<size_t>(child)].close + 1;
        continue;
      }
    }
    fn(i);
    ++i;
  }
}

// --- Rules ----------------------------------------------------------------

const std::set<std::string>& lock_types() {
  static const std::set<std::string> s = {"lock_guard", "unique_lock",
                                          "scoped_lock", "shared_lock"};
  return s;
}

// Rule 1: lock guard alive across co_await.
void rule_suspend_with_lock(const std::string& path, const scope_tree& st,
                            std::vector<diagnostic>& out) {
  for (int sc = 1; sc < static_cast<int>(st.scopes.size()); ++sc) {
    const scope& s = st.scopes[static_cast<size_t>(sc)];
    if (s.kind != scope_kind::function && s.kind != scope_kind::lambda)
      continue;
    struct guard {
      std::string type;
      int line;
      int depth;
    };
    std::vector<guard> live;
    int depth = 0;
    for_direct_tokens(st, sc, [&](int i) {
      const token& t = st.at(i);
      if (t.text == "{") {
        ++depth;
        return;
      }
      if (t.text == "}") {
        while (!live.empty() && live.back().depth >= depth) live.pop_back();
        --depth;
        return;
      }
      if (t.kind == tk::ident && lock_types().count(t.text) > 0) {
        // A declaration, not a mention: next token must open template args
        // or name the variable directly.
        if (i + 1 < static_cast<int>(st.toks.size())) {
          const std::string& nxt = st.at(i + 1).text;
          if (nxt == "<" || st.at(i + 1).kind == tk::ident)
            live.push_back({t.text, t.line, depth});
        }
        return;
      }
      if (t.text == "co_await" && !live.empty()) {
        out.push_back(
            {path, t.line, t.col, rule::suspend_with_lock,
             "co_await while a " + live.back().type + " (declared line " +
                 std::to_string(live.back().line) +
                 ") is held — the lock blocks every worker that resumes "
                 "here; release it before suspending"});
      }
    });
  }
}

// Rule 2: raw blocking call inside a coroutine body.
void rule_blocking_call(const std::string& path, const scope_tree& st,
                        std::vector<diagnostic>& out) {
  // Set A must be global-namespace-qualified (`::read`) to count — plain
  // `read(` is too ambiguous at token level. Set B counts in any spelling.
  static const std::set<std::string> set_a = {
      "read",  "write",  "accept", "accept4", "connect",  "poll",
      "select", "recv",  "send",   "recvfrom", "sendto",  "pread",
      "pwrite", "fsync", "flock"};
  static const std::set<std::string> set_b = {"sleep", "usleep", "nanosleep"};

  for (int sc = 1; sc < static_cast<int>(st.scopes.size()); ++sc) {
    const scope& s = st.scopes[static_cast<size_t>(sc)];
    if (!s.coroutine) continue;
    for_direct_tokens(st, sc, [&](int i) {
      const token& t = st.toks[static_cast<size_t>(i)];
      if (t.kind != tk::ident) return;
      if (i + 1 >= static_cast<int>(st.toks.size()) ||
          st.at(i + 1).text != "(")
        return;
      const std::string prev = i > 0 ? st.at(i - 1).text : "";
      const std::string prev2 = i > 1 ? st.at(i - 2).text : "";
      auto diag = [&](const std::string& what) {
        out.push_back(
            {path, t.line, t.col, rule::blocking_call_on_worker,
             "blocking call " + what +
                 " inside a coroutine occupies the worker for the full "
                 "latency — use the src/io/ async_* awaitables or "
                 "sleep_until so the latency becomes a heavy edge"});
      };
      if (set_a.count(t.text) > 0 && prev == "::" &&
          (i < 2 || st.at(i - 2).kind != tk::ident)) {
        diag("::" + t.text);
        return;
      }
      if (set_b.count(t.text) > 0 && prev != "." && prev != "->" &&
          prev != "::") {
        diag(t.text);
        return;
      }
      if ((t.text == "sleep_for" || t.text == "sleep_until") &&
          prev == "::" && prev2 == "this_thread") {
        diag("std::this_thread::" + t.text);
        return;
      }
    });
  }
}

// Rule 3: by-reference captures in a coroutine lambda.
void rule_dangling_ref(const std::string& path, const scope_tree& st,
                       std::vector<diagnostic>& out) {
  for (int sc = 1; sc < static_cast<int>(st.scopes.size()); ++sc) {
    const scope& s = st.scopes[static_cast<size_t>(sc)];
    if (s.kind != scope_kind::lambda || !s.coroutine) continue;
    if (s.lambda_intro < 0) continue;
    int close = match_fwd(st.toks, s.lambda_intro, "[", "]");
    if (close < 0) continue;
    for (int i = s.lambda_intro + 1; i < close; ++i) {
      const token& t = st.at(i);
      if (t.text == "&" || t.text == "&&") {
        out.push_back(
            {path, t.line, t.col, rule::dangling_ref_across_suspend,
             "by-reference capture in a coroutine lambda — the coroutine "
             "frame outlives the closure object, so the reference dangles "
             "after the first suspension point; capture by value or pass "
             "as an argument"});
        break;  // one diagnostic per lambda
      }
    }
    // Reference parameters of the coroutine lambda are the same hazard:
    // they are not copied into the frame.
    if (s.lambda_params_end > 0) {
      int popen = match_back(st.toks, s.lambda_params_end, "(", ")");
      for (int i = popen + 1; i > 0 && i < s.lambda_params_end; ++i) {
        const token& t = st.at(i);
        if ((t.text == "&" || t.text == "&&") && i + 1 <= s.lambda_params_end &&
            st.at(i + 1).kind == tk::ident) {
          out.push_back(
              {path, t.line, t.col, rule::dangling_ref_across_suspend,
               "reference parameter of a coroutine lambda — parameters are "
               "copied into the frame but references are not; the referent "
               "may be gone after the first suspension point"});
          break;
        }
      }
    }
  }
}

// Rule 4: implicit seq_cst in the lock-free directories.
void rule_implicit_seq_cst(const std::string& path, const scope_tree& st,
                           std::vector<diagnostic>& out) {
  static const std::set<std::string> methods = {
      "load",      "store",     "exchange",    "fetch_add",
      "fetch_sub", "fetch_and", "fetch_or",    "fetch_xor",
      "test_and_set", "compare_exchange_strong", "compare_exchange_weak"};

  const auto& toks = st.toks;
  const int n = static_cast<int>(toks.size());

  // Pass 1: names declared as atomics in this file.
  std::set<std::string> atomic_vars;
  for (int i = 0; i + 1 < n; ++i) {
    const token& t = toks[static_cast<size_t>(i)];
    if (t.kind != tk::ident ||
        (t.text != "atomic" && t.text != "model_atomic" &&
         t.text != "atomic_flag"))
      continue;
    int j = i + 1;
    if (toks[static_cast<size_t>(j)].text == "<") {
      j = match_fwd(toks, j, "<", ">");
      if (j < 0) continue;
      ++j;
    }
    if (j < n && toks[static_cast<size_t>(j)].kind == tk::ident) {
      const std::string& after =
          j + 1 < n ? toks[static_cast<size_t>(j + 1)].text : "";
      if (after == "{" || after == ";" || after == "[" || after == "=")
        atomic_vars.insert(toks[static_cast<size_t>(j)].text);
    }
  }

  auto diag = [&](const token& t, const std::string& msg) {
    out.push_back({path, t.line, t.col, rule::implicit_seq_cst, msg});
  };

  // Pass 2: method calls without a memory_order argument.
  for (int i = 1; i + 1 < n; ++i) {
    const token& t = toks[static_cast<size_t>(i)];
    if (t.kind != tk::ident || methods.count(t.text) == 0) continue;
    const std::string& prev = toks[static_cast<size_t>(i - 1)].text;
    if (prev != "." && prev != "->") continue;
    if (toks[static_cast<size_t>(i + 1)].text != "(") continue;
    int close = match_fwd(toks, i + 1, "(", ")");
    if (close < 0) continue;
    bool has_order = false;
    for (int j = i + 2; j < close; ++j) {
      const std::string& s = toks[static_cast<size_t>(j)].text;
      if (s.rfind("memory_order", 0) == 0) {
        has_order = true;
        break;
      }
    }
    if (!has_order) {
      diag(t, "." + t.text +
                  " with defaulted memory_order_seq_cst — every ordering in "
                  "the lock-free directories must be explicit and tied to a "
                  "DESIGN.md §7 contract");
    }
  }

  // Pass 3: operator forms on known atomic names (++ -- += -= |= &= ^= =).
  if (!atomic_vars.empty()) {
    static const std::set<std::string> compound = {"++", "--", "+=", "-=",
                                                   "|=", "&=", "^="};
    for (int i = 0; i < n; ++i) {
      const token& t = toks[static_cast<size_t>(i)];
      if (t.kind != tk::ident || atomic_vars.count(t.text) == 0) continue;
      const std::string prev = i > 0 ? toks[static_cast<size_t>(i - 1)].text
                                     : std::string(";");
      if (prev == "." || prev == "->" || prev == "::") continue;
      const std::string next =
          i + 1 < n ? toks[static_cast<size_t>(i + 1)].text : std::string();
      if (compound.count(next) > 0 || prev == "++" || prev == "--") {
        const std::string& op = compound.count(next) > 0 ? next : prev;
        diag(t, "operator " + op + " on std::atomic `" + t.text +
                    "` is an implicit seq_cst RMW — spell it as fetch_* "
                    "with an explicit order");
        continue;
      }
      if (next == "=" &&
          (prev == ";" || prev == "{" || prev == "}" || prev == "(" ||
           prev == ",")) {
        diag(t, "assignment to std::atomic `" + t.text +
                    "` is an implicit seq_cst store — spell it as "
                    ".store(v, order)");
      }
    }
  }
}

// Rule 5: discarded awaitable temporary.
void rule_unawaited(const std::string& path, const scope_tree& st,
                    std::vector<diagnostic>& out) {
  static const std::set<std::string> awaitable_fns = {
      "fork2",         "latency",       "delay",
      "sleep_for",     "sleep_until",   "async_read",
      "async_write",   "async_accept",  "async_connect",
      "map_reduce",    "parallel_for",  "parallel_for_tasks",
      "when_all",      "receive"};

  for (int sc = 1; sc < static_cast<int>(st.scopes.size()); ++sc) {
    const scope& s = st.scopes[static_cast<size_t>(sc)];
    if (s.kind != scope_kind::function && s.kind != scope_kind::lambda)
      continue;
    // Split the direct token stream into statements at top-level ';'.
    std::vector<int> stmt;
    int paren = 0;
    auto flush = [&]() {
      if (stmt.empty()) return;
      bool consumed = false;
      for (int idx : stmt) {
        const std::string& x = st.at(idx).text;
        if (x == "co_await" || x == "co_return" || x == "co_yield" ||
            x == "return" || x == "=" || x == "+=" || x == "-=" ||
            x == "void") {
          consumed = true;
          break;
        }
      }
      if (!consumed) {
        for (size_t k = 0; k + 1 < stmt.size(); ++k) {
          const token& t = st.at(stmt[k]);
          // std::this_thread::sleep_for is rule 2's business, not a
          // discarded awaitable.
          if (k >= 2 && st.at(stmt[k - 1]).text == "::" &&
              st.at(stmt[k - 2]).text == "this_thread")
            continue;
          if (t.kind == tk::ident && awaitable_fns.count(t.text) > 0 &&
              st.at(stmt[k + 1]).text == "(") {
            out.push_back(
                {path, t.line, t.col, rule::unawaited_awaitable,
                 "result of " + t.text +
                     "(...) is discarded — a task/awaitable that is never "
                     "co_awaited silently drops its work (and for task<>, "
                     "destroys the coroutine before it runs)"});
            break;
          }
        }
      }
      stmt.clear();
    };
    for_direct_tokens(st, sc, [&](int i) {
      const token& t = st.at(i);
      if (t.text == "(") ++paren;
      else if (t.text == ")") --paren;
      if ((t.text == ";" && paren == 0) || t.text == "{" || t.text == "}") {
        flush();
        return;
      }
      stmt.push_back(i);
    });
    flush();
  }
}

}  // namespace

void run_token_rules(const std::string& path, const std::string& source,
                     const lint_options& opt, std::vector<diagnostic>& out) {
  scope_tree st = build_scopes(source);
  if (opt.rule_enabled(rule::suspend_with_lock))
    rule_suspend_with_lock(path, st, out);
  if (opt.rule_enabled(rule::blocking_call_on_worker))
    rule_blocking_call(path, st, out);
  if (opt.rule_enabled(rule::dangling_ref_across_suspend))
    rule_dangling_ref(path, st, out);
  if (opt.rule_enabled(rule::implicit_seq_cst) &&
      opt.seqcst_in_scope(path))
    rule_implicit_seq_cst(path, st, out);
  if (opt.rule_enabled(rule::unawaited_awaitable))
    rule_unawaited(path, st, out);
}

}  // namespace lhws::lint
