// AST backend: the same five rules as token_rules.cpp, implemented on the
// real clang AST via libTooling + ASTMatchers. Compiled only when the
// build finds clang dev libraries (find_package(Clang)); tools/lint/
// CMakeLists.txt prints a graceful skip otherwise and the token backend
// carries the CI gate alone.
//
// The AST view is strictly more precise than the token view: guard
// liveness is computed from real scopes, "coroutine body" is
// CoroutineBodyStmt rather than a keyword heuristic, and rule 4 verifies
// the receiver really is a std::atomic specialization.
#include "lint_core.hpp"

#ifdef LHWS_LINT_HAVE_CLANG

#include <memory>
#include <set>
#include <string>

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/StmtCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace lhws::lint {
namespace {

using namespace clang;
using namespace clang::ast_matchers;

// Matchers for nodes the stock library does not cover on older clangs.
AST_MATCHER(Stmt, lhwsIsCoroutineBody) {
  return isa<CoroutineBodyStmt>(&Node);
}

struct sink {
  const lint_options* opt = nullptr;
  std::vector<diagnostic>* out = nullptr;

  void add(const ASTContext& ctx, SourceLocation loc, rule r,
           std::string msg) const {
    const SourceManager& sm = ctx.getSourceManager();
    if (loc.isInvalid()) return;
    loc = sm.getExpansionLoc(loc);
    diagnostic d;
    d.file = sm.getFilename(loc).str();
    d.line = static_cast<int>(sm.getExpansionLineNumber(loc));
    d.col = static_cast<int>(sm.getExpansionColumnNumber(loc));
    d.id = r;
    d.message = std::move(msg);
    if (!d.file.empty()) out->push_back(std::move(d));
  }
};

bool is_lock_guard_type(QualType qt) {
  qt = qt.getCanonicalType();
  const auto* rec = qt->getAsCXXRecordDecl();
  if (rec == nullptr) return false;
  const StringRef name = rec->getName();
  return name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock" || name == "shared_lock";
}

bool is_std_atomic_type(QualType qt) {
  qt = qt.getCanonicalType();
  const auto* rec = qt->getAsCXXRecordDecl();
  if (rec == nullptr) return false;
  if (rec->getName() != "atomic" && rec->getName() != "atomic_flag")
    return false;
  const DeclContext* dc = rec->getDeclContext();
  return dc != nullptr && dc->isStdNamespace();
}

// Innermost function-ish ancestor whose body contains `s`; null when none.
const FunctionDecl* enclosing_function(ASTContext& ctx, const Stmt* s) {
  DynTypedNodeList parents = ctx.getParents(*s);
  while (!parents.empty()) {
    const DynTypedNode& n = parents[0];
    if (const auto* fd = n.get<FunctionDecl>()) return fd;
    if (const auto* lam = n.get<LambdaExpr>()) return lam->getCallOperator();
    parents = ctx.getParents(n);
  }
  return nullptr;
}

bool in_coroutine(ASTContext& ctx, const Stmt* s) {
  const FunctionDecl* fd = enclosing_function(ctx, s);
  return fd != nullptr && fd->getBody() != nullptr &&
         isa<CoroutineBodyStmt>(fd->getBody());
}

// Rule 1: co_await while a lock guard declared earlier in an enclosing
// scope of the same function is still alive.
class suspend_with_lock_cb : public MatchFinder::MatchCallback {
 public:
  explicit suspend_with_lock_cb(sink s) : s_(s) {}

  void run(const MatchFinder::MatchResult& res) override {
    const auto* await = res.Nodes.getNodeAs<CoawaitExpr>("await");
    if (await == nullptr) return;
    ASTContext& ctx = *res.Context;
    const SourceManager& sm = ctx.getSourceManager();
    const FunctionDecl* fn = enclosing_function(ctx, await);
    // Walk up through the enclosing compound statements; any guard decl
    // textually before the co_await in one of them is alive across it.
    DynTypedNodeList parents = ctx.getParents(*await);
    while (!parents.empty()) {
      const DynTypedNode& n = parents[0];
      if (const auto* fd = n.get<FunctionDecl>()) {
        if (fd == fn) break;
      }
      if (const auto* cs = n.get<CompoundStmt>()) {
        for (const Stmt* child : cs->body()) {
          const auto* ds = dyn_cast<DeclStmt>(child);
          if (ds == nullptr) continue;
          for (const Decl* d : ds->decls()) {
            const auto* vd = dyn_cast<VarDecl>(d);
            if (vd == nullptr || !is_lock_guard_type(vd->getType())) continue;
            if (sm.isBeforeInTranslationUnit(vd->getLocation(),
                                             await->getBeginLoc())) {
              s_.add(ctx, await->getBeginLoc(), rule::suspend_with_lock,
                     "co_await while a " +
                         vd->getType().getAsString() +
                         " is held — release the lock before suspending");
              return;
            }
          }
        }
      }
      parents = ctx.getParents(n);
    }
  }

 private:
  sink s_;
};

// Rule 2: blocking libc call inside a coroutine body.
class blocking_call_cb : public MatchFinder::MatchCallback {
 public:
  explicit blocking_call_cb(sink s) : s_(s) {}

  void run(const MatchFinder::MatchResult& res) override {
    const auto* call = res.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr || !in_coroutine(*res.Context, call)) return;
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return;
    s_.add(*res.Context, call->getBeginLoc(), rule::blocking_call_on_worker,
           "blocking call " + callee->getNameAsString() +
               " inside a coroutine — use the src/io/ async_* awaitables "
               "or sleep_until so the latency becomes a heavy edge");
  }

 private:
  sink s_;
};

// Rule 3: by-reference captures / reference parameters of coroutine
// lambdas.
class dangling_ref_cb : public MatchFinder::MatchCallback {
 public:
  explicit dangling_ref_cb(sink s) : s_(s) {}

  void run(const MatchFinder::MatchResult& res) override {
    const auto* lam = res.Nodes.getNodeAs<LambdaExpr>("lam");
    if (lam == nullptr) return;
    const CXXMethodDecl* op = lam->getCallOperator();
    if (op == nullptr || op->getBody() == nullptr ||
        !isa<CoroutineBodyStmt>(op->getBody()))
      return;
    ASTContext& ctx = *res.Context;
    for (const LambdaCapture& cap : lam->captures()) {
      if (cap.getCaptureKind() == LCK_ByRef) {
        s_.add(ctx, cap.getLocation(), rule::dangling_ref_across_suspend,
               "by-reference capture in a coroutine lambda — the frame "
               "outlives the closure; capture by value");
        break;
      }
    }
    for (const ParmVarDecl* p : op->parameters()) {
      if (p->getType()->isReferenceType()) {
        s_.add(ctx, p->getLocation(), rule::dangling_ref_across_suspend,
               "reference parameter of a coroutine lambda — references are "
               "not copied into the frame and may dangle after the first "
               "suspension");
        break;
      }
    }
  }

 private:
  sink s_;
};

// Rule 4: atomic operation without an explicit memory_order argument.
class implicit_seq_cst_cb : public MatchFinder::MatchCallback {
 public:
  explicit implicit_seq_cst_cb(sink s) : s_(s) {}

  void run(const MatchFinder::MatchResult& res) override {
    ASTContext& ctx = *res.Context;
    const SourceManager& sm = ctx.getSourceManager();
    if (const auto* m = res.Nodes.getNodeAs<CXXMemberCallExpr>("member")) {
      const Expr* obj = m->getImplicitObjectArgument();
      if (obj == nullptr || !is_std_atomic_type(obj->getType())) return;
      if (!in_scope(sm, m->getBeginLoc())) return;
      // Explicit iff any argument is a std::memory_order.
      for (const Expr* arg : m->arguments()) {
        QualType at = arg->getType().getCanonicalType();
        if (const auto* et = at->getAs<EnumType>()) {
          if (et->getDecl()->getName() == "memory_order") return;
        }
      }
      const CXXMethodDecl* md = m->getMethodDecl();
      s_.add(ctx, m->getBeginLoc(), rule::implicit_seq_cst,
             "." + (md ? md->getNameAsString() : std::string("op")) +
                 " with defaulted memory_order_seq_cst — make the ordering "
                 "explicit (DESIGN.md §7)");
      return;
    }
    if (const auto* o = res.Nodes.getNodeAs<CXXOperatorCallExpr>("oper")) {
      if (o->getNumArgs() == 0 ||
          !is_std_atomic_type(o->getArg(0)->getType()))
        return;
      if (!in_scope(sm, o->getBeginLoc())) return;
      s_.add(ctx, o->getBeginLoc(), rule::implicit_seq_cst,
             "overloaded atomic operator is an implicit seq_cst access — "
             "spell it as load/store/fetch_* with an explicit order");
    }
  }

 private:
  bool in_scope(const SourceManager& sm, SourceLocation loc) const {
    return s_.opt->seqcst_in_scope(
        sm.getFilename(sm.getExpansionLoc(loc)).str());
  }
  sink s_;
};

// Rule 5: a discarded prvalue of an awaitable type used as a statement.
class unawaited_cb : public MatchFinder::MatchCallback {
 public:
  explicit unawaited_cb(sink s) : s_(s) {}

  void run(const MatchFinder::MatchResult& res) override {
    const auto* e = res.Nodes.getNodeAs<Expr>("expr");
    if (e == nullptr) return;
    QualType qt = e->getType().getCanonicalType();
    const auto* rec = qt->getAsCXXRecordDecl();
    if (rec == nullptr) return;
    const StringRef name = rec->getName();
    static const std::set<std::string> awaitables = {
        "task",          "fork2_awaiter", "latency_awaiter",
        "sleep_awaiter", "io_wait_awaiter", "receive_awaiter"};
    if (awaitables.count(name.str()) == 0) return;
    s_.add(*res.Context, e->getBeginLoc(), rule::unawaited_awaitable,
           "discarded " + name.str() +
               " temporary — a task/awaitable that is never co_awaited "
               "silently drops its work");
  }

 private:
  sink s_;
};

}  // namespace

bool run_ast_rules(const std::string& compdb_dir,
                   const std::vector<std::string>& files,
                   const lint_options& opt, std::vector<diagnostic>& out) {
  std::string err;
  std::unique_ptr<tooling::CompilationDatabase> db;
  if (!compdb_dir.empty()) {
    db = tooling::CompilationDatabase::loadFromDirectory(compdb_dir, err);
  }
  if (db == nullptr) {
    db = std::make_unique<tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20"});
  }
  tooling::ClangTool tool(*db, files);
  tool.appendArgumentsAdjuster(
      tooling::getInsertArgumentAdjuster("-Wno-everything"));
  tool.appendArgumentsAdjuster(
      tooling::getInsertArgumentAdjuster("-fsyntax-only"));

  sink s{&opt, &out};
  MatchFinder finder;

  suspend_with_lock_cb r1(s);
  blocking_call_cb r2(s);
  dangling_ref_cb r3(s);
  implicit_seq_cst_cb r4(s);
  unawaited_cb r5(s);

  if (opt.rule_enabled(rule::suspend_with_lock)) {
    finder.addMatcher(coawaitExpr().bind("await"), &r1);
  }
  if (opt.rule_enabled(rule::blocking_call_on_worker)) {
    finder.addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::read", "::write", "::accept", "::accept4",
                     "::connect", "::poll", "::select", "::recv", "::send",
                     "::recvfrom", "::sendto", "::pread", "::pwrite",
                     "::sleep", "::usleep", "::nanosleep",
                     "::std::this_thread::sleep_for",
                     "::std::this_thread::sleep_until"))))
            .bind("call"),
        &r2);
  }
  if (opt.rule_enabled(rule::dangling_ref_across_suspend)) {
    finder.addMatcher(lambdaExpr().bind("lam"), &r3);
  }
  if (opt.rule_enabled(rule::implicit_seq_cst)) {
    finder.addMatcher(cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName(
                                            "load", "store", "exchange",
                                            "fetch_add", "fetch_sub",
                                            "fetch_and", "fetch_or",
                                            "fetch_xor", "test_and_set",
                                            "compare_exchange_strong",
                                            "compare_exchange_weak"))))
                          .bind("member"),
                      &r4);
    finder.addMatcher(cxxOperatorCallExpr().bind("oper"), &r4);
  }
  if (opt.rule_enabled(rule::unawaited_awaitable)) {
    finder.addMatcher(
        exprWithCleanups(hasParent(compoundStmt())).bind("expr"), &r5);
    finder.addMatcher(
        cxxBindTemporaryExpr(hasParent(compoundStmt())).bind("expr"), &r5);
  }

  // A nonzero run() just means some TU had parse errors (e.g. a fixture
  // that does not compile stand-alone); matches already found still count.
  (void)tool.run(tooling::newFrontendActionFactory(&finder).get());
  return true;
}

}  // namespace lhws::lint

#endif  // LHWS_LINT_HAVE_CLANG
