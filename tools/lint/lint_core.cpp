#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace lhws::lint {

const std::vector<rule_info>& all_rules() {
  static const std::vector<rule_info> table = {
      {rule::suspend_with_lock, "LHWS001", "suspend-with-lock",
       "a lock_guard/unique_lock/scoped_lock lifetime spans a co_await"},
      {rule::blocking_call_on_worker, "LHWS002", "blocking-call-on-worker",
       "raw blocking syscall or sleep inside a coroutine body"},
      {rule::dangling_ref_across_suspend, "LHWS003",
       "dangling-ref-across-suspend",
       "by-reference capture in a coroutine lambda outlives the closure"},
      {rule::implicit_seq_cst, "LHWS004", "implicit-seq-cst",
       "atomic op relying on defaulted memory_order_seq_cst in a lock-free "
       "directory"},
      {rule::unawaited_awaitable, "LHWS005", "unawaited-awaitable",
       "discarded task<>/awaitable temporary silently drops work"},
      {rule::reasonless_suppression, "LHWS900", "reasonless-suppression",
       "LHWS-LINT-ALLOW with an empty reason"},
      {rule::unused_suppression, "LHWS901", "unused-suppression",
       "LHWS-LINT-ALLOW that suppressed no diagnostic"},
  };
  return table;
}

std::string_view rule_code(rule r) {
  for (const rule_info& ri : all_rules())
    if (ri.id == r) return ri.code;
  return "LHWS???";
}

std::string_view rule_slug(rule r) {
  for (const rule_info& ri : all_rules())
    if (ri.id == r) return ri.slug;
  return "unknown";
}

namespace {

struct allow_comment {
  int line = 0;
  int target_line = 0;  // first code line at/after the comment
  std::vector<std::string> rules;  // ids or slugs, as written
  std::string reason;
  bool used = false;

  bool covers(rule r) const {
    for (const std::string& s : rules) {
      if (s == rule_code(r) || s == rule_slug(r)) return true;
    }
    return false;
  }
};

std::string trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// True when the line holds no code — blank, or a // comment only.
bool comment_only(std::string_view text) {
  std::string t = trim(text);
  return t.empty() || t.rfind("//", 0) == 0;
}

// Parses every `LHWS-LINT-ALLOW(<rules>): <reason>` in `source`. An ALLOW
// written as a trailing comment covers its own line; an ALLOW written as a
// comment line covers the first code line below it (comment continuation
// lines are skipped, so multi-line reasons work).
std::vector<allow_comment> parse_allows(const std::string& source) {
  std::vector<std::string_view> lines;
  {
    size_t pos = 0;
    while (pos <= source.size()) {
      size_t eol = source.find('\n', pos);
      if (eol == std::string::npos) eol = source.size();
      lines.emplace_back(source.data() + pos, eol - pos);
      pos = eol + 1;
      if (eol == source.size()) break;
    }
  }
  std::vector<allow_comment> out;
  int line = 1;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) eol = source.size();
    std::string_view text(source.data() + pos, eol - pos);
    size_t at = text.find("LHWS-LINT-ALLOW");
    if (at != std::string_view::npos) {
      allow_comment a;
      a.line = line;
      std::string_view rest = text.substr(at + 15);
      if (!rest.empty() && rest.front() == '(') {
        size_t close = rest.find(')');
        if (close != std::string_view::npos) {
          std::string_view list = rest.substr(1, close - 1);
          size_t s = 0;
          while (s <= list.size()) {
            size_t c = list.find(',', s);
            if (c == std::string_view::npos) c = list.size();
            std::string item = trim(list.substr(s, c - s));
            if (!item.empty()) a.rules.push_back(item);
            s = c + 1;
          }
          std::string_view tail = rest.substr(close + 1);
          if (!tail.empty() && tail.front() == ':') tail.remove_prefix(1);
          a.reason = trim(tail);
        }
      }
      a.target_line = a.line;
      if (comment_only(text)) {
        size_t j = static_cast<size_t>(a.line);  // 0-based index of next line
        while (j < lines.size() && comment_only(lines[j])) ++j;
        if (j < lines.size()) a.target_line = static_cast<int>(j) + 1;
      }
      out.push_back(std::move(a));
    }
    pos = eol + 1;
    ++line;
  }
  return out;
}

}  // namespace

void apply_suppressions(const std::string& path, const std::string& source,
                        std::vector<diagnostic>& diags) {
  std::vector<allow_comment> allows = parse_allows(source);

  std::vector<diagnostic> kept;
  kept.reserve(diags.size());
  for (diagnostic& d : diags) {
    bool suppressed = false;
    for (allow_comment& a : allows) {
      if ((a.line == d.line || a.target_line == d.line) && a.covers(d.id)) {
        a.used = true;
        // A reasonless ALLOW does not suppress: the audit below fires and
        // the original diagnostic stands, so the build stays red either way.
        if (!a.reason.empty()) suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  diags = std::move(kept);

  for (const allow_comment& a : allows) {
    if (a.reason.empty()) {
      diags.push_back({path, a.line, 1, rule::reasonless_suppression,
                       "LHWS-LINT-ALLOW without a reason — every suppression "
                       "must justify itself"});
    } else if (!a.used) {
      diags.push_back({path, a.line, 1, rule::unused_suppression,
                       "LHWS-LINT-ALLOW suppressed no diagnostic — stale or "
                       "misplaced; delete it or move it to the offending "
                       "line"});
    }
  }
}

}  // namespace lhws::lint
