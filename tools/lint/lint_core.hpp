// lhws_lint — static enforcement of the scheduler invariants that the
// dynamic tooling (src/chk/ model checker, TSan matrix) can only catch per
// interleaving. Five rules, each a structural property of the source that
// must hold for the paper's bounds to apply:
//
//   LHWS001 suspend-with-lock        a lock guard alive across co_await
//   LHWS002 blocking-call-on-worker  raw blocking syscall in a coroutine
//   LHWS003 dangling-ref-across-suspend  by-ref captures in a coroutine
//                                        lambda (frame outlives the closure)
//   LHWS004 implicit-seq-cst         defaulted memory_order in the
//                                        lock-free directories
//   LHWS005 unawaited-awaitable      a discarded task<> / awaitable
//
// Plus two audit diagnostics that keep the suppression mechanism honest:
//
//   LHWS900 reasonless-suppression   LHWS-LINT-ALLOW with an empty reason
//   LHWS901 unused-suppression       LHWS-LINT-ALLOW that suppressed nothing
//
// A diagnostic on line L is suppressed by `// LHWS-LINT-ALLOW(<rule>):
// <reason>` on line L or L-1, where <rule> is the numeric id or the slug
// (comma-separated list accepted). The rationale catalogue is DESIGN.md
// §12 "Static invariants".
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lhws::lint {

enum class rule : int {
  suspend_with_lock = 1,
  blocking_call_on_worker = 2,
  dangling_ref_across_suspend = 3,
  implicit_seq_cst = 4,
  unawaited_awaitable = 5,
  reasonless_suppression = 900,
  unused_suppression = 901,
};

struct rule_info {
  rule id;
  std::string_view code;  // "LHWS001"
  std::string_view slug;  // "suspend-with-lock"
  std::string_view what;  // one-line description for --list-rules
};

// Stable table; order is the report order in --list-rules.
const std::vector<rule_info>& all_rules();

std::string_view rule_code(rule r);
std::string_view rule_slug(rule r);

struct diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  rule id{};
  std::string message;

  bool operator<(const diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (col != o.col) return col < o.col;
    return static_cast<int>(id) < static_cast<int>(o.id);
  }
};

struct lint_options {
  // Rule-4 scope: a file participates iff its path contains one of these
  // substrings. The single entry "ALL" means every file (fixture mode).
  std::vector<std::string> seqcst_scope = {
      "src/deque", "src/runtime", "src/mem", "src/io", "src/support"};
  // Empty = all rules enabled.
  std::vector<rule> only_rules;

  bool rule_enabled(rule r) const {
    if (only_rules.empty()) return true;
    for (rule x : only_rules)
      if (x == r) return true;
    return false;
  }
  bool seqcst_in_scope(std::string_view path) const {
    for (const std::string& s : seqcst_scope) {
      if (s == "ALL") return true;
      if (path.find(s) != std::string_view::npos) return true;
    }
    return false;
  }
};

// Token-level backend: analyzes one file's source text, appending
// diagnostics (unsuppressed AND suppressed alike; the caller filters).
void run_token_rules(const std::string& path, const std::string& source,
                     const lint_options& opt, std::vector<diagnostic>& out);

// Suppression pass: removes diagnostics covered by an LHWS-LINT-ALLOW on
// the same or preceding line, then appends LHWS900 (empty reason) and
// LHWS901 (allow that matched nothing) audit diagnostics.
void apply_suppressions(const std::string& path, const std::string& source,
                        std::vector<diagnostic>& diags);

#ifdef LHWS_LINT_HAVE_CLANG
// AST backend (clang libTooling): analyzes the translation units in the
// compilation database at `compdb_dir`, restricted to `files` when
// non-empty. Returns false on a hard tooling error.
bool run_ast_rules(const std::string& compdb_dir,
                   const std::vector<std::string>& files,
                   const lint_options& opt, std::vector<diagnostic>& out);
#endif

}  // namespace lhws::lint
