// lhws_load — open-loop load generator CLI for the sharded reactor plane.
//
// Runs one scenario of the load harness (src/load/load_gen.hpp) with an
// embedded sharded fib-RPC server and prints an SLO-style summary; the
// same engine bench_load drives in CI, but with every knob on the command
// line for interactive tail-chasing.
//
//   lhws_load [--scenario steady|churn|slow_client|deadline_storm]
//             [--conns N] [--rate HZ] [--duration S]
//             [--workers P] [--shards N] [--fib N] [--depth D]
//             [--deadline-ms MS] [--churn-every K] [--slow-every K]
//             [--seed S] [--json FILE]
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "load/load_gen.hpp"

namespace {

void raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario steady|churn|slow_client|deadline_storm]\n"
      "          [--conns N] [--rate HZ] [--duration S] [--workers P]\n"
      "          [--shards N] [--fib N] [--depth D] [--deadline-ms MS]\n"
      "          [--churn-every K] [--slow-every K] [--seed S] [--json FILE]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  raise_fd_limit();
  lhws::load::load_config cfg;
  cfg.connections = 512;
  cfg.server_workers = 2;
  cfg.server_shards = 0;
  cfg.duration_s = 2.0;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--scenario") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "steady") == 0) {
        cfg.sc = lhws::load::scenario::steady;
      } else if (std::strcmp(v, "churn") == 0) {
        cfg.sc = lhws::load::scenario::churn;
        if (cfg.churn_every == 0) cfg.churn_every = 4;
      } else if (std::strcmp(v, "slow_client") == 0) {
        cfg.sc = lhws::load::scenario::slow_client;
        if (cfg.slow_every == 0) cfg.slow_every = 10;
      } else if (std::strcmp(v, "deadline_storm") == 0) {
        cfg.sc = lhws::load::scenario::deadline_storm;
        if (cfg.op_deadline.count() == 0) {
          cfg.op_deadline = std::chrono::milliseconds(250);
        }
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--conns") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.connections = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--rate") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.rate_hz = std::atof(v);
    } else if (arg == "--duration") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.duration_s = std::atof(v);
    } else if (arg == "--workers") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.server_workers = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--shards") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.server_shards = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--fib") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.fib_n = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--depth") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.rpc_depth = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.op_deadline = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--churn-every") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.churn_every = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--slow-every") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.slow_every = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--seed") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--json") {
      if ((v = next()) == nullptr) return usage(argv[0]);
      json_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  std::printf("lhws_load: %s, %u conns x %.2f Hz for %.1fs, fib(%u) depth=%u, "
              "%u workers / %u shards (hw=%u)\n",
              lhws::load::scenario_name(cfg.sc), cfg.connections, cfg.rate_hz,
              cfg.duration_s, cfg.fib_n, cfg.rpc_depth, cfg.server_workers,
              cfg.server_shards != 0 ? cfg.server_shards : cfg.server_workers,
              std::thread::hardware_concurrency());
  std::fflush(stdout);

  const lhws::load::load_result r = lhws::load::run_load(cfg);
  const double ratio =
      r.attempted > 0
          ? static_cast<double>(r.completed) / static_cast<double>(r.attempted)
          : 0;
  std::printf("  wall=%.1fms  rps=%.1f  completed=%llu/%llu (%.1f%%)  "
              "timeouts=%llu errors=%llu redials=%llu\n"
              "  latency (from scheduled arrival): p50=%lluus p99=%lluus "
              "p999=%lluus max=%lluus\n"
              "  server: suspensions=%llu fd_peak=%llu served=%llu\n",
              r.duration_ms, r.rps,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.attempted), ratio * 100.0,
              static_cast<unsigned long long>(r.timeouts),
              static_cast<unsigned long long>(r.errors),
              static_cast<unsigned long long>(r.reconnects),
              static_cast<unsigned long long>(r.p50_us),
              static_cast<unsigned long long>(r.p99_us),
              static_cast<unsigned long long>(r.p999_us),
              static_cast<unsigned long long>(r.max_us),
              static_cast<unsigned long long>(r.server_suspensions),
              static_cast<unsigned long long>(r.server_fd_peak),
              static_cast<unsigned long long>(r.server_served));

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << "{\"bench\":\"load\",\"schema\":1,\"hw_concurrency\":"
        << std::thread::hardware_concurrency() << ",\"runs\":[\n  {\"scenario\":\""
        << r.name << "\",\"connections\":" << r.connections
        << ",\"server_workers\":" << r.server_workers
        << ",\"server_shards\":" << r.server_shards
        << ",\"duration_ms\":" << r.duration_ms
        << ",\"attempted\":" << r.attempted << ",\"completed\":" << r.completed
        << ",\"completion_ratio\":" << ratio << ",\"timeouts\":" << r.timeouts
        << ",\"errors\":" << r.errors << ",\"reconnects\":" << r.reconnects
        << ",\"rps\":" << r.rps << ",\"p50_us\":" << r.p50_us
        << ",\"p99_us\":" << r.p99_us << ",\"p999_us\":" << r.p999_us
        << ",\"max_us\":" << r.max_us
        << ",\"server_suspensions\":" << r.server_suspensions
        << ",\"server_fd_peak\":" << r.server_fd_peak << "}\n]}\n";
  }
  return r.completed > 0 ? 0 : 1;
}
