// Streaming pipeline — producer / transformer pool / aggregator connected
// by channels. Each stage interacts with the next through suspending
// receives, so the whole pipeline is a computation with many
// latency-incurring operations in flight: exactly the "interacting parallel
// computation" shape the paper targets.
//
//   build/examples/pipeline [jobs] [arrival_ms] [fib_n] [workers]
//
// Stage 1 (producer): jobs arrive one every arrival_ms (simulated input
//   latency), like the paper's server example.
// Stage 2 (transformers, x3): receive a job, compute fib (parallel compute
//   that itself forks), send the result on.
// Stage 3 (aggregator): folds the results.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/channel.hpp"
#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace {

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

using lhws::channel;

lhws::task<long> producer(channel<unsigned>& jobs, unsigned count,
                          std::chrono::milliseconds arrival, unsigned fib_n) {
  for (unsigned i = 0; i < count; ++i) {
    // The next job arrives after `arrival` of input latency.
    const unsigned job = co_await lhws::latency(arrival, fib_n + (i % 3));
    jobs.send(job);
  }
  jobs.close();
  co_return static_cast<long>(count);
}

lhws::task<long> transformer(channel<unsigned>& jobs, channel<long>& results) {
  long handled = 0;
  for (;;) {
    const std::optional<unsigned> job = co_await jobs.receive();
    if (!job.has_value()) break;  // channel closed and drained
    results.send(co_await fib(*job));
    ++handled;
  }
  co_return handled;
}

// Forks the transformer pool; closes the results channel when all are done.
lhws::task<long> transform_stage(channel<unsigned>& jobs,
                                 channel<long>& results) {
  auto [ab, c] = co_await lhws::fork2(
      []( channel<unsigned>& j, channel<long>& r) -> lhws::task<long> {
        auto [a, b] = co_await lhws::fork2(transformer(j, r),
                                           transformer(j, r));
        co_return a + b;
      }(jobs, results),
      transformer(jobs, results));
  results.close();
  co_return ab + c;
}

lhws::task<long> aggregator(channel<long>& results) {
  long sum = 0;
  for (;;) {
    const std::optional<long> r = co_await results.receive();
    if (!r.has_value()) break;
    sum += *r;
  }
  co_return sum;
}

lhws::task<long> pipeline(channel<unsigned>& jobs, channel<long>& results,
                          unsigned count, std::chrono::milliseconds arrival,
                          unsigned fib_n) {
  auto [upstream, sum] = co_await lhws::fork2(
      [](channel<unsigned>& j, channel<long>& r, unsigned c,
         std::chrono::milliseconds a, unsigned f) -> lhws::task<long> {
        auto [produced, handled] =
            co_await lhws::fork2(producer(j, c, a, f), transform_stage(j, r));
        co_return produced + handled;
      }(jobs, results, count, arrival, fib_n),
      aggregator(results));
  (void)upstream;
  co_return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs_n =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 24;
  const auto arrival =
      std::chrono::milliseconds(argc > 2 ? std::atoi(argv[2]) : 8);
  const unsigned fib_n =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 18;
  const unsigned workers =
      argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;

  std::printf("pipeline: %u jobs arriving every %lldms, 3 transformers "
              "computing fib(~%u), workers=%u\n",
              jobs_n, static_cast<long long>(arrival.count()), fib_n, workers);

  for (const auto eng :
       {lhws::engine::latency_hiding, lhws::engine::blocking}) {
    lhws::scheduler_options opts;
    opts.workers = workers;
    opts.engine_kind = eng;
    lhws::scheduler sched(opts);
    lhws::channel<unsigned> jobs;
    lhws::channel<long> results;
    const long sum =
        sched.run(pipeline(jobs, results, jobs_n, arrival, fib_n));
    std::printf("  %-15s sum=%-12ld wall=%8.1fms suspensions=%llu\n",
                eng == lhws::engine::latency_hiding ? "latency-hiding"
                                                    : "blocking",
                sum, sched.stats().elapsed_ms,
                static_cast<unsigned long long>(sched.stats().suspensions));
  }
  std::printf("\nEvery stage interacts through suspending channel receives;\n"
              "the latency-hiding engine keeps computing fib while the\n"
              "producer's input gaps and empty-channel waits are pending.\n");
  return 0;
}
