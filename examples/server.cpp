// The "server" — the paper's second example (Figure 10), chosen there to
// minimize suspension width: inputs arrive one at a time (latency on each
// getInput), each input forks a handler f(input) while the server loops,
// and all handler results reduce with g on the way back up. Only one
// getInput is ever outstanding, so U = 1 — and by Lemma 7 no worker ever
// owns more than two deques.
//
// With --listen the simulated getInput() latency is replaced by REAL
// socket latency: the server binds a loopback TCP port, the accept loop
// forks a handler per connection (same Figure 10 recursion, over real
// heavy edges), and each request optionally awaits a downstream loopback
// RPC to its own port — the Figure 11 workload shape over actual sockets.
//
//   build/examples/server [requests] [input_gap_ms] [fib_n] [workers]
//                         [--trace FILE] [--metrics] [--metrics-out PREFIX]
//                         [--serve PORT]
//                         [--listen PORT] [--clients C] [--rpc-depth D]
//                         [--ws]
//
//   --trace FILE         write a Chrome/Perfetto trace of the latency-hiding
//                        run (with counter tracks; feed to lhws_trace_stats)
//   --metrics            dump the Prometheus exposition to stdout
//   --metrics-out PREFIX write PREFIX.prom and PREFIX.json
//   --serve PORT         serve /metrics and /metrics.json on 127.0.0.1:PORT
//                        (0 = ephemeral) until stdin closes
//   --listen PORT        real-TCP mode: serve fib RPCs on 127.0.0.1:PORT
//                        (0 = ephemeral). Wire format: request is 8 bytes
//                        {u32le fib_n, u32le rpc_depth}; fib_n == 0 means
//                        "Done" (Figure 10's stop token); response is a
//                        u64le result. If fib_n's high bit (0x80000000) is
//                        set, 12 more bytes follow: {u64le trace_id, u32le
//                        parent_span} — the causal-span wire extension; the
//                        request then joins that distributed trace as a
//                        child. In this mode `requests` and `input_gap_ms`
//                        drive the in-process clients.
//   --spans              record causal spans (DESIGN.md §13): every request
//                        opens a span scope, downstream RPCs carry the wire
//                        extension, and the trace gains flow events plus
//                        "spans"/"requests" metadata for
//                        `lhws_trace_stats --spans`
//   --clients C          in-process blocking client threads (default 0:
//                        serve external clients until someone sends Done)
//   --rpc-depth D        each request awaits D chained downstream RPCs to
//                        the server's own port (Figure 11 shape)
//   --shards N           TCP mode only: reactor shards for the sharded io
//                        plane (DESIGN.md §14). Default 0 = one per worker.
//                        Each shard owns a SO_REUSEPORT listener and every
//                        accepted connection stays on its accepting shard.
//   --ws                 TCP mode only: use the blocking work-stealing
//                        engine instead of latency hiding
//
// In TCP mode SIGTERM triggers a graceful drain: accept loops stop,
// in-flight requests run to completion, idle keep-alive connections close
// at their next header poll, and a hard 2-second deadline bounds shutdown
// (exit code 3 if connections are still open when it expires).
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "io/async_ops.hpp"
#include "io/buffer.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_http.hpp"
#include "obs/span.hpp"

namespace {

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

// f(input): the per-request handler — here, a parallel fib computation.
lhws::task<long> handle(unsigned input) { return fib(input); }

// Figure 10, transcribed:
//   function server(f, g)
//     input = getInput()            // may suspend
//     if input = "Done" then return 0
//     else (res1, res2) = fork2(f(input), server(f, g))
//          return g(res1, res2)
lhws::task<long> server(unsigned remaining, std::chrono::milliseconds gap,
                        unsigned fib_n) {
  // getInput(): the next request arrives after `gap` of latency; 0 plays
  // the role of "Done". Under --spans each getInput edge is its own
  // request scope (the fork2 join awaits the whole remaining recursion,
  // so a handler-scoped request would span every later input too); both
  // awaits are no-ops when spans are off.
  const bool traced = co_await lhws::obs::begin_request();
  const unsigned input =
      co_await lhws::latency(gap, remaining == 0 ? 0u : fib_n);
  if (traced) co_await lhws::obs::end_request();
  if (input == 0) co_return 0;
  auto [res1, res2] = co_await lhws::fork2(
      handle(input), server(remaining - 1, gap, fib_n));
  co_return res1 + res2;  // g
}

void print_per_worker(const lhws::rt::run_stats& s) {
  std::printf("    %4s %9s %8s %8s %9s %7s\n", "wkr", "segments", "steals",
              "suspend", "resumes", "maxdq");
  for (std::size_t w = 0; w < s.per_worker.size(); ++w) {
    const auto& ws = s.per_worker[w];
    std::printf("    %4zu %9llu %8llu %8llu %9llu %7llu\n", w,
                static_cast<unsigned long long>(ws.segments_executed),
                static_cast<unsigned long long>(ws.successful_steals),
                static_cast<unsigned long long>(ws.suspensions),
                static_cast<unsigned long long>(ws.resumes_delivered),
                static_cast<unsigned long long>(ws.max_deques_owned));
  }
}

// ---------------------------------------------------------------------------
// Real-TCP mode (--listen): Figure 10 with the latency edges made of real
// socket waits delivered by the io::reactor.

void put_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

void put_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

std::uint32_t get_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

unsigned long long fib_seq(unsigned n) {
  unsigned long long a = 0, b = 1;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned long long t = a + b;
    a = b;
    b = t;
  }
  return a;
}

// Reads exactly n bytes (0 = clean EOF before any byte). The deadline is
// absolute and covers the whole record.
lhws::task<long> read_exact(lhws::io::reactor& r, lhws::io::socket& s,
                            void* buf, std::size_t n,
                            lhws::io::op_deadline d = {}) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const long got = co_await lhws::io::async_read(r, s, p + done, n - done, d);
    if (got == -ETIMEDOUT) co_return got;
    if (got <= 0) co_return got == 0 && done == 0 ? 0 : -ECONNRESET;
    done += static_cast<std::size_t>(got);
  }
  co_return static_cast<long>(done);
}

struct tcp_state {
  lhws::io::reactor& r;
  // One SO_REUSEPORT listener per reactor shard (DESIGN.md §14): the
  // kernel spreads incoming connections over them, and each accept loop
  // pins its connections to its listener's shard.
  std::vector<lhws::io::socket>& listeners;
  std::uint16_t port;
  std::atomic<bool> stop{false};
  // SIGTERM drain: accept loops stop, in-flight requests complete, idle
  // keep-alive connections close at their next header poll.
  std::atomic<bool> draining{false};
  std::atomic<long long> open{0};
  std::atomic<unsigned long long> served{0};
};

// SIGTERM lands here (async-signal-safe flag only); the drain watcher
// thread in run_tcp turns it into the stop/draining transitions.
volatile std::sig_atomic_t g_sigterm = 0;
void on_sigterm(int) { g_sigterm = 1; }

// Scopes one live connection for the drain accounting; the decrement runs
// on every serve_connection exit path when its frame unwinds.
struct conn_guard {
  std::atomic<long long>& n;
  explicit conn_guard(std::atomic<long long>& c) : n(c) {
    n.fetch_add(1, std::memory_order_acq_rel);
  }
  ~conn_guard() { n.fetch_sub(1, std::memory_order_acq_rel); }
  conn_guard(const conn_guard&) = delete;
  conn_guard& operator=(const conn_guard&) = delete;
};

// Waits for the next 8-byte request header. The first byte is read under a
// 100ms deadline so an idle keep-alive connection notices a drain promptly;
// once a byte arrives the remainder is read without an interior timeout (a
// mid-record timeout would desync the stream). Returns 8, 0 on clean
// close / drain, or a negative errno.
lhws::task<long> read_header(tcp_state& st, lhws::io::socket& conn,
                             unsigned char* req) {
  for (;;) {
    const long got = co_await lhws::io::async_read(
        st.r, conn, req, 1,
        lhws::io::with_deadline(std::chrono::milliseconds(100)));
    if (got == -ETIMEDOUT) {
      if (st.draining.load(std::memory_order_acquire)) co_return 0;
      continue;
    }
    if (got <= 0) co_return got;
    const long rest = co_await read_exact(st.r, conn, req + 1, 7);
    if (rest < 0) co_return rest;
    co_return rest == 0 ? -ECONNRESET : 8;
  }
}

// Per-connection scratch layout inside one smallest-bucket slab block:
// request header, span wire extension, downstream request, downstream
// response, response. Slab-backed so connection churn recycles through the
// magazines instead of the system allocator.
constexpr std::size_t kReqOff = 0;    // 8 bytes
constexpr std::size_t kExtOff = 8;    // 12 bytes
constexpr std::size_t kSubOff = 20;   // 20 bytes
constexpr std::size_t kDsOff = 40;    // 8 bytes
constexpr std::size_t kRespOff = 48;  // 8 bytes
constexpr std::size_t kConnScratch = 56;

// Per-connection handler: each request reads 8 bytes, runs the parallel
// fib handler, optionally awaits a chained downstream RPC to our own port
// (Figure 11's service dependency, over a real loopback socket), and
// writes the 8-byte result. Every socket wait is a heavy edge: the worker
// suspends and the reactor resumes it through the deque economy.
lhws::task<long> serve_connection(tcp_state& st, int cfd, unsigned shard) {
  // fib_n high bit on the wire: the causal-span extension follows.
  constexpr std::uint32_t kTraceFlag = 0x80000000u;
  // Small request/response protocol: without TCP_NODELAY every reply waits
  // out the delayed-ACK timer. Failure is non-fatal (still correct).
  lhws::io::set_tcp_nodelay(cfd);
  // Pin the connection to its accepting listener's shard so every
  // completion for it fires on the same reactor lane.
  lhws::io::socket conn(st.r, cfd, shard);
  const conn_guard guard(st.open);
  lhws::io::conn_buffer buf(kConnScratch);
  if (!buf.valid()) co_return -ENOMEM;
  unsigned char* const req = buf.span(kReqOff, 8);
  unsigned char* const ext = buf.span(kExtOff, 12);
  unsigned char* const sub = buf.span(kSubOff, 20);
  unsigned char* const dsr = buf.span(kDsOff, 8);
  unsigned char* const resp = buf.span(kRespOff, 8);
  for (;;) {
    const long got = co_await read_header(st, conn, req);
    if (got == 0) co_return 0;  // peer closed (or drain): connection done
    if (got < 0) co_return got;
    const std::uint32_t n_raw = get_le32(req);
    const std::uint32_t depth = get_le32(req + 4);
    std::uint64_t wire_trace = 0;
    std::uint32_t wire_parent = 0;
    if ((n_raw & kTraceFlag) != 0) {
      const long egot = co_await read_exact(st.r, conn, ext, 12);
      if (egot <= 0) co_return egot == 0 ? -ECONNRESET : egot;
      wire_trace = get_le64(ext);
      wire_parent = get_le32(ext + 8);
    }
    const std::uint32_t n = n_raw & ~kTraceFlag;
    if (n == 0) {  // "Done"
      st.stop.store(true, std::memory_order_release);
      co_return 0;
    }
    // Request scope: header read -> response written. With a wire trace id
    // the record joins the upstream trace (remote_parent links the trees).
    const bool traced =
        co_await lhws::obs::begin_request(wire_trace, wire_parent);
    std::uint64_t result =
        static_cast<std::uint64_t>(co_await fib(n));
    if (depth > 0) {
      lhws::io::socket ds = lhws::io::socket::create_tcp(st.r);
      if (!ds.valid()) co_return -EBADF;
      const auto dl = lhws::io::with_deadline(std::chrono::seconds(10));
      long rc = co_await lhws::io::async_connect(st.r, ds, st.port, dl);
      if (rc != 0) co_return rc;
      std::size_t sub_len = 8;
      put_le32(sub, n);
      put_le32(sub + 4, depth - 1);
      if (traced) {
        // Propagate the trace across the RPC: the downstream request
        // becomes a child of whatever span we are currently under.
        const lhws::obs::span_ref cur = co_await lhws::obs::current_span();
        put_le32(sub, n | kTraceFlag);
        put_le64(sub + 8, cur.trace_id);
        put_le32(sub + 16, cur.span_id);
        sub_len = 20;
      }
      rc = co_await lhws::io::async_write(st.r, ds, sub, sub_len, dl);
      if (rc < 0) co_return rc;
      rc = co_await read_exact(st.r, ds, dsr, 8, dl);
      if (rc <= 0) co_return rc == 0 ? -ECONNRESET : rc;
      result += get_le64(dsr);
    }
    put_le64(resp, result);
    const long put = co_await lhws::io::async_write(st.r, conn, resp, 8);
    if (put < 0) co_return put;
    if (traced) co_await lhws::obs::end_request();
    st.served.fetch_add(1, std::memory_order_relaxed);
  }
}

// Transient accept failure: the listener is fine, the process (or kernel)
// is out of a resource right now. Back off instead of aborting — churn
// tests hit EMFILE exactly when the server is most loaded.
bool accept_should_backoff(long err) {
  return err == -EMFILE || err == -ENFILE || err == -ENOBUFS ||
         err == -ENOMEM || err == -ECONNABORTED;
}

// Figure 10's recursion over real accepts, one loop per shard listener:
// each arriving connection forks its handler against the rest of the loop.
// The accept deadline is how the loop polls the stop flag without
// busy-waiting.
lhws::task<long> accept_loop(tcp_state& st, unsigned shard) {
  for (;;) {
    if (st.stop.load(std::memory_order_acquire)) co_return 0;
    const long fd = co_await lhws::io::async_accept(
        st.r, st.listeners[shard],
        lhws::io::with_deadline(std::chrono::milliseconds(100)));
    if (fd == -ETIMEDOUT) continue;
    if (fd < 0) {
      if (accept_should_backoff(fd)) {
        // Out of fds (or a connection died in the backlog): let in-flight
        // connections finish and retry rather than killing the server.
        co_await lhws::io::sleep_for(st.r, std::chrono::milliseconds(10));
        continue;
      }
      co_return fd;
    }
    auto [rest, one] = co_await lhws::fork2(
        accept_loop(st, shard),
        serve_connection(st, static_cast<int>(fd), shard));
    co_return rest != 0 ? rest : one;
  }
}

// Root of the TCP run: fork one accept loop per shard listener.
lhws::task<long> accept_all(tcp_state& st, unsigned lo, unsigned hi) {
  if (hi - lo == 1) co_return co_await accept_loop(st, lo);
  const unsigned mid = lo + (hi - lo) / 2;
  auto [a, b] = co_await lhws::fork2(accept_all(st, lo, mid),
                                     accept_all(st, mid, hi));
  co_return a != 0 ? a : b;
}

// Blocking in-process client: one connection, `requests` paced requests,
// verifying result == (depth + 1) * fib(n).
void run_client(std::uint16_t port, unsigned requests,
                std::chrono::milliseconds gap, unsigned fib_n, unsigned depth,
                std::atomic<unsigned long long>& ok) {
  const int fd = lhws::io::connect_loopback_blocking(port);
  if (fd < 0) return;
  const std::uint64_t expected =
      std::uint64_t{depth + 1u} * fib_seq(fib_n);
  for (unsigned i = 0; i < requests; ++i) {
    unsigned char req[8];
    put_le32(req, fib_n);
    put_le32(req + 4, depth);
    if (lhws::io::write_full_fd(fd, req, sizeof req) !=
        static_cast<long>(sizeof req)) {
      break;
    }
    unsigned char resp[8];
    if (lhws::io::read_full_fd(fd, resp, sizeof resp) !=
            static_cast<long>(sizeof resp) ||
        get_le64(resp) != expected) {
      break;
    }
    ok.fetch_add(1, std::memory_order_relaxed);
    if (gap.count() > 0) std::this_thread::sleep_for(gap);
  }
  ::close(fd);
}

int run_tcp(unsigned requests, std::chrono::milliseconds gap, unsigned fib_n,
            unsigned workers, std::uint16_t listen_port, unsigned clients,
            unsigned rpc_depth, unsigned shards, bool use_ws, bool want_spans,
            const std::string& trace_path, bool want_metrics,
            lhws::obs::metrics_registry& reg) {
  lhws::scheduler_options opts;
  opts.workers = workers;
  opts.reactor_shards = shards;
  const unsigned nshards = opts.resolved_reactor_shards();
  lhws::io::reactor r(nshards);
  // One SO_REUSEPORT listener per shard: bind the first on the requested
  // (possibly ephemeral) port, then the rest on whatever it got.
  std::vector<lhws::io::socket> listeners;
  listeners.reserve(nshards);
  listeners.push_back(lhws::io::socket::listen_reuseport(r, listen_port, 0));
  if (!listeners[0].valid()) {
    std::fprintf(stderr, "cannot listen on 127.0.0.1:%u\n", listen_port);
    return 2;
  }
  const std::uint16_t port = listeners[0].local_port();
  for (unsigned sh = 1; sh < nshards; ++sh) {
    listeners.push_back(lhws::io::socket::listen_reuseport(r, port, sh));
    if (!listeners.back().valid()) {
      std::fprintf(stderr, "cannot bind shard %u listener on port %u\n", sh,
                   port);
      return 2;
    }
  }
  tcp_state st{r, listeners, port};
  std::printf("server: listening on 127.0.0.1:%u  engine=%s workers=%u "
              "shards=%u rpc_depth=%u handler=fib(%u)\n",
              st.port, use_ws ? "blocking" : "latency-hiding", workers,
              nshards, rpc_depth, fib_n);
  if (clients > 0) {
    std::printf("        %u in-process clients x %u requests, one every "
                "%lldms\n",
                clients, requests, static_cast<long long>(gap.count()));
  } else {
    std::printf("        waiting for external clients; send {0,0} to stop\n");
  }
  std::fflush(stdout);

  opts.engine_kind =
      use_ws ? lhws::engine::blocking : lhws::engine::latency_hiding;
  opts.metrics = want_metrics;
  opts.spans = want_spans;
  if (!trace_path.empty()) {
    opts.trace = true;
    opts.sample_interval_us = 200;
  }
  lhws::scheduler sched(opts);

  std::atomic<unsigned long long> ok{0};
  std::thread controller;
  if (clients > 0) {
    controller = std::thread([&] {
      std::vector<std::thread> cs;
      cs.reserve(clients);
      for (unsigned c = 0; c < clients; ++c) {
        cs.emplace_back(run_client, st.port, requests, gap, fib_n, rpc_depth,
                        std::ref(ok));
      }
      for (auto& t : cs) t.join();
      // All clients are done: send Figure 10's "Done" token.
      const int fd = lhws::io::connect_loopback_blocking(st.port);
      if (fd >= 0) {
        unsigned char done[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        lhws::io::write_full_fd(fd, done, sizeof done);
        ::close(fd);
      }
    });
  }
  // Graceful SIGTERM: stop accepting, let in-flight requests finish (idle
  // keep-alives close at their next header poll), hard deadline 2s.
  std::signal(SIGTERM, on_sigterm);
  std::atomic<bool> run_done{false};
  std::thread sig_watch([&st, &run_done] {
    while (!run_done.load(std::memory_order_acquire)) {
      if (g_sigterm != 0) {
        std::fprintf(stderr,
                     "server: SIGTERM: draining %lld open connection(s), "
                     "2s deadline\n",
                     st.open.load(std::memory_order_acquire));
        st.draining.store(true, std::memory_order_release);
        st.stop.store(true, std::memory_order_release);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (st.open.load(std::memory_order_acquire) > 0 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        const long long left = st.open.load(std::memory_order_acquire);
        if (left > 0) {
          std::fprintf(stderr,
                       "server: drain deadline exceeded; aborting %lld "
                       "connection(s)\n",
                       left);
          std::_Exit(3);
        }
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  const long rc = sched.run(accept_all(st, 0, nshards));
  run_done.store(true, std::memory_order_release);
  sig_watch.join();
  if (controller.joinable()) controller.join();

  const auto& s = sched.stats();
  if (want_spans) {
    std::printf("  spans=%llu requests=%llu dropped=%llu\n",
                static_cast<unsigned long long>(s.span_records),
                static_cast<unsigned long long>(s.request_records),
                static_cast<unsigned long long>(s.span_records_dropped));
  }
  std::printf("  served=%llu wall=%.1fms suspensions=%llu blocked_waits=%llu "
              "max_deques/worker=%llu fd_peak=%llu timeouts=%llu\n",
              st.served.load(), s.elapsed_ms,
              static_cast<unsigned long long>(s.suspensions),
              static_cast<unsigned long long>(s.blocked_waits),
              static_cast<unsigned long long>(s.max_deques_per_worker),
              static_cast<unsigned long long>(r.peak_registered_fds()),
              static_cast<unsigned long long>(r.timeouts_fired()));
  print_per_worker(s);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 2;
    }
    out << sched.trace_json();
    std::printf("  trace written to %s (%zu bytes)\n", trace_path.c_str(),
                sched.trace_json().size());
  }
  if (want_metrics) {
    sched.export_metrics(reg);
    r.export_metrics(reg);
  }
  if (rc != 0) {
    std::fprintf(stderr, "accept loop failed: %ld\n", rc);
    return 1;
  }
  const unsigned long long expect_ok =
      static_cast<unsigned long long>(clients) * requests;
  if (clients > 0 && ok.load() != expect_ok) {
    std::fprintf(stderr, "client verification failed: %llu/%llu responses\n",
                 ok.load(), expect_ok);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned positional[4] = {20, 10, 18, 2};
  int npos = 0;
  std::string trace_path;
  std::string metrics_prefix;
  bool metrics_stdout = false;
  bool serve = false;
  std::uint16_t serve_port = 0;
  bool listen_mode = false;
  std::uint16_t listen_port = 0;
  unsigned clients = 0;
  unsigned rpc_depth = 0;
  unsigned shards = 0;
  bool use_ws = false;
  bool want_spans = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen") {
      if (++i >= argc) {
        std::fprintf(stderr, "--listen needs PORT\n");
        return 2;
      }
      listen_mode = true;
      listen_port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    } else if (arg == "--clients") {
      if (++i >= argc) {
        std::fprintf(stderr, "--clients needs COUNT\n");
        return 2;
      }
      clients = static_cast<unsigned>(std::atoi(argv[i]));
    } else if (arg == "--rpc-depth") {
      if (++i >= argc) {
        std::fprintf(stderr, "--rpc-depth needs DEPTH\n");
        return 2;
      }
      rpc_depth = static_cast<unsigned>(std::atoi(argv[i]));
    } else if (arg == "--shards") {
      if (++i >= argc) {
        std::fprintf(stderr, "--shards needs COUNT\n");
        return 2;
      }
      shards = static_cast<unsigned>(std::atoi(argv[i]));
    } else if (arg == "--ws") {
      use_ws = true;
    } else if (arg == "--spans") {
      want_spans = true;
    } else if (arg == "--trace") {
      if (++i >= argc) {
        std::fprintf(stderr, "--trace needs FILE\n");
        return 2;
      }
      trace_path = argv[i];
    } else if (arg == "--metrics") {
      metrics_stdout = true;
    } else if (arg == "--metrics-out") {
      if (++i >= argc) {
        std::fprintf(stderr, "--metrics-out needs PREFIX\n");
        return 2;
      }
      metrics_prefix = argv[i];
    } else if (arg == "--serve") {
      if (++i >= argc) {
        std::fprintf(stderr, "--serve needs PORT\n");
        return 2;
      }
      serve = true;
      serve_port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    } else if (npos < 4) {
      positional[npos++] = static_cast<unsigned>(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const unsigned requests = positional[0];
  const auto gap = std::chrono::milliseconds(positional[1]);
  const unsigned fib_n = positional[2];
  const unsigned workers = positional[3];
  const bool want_metrics =
      metrics_stdout || !metrics_prefix.empty() || serve || !trace_path.empty();

  lhws::obs::metrics_registry reg;
  if (listen_mode) {
    if (use_ws && rpc_depth > 0) {
      std::fprintf(stderr,
                   "warning: --ws with --rpc-depth > 0 can deadlock when "
                   "every worker blocks awaiting a downstream handler\n");
    }
    const int rc = run_tcp(requests, gap, fib_n, workers, listen_port,
                           clients, rpc_depth, shards, use_ws, want_spans,
                           trace_path, want_metrics, reg);
    if (rc != 0) return rc;
  } else {
    std::printf("server: %u requests, one every %lldms, handler fib(%u), "
                "workers=%u  (U = 1)\n",
                requests, static_cast<long long>(gap.count()), fib_n, workers);

    for (const auto eng :
         {lhws::engine::latency_hiding, lhws::engine::blocking}) {
      const bool lhws_run = eng == lhws::engine::latency_hiding;
      lhws::scheduler_options opts;
      opts.workers = workers;
      opts.engine_kind = eng;
      if (lhws_run) {
        opts.metrics = want_metrics;
        opts.spans = want_spans;
        if (!trace_path.empty()) {
          opts.trace = true;
          opts.sample_interval_us = 200;
        }
      }
      lhws::scheduler sched(opts);
      const long total = sched.run(server(requests, gap, fib_n));
      const auto& s = sched.stats();
      std::printf(
          "  %-15s total=%-10ld wall=%8.1fms max_deques/worker=%llu "
          "suspensions=%llu\n",
          lhws_run ? "latency-hiding" : "blocking", total, s.elapsed_ms,
          static_cast<unsigned long long>(s.max_deques_per_worker),
          static_cast<unsigned long long>(s.suspensions));
      print_per_worker(s);
      if (lhws_run) {
        if (!trace_path.empty()) {
          std::ofstream out(trace_path, std::ios::binary);
          if (!out) {
            std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
            return 2;
          }
          out << sched.trace_json();
          std::printf("  trace written to %s (%zu bytes, %llu events "
                      "dropped)\n",
                      trace_path.c_str(), sched.trace_json().size(),
                      static_cast<unsigned long long>(s.trace_events_dropped));
        }
        if (want_metrics) sched.export_metrics(reg);
      }
    }
    std::printf(
        "\nWith U = 1 (Lemma 7) the latency-hiding run never needs more than\n"
        "two deques per worker; handlers overlap the input gaps, so the\n"
        "latency-hiding wall time approaches max(total compute, total gaps).\n");
  }

  if (metrics_stdout) {
    std::printf("\n# --- Prometheus exposition "
                "(latency-hiding run) ---\n%s",
                reg.prometheus_text().c_str());
  }
  if (!metrics_prefix.empty()) {
    std::ofstream prom(metrics_prefix + ".prom", std::ios::binary);
    prom << reg.prometheus_text();
    std::ofstream json(metrics_prefix + ".json", std::ios::binary);
    json << reg.json_text();
    if (!prom || !json) {
      std::fprintf(stderr, "cannot write %s.{prom,json}\n",
                   metrics_prefix.c_str());
      return 2;
    }
    std::printf("metrics written to %s.prom and %s.json\n",
                metrics_prefix.c_str(), metrics_prefix.c_str());
  }
  if (serve) {
    // The run is over, so the registry is stable; render both formats once
    // and serve the cached text.
    const std::string prom_text = reg.prometheus_text();
    const std::string json_text = reg.json_text();
    lhws::obs::metrics_http_server http;
    if (!http.start(serve_port,
                    [&](lhws::obs::metrics_http_server::format f) {
                      return f == lhws::obs::metrics_http_server::format::json
                                 ? json_text
                                 : prom_text;
                    })) {
      std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", serve_port);
      return 2;
    }
    std::printf("serving http://127.0.0.1:%u/metrics (and /metrics.json); "
                "close stdin to exit\n",
                http.port());
    std::fflush(stdout);
    // Block until the pipe/terminal closes so scripts can `curl` then EOF us.
    for (int c = std::getchar(); c != EOF; c = std::getchar()) {}
    http.stop();
  }
  return 0;
}
