// The "server" — the paper's second example (Figure 10), chosen there to
// minimize suspension width: inputs arrive one at a time (latency on each
// getInput), each input forks a handler f(input) while the server loops,
// and all handler results reduce with g on the way back up. Only one
// getInput is ever outstanding, so U = 1 — and by Lemma 7 no worker ever
// owns more than two deques.
//
//   build/examples/server [requests] [input_gap_ms] [fib_n] [workers]
//                         [--trace FILE] [--metrics] [--metrics-out PREFIX]
//                         [--serve PORT]
//
//   --trace FILE         write a Chrome/Perfetto trace of the latency-hiding
//                        run (with counter tracks; feed to lhws_trace_stats)
//   --metrics            dump the Prometheus exposition to stdout
//   --metrics-out PREFIX write PREFIX.prom and PREFIX.json
//   --serve PORT         serve /metrics and /metrics.json on 127.0.0.1:PORT
//                        (0 = ephemeral) until stdin closes
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_http.hpp"

namespace {

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

// f(input): the per-request handler — here, a parallel fib computation.
lhws::task<long> handle(unsigned input) { return fib(input); }

// Figure 10, transcribed:
//   function server(f, g)
//     input = getInput()            // may suspend
//     if input = "Done" then return 0
//     else (res1, res2) = fork2(f(input), server(f, g))
//          return g(res1, res2)
lhws::task<long> server(unsigned remaining, std::chrono::milliseconds gap,
                        unsigned fib_n) {
  // getInput(): the next request arrives after `gap` of latency; 0 plays
  // the role of "Done".
  const unsigned input =
      co_await lhws::latency(gap, remaining == 0 ? 0u : fib_n);
  if (input == 0) co_return 0;
  auto [res1, res2] = co_await lhws::fork2(
      handle(input), server(remaining - 1, gap, fib_n));
  co_return res1 + res2;  // g
}

void print_per_worker(const lhws::rt::run_stats& s) {
  std::printf("    %4s %9s %8s %8s %9s %7s\n", "wkr", "segments", "steals",
              "suspend", "resumes", "maxdq");
  for (std::size_t w = 0; w < s.per_worker.size(); ++w) {
    const auto& ws = s.per_worker[w];
    std::printf("    %4zu %9llu %8llu %8llu %9llu %7llu\n", w,
                static_cast<unsigned long long>(ws.segments_executed),
                static_cast<unsigned long long>(ws.successful_steals),
                static_cast<unsigned long long>(ws.suspensions),
                static_cast<unsigned long long>(ws.resumes_delivered),
                static_cast<unsigned long long>(ws.max_deques_owned));
  }
}

}  // namespace

int main(int argc, char** argv) {
  unsigned positional[4] = {20, 10, 18, 2};
  int npos = 0;
  std::string trace_path;
  std::string metrics_prefix;
  bool metrics_stdout = false;
  bool serve = false;
  std::uint16_t serve_port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (++i >= argc) {
        std::fprintf(stderr, "--trace needs FILE\n");
        return 2;
      }
      trace_path = argv[i];
    } else if (arg == "--metrics") {
      metrics_stdout = true;
    } else if (arg == "--metrics-out") {
      if (++i >= argc) {
        std::fprintf(stderr, "--metrics-out needs PREFIX\n");
        return 2;
      }
      metrics_prefix = argv[i];
    } else if (arg == "--serve") {
      if (++i >= argc) {
        std::fprintf(stderr, "--serve needs PORT\n");
        return 2;
      }
      serve = true;
      serve_port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    } else if (npos < 4) {
      positional[npos++] = static_cast<unsigned>(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const unsigned requests = positional[0];
  const auto gap = std::chrono::milliseconds(positional[1]);
  const unsigned fib_n = positional[2];
  const unsigned workers = positional[3];
  const bool want_metrics =
      metrics_stdout || !metrics_prefix.empty() || serve || !trace_path.empty();

  std::printf("server: %u requests, one every %lldms, handler fib(%u), "
              "workers=%u  (U = 1)\n",
              requests, static_cast<long long>(gap.count()), fib_n, workers);

  lhws::obs::metrics_registry reg;
  for (const auto eng :
       {lhws::engine::latency_hiding, lhws::engine::blocking}) {
    const bool lhws_run = eng == lhws::engine::latency_hiding;
    lhws::scheduler_options opts;
    opts.workers = workers;
    opts.engine_kind = eng;
    if (lhws_run) {
      opts.metrics = want_metrics;
      if (!trace_path.empty()) {
        opts.trace = true;
        opts.sample_interval_us = 200;
      }
    }
    lhws::scheduler sched(opts);
    const long total = sched.run(server(requests, gap, fib_n));
    const auto& s = sched.stats();
    std::printf(
        "  %-15s total=%-10ld wall=%8.1fms max_deques/worker=%llu "
        "suspensions=%llu\n",
        lhws_run ? "latency-hiding" : "blocking", total, s.elapsed_ms,
        static_cast<unsigned long long>(s.max_deques_per_worker),
        static_cast<unsigned long long>(s.suspensions));
    print_per_worker(s);
    if (lhws_run) {
      if (!trace_path.empty()) {
        std::ofstream out(trace_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
          return 2;
        }
        out << sched.trace_json();
        std::printf("  trace written to %s (%zu bytes, %llu events "
                    "dropped)\n",
                    trace_path.c_str(), sched.trace_json().size(),
                    static_cast<unsigned long long>(s.trace_events_dropped));
      }
      if (want_metrics) sched.export_metrics(reg);
    }
  }
  std::printf(
      "\nWith U = 1 (Lemma 7) the latency-hiding run never needs more than\n"
      "two deques per worker; handlers overlap the input gaps, so the\n"
      "latency-hiding wall time approaches max(total compute, total gaps).\n");

  if (metrics_stdout) {
    std::printf("\n# --- Prometheus exposition "
                "(latency-hiding run) ---\n%s",
                reg.prometheus_text().c_str());
  }
  if (!metrics_prefix.empty()) {
    std::ofstream prom(metrics_prefix + ".prom", std::ios::binary);
    prom << reg.prometheus_text();
    std::ofstream json(metrics_prefix + ".json", std::ios::binary);
    json << reg.json_text();
    if (!prom || !json) {
      std::fprintf(stderr, "cannot write %s.{prom,json}\n",
                   metrics_prefix.c_str());
      return 2;
    }
    std::printf("metrics written to %s.prom and %s.json\n",
                metrics_prefix.c_str(), metrics_prefix.c_str());
  }
  if (serve) {
    // The run is over, so the registry is stable; render both formats once
    // and serve the cached text.
    const std::string prom_text = reg.prometheus_text();
    const std::string json_text = reg.json_text();
    lhws::obs::metrics_http_server http;
    if (!http.start(serve_port,
                    [&](lhws::obs::metrics_http_server::format f) {
                      return f == lhws::obs::metrics_http_server::format::json
                                 ? json_text
                                 : prom_text;
                    })) {
      std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", serve_port);
      return 2;
    }
    std::printf("serving http://127.0.0.1:%u/metrics (and /metrics.json); "
                "close stdin to exit\n",
                http.port());
    std::fflush(stdout);
    // Block until the pipe/terminal closes so scripts can `curl` then EOF us.
    for (int c = std::getchar(); c != EOF; c = std::getchar()) {}
    http.stop();
  }
  return 0;
}
