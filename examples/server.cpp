// The "server" — the paper's second example (Figure 10), chosen there to
// minimize suspension width: inputs arrive one at a time (latency on each
// getInput), each input forks a handler f(input) while the server loops,
// and all handler results reduce with g on the way back up. Only one
// getInput is ever outstanding, so U = 1 — and by Lemma 7 no worker ever
// owns more than two deques.
//
//   build/examples/server [requests] [input_gap_ms] [fib_n] [workers]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace {

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

// f(input): the per-request handler — here, a parallel fib computation.
lhws::task<long> handle(unsigned input) { return fib(input); }

// Figure 10, transcribed:
//   function server(f, g)
//     input = getInput()            // may suspend
//     if input = "Done" then return 0
//     else (res1, res2) = fork2(f(input), server(f, g))
//          return g(res1, res2)
lhws::task<long> server(unsigned remaining, std::chrono::milliseconds gap,
                        unsigned fib_n) {
  // getInput(): the next request arrives after `gap` of latency; 0 plays
  // the role of "Done".
  const unsigned input =
      co_await lhws::latency(gap, remaining == 0 ? 0u : fib_n);
  if (input == 0) co_return 0;
  auto [res1, res2] = co_await lhws::fork2(
      handle(input), server(remaining - 1, gap, fib_n));
  co_return res1 + res2;  // g
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned requests =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 20;
  const auto gap = std::chrono::milliseconds(argc > 2 ? std::atoi(argv[2]) : 10);
  const unsigned fib_n =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 18;
  const unsigned workers =
      argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;

  std::printf("server: %u requests, one every %lldms, handler fib(%u), "
              "workers=%u  (U = 1)\n",
              requests, static_cast<long long>(gap.count()), fib_n, workers);

  for (const auto eng :
       {lhws::engine::latency_hiding, lhws::engine::blocking}) {
    lhws::scheduler_options opts;
    opts.workers = workers;
    opts.engine_kind = eng;
    lhws::scheduler sched(opts);
    const long total = sched.run(server(requests, gap, fib_n));
    const auto& s = sched.stats();
    std::printf(
        "  %-15s total=%-10ld wall=%8.1fms max_deques/worker=%llu "
        "suspensions=%llu\n",
        eng == lhws::engine::latency_hiding ? "latency-hiding" : "blocking",
        total, s.elapsed_ms,
        static_cast<unsigned long long>(s.max_deques_per_worker),
        static_cast<unsigned long long>(s.suspensions));
  }
  std::printf(
      "\nWith U = 1 (Lemma 7) the latency-hiding run never needs more than\n"
      "two deques per worker; handlers overlap the input gaps, so the\n"
      "latency-hiding wall time approaches max(total compute, total gaps).\n");
  return 0;
}
