// Distributed map-reduce — the paper's running example (Figure 8) and the
// workload of its experimental evaluation (Section 6.1): fetch n values
// from "remote servers" (simulated latency delta), compute a naive parallel
// Fibonacci of each, and sum the results modulo a large constant.
//
//   build/examples/dist_map_reduce [n] [delta_ms] [fib_n] [workers]
//
// Runs the identical program on the latency-hiding and blocking engines and
// prints the comparison. With the defaults (n=64, delta=25ms, fib 20,
// workers=2) the blocking engine pays roughly n/P * delta of stalled time
// while the latency-hiding engine overlaps all fetches.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace {

constexpr long kModulus = 1'000'000'007;

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return (a + b) % kModulus;
}

// Figure 8's distMapReduce leaf: getValue(i) may suspend, then f(x).
lhws::task<long> get_and_compute(std::size_t i, std::chrono::milliseconds delta,
                                 unsigned fib_n) {
  // The benchmark of Section 6.1: "simulates a latency of delta
  // milliseconds by sleeping for delta milliseconds and then immediately
  // returning 30" (we return fib_n, scaled for simulation on small hosts).
  const auto x = static_cast<unsigned>(
      co_await lhws::latency(delta, fib_n + (i % 1)));
  co_return co_await fib(x);
}

lhws::task<long> dist_map_reduce(std::size_t n, std::chrono::milliseconds delta,
                                 unsigned fib_n) {
  return lhws::map_reduce<long>(
      0, n, 0L,
      [delta, fib_n](std::size_t i) { return get_and_compute(i, delta, fib_n); },
      [](long a, long b) { return (a + b) % kModulus; });
}

double run_once(lhws::engine eng, unsigned workers, std::size_t n,
                std::chrono::milliseconds delta, unsigned fib_n,
                long* result_out) {
  lhws::scheduler_options opts;
  opts.workers = workers;
  opts.engine_kind = eng;
  lhws::scheduler sched(opts);
  *result_out = sched.run(dist_map_reduce(n, delta, fib_n));
  return sched.stats().elapsed_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const auto delta =
      std::chrono::milliseconds(argc > 2 ? std::atoi(argv[2]) : 25);
  const unsigned fib_n =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 20;
  const unsigned workers =
      argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;

  std::printf(
      "dist_map_reduce: n=%zu delta=%lldms fib(%u) workers=%u  (U = n = "
      "%zu)\n",
      n, static_cast<long long>(delta.count()), fib_n, workers, n);

  long r_lhws = 0, r_ws = 0;
  const double ms_lhws = run_once(lhws::engine::latency_hiding, workers, n,
                                  delta, fib_n, &r_lhws);
  std::printf("  latency-hiding : %8.1f ms   result=%ld\n", ms_lhws, r_lhws);
  const double ms_ws =
      run_once(lhws::engine::blocking, workers, n, delta, fib_n, &r_ws);
  std::printf("  blocking (WS)  : %8.1f ms   result=%ld\n", ms_ws, r_ws);

  if (r_lhws != r_ws) {
    std::printf("ERROR: engines disagree!\n");
    return 1;
  }
  std::printf("  speedup of latency hiding: %.2fx\n", ms_ws / ms_lhws);
  return 0;
}
