// Distributed map-reduce — the paper's running example (Figure 8) and the
// workload of its experimental evaluation (Section 6.1): fetch n values
// from "remote servers" (simulated latency delta), compute a naive parallel
// Fibonacci of each, and sum the results modulo a large constant.
//
//   build/examples/dist_map_reduce [n] [delta_ms] [fib_n] [workers]
//                                  [--trace FILE]
//
// Runs the identical program on the latency-hiding and blocking engines and
// prints the comparison. With the defaults (n=64, delta=25ms, fib 20,
// workers=2) the blocking engine pays roughly n/P * delta of stalled time
// while the latency-hiding engine overlaps all fetches. --trace writes a
// Chrome/Perfetto trace of the latency-hiding run (with counter tracks)
// suitable for lhws_trace_stats.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

namespace {

constexpr long kModulus = 1'000'000'007;

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return (a + b) % kModulus;
}

// Figure 8's distMapReduce leaf: getValue(i) may suspend, then f(x).
lhws::task<long> get_and_compute(std::size_t i, std::chrono::milliseconds delta,
                                 unsigned fib_n) {
  // The benchmark of Section 6.1: "simulates a latency of delta
  // milliseconds by sleeping for delta milliseconds and then immediately
  // returning 30" (we return fib_n, scaled for simulation on small hosts).
  const auto x = static_cast<unsigned>(
      co_await lhws::latency(delta, fib_n + (i % 1)));
  co_return co_await fib(x);
}

lhws::task<long> dist_map_reduce(std::size_t n, std::chrono::milliseconds delta,
                                 unsigned fib_n) {
  return lhws::map_reduce<long>(
      0, n, 0L,
      [delta, fib_n](std::size_t i) { return get_and_compute(i, delta, fib_n); },
      [](long a, long b) { return (a + b) % kModulus; });
}

double run_once(lhws::engine eng, unsigned workers, std::size_t n,
                std::chrono::milliseconds delta, unsigned fib_n,
                long* result_out, const std::string& trace_path) {
  lhws::scheduler_options opts;
  opts.workers = workers;
  opts.engine_kind = eng;
  if (!trace_path.empty()) {
    opts.trace = true;
    opts.metrics = true;
    opts.sample_interval_us = 200;
  }
  lhws::scheduler sched(opts);
  *result_out = sched.run(dist_map_reduce(n, delta, fib_n));
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    out << sched.trace_json();
    std::printf("  trace written to %s (%llu events dropped)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(
                    sched.stats().trace_events_dropped));
  }
  return sched.stats().elapsed_ms;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned long positional[4] = {64, 25, 20, 2};
  int npos = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (++i >= argc) {
        std::fprintf(stderr, "--trace needs FILE\n");
        return 2;
      }
      trace_path = argv[i];
    } else if (npos < 4) {
      positional[npos++] = std::strtoul(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const std::size_t n = positional[0];
  const auto delta = std::chrono::milliseconds(positional[1]);
  const auto fib_n = static_cast<unsigned>(positional[2]);
  const auto workers = static_cast<unsigned>(positional[3]);

  std::printf(
      "dist_map_reduce: n=%zu delta=%lldms fib(%u) workers=%u  (U = n = "
      "%zu)\n",
      n, static_cast<long long>(delta.count()), fib_n, workers, n);

  long r_lhws = 0, r_ws = 0;
  const double ms_lhws = run_once(lhws::engine::latency_hiding, workers, n,
                                  delta, fib_n, &r_lhws, trace_path);
  std::printf("  latency-hiding : %8.1f ms   result=%ld\n", ms_lhws, r_lhws);
  const double ms_ws =
      run_once(lhws::engine::blocking, workers, n, delta, fib_n, &r_ws, {});
  std::printf("  blocking (WS)  : %8.1f ms   result=%ld\n", ms_ws, r_ws);

  if (r_lhws != r_ws) {
    std::printf("ERROR: engines disagree!\n");
    return 1;
  }
  std::printf("  speedup of latency hiding: %.2fx\n", ms_ws / ms_lhws);
  return 0;
}
