// Distributed map-reduce — the paper's running example (Figure 8) and the
// workload of its experimental evaluation (Section 6.1): fetch n values
// from "remote servers" (simulated latency delta), compute a naive parallel
// Fibonacci of each, and sum the results modulo a large constant.
//
//   build/examples/dist_map_reduce [n] [delta_ms] [fib_n] [workers]
//                                  [--trace FILE]
//                                  [--cluster NODES] [--policy P]
//
// Runs the identical program on the latency-hiding and blocking engines and
// prints the comparison. With the defaults (n=64, delta=25ms, fib 20,
// workers=2) the blocking engine pays roughly n/P * delta of stalled time
// while the latency-hiding engine overlaps all fetches. --trace writes a
// Chrome/Perfetto trace of the latency-hiding run (with counter tracks)
// suitable for lhws_trace_stats.
//
// With --cluster N the "remote servers" become REAL: the process forks N
// lhws_node-style children (ids 0..N-1, full loopback mesh, DESIGN.md §15),
// node 0 drives the same map-reduce with each getValue(i) shipped to node
// i % N as a remote spawn — the remote join is the heavy delta edge — and
// delta_ms becomes the per-peer injected wire latency. --policy selects the
// remote steal policy (default never); --trace FILE writes FILE.<id> per
// node (merge with `lhws_trace_stats --spans FILE.0 FILE.1 ...`).
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "dist/node_runner.hpp"
#include "obs/span.hpp"

namespace {

constexpr long kModulus = 1'000'000'007;

lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return (a + b) % kModulus;
}

// Figure 8's distMapReduce leaf: getValue(i) may suspend, then f(x).
lhws::task<long> get_and_compute(std::size_t i, std::chrono::milliseconds delta,
                                 unsigned fib_n) {
  // The benchmark of Section 6.1: "simulates a latency of delta
  // milliseconds by sleeping for delta milliseconds and then immediately
  // returning 30" (we return fib_n, scaled for simulation on small hosts).
  const auto x = static_cast<unsigned>(
      co_await lhws::latency(delta, fib_n + (i % 1)));
  co_return co_await fib(x);
}

lhws::task<long> dist_map_reduce(std::size_t n, std::chrono::milliseconds delta,
                                 unsigned fib_n) {
  return lhws::map_reduce<long>(
      0, n, 0L,
      [delta, fib_n](std::size_t i) { return get_and_compute(i, delta, fib_n); },
      [](long a, long b) { return (a + b) % kModulus; });
}

double run_once(lhws::engine eng, unsigned workers, std::size_t n,
                std::chrono::milliseconds delta, unsigned fib_n,
                long* result_out, const std::string& trace_path) {
  lhws::scheduler_options opts;
  opts.workers = workers;
  opts.engine_kind = eng;
  if (!trace_path.empty()) {
    opts.trace = true;
    opts.metrics = true;
    opts.sample_interval_us = 200;
  }
  lhws::scheduler sched(opts);
  *result_out = sched.run(dist_map_reduce(n, delta, fib_n));
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    out << sched.trace_json();
    std::printf("  trace written to %s (%llu events dropped)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(
                    sched.stats().trace_events_dropped));
  }
  return sched.stats().elapsed_ms;
}

// ---------------------------------------------------------------------------
// --cluster: the map over real processes. Node 0 owns the reduce; item i
// executes on node i % N via cluster::call (a remote spawn whose join is
// the heavy delta edge), so with N nodes the "simulated remote server" of
// the single-process mode becomes an actual remote scheduler.

unsigned long long fib_seq(unsigned n) {
  unsigned long long a = 0, b = 1;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned long long t = a + b;
    a = b;
    b = t;
  }
  return a;
}

lhws::task<long> cluster_map(lhws::dist::cluster& c, std::size_t lo,
                             std::size_t hi, unsigned nodes, unsigned fib_n) {
  if (hi - lo == 1) {
    const bool traced = co_await lhws::obs::begin_request();
    const std::uint64_t v = co_await c.call(
        static_cast<std::uint32_t>(lo % nodes), lhws::dist::kWorkFib, fib_n);
    if (traced) co_await lhws::obs::end_request();
    co_return static_cast<long>(v % kModulus);
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  auto [a, b] = co_await lhws::fork2(cluster_map(c, lo, mid, nodes, fib_n),
                                     cluster_map(c, mid, hi, nodes, fib_n));
  co_return (a + b) % kModulus;
}

// Forks one node process; never returns in the child (it _exits with the
// node's status so a failure can't fall back into the parent's main).
pid_t spawn_node(const lhws::dist::node_options& no,
                 lhws::dist::driver_fn driver) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  lhws::dist::node_report rep;
  const int rc = lhws::dist::run_node(no, std::move(driver), &rep);
  if (no.cfg.node_id == 0) {
    const auto& s = rep.stats;
    std::printf("  node 0: wall=%.1fms calls=%llu executed=%llu "
                "(stolen=%llu) routed=%llu\n",
                rep.elapsed_ms, static_cast<unsigned long long>(s.calls),
                static_cast<unsigned long long>(s.executed),
                static_cast<unsigned long long>(s.stolen_executed),
                static_cast<unsigned long long>(s.results_routed));
  }
  ::_exit(rc);
}

int run_cluster(std::size_t n, std::chrono::milliseconds delta,
                unsigned fib_n, unsigned workers, unsigned nodes,
                lhws::dist::remote_steal_policy policy,
                const std::string& trace_path) {
  char tmpl[] = "/tmp/lhws_cluster.XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    return 2;
  }
  const std::string dir = tmpl;
  const long expected = static_cast<long>(
      static_cast<unsigned long long>(n) * (fib_seq(fib_n) % kModulus) %
      kModulus);

  std::printf("dist_map_reduce --cluster: n=%zu delta=%lldms fib(%u) "
              "workers=%u nodes=%u policy=%s\n",
              n, static_cast<long long>(delta.count()), fib_n, workers,
              nodes, lhws::dist::policy_name(policy));
  std::fflush(stdout);

  auto options_for = [&](unsigned id,
                         const std::vector<std::uint16_t>& ports) {
    lhws::dist::node_options no;
    no.cfg.node_id = id;
    no.cfg.policy = policy;
    no.cfg.injected_delta_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count();
    for (unsigned j = 0; j < nodes; ++j) {
      if (j == id) continue;
      // Only lower ids are dialed; accept-side peers need no port.
      no.cfg.peers.push_back({j, j < id ? ports[j] : std::uint16_t{0}});
    }
    no.workers = workers;
    no.port_file = dir + "/port." + std::to_string(id);
    if (!trace_path.empty()) {
      no.trace_path = trace_path + "." + std::to_string(id);
    }
    return no;
  };

  std::vector<pid_t> pids;
  std::vector<std::uint16_t> ports(nodes, 0);
  for (unsigned id = 0; id < nodes; ++id) {
    lhws::dist::node_options no = options_for(id, ports);
    lhws::dist::driver_fn driver;
    if (id == 0) {
      driver = [n, nodes, fib_n, expected](
                   lhws::dist::cluster& c) -> lhws::task<long> {
        const long sum = co_await cluster_map(c, 0, n, nodes, fib_n);
        co_return sum == expected ? 0 : 1;
      };
    }
    const pid_t pid = spawn_node(no, std::move(driver));
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    pids.push_back(pid);
    ports[id] = lhws::dist::wait_port_file(no.port_file,
                                           std::chrono::seconds(10));
    if (ports[id] == 0) {
      std::fprintf(stderr, "node %u never published its port\n", id);
      return 2;
    }
  }

  int rc = 0;
  for (unsigned id = 0; id < nodes; ++id) {
    int status = 0;
    if (::waitpid(pids[id], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "node %u failed (status %d)\n", id, status);
      rc = 1;
    }
    std::remove((dir + "/port." + std::to_string(id)).c_str());
  }
  ::rmdir(dir.c_str());
  if (rc == 0) {
    std::printf("  cluster result verified: %ld (n=%zu items over %u "
                "nodes)\n",
                expected, n, nodes);
    if (!trace_path.empty()) {
      std::printf("  per-node traces: %s.0 .. %s.%u\n", trace_path.c_str(),
                  trace_path.c_str(), nodes - 1);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned long positional[4] = {64, 25, 20, 2};
  int npos = 0;
  std::string trace_path;
  unsigned cluster_nodes = 0;
  auto policy = lhws::dist::remote_steal_policy::never;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (++i >= argc) {
        std::fprintf(stderr, "--trace needs FILE\n");
        return 2;
      }
      trace_path = argv[i];
    } else if (arg == "--cluster") {
      if (++i >= argc) {
        std::fprintf(stderr, "--cluster needs NODES\n");
        return 2;
      }
      cluster_nodes = static_cast<unsigned>(std::strtoul(argv[i], nullptr, 10));
      if (cluster_nodes < 2 || cluster_nodes > 16) {
        std::fprintf(stderr, "--cluster wants 2..16 nodes\n");
        return 2;
      }
    } else if (arg == "--policy") {
      if (++i >= argc || !lhws::dist::parse_policy(argv[i], policy)) {
        std::fprintf(stderr, "--policy needs never|threshold|always\n");
        return 2;
      }
    } else if (npos < 4) {
      positional[npos++] = std::strtoul(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  const std::size_t n = positional[0];
  const auto delta = std::chrono::milliseconds(positional[1]);
  const auto fib_n = static_cast<unsigned>(positional[2]);
  const auto workers = static_cast<unsigned>(positional[3]);

  if (cluster_nodes > 0) {
    return run_cluster(n, delta, fib_n, workers, cluster_nodes, policy,
                       trace_path);
  }

  std::printf(
      "dist_map_reduce: n=%zu delta=%lldms fib(%u) workers=%u  (U = n = "
      "%zu)\n",
      n, static_cast<long long>(delta.count()), fib_n, workers, n);

  long r_lhws = 0, r_ws = 0;
  const double ms_lhws = run_once(lhws::engine::latency_hiding, workers, n,
                                  delta, fib_n, &r_lhws, trace_path);
  std::printf("  latency-hiding : %8.1f ms   result=%ld\n", ms_lhws, r_lhws);
  const double ms_ws =
      run_once(lhws::engine::blocking, workers, n, delta, fib_n, &r_ws, {});
  std::printf("  blocking (WS)  : %8.1f ms   result=%ld\n", ms_ws, r_ws);

  if (r_lhws != r_ws) {
    std::printf("ERROR: engines disagree!\n");
    return 1;
  }
  std::printf("  speedup of latency hiding: %.2fx\n", ms_ws / ms_lhws);
  return 0;
}
