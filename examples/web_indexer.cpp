// Web indexer — the kind of interacting workload the paper's introduction
// motivates: a crawl frontier of pages on remote servers, each fetch
// incurring network latency, each fetched page parsed and indexed with real
// CPU work, with discovered links fanning out recursively.
//
//   build/examples/web_indexer [seed_pages] [fetch_ms] [depth] [workers]
//
// Pages are synthetic (deterministic pseudo-content derived from the URL
// id) so the example is self-contained, but the schedule stresses exactly
// what a real crawler would: many outstanding fetches (large U), bursts of
// simultaneous completions, and compute interleaved with latency.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"
#include "support/rng.hpp"

namespace {

using namespace std::chrono_literals;

struct page {
  std::uint64_t url_id;
  std::string body;
  std::vector<std::uint64_t> links;
};

// "Remote server": returns deterministic content after `fetch_ms` latency.
lhws::task<page> fetch_page(std::uint64_t url_id,
                            std::chrono::milliseconds fetch_ms,
                            unsigned fanout) {
  page p;
  p.url_id = co_await lhws::latency(fetch_ms, url_id);
  lhws::xoshiro256 rng(p.url_id * 0x9e3779b97f4a7c15ULL + 1);
  // Synthetic body: a few hundred pseudo-words.
  const std::size_t words = 200 + rng.below(200);
  p.body.reserve(words * 6);
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t len = 2 + rng.below(8);
    for (std::size_t c = 0; c < len; ++c) {
      p.body.push_back(static_cast<char>('a' + rng.below(26)));
    }
    p.body.push_back(' ');
  }
  for (unsigned l = 0; l < fanout; ++l) {
    p.links.push_back(rng.below(1u << 20));
  }
  co_return p;
}

struct index_stats {
  std::uint64_t pages = 0;
  std::uint64_t words = 0;
  std::uint64_t distinct_hash = 0;  // xor-combined word hashes (order-free)
};

index_stats combine(index_stats a, const index_stats& b) {
  a.pages += b.pages;
  a.words += b.words;
  a.distinct_hash ^= b.distinct_hash;
  return a;
}

// CPU work: tokenize and hash every word of the page.
index_stats index_page(const page& p) {
  index_stats s;
  s.pages = 1;
  std::uint64_t h = 1469598103934665603ULL;
  std::uint64_t word_hash = h;
  for (const char c : p.body) {
    if (c == ' ') {
      ++s.words;
      s.distinct_hash ^= word_hash;
      word_hash = h;
    } else {
      word_hash =
          (word_hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
  }
  return s;
}

lhws::task<index_stats> crawl(std::uint64_t url_id,
                              std::chrono::milliseconds fetch_ms,
                              unsigned depth, unsigned fanout);

// Fork over links[lo, hi), binary-tree style. Takes the link vector by
// reference: it lives in the parent crawl() frame, which outlives the
// await. (Coroutine parameters are copied into the frame; lambda captures
// are NOT — free functions avoid that lifetime trap.)
lhws::task<index_stats> crawl_links(const std::vector<std::uint64_t>& links,
                                    std::size_t lo, std::size_t hi,
                                    std::chrono::milliseconds fetch_ms,
                                    unsigned depth, unsigned fanout) {
  if (hi - lo == 1) {
    co_return co_await crawl(links[lo], fetch_ms, depth, fanout);
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  auto [a, b] =
      co_await lhws::fork2(crawl_links(links, lo, mid, fetch_ms, depth, fanout),
                           crawl_links(links, mid, hi, fetch_ms, depth, fanout));
  co_return combine(a, b);
}

// Crawl url_id to the given depth: fetch (latency), index (compute), and
// recurse into the links in parallel.
lhws::task<index_stats> crawl(std::uint64_t url_id,
                              std::chrono::milliseconds fetch_ms,
                              unsigned depth, unsigned fanout) {
  const page p = co_await fetch_page(url_id, fetch_ms, fanout);
  index_stats mine = index_page(p);
  if (depth == 0) co_return mine;
  const index_stats children = co_await crawl_links(
      p.links, 0, p.links.size(), fetch_ms, depth - 1, fanout);
  co_return combine(mine, children);
}

lhws::task<index_stats> crawl_seeds(std::uint64_t lo, std::uint64_t hi,
                                    std::chrono::milliseconds fetch_ms,
                                    unsigned depth, unsigned fanout) {
  if (hi - lo == 1) co_return co_await crawl(lo, fetch_ms, depth, fanout);
  const std::uint64_t mid = lo + (hi - lo) / 2;
  auto [a, b] =
      co_await lhws::fork2(crawl_seeds(lo, mid, fetch_ms, depth, fanout),
                           crawl_seeds(mid, hi, fetch_ms, depth, fanout));
  co_return combine(a, b);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned seeds =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const auto fetch_ms =
      std::chrono::milliseconds(argc > 2 ? std::atoi(argv[2]) : 15);
  const unsigned depth =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;
  const unsigned workers =
      argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;
  const unsigned fanout = 3;

  std::printf("web_indexer: %u seeds, fetch=%lldms, depth=%u, fanout=%u, "
              "workers=%u\n",
              seeds, static_cast<long long>(fetch_ms.count()), depth, fanout,
              workers);

  index_stats reference{};
  bool have_reference = false;
  for (const auto eng :
       {lhws::engine::latency_hiding, lhws::engine::blocking}) {
    lhws::scheduler_options opts;
    opts.workers = workers;
    opts.engine_kind = eng;
    lhws::scheduler sched(opts);
    const index_stats s =
        sched.run(crawl_seeds(0, seeds, fetch_ms, depth, fanout));
    std::printf(
        "  %-15s pages=%llu words=%llu digest=%016llx wall=%8.1fms "
        "suspensions=%llu\n",
        eng == lhws::engine::latency_hiding ? "latency-hiding" : "blocking",
        static_cast<unsigned long long>(s.pages),
        static_cast<unsigned long long>(s.words),
        static_cast<unsigned long long>(s.distinct_hash),
        sched.stats().elapsed_ms,
        static_cast<unsigned long long>(sched.stats().suspensions));
    if (!have_reference) {
      reference = s;
      have_reference = true;
    } else if (s.distinct_hash != reference.distinct_hash ||
               s.pages != reference.pages) {
      std::printf("ERROR: engines computed different indexes!\n");
      return 1;
    }
  }
  std::printf("\nEvery fetched page is deterministic, so both engines build\n"
              "the identical index; only the schedule (and wall time)"
              " differs.\n");
  return 0;
}
