// Quickstart: the lhws public API in one page.
//
//   build/examples/quickstart
//
// 1. Fork-join compute (parallel fib) — no latency, LHWS degenerates to
//    classic work stealing.
// 2. A latency-incurring fetch — the awaiting user-level thread suspends;
//    the worker keeps running other work (latency hiding).
// 3. The same program on the blocking engine, for contrast.
#include <chrono>
#include <cstdio>

#include "core/fork_join.hpp"
#include "core/latency.hpp"
#include "core/scheduler.hpp"

using namespace std::chrono_literals;

namespace {

// A task is a lazily-started user-level thread.
lhws::task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  // fork2(e1, e2): spawn e2 (stealable), run e1 now, await both.
  auto [a, b] = co_await lhws::fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

// A "remote" fetch: suspends this thread for 20 ms, then yields the value.
lhws::task<long> fetch_and_square(long x) {
  const long v = co_await lhws::latency(20ms, x);
  co_return v * v;
}

// Mix compute and latency: the fetches all overlap with the fib work.
lhws::task<long> mixed() {
  auto [fib_result, sum] = co_await lhws::fork2(
      fib(24),
      []() -> lhws::task<long> {
        auto [a, b] =
            co_await lhws::fork2(fetch_and_square(3), fetch_and_square(4));
        co_return a + b;
      }());
  co_return fib_result + sum;
}

void report(const char* label, const lhws::scheduler& sched, long result) {
  const auto& s = sched.stats();
  std::printf(
      "%-18s result=%-8ld wall=%7.1fms segments=%llu suspensions=%llu "
      "steals=%llu\n",
      label, result, s.elapsed_ms,
      static_cast<unsigned long long>(s.segments_executed),
      static_cast<unsigned long long>(s.suspensions),
      static_cast<unsigned long long>(s.successful_steals));
}

}  // namespace

int main() {
  std::printf("lhws quickstart (workers=2)\n");

  lhws::scheduler_options opts;
  opts.workers = 2;

  // Latency-hiding engine (the paper's algorithm).
  opts.engine_kind = lhws::engine::latency_hiding;
  {
    lhws::scheduler sched(opts);
    const long r = sched.run(mixed());
    report("latency-hiding", sched, r);
  }

  // Blocking baseline: same program, workers stall on the fetches.
  opts.engine_kind = lhws::engine::blocking;
  {
    lhws::scheduler sched(opts);
    const long r = sched.run(mixed());
    report("blocking", sched, r);
  }

  std::printf(
      "\nThe latency-hiding run overlaps both 20ms fetches with the fib "
      "compute;\nthe blocking run stalls a worker for each fetch.\n");
  return 0;
}
