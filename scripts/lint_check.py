#!/usr/bin/env python3
"""Driver for the lhws_lint invariant linter (DESIGN.md §12).

Modes:
  fixtures  run lhws_lint over tests/lint/fixtures/*.cpp and require the
            emitted diagnostic set to EXACTLY match the `// LINT-EXPECT:`
            annotations (so every unannotated line doubles as a passing
            true negative), and that each of LHWS001..005 has at least two
            annotated true positives across the corpus.
  tree      run lhws_lint over all of src/ and require zero unsuppressed
            diagnostics (reasonless ALLOWs surface as LHWS900 and fail).
  meta      seed one known violation per rule into a scratch TU and assert
            the linter exits non-zero naming that rule; a clean TU must
            exit zero.  Guards against the linter silently matching
            nothing.
  nolint    audit every clang-tidy NOLINT/NOLINTNEXTLINE in src/: it must
            name the suppressed checks in parentheses AND carry a
            justification after them.
  all       every mode above; non-zero exit if any fails.

Annotations understood in fixtures:
  // LINT-EXPECT: LHWS00N            expect that rule on THIS line
  // LINT-EXPECT-AT: <line> LHWS00N  expect that rule on another line
                                     (for diagnostics on comment lines,
                                     e.g. the LHWS900/901 allow audit)
"""

import argparse
import glob
import os
import re
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(ROOT, "tests", "lint", "fixtures")
RULES = ["LHWS001", "LHWS002", "LHWS003", "LHWS004", "LHWS005"]
MIN_TPS_PER_RULE = 2

DIAG_RE = re.compile(r"^(.*?):(\d+):(\d+): warning: .* \[(LHWS\d+)\]$")
EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*(LHWS\d+(?:\s*,\s*LHWS\d+)*)")
EXPECT_AT_RE = re.compile(r"//\s*LINT-EXPECT-AT:\s*(\d+)\s+(LHWS\d+)")
NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?\b(\(([^)]*)\))?(.*)")


def run_lint(lint_bin, args):
    """Run lhws_lint; return (exit_code, {(line, rule)}, raw_output)."""
    proc = subprocess.run(
        [lint_bin] + args, capture_output=True, text=True, cwd=ROOT
    )
    out = proc.stdout + proc.stderr
    diags = set()
    for line in out.splitlines():
        m = DIAG_RE.match(line.strip())
        if m:
            diags.add((int(m.group(2)), m.group(4)))
    return proc.returncode, diags, out


def parse_expectations(path):
    expected = set()
    with open(path, encoding="utf-8") as f:
        for lineno, text in enumerate(f, 1):
            m = EXPECT_RE.search(text)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    expected.add((lineno, rule))
            m = EXPECT_AT_RE.search(text)
            if m:
                expected.add((int(m.group(1)), m.group(2)))
    return expected


def mode_fixtures(lint_bin):
    fixtures = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.cpp")))
    if not fixtures:
        print(f"FAIL fixtures: no fixtures found under {FIXTURE_DIR}")
        return False
    ok = True
    tp_counts = {r: 0 for r in RULES}
    for path in fixtures:
        rel = os.path.relpath(path, ROOT)
        expected = parse_expectations(path)
        code, got, raw = run_lint(
            lint_bin, ["--backend=token", "--seqcst-scope=ALL", path]
        )
        if code not in (0, 1):
            print(f"FAIL {rel}: linter exited {code}\n{raw}")
            ok = False
            continue
        missing = expected - got
        unexpected = got - expected
        if missing or unexpected:
            ok = False
            print(f"FAIL {rel}:")
            for line, rule in sorted(missing):
                print(f"  missed true positive: expected {rule} at line {line}")
            for line, rule in sorted(unexpected):
                print(f"  false positive (broken true negative): "
                      f"{rule} at line {line}")
        else:
            print(f"ok   {rel}: {len(expected)} expected diagnostics matched, "
                  f"0 spurious")
        for _, rule in expected:
            if rule in tp_counts:
                tp_counts[rule] += 1
    for rule, n in tp_counts.items():
        if n < MIN_TPS_PER_RULE:
            ok = False
            print(f"FAIL corpus: rule {rule} has {n} annotated true "
                  f"positives, need >= {MIN_TPS_PER_RULE}")
    return ok


def src_files():
    out = []
    for ext in ("hpp", "cpp"):
        out += glob.glob(os.path.join(ROOT, "src", "**", f"*.{ext}"),
                         recursive=True)
    return sorted(out)


def mode_tree(lint_bin):
    files = src_files()
    code, diags, raw = run_lint(lint_bin, ["--backend=token"] + files)
    if code == 0:
        print(f"ok   tree: {len(files)} files in src/ clean "
              f"(0 unsuppressed diagnostics)")
        return True
    print(f"FAIL tree: lhws_lint exited {code} on src/ "
          f"({len(diags)} diagnostics)")
    print(raw)
    return False


# One seeded violation per rule; each must make the linter exit non-zero
# and name the rule.  Kept minimal on purpose: if matching regresses to
# "never fires", this is the test that notices.
META_VIOLATIONS = {
    "LHWS001": """\
#include <mutex>
struct task { struct promise_type {}; };
std::mutex mu;
task f() {
  std::lock_guard<std::mutex> g(mu);
  co_await something();
}
""",
    "LHWS002": """\
struct task { struct promise_type {}; };
task f(int fd, char* buf) {
  ::read(fd, buf, 16);
  co_return;
}
""",
    "LHWS003": """\
void f() {
  int x = 0;
  auto bad = [&]() -> int {
    co_await something();
    co_return x;
  };
}
""",
    "LHWS004": """\
#include <atomic>
std::atomic<int> a{0};
int f() { return a.load(); }
""",
    "LHWS005": """\
struct task { struct promise_type {}; };
task f(int a, int b) {
  fork2(a, b);
  co_return;
}
""",
}

META_CLEAN = """\
int add(int a, int b) { return a + b; }
"""


def mode_meta(lint_bin):
    ok = True
    with tempfile.TemporaryDirectory(prefix="lhws_lint_meta.") as tmp:
        for rule, source in sorted(META_VIOLATIONS.items()):
            path = os.path.join(tmp, f"seed_{rule}.cpp")
            with open(path, "w", encoding="utf-8") as f:
                f.write(source)
            code, diags, raw = run_lint(
                lint_bin, ["--backend=token", "--seqcst-scope=ALL", path]
            )
            hit = any(r == rule for _, r in diags)
            if code != 1 or not hit:
                ok = False
                print(f"FAIL meta: seeded {rule} violation not caught "
                      f"(exit={code})\n{raw}")
            else:
                print(f"ok   meta: seeded {rule} violation caught, exit 1")
        clean = os.path.join(tmp, "clean.cpp")
        with open(clean, "w", encoding="utf-8") as f:
            f.write(META_CLEAN)
        code, diags, raw = run_lint(
            lint_bin, ["--backend=token", "--seqcst-scope=ALL", clean]
        )
        if code != 0 or diags:
            ok = False
            print(f"FAIL meta: clean TU produced diagnostics "
                  f"(exit={code})\n{raw}")
        else:
            print("ok   meta: clean TU exits 0 with no diagnostics")
    return ok


def mode_nolint():
    ok = True
    total = 0
    for path in src_files():
        with open(path, encoding="utf-8") as f:
            for lineno, text in enumerate(f, 1):
                idx = text.find("NOLINT")
                if idx < 0:
                    continue
                total += 1
                rel = os.path.relpath(path, ROOT)
                m = NOLINT_RE.match(text[idx:])
                checks = m.group(3) if m else None
                reason = (m.group(4) or "").strip(" -—:\t\n") if m else ""
                if not checks or not checks.strip():
                    ok = False
                    print(f"FAIL nolint: {rel}:{lineno}: blanket NOLINT — "
                          f"name the suppressed checks in parentheses")
                elif not reason:
                    ok = False
                    print(f"FAIL nolint: {rel}:{lineno}: "
                          f"NOLINT({checks}) has no justification")
                else:
                    print(f"ok   nolint: {rel}:{lineno}: "
                          f"NOLINT({checks}) — {reason}")
    print(f"ok   nolint: {total} NOLINT comment(s) audited"
          if ok else f"FAIL nolint: audit failed over {total} comment(s)")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode",
                    choices=["fixtures", "tree", "meta", "nolint", "all"])
    ap.add_argument("--bin",
                    default=os.path.join(ROOT, "build", "tools", "lint",
                                         "lhws_lint"),
                    help="path to the lhws_lint binary")
    args = ap.parse_args()

    needs_bin = args.mode in ("fixtures", "tree", "meta", "all")
    if needs_bin and not os.path.isfile(args.bin):
        print(f"error: lhws_lint not found at {args.bin} "
              f"(build with -DLHWS_LINT=ON)")
        return 2

    results = {}
    if args.mode in ("fixtures", "all"):
        results["fixtures"] = mode_fixtures(args.bin)
    if args.mode in ("tree", "all"):
        results["tree"] = mode_tree(args.bin)
    if args.mode in ("meta", "all"):
        results["meta"] = mode_meta(args.bin)
    if args.mode in ("nolint", "all"):
        results["nolint"] = mode_nolint()

    failed = [m for m, r in results.items() if not r]
    if failed:
        print(f"\nlint_check: FAILED modes: {', '.join(failed)}")
        return 1
    print(f"\nlint_check: all modes passed ({', '.join(results)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
