#!/usr/bin/env bash
# Local mirror of the CI matrix: configure+build+ctest in the requested
# mode, plus lint when the tools exist. Usage:
#
#   scripts/check.sh [plain|asan|tsan|tidy|format|bench|lint|cluster|all]
#
# Each mode builds into its own directory (build-check-<mode>) so repeated
# runs are incremental and don't disturb the default ./build tree.
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-plain}"

run_suite() {
  local name="$1"
  shift
  local dir="build-check-${name}"
  # Examples are required by the trace-audit step below; force them on in
  # case an older cache in ${dir} disabled them.
  cmake -B "${dir}" -S . -DLHWS_WERROR=ON -DLHWS_BUILD_EXAMPLES=ON \
    "$@" >/dev/null
  cmake --build "${dir}" -j "$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j "$(nproc)")
  # Mirror CI's trace audit: trace a real server run, then verify the
  # paper's bounds on it (Lemma 7 with U = 1, steal budget).
  (cd "${dir}" &&
    ./examples/server 10 2 14 4 --trace trace_check.json &&
    ./tools/lhws_trace_stats trace_check.json --check-bounds --u 1)
  # Mirror CI's span audit (DESIGN.md §13): record a span-instrumented RPC
  # run over the loopback server, then check tree closure, the critical-path
  # decomposition, and the hop budget.
  (cd "${dir}" &&
    ./examples/server 6 0 12 2 --listen 0 --clients 3 --rpc-depth 1 \
      --spans --trace span_check.json &&
    ./tools/lhws_trace_stats span_check.json --spans --u 8)
}

# Perf-regression gate: a non-sanitized Release build of the gating
# benchmarks, compared against bench/baselines by scripts/bench_gate.py.
run_bench_gate() {
  local dir="build-check-bench"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DLHWS_WERROR=ON \
    >/dev/null
  cmake --build "${dir}" -j "$(nproc)" \
    --target bench_fig11_runtime bench_steal_contention bench_rpc_loopback \
    bench_alloc_churn bench_load bench_cluster_crossover
  # bench_load mirrors CI's load-gate shape: >= 512 open-loop connections
  # on 4 server workers/shards (the committed baseline is recorded at this
  # configuration).
  (cd "${dir}" &&
    ./bench/bench_fig11_runtime &&
    ./bench/bench_steal_contention &&
    ./bench/bench_rpc_loopback &&
    ./bench/bench_alloc_churn &&
    LHWS_LOAD_CONNS=512 LHWS_LOAD_WORKERS=4 ./bench/bench_load &&
    ./bench/bench_cluster_crossover &&
    python3 ../scripts/bench_gate.py --build-dir .)
}

# Cluster smoke (DESIGN.md §15), mirroring CI's cluster-smoke job: a
# 3-process mesh driven by tools/lhws_node, the map-reduce example in
# --cluster mode with per-node traces merged through the span audit, and
# the server's SIGTERM drain path.
run_cluster_smoke() {
  local dir="build-check-cluster"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DLHWS_WERROR=ON \
    -DLHWS_BUILD_EXAMPLES=ON >/dev/null
  cmake --build "${dir}" -j "$(nproc)" \
    --target lhws_node dist_map_reduce server lhws_trace_stats
  (
    cd "${dir}"
    tmp=$(mktemp -d)
    wait_port() {
      for _ in $(seq 100); do
        if [ -s "$1" ]; then cat "$1"; return 0; fi
        sleep 0.1
      done
      return 1
    }
    ./tools/lhws_node --id 0 --peers 1:0,2:0 --workers 2 \
      --port-file "${tmp}/port.0" &
    node0=$!
    p0=$(wait_port "${tmp}/port.0")
    ./tools/lhws_node --id 1 --peers "0:${p0},2:0" --workers 2 \
      --port-file "${tmp}/port.1" &
    node1=$!
    p1=$(wait_port "${tmp}/port.1")
    ./tools/lhws_node --id 2 --peers "0:${p0},1:${p1}" --workers 2 \
      --drive 24 --fib 12 &
    node2=$!
    wait "${node0}"
    wait "${node1}"
    wait "${node2}"
    rm -rf "${tmp}"
  )
  (cd "${dir}" &&
    ./examples/dist_map_reduce 12 0 12 2 --cluster 3 --policy threshold \
      --trace trace_cluster_smoke.json &&
    ./tools/lhws_trace_stats trace_cluster_smoke.json.0 \
      trace_cluster_smoke.json.1 trace_cluster_smoke.json.2 --spans --u 16)
  (
    cd "${dir}"
    ./examples/server 4 0 10 2 --listen 0 &
    srv=$!
    sleep 1
    kill -TERM "${srv}"
    wait "${srv}"
  )
}

run_format() {
  if ! command -v clang-format >/dev/null; then
    echo "check.sh: clang-format not installed, skipping" >&2
    return 0
  fi
  # Lint fixtures are exempt: LINT-EXPECT annotations anchor to exact
  # lines, and a reflow would silently move the expectations.
  git ls-files '*.cpp' '*.hpp' ':!tests/lint/fixtures/*' |
    xargs clang-format --dry-run -Werror
}

# Invariant lint (DESIGN.md §12): build lhws_lint and run the full
# lint_check.py gate — fixtures, src/ cleanliness, meta-test, NOLINT audit.
# Mirrors CI's invariant-lint job.
run_invariant_lint() {
  local dir="build-check-lint"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DLHWS_LINT=ON \
    >/dev/null
  cmake --build "${dir}" -j "$(nproc)" --target lhws_lint
  python3 scripts/lint_check.py all --bin "${dir}/tools/lint/lhws_lint"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null; then
    echo "check.sh: clang-tidy not installed, skipping" >&2
    return 0
  fi
  local dir="build-check-tidy"
  cmake -B "${dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cpp' 'tools/*.cpp' | xargs clang-tidy -p "${dir}" --quiet
}

case "${mode}" in
  plain)
    run_suite plain -DCMAKE_BUILD_TYPE=Release
    ;;
  asan)
    run_suite asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLHWS_ASAN_UBSAN=ON
    ;;
  tsan)
    run_suite tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLHWS_TSAN=ON
    ;;
  format)
    run_format
    ;;
  bench|--bench)
    run_bench_gate
    ;;
  tidy)
    run_tidy
    ;;
  lint)
    run_invariant_lint
    ;;
  cluster)
    run_cluster_smoke
    ;;
  all)
    run_format
    run_tidy
    run_invariant_lint
    run_suite plain -DCMAKE_BUILD_TYPE=Release
    run_suite asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLHWS_ASAN_UBSAN=ON
    run_suite tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLHWS_TSAN=ON
    run_cluster_smoke
    ;;
  *)
    echo "usage: scripts/check.sh [plain|asan|tsan|tidy|format|bench|lint|cluster|all]" >&2
    exit 2
    ;;
esac
