#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md.
#
#   scripts/run_all_experiments.sh [results_dir]
#
# Set LHWS_BENCH_SCALE=large for paper-scale parameters (slower).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
results="${1:-$repo/results}"
mkdir -p "$results"

cmake -B "$repo/build" -G Ninja "$repo" >/dev/null
cmake --build "$repo/build" >/dev/null

echo "== tests =="
ctest --test-dir "$repo/build" | tail -2 | tee "$results/tests.txt"

for bench in "$repo"/build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name =="
  "$bench" | tee "$results/$name.txt"
done

echo
echo "Results written to $results/"
