#!/usr/bin/env python3
"""Perf-regression gate for the steal/resume hot paths.

Compares the machine-readable output of the two gating benchmarks against
committed baselines:

  BENCH_fig11_runtime.json     (bench_fig11_runtime)  — wall clock per
      (regime, engine, workers) must not regress: the paper's headline
      figure is the end-to-end check that hot-path changes helped.
  BENCH_steal_contention.json  (bench_steal_contention) — epoch-registry
      steal throughput must not drop, p95 attempt latency must not grow,
      and the absolute floor must hold: >= 2x over the locked replica in
      the all-thieves shape at >= 8 threads.
  BENCH_rpc_loopback.json      (bench_rpc_loopback) — real-socket RPC
      throughput per (engine, clients, rpc_depth) must not drop, LHWS p95
      RTT must not grow, and the latency-hiding floor must hold: LHWS
      >= 1.3x WS throughput when connections outnumber workers.
  BENCH_alloc_churn.json       (bench_alloc_churn) — slab-mode allocator
      throughput per (shape, threads) must not drop, and the recycling
      floor must hold: slab >= 1.3x the operator-new baseline in the
      fork-heavy shape at >= 8 threads.
  BENCH_load.json              (bench_load) — open-loop SLO gate per
      scenario: completion ratio >= 95%, throughput must not drop vs the
      baseline, and p99 latency (measured from the scheduled arrival, so
      coordinated omission is impossible) must not grow.
  BENCH_cluster.json           (bench_cluster_crossover) — two-process
      remote-steal crossover: per-point wall clock must not regress, the
      threshold policy must beat `never` at low injected delta (>= 2 hw
      threads), and must collapse back to `never` at high delta.

A family whose committed baseline is missing (or predates a checker's
keys) is reported as a named `missing_baseline` warning and skipped; only
actual regressions and floor violations fail the gate.

The rpc_loopback shards=P vs shards=1 rows additionally gate the sharded
reactor's throughput win (>= 1.2x at P=8) — but only on hosts with >= 8
hardware threads; on smaller hosts the extra shard threads oversubscribe
the cores and the pair is reported informationally.

Usage:
  scripts/bench_gate.py [--build-dir DIR] [--baseline-dir DIR]
                        [--threshold F] [--update]

  --build-dir     where the fresh BENCH_*.json files live (default: cwd)
  --baseline-dir  committed baselines (default: bench/baselines next to
                  this script's repo root)
  --threshold     relative regression tolerance (default 0.15; CI uses a
                  looser value because runner hardware differs from the
                  machine that recorded the baselines)
  --update        rewrite the baselines from the fresh results and exit

Absolute slacks are added on top of the relative threshold because the
reference host has ONE core and short runs jitter: wall-clock gets +8 ms,
p95 latency +100 ns (the clock's own granularity regime). The all-thieves
floor takes no slack — it is the acceptance criterion, computed from the
fresh run alone.

Exit codes: 0 ok, 1 regression (or floor violation), 2 usage/missing data.
"""

import argparse
import json
import os
import shutil
import sys

FIG11 = "BENCH_fig11_runtime.json"
STEAL = "BENCH_steal_contention.json"
RPC = "BENCH_rpc_loopback.json"
ALLOC = "BENCH_alloc_churn.json"
LOAD = "BENCH_load.json"
CLUSTER = "BENCH_cluster.json"

WALL_SLACK_MS = 8.0
P95_SLACK_NS = 100.0
FLOOR_SPEEDUP = 2.0
FLOOR_SHAPE = "all_thieves"
FLOOR_MIN_THREADS = 8
# Real sockets jitter more than in-process timers: generous absolute slack
# on throughput, and RTT p95 only gated for LHWS (the WS p95 sits on the
# cliff between served-immediately and wait-your-turn connections).
RPC_RPS_SLACK = 100.0
RPC_P95_SLACK_US = 500.0
RPC_FLOOR_SPEEDUP = 1.3
# Causal-span overhead ceiling: the "lhws+spans" fig11 rows (every leaf a
# request scope) must stay within 5% wall clock of the plain "lhws" rows of
# the SAME fresh run, plus the usual 1-core jitter slack.
SPANS_OVERHEAD = 0.05
SPANS_WORKERS = 4
ALLOC_FLOOR_SPEEDUP = 1.3
ALLOC_FLOOR_SHAPE = "fork_heavy"
ALLOC_FLOOR_MIN_THREADS = 8
# Sharded-reactor floor: shards=P must beat shards=1 by this much at P=8,
# enforced only when the host actually has >= 8 hardware threads.
RPC_SHARD_FLOOR = 1.2
RPC_SHARD_MIN_HW = 8
# Open-loop SLOs. Completion is absolute (from the fresh run alone); rps
# and p99 are relative to the baseline with generous absolute slack — an
# open-loop tail on a 1-core shared runner jitters by whole milliseconds.
LOAD_MIN_COMPLETION = 0.95
LOAD_RPS_SLACK = 100.0
LOAD_P99_SLACK_US = 10000.0
# Shapes with a throughput baseline; fib_runtime rows are informational
# end-to-end wall clock and jitter too much on a 1-core host to gate.
ALLOC_GATED_SHAPES = ("fork_heavy", "suspend_heavy")
# Cluster crossover (BENCH_cluster.json, fresh run alone, largest grain):
# at the low-delta end the threshold steal policy must beat `never` by
# CLUSTER_LOW_FLOOR — gated only when a second hardware thread exists for
# node 1 (same precedent as the rpc shard floor); at the high-delta end
# probing must shut itself off, so threshold stays within
# CLUSTER_HIGH_OVERHEAD (+ slack) of `never` on any host.
CLUSTER_LOW_FLOOR = 1.2
CLUSTER_HIGH_OVERHEAD = 0.05
CLUSTER_HIGH_SLACK_MS = 16.0
CLUSTER_MIN_HW = 2


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        print(f"bench_gate: {path}: malformed JSON: {e}", file=sys.stderr)
        sys.exit(2)


def fig11_by_key(doc):
    return {
        (r["regime"], r["engine"], r["workers"]): r for r in doc["runs"]
    }


def steal_by_key(doc):
    return {(r["shape"], r["mode"], r["threads"]): r for r in doc["runs"]}


def check_fig11(base, cur, threshold, failures):
    """Wall clock per (regime, engine, workers): higher is worse."""
    base_runs = fig11_by_key(base)
    cur_runs = fig11_by_key(cur)
    for key, b in sorted(base_runs.items()):
        c = cur_runs.get(key)
        if c is None:
            failures.append(f"fig11 {key}: config missing from fresh run")
            continue
        limit = b["ms"] * (1.0 + threshold) + WALL_SLACK_MS
        status = "ok"
        if c["ms"] > limit:
            failures.append(
                f"fig11 {key}: {c['ms']:.1f} ms vs baseline "
                f"{b['ms']:.1f} ms (limit {limit:.1f} ms)"
            )
            status = "REGRESSION"
        print(
            f"  fig11 {key[0]:>15s}/{key[1]:<4s} P={key[2]}: "
            f"{c['ms']:9.1f} ms (base {b['ms']:9.1f}, "
            f"limit {limit:9.1f})  {status}"
        )


def check_fig11_spans(cur, failures):
    """Spans-on vs spans-off overhead, from the fresh run alone: the
    "lhws+spans" row of each regime must stay within SPANS_OVERHEAD of the
    plain "lhws" row at the same worker count."""
    cur_runs = fig11_by_key(cur)
    seen = 0
    for (regime, engine, workers), c in sorted(cur_runs.items()):
        if engine != "lhws+spans" or workers != SPANS_WORKERS:
            continue
        plain = cur_runs.get((regime, "lhws", workers))
        if plain is None or plain["ms"] <= 0:
            failures.append(
                f"fig11 spans {regime}: no plain lhws P={workers} row to "
                "compare against"
            )
            continue
        seen += 1
        limit = plain["ms"] * (1.0 + SPANS_OVERHEAD) + WALL_SLACK_MS
        status = "ok"
        if c["ms"] > limit:
            failures.append(
                f"fig11 spans {regime}: {c['ms']:.1f} ms vs spans-off "
                f"{plain['ms']:.1f} ms (limit {limit:.1f} ms, "
                f"> {SPANS_OVERHEAD:.0%} overhead)"
            )
            status = "OVERHEAD VIOLATION"
        print(
            f"  fig11 spans {regime:>15s} P={workers}: {c['ms']:9.1f} ms "
            f"vs {plain['ms']:9.1f} ms spans-off (limit {limit:9.1f})  "
            f"{status}"
        )
    if seen == 0:
        failures.append(
            "fig11 spans: no lhws+spans rows in the fresh run (old bench "
            "binary?)"
        )


def check_steal(base, cur, threshold, failures):
    """Epoch throughput lower-bad, p95 higher-bad, plus the 2x floor."""
    base_runs = steal_by_key(base)
    cur_runs = steal_by_key(cur)

    for key, b in sorted(base_runs.items()):
        if key[1] != "epoch":
            continue  # the locked replica is the contrast, not the product
        c = cur_runs.get(key)
        if c is None:
            failures.append(f"steal {key}: config missing from fresh run")
            continue
        floor_tput = b["steals_per_sec"] * (1.0 - threshold)
        limit_p95 = b["p95_ns"] * (1.0 + threshold) + P95_SLACK_NS
        status = "ok"
        if c["steals_per_sec"] < floor_tput:
            failures.append(
                f"steal {key}: {c['steals_per_sec']:.0f} steals/s vs "
                f"baseline {b['steals_per_sec']:.0f} "
                f"(floor {floor_tput:.0f})"
            )
            status = "REGRESSION"
        if c["p95_ns"] > limit_p95:
            failures.append(
                f"steal {key}: p95 {c['p95_ns']} ns vs baseline "
                f"{b['p95_ns']} ns (limit {limit_p95:.0f} ns)"
            )
            status = "REGRESSION"
        print(
            f"  steal {key[0]:>12s}/{key[1]} P={key[2]}: "
            f"{c['steals_per_sec']:12.0f}/s (base floor {floor_tput:12.0f}) "
            f"p95 {c['p95_ns']:5d} ns (limit {limit_p95:6.0f})  {status}"
        )

    # Absolute acceptance floor, from the fresh run alone.
    for (shape, mode, threads), c in sorted(cur_runs.items()):
        if shape != FLOOR_SHAPE or mode != "epoch":
            continue
        if threads < FLOOR_MIN_THREADS:
            continue
        locked = cur_runs.get((shape, "locked", threads))
        if locked is None or locked["steals_per_sec"] <= 0:
            failures.append(
                f"steal floor P={threads}: no locked run to compare against"
            )
            continue
        speedup = c["steals_per_sec"] / locked["steals_per_sec"]
        status = "ok" if speedup >= FLOOR_SPEEDUP else "FLOOR VIOLATION"
        if speedup < FLOOR_SPEEDUP:
            failures.append(
                f"steal floor {shape} P={threads}: {speedup:.2f}x < "
                f"{FLOOR_SPEEDUP:.1f}x over the locked registry"
            )
        print(
            f"  steal floor {shape} P={threads}: {speedup:.2f}x over "
            f"locked (need >= {FLOOR_SPEEDUP:.1f}x)  {status}"
        )


def rpc_by_key(doc):
    # shards defaults to 1 so pre-sharding baselines keep their keys.
    return {
        (r["engine"], r["clients"], r["rpc_depth"], r.get("shards", 1)): r
        for r in doc["runs"]
    }


def check_rpc(base, cur, threshold, failures):
    """Real-socket RPC throughput lower-bad, LHWS RTT p95 higher-bad, and
    the latency-hiding floor computed from the fresh run alone."""
    base_runs = rpc_by_key(base)
    cur_runs = rpc_by_key(cur)
    for key, b in sorted(base_runs.items()):
        c = cur_runs.get(key)
        if c is None:
            failures.append(f"rpc {key}: config missing from fresh run")
            continue
        floor_rps = b["rps"] * (1.0 - threshold) - RPC_RPS_SLACK
        status = "ok"
        if c["rps"] < floor_rps:
            failures.append(
                f"rpc {key}: {c['rps']:.0f} req/s vs baseline "
                f"{b['rps']:.0f} (floor {floor_rps:.0f})"
            )
            status = "REGRESSION"
        p95_note = ""
        if key[0] == "lhws":
            limit_p95 = b["p95_us"] * (1.0 + threshold) + RPC_P95_SLACK_US
            p95_note = f" p95 {c['p95_us']}us (limit {limit_p95:.0f})"
            if c["p95_us"] > limit_p95:
                failures.append(
                    f"rpc {key}: p95 {c['p95_us']} us vs baseline "
                    f"{b['p95_us']} us (limit {limit_p95:.0f} us)"
                )
                status = "REGRESSION"
        print(
            f"  rpc {key[0]:>4s} clients={key[1]} depth={key[2]} "
            f"shards={key[3]}: "
            f"{c['rps']:8.0f} req/s (base floor {floor_rps:8.0f})"
            f"{p95_note}  {status}"
        )

    # Absolute acceptance floor, from the fresh run alone: LHWS must beat
    # WS by RPC_FLOOR_SPEEDUP when connections outnumber workers. Only the
    # unsharded rows participate (the WS contrast runs with one shard), and
    # only shapes that actually have a WS counterpart — the shard-contrast
    # control row (shards=1 at the shard shape) is LHWS-only by design. At
    # least one WS contrast must exist, or the floor gate has vanished.
    ws_floor_checks = 0
    for (engine, clients, depth, shards), c in sorted(cur_runs.items()):
        if engine != "lhws" or depth != 0 or shards != 1:
            continue
        if clients <= c.get("workers", 0):
            continue
        ws = cur_runs.get(("ws", clients, depth, 1))
        if ws is None or ws["rps"] <= 0:
            continue
        ws_floor_checks += 1
        speedup = c["rps"] / ws["rps"]
        status = "ok" if speedup >= RPC_FLOOR_SPEEDUP else "FLOOR VIOLATION"
        if speedup < RPC_FLOOR_SPEEDUP:
            failures.append(
                f"rpc floor clients={clients}: {speedup:.2f}x < "
                f"{RPC_FLOOR_SPEEDUP:.1f}x over blocking WS"
            )
        print(
            f"  rpc floor clients={clients} P={c.get('workers', 0)}: "
            f"{speedup:.2f}x over ws (need >= {RPC_FLOOR_SPEEDUP:.1f}x)  "
            f"{status}"
        )
    if ws_floor_checks == 0:
        failures.append("rpc floor: no ws contrast run found")

    # Sharded-reactor floor: shards=P vs shards=1 at the same shape. The
    # win needs real cores for the shard threads, so hosts below
    # RPC_SHARD_MIN_HW report the ratio without gating it.
    hw = cur.get("hw_concurrency", 0)
    for (engine, clients, depth, shards), c in sorted(cur_runs.items()):
        if engine != "lhws" or depth != 0 or shards <= 1:
            continue
        single = cur_runs.get((engine, clients, depth, 1))
        if single is None or single["rps"] <= 0:
            failures.append(
                f"rpc shard floor clients={clients}: no shards=1 run to "
                "compare against"
            )
            continue
        speedup = c["rps"] / single["rps"]
        if hw >= RPC_SHARD_MIN_HW:
            status = "ok" if speedup >= RPC_SHARD_FLOOR else "FLOOR VIOLATION"
            if speedup < RPC_SHARD_FLOOR:
                failures.append(
                    f"rpc shard floor clients={clients} shards={shards}: "
                    f"{speedup:.2f}x < {RPC_SHARD_FLOOR:.1f}x over shards=1"
                )
        else:
            status = f"informational (hw={hw} < {RPC_SHARD_MIN_HW})"
        print(
            f"  rpc shard floor clients={clients} shards={shards}: "
            f"{speedup:.2f}x over shards=1 (need >= {RPC_SHARD_FLOOR:.1f}x "
            f"at hw >= {RPC_SHARD_MIN_HW})  {status}"
        )


def alloc_by_key(doc):
    return {(r["shape"], r["mode"], r["threads"]): r for r in doc["runs"]}


def check_alloc(base, cur, threshold, failures):
    """Slab-mode throughput lower-bad, plus the 1.3x recycling floor."""
    base_runs = alloc_by_key(base)
    cur_runs = alloc_by_key(cur)

    for key, b in sorted(base_runs.items()):
        if key[1] != "slab" or key[0] not in ALLOC_GATED_SHAPES:
            continue  # the operator-new rows are the contrast, not the product
        c = cur_runs.get(key)
        if c is None:
            failures.append(f"alloc {key}: config missing from fresh run")
            continue
        floor_ops = b["ops_per_sec"] * (1.0 - threshold)
        status = "ok"
        if c["ops_per_sec"] < floor_ops:
            failures.append(
                f"alloc {key}: {c['ops_per_sec']:.0f} blocks/s vs baseline "
                f"{b['ops_per_sec']:.0f} (floor {floor_ops:.0f})"
            )
            status = "REGRESSION"
        print(
            f"  alloc {key[0]:>13s}/{key[1]} P={key[2]}: "
            f"{c['ops_per_sec']:12.0f}/s (base floor {floor_ops:12.0f})  "
            f"{status}"
        )

    # Absolute acceptance floor, from the fresh run alone.
    for (shape, mode, threads), c in sorted(cur_runs.items()):
        if shape != ALLOC_FLOOR_SHAPE or mode != "slab":
            continue
        if threads < ALLOC_FLOOR_MIN_THREADS:
            continue
        new = cur_runs.get((shape, "new", threads))
        if new is None or new["ops_per_sec"] <= 0:
            failures.append(
                f"alloc floor P={threads}: no operator-new run to compare "
                "against"
            )
            continue
        speedup = c["ops_per_sec"] / new["ops_per_sec"]
        status = "ok" if speedup >= ALLOC_FLOOR_SPEEDUP else "FLOOR VIOLATION"
        if speedup < ALLOC_FLOOR_SPEEDUP:
            failures.append(
                f"alloc floor {shape} P={threads}: {speedup:.2f}x < "
                f"{ALLOC_FLOOR_SPEEDUP:.1f}x over the operator-new baseline"
            )
        print(
            f"  alloc floor {shape} P={threads}: {speedup:.2f}x over "
            f"new (need >= {ALLOC_FLOOR_SPEEDUP:.1f}x)  {status}"
        )


def load_by_key(doc):
    return {r["scenario"]: r for r in doc["runs"]}


def check_load(base, cur, threshold, failures):
    """Open-loop SLOs: completion ratio absolute, rps/p99 vs baseline."""
    base_runs = load_by_key(base)
    cur_runs = load_by_key(cur)

    for scenario, c in sorted(cur_runs.items()):
        ratio = c.get("completion_ratio", 0.0)
        status = "ok"
        if ratio < LOAD_MIN_COMPLETION:
            failures.append(
                f"load {scenario}: completion {ratio:.1%} < "
                f"{LOAD_MIN_COMPLETION:.0%} SLO"
            )
            status = "SLO VIOLATION"
        print(
            f"  load {scenario:>14s} completion: {ratio:7.1%} of "
            f"{c['attempted']} offered (need >= {LOAD_MIN_COMPLETION:.0%})"
            f"  {status}"
        )

    for scenario, b in sorted(base_runs.items()):
        c = cur_runs.get(scenario)
        if c is None:
            failures.append(f"load {scenario}: scenario missing from fresh run")
            continue
        if c.get("connections") != b.get("connections"):
            # A different offered load (LHWS_LOAD_CONNS override) makes the
            # relative comparison meaningless; the completion SLO above
            # still gates it.
            print(
                f"  load {scenario:>14s}: {c.get('connections')} conns vs "
                f"baseline {b.get('connections')} — relative check skipped"
            )
            continue
        floor_rps = b["rps"] * (1.0 - threshold) - LOAD_RPS_SLACK
        limit_p99 = b["p99_us"] * (1.0 + threshold) + LOAD_P99_SLACK_US
        status = "ok"
        if c["rps"] < floor_rps:
            failures.append(
                f"load {scenario}: {c['rps']:.0f} req/s vs baseline "
                f"{b['rps']:.0f} (floor {floor_rps:.0f})"
            )
            status = "REGRESSION"
        if c["p99_us"] > limit_p99:
            failures.append(
                f"load {scenario}: p99 {c['p99_us']} us vs baseline "
                f"{b['p99_us']} us (limit {limit_p99:.0f} us)"
            )
            status = "REGRESSION"
        print(
            f"  load {scenario:>14s}: {c['rps']:8.0f} req/s "
            f"(base floor {floor_rps:8.0f}) p99 {c['p99_us']}us "
            f"(limit {limit_p99:.0f})  {status}"
        )


def cluster_by_key(doc):
    return {
        (r["policy"], r["delta_ms"], r["grain_us"]): r for r in doc["runs"]
    }


def check_cluster(base, cur, threshold, failures):
    """Two-process crossover: wall clock per (policy, delta, grain) vs the
    baseline, plus the crossover shape from the fresh run alone."""
    base_runs = cluster_by_key(base)
    cur_runs = cluster_by_key(cur)
    for key, b in sorted(base_runs.items()):
        c = cur_runs.get(key)
        if c is None:
            failures.append(f"cluster {key}: config missing from fresh run")
            continue
        if not c.get("ok", 0):
            failures.append(f"cluster {key}: fresh run reported failure")
            continue
        limit = b["ms"] * (1.0 + threshold) + WALL_SLACK_MS
        status = "ok"
        if c["ms"] > limit:
            failures.append(
                f"cluster {key}: {c['ms']:.1f} ms vs baseline "
                f"{b['ms']:.1f} ms (limit {limit:.1f} ms)"
            )
            status = "REGRESSION"
        print(
            f"  cluster {key[0]:>9s} delta={key[1]:>2}ms grain={key[2]}us: "
            f"{c['ms']:8.1f} ms (base {b['ms']:8.1f}, limit {limit:8.1f})  "
            f"{status}"
        )

    # Crossover shape, from the fresh run alone, at the largest grain.
    hw = cur.get("hw_concurrency", 0)
    grains = sorted({k[2] for k in cur_runs})
    if not grains:
        failures.append("cluster: no runs in fresh BENCH_cluster.json")
        return
    grain = grains[-1]
    deltas = sorted({k[1] for k in cur_runs if k[2] == grain})
    if len(deltas) < 2:
        failures.append("cluster: need at least two delta points for the "
                        "crossover check")
        return
    low, high = deltas[0], deltas[-1]

    nv = cur_runs.get(("never", low, grain))
    th = cur_runs.get(("threshold", low, grain))
    if nv is None or th is None or th["ms"] <= 0:
        failures.append(f"cluster crossover: missing low-delta pair at "
                        f"grain={grain}us")
    else:
        speedup = nv["ms"] / th["ms"]
        if hw >= CLUSTER_MIN_HW:
            status = "ok" if speedup >= CLUSTER_LOW_FLOOR else "FLOOR VIOLATION"
            if speedup < CLUSTER_LOW_FLOOR:
                failures.append(
                    f"cluster crossover low delta={low}ms grain={grain}us: "
                    f"threshold {speedup:.2f}x < {CLUSTER_LOW_FLOOR:.1f}x "
                    f"over never (granted={th.get('granted', 0)})"
                )
        else:
            status = f"informational (hw={hw} < {CLUSTER_MIN_HW})"
        print(
            f"  cluster crossover delta={low}ms grain={grain}us: threshold "
            f"{speedup:.2f}x over never, granted={th.get('granted', 0)} "
            f"(need >= {CLUSTER_LOW_FLOOR:.1f}x at hw >= {CLUSTER_MIN_HW})  "
            f"{status}"
        )

    nv = cur_runs.get(("never", high, grain))
    th = cur_runs.get(("threshold", high, grain))
    if nv is None or th is None or nv["ms"] <= 0:
        failures.append(f"cluster crossover: missing high-delta pair at "
                        f"grain={grain}us")
    else:
        limit = nv["ms"] * (1.0 + CLUSTER_HIGH_OVERHEAD) + CLUSTER_HIGH_SLACK_MS
        status = "ok"
        if th["ms"] > limit:
            failures.append(
                f"cluster crossover high delta={high}ms grain={grain}us: "
                f"threshold {th['ms']:.1f} ms vs never {nv['ms']:.1f} ms "
                f"(limit {limit:.1f} ms — probing failed to shut off, "
                f"probes={th.get('probes', 0)})"
            )
            status = "SHAPE VIOLATION"
        print(
            f"  cluster crossover delta={high}ms grain={grain}us: threshold "
            f"{th['ms']:8.1f} ms vs never {nv['ms']:8.1f} ms "
            f"(limit {limit:8.1f})  {status}"
        )


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(
        description="perf-regression gate vs committed bench baselines"
    )
    ap.add_argument("--build-dir", default=".")
    ap.add_argument(
        "--baseline-dir", default=os.path.join(repo_root, "bench", "baselines")
    )
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()

    all_names = (FIG11, STEAL, RPC, ALLOC, LOAD, CLUSTER)
    fresh = {}
    for name in all_names:
        doc = load(os.path.join(args.build_dir, name))
        if doc is None:
            print(
                f"bench_gate: {name} not found in {args.build_dir} — run "
                "bench_fig11_runtime, bench_steal_contention, "
                "bench_rpc_loopback, bench_alloc_churn, bench_load, and "
                "bench_cluster_crossover first",
                file=sys.stderr,
            )
            return 2
        fresh[name] = doc

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in all_names:
            dst = os.path.join(args.baseline_dir, name)
            shutil.copyfile(os.path.join(args.build_dir, name), dst)
            print(f"bench_gate: baseline updated: {dst}")
        return 0

    failures = []
    warnings = []
    for name, checker in (
        (FIG11, check_fig11),
        (STEAL, check_steal),
        (RPC, check_rpc),
        (ALLOC, check_alloc),
        (LOAD, check_load),
        (CLUSTER, check_cluster),
    ):
        base = load(os.path.join(args.baseline_dir, name))
        if base is None:
            # A family without a committed baseline (e.g. freshly added) is
            # a named warning, not a hard failure: the fresh-run-only floors
            # of that family are skipped, everything else still gates.
            warnings.append(
                f"missing_baseline: no {name} in {args.baseline_dir} "
                "(run with --update to record one)"
            )
            continue
        print(f"{name} vs baseline (threshold {args.threshold:.0%}):")
        try:
            checker(base, fresh[name], args.threshold, failures)
        except KeyError as e:
            # A baseline recorded by an older bench binary can lack keys the
            # current checker expects; report which and keep gating the rest.
            warnings.append(
                f"missing_baseline: {name}: baseline/result key {e} absent "
                "— family skipped (re-record with --update)"
            )

    print(f"{FIG11} spans-on overhead (<= {SPANS_OVERHEAD:.0%}):")
    check_fig11_spans(fresh[FIG11], failures)

    if warnings:
        print(f"\nbench_gate: {len(warnings)} warning(s):")
        for w in warnings:
            print(f"  - {w}")
    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        "\nbench_gate: all checks passed"
        + (f" ({len(warnings)} warning(s))" if warnings else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
