// Per-worker statistics, aggregated by the scheduler after a run. These are
// the runtime counterparts of the simulator's sim_metrics and feed the same
// paper-claim checks (Lemma 7's deque bound, steal accounting, pfor
// injection counts).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/config.hpp"

namespace lhws::rt {

struct worker_stats {
  std::uint64_t segments_executed = 0;  // coroutine resumes (thread segments)
  std::uint64_t batch_splits = 0;       // internal pfor vertices
  std::uint64_t batches_injected = 0;   // addResumedVertices pfor pushes
  std::uint64_t resumes_delivered = 0;  // continuations re-injected
  std::uint64_t deque_switches = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t failed_steals = 0;         // = failed_empty + failed_contended
  std::uint64_t failed_empty = 0;          // victim/snapshot had no work
  std::uint64_t failed_contended = 0;      // lost the top CAS to another thief
  std::uint64_t suspensions = 0;   // continuations that actually suspended
  std::uint64_t blocked_waits = 0; // WS engine: blocking latency waits
  std::uint64_t resumes_direct = 0;    // single-resume fast path (no batch)
  std::uint64_t parks = 0;             // idle parks entered
  std::uint64_t park_timeouts = 0;     // parks that ended by timeout
  std::uint64_t unparks = 0;           // wakes delivered to this worker parked
  std::uint64_t registry_republishes = 0;  // epoch registry add/remove count
  std::uint64_t deques_owned = 0;
  std::uint64_t max_deques_owned = 0;

  void note_deque_acquired() noexcept {
    ++deques_owned;
    max_deques_owned = std::max(max_deques_owned, deques_owned);
  }
  void note_deque_freed() noexcept {
    LHWS_ASSERT(deques_owned > 0);
    --deques_owned;
  }
};

// Slab-allocator activity attributed to one run: counter deltas between
// run start and end (the allocator itself is process-global; see
// mem::totals()), plus the absolute live slab footprint at run end.
struct alloc_run_stats {
  std::uint64_t magazine_hits = 0;    // allocs served from a local free list
  std::uint64_t magazine_misses = 0;  // allocs that took the refill path
  std::uint64_t remote_pushes = 0;    // cross-thread frees routed remotely
  std::uint64_t remote_drained = 0;   // remote frees reclaimed by owners
  std::uint64_t fallback_allocs = 0;  // oversize / disabled-mode allocations
  std::uint64_t slab_bytes = 0;       // live slab footprint (absolute)

  // Fraction of slab-eligible allocations served without a refill.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = magazine_hits + magazine_misses;
    return total == 0
               ? 0.0
               : static_cast<double>(magazine_hits) / static_cast<double>(total);
  }
};

struct run_stats {
  std::uint64_t segments_executed = 0;
  std::uint64_t batch_splits = 0;
  std::uint64_t batches_injected = 0;
  std::uint64_t resumes_delivered = 0;
  std::uint64_t deque_switches = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t failed_steals = 0;
  std::uint64_t failed_empty = 0;
  std::uint64_t failed_contended = 0;
  std::uint64_t suspensions = 0;
  std::uint64_t blocked_waits = 0;
  std::uint64_t resumes_direct = 0;
  std::uint64_t parks = 0;
  std::uint64_t park_timeouts = 0;
  std::uint64_t unparks = 0;
  std::uint64_t registry_republishes = 0;
  std::uint64_t max_deques_per_worker = 0;
  std::uint64_t total_deques_allocated = 0;
  // Peak number of simultaneously suspended continuations — an observed
  // upper bound on the dag's suspension width U (slightly conservative:
  // resumed-but-undrained continuations still count until the drain).
  std::uint64_t max_concurrent_suspended = 0;
  // Trace events rejected because a worker's buffer hit trace_capacity.
  std::uint64_t trace_events_dropped = 0;
  // Causal spans (DESIGN.md §13): committed heavy-edge spans, completed
  // request records, and span records rejected at the per-worker cap.
  // Run-level only — filled from the worker sinks after the join, not by
  // absorb().
  std::uint64_t span_records = 0;
  std::uint64_t request_records = 0;
  std::uint64_t span_records_dropped = 0;
  // Slab-allocator deltas for this run (zeroes when the slab is disabled).
  alloc_run_stats alloc;
  double elapsed_ms = 0.0;

  // Per-worker breakdown, in worker-index order. absorb() keeps it so the
  // aggregation never loses attribution (benches and the trace metadata
  // print it).
  std::vector<worker_stats> per_worker;

  void absorb(const worker_stats& w) {
    per_worker.push_back(w);
    segments_executed += w.segments_executed;
    batch_splits += w.batch_splits;
    batches_injected += w.batches_injected;
    resumes_delivered += w.resumes_delivered;
    deque_switches += w.deque_switches;
    steal_attempts += w.steal_attempts;
    successful_steals += w.successful_steals;
    failed_steals += w.failed_steals;
    failed_empty += w.failed_empty;
    failed_contended += w.failed_contended;
    suspensions += w.suspensions;
    blocked_waits += w.blocked_waits;
    resumes_direct += w.resumes_direct;
    parks += w.parks;
    park_timeouts += w.park_timeouts;
    unparks += w.unparks;
    registry_republishes += w.registry_republishes;
    max_deques_per_worker =
        std::max(max_deques_per_worker, w.max_deques_owned);
  }
};

}  // namespace lhws::rt
