// Work items: what lives in a runtime deque slot.
//
// A slot denotes either a suspended-coroutine continuation (a user-level
// thread ready to run) or a pfor batch node covering a range of resumed
// continuations (Section 3's pfor tree, in its runtime form). Both are
// encoded in a single word — a pointer with a low tag bit — because the
// Chase-Lev deque requires word-sized trivially-copyable entries.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <type_traits>

#include "mem/slab.hpp"
#include "support/config.hpp"

namespace lhws::obs {
struct trace_state;
}  // namespace lhws::obs

namespace lhws::rt {

// Per-continuation span stamp carried through a spanned batch tree
// (DESIGN.md §13): the resume_node fields, frozen at drain time. `state ==
// nullptr` marks an unspanned continuation inside a spanned block.
struct batch_span_slot {
  obs::trace_state* state;
  std::int64_t arm_ns;
  std::int64_t fire_ns;
  std::uint32_t span_id;
  std::uint32_t parent_span;
  std::uint8_t kind;
  std::uint8_t arm_worker;
  std::uint8_t fire_shard;
};

// The shared continuation buffer behind a runtime pfor tree: one slab block
// holding [header | n coroutine handles]. Ownership is leaf-counted —
// `pending` starts at the leaf count, so SPLITTING a node costs zero atomic
// operations (it only copies the block pointer; contrast the previous
// shared_ptr<vector> design, whose every split bumped an atomic control
// block). Each executed leaf pays one fetch_sub; the last one frees the
// block back to its owning worker's magazine (or its remote list, when a
// thief ran the last leaf).
struct batch_block {
  std::atomic<std::uint32_t> pending;
  std::uint32_t count;
  // Span support (DESIGN.md §13): when `spanned` != 0 the block carries a
  // batch_span_slot per item after the handle array, and `drain_ns` is the
  // owner's drain timestamp shared by every slot (one drain, one clock
  // read). Both are written once before the block is published.
  std::int64_t drain_ns;
  std::uint32_t spanned;

  static batch_block* create(std::uint32_t n, bool with_spans = false) {
    LHWS_ASSERT(n >= 1);
    std::size_t bytes =
        sizeof(batch_block) + std::size_t{n} * sizeof(std::coroutine_handle<>);
    if (with_spans) bytes += std::size_t{n} * sizeof(batch_span_slot);
    void* raw = mem::allocate(bytes);
    auto* b = ::new (raw) batch_block;
    b->pending.store(n, std::memory_order_relaxed);
    b->count = n;
    b->drain_ns = 0;
    b->spanned = with_spans ? 1 : 0;
    return b;
  }

  [[nodiscard]] std::coroutine_handle<>* items() noexcept {
    return reinterpret_cast<std::coroutine_handle<>*>(this + 1);
  }

  // Valid only when `spanned`; aligned because the header and the handle
  // array are both multiples of the slot's 8-byte alignment.
  [[nodiscard]] batch_span_slot* span_slots() noexcept {
    return reinterpret_cast<batch_span_slot*>(items() + count);
  }

  // Called once per executed leaf; the last call releases the block. The
  // acq_rel pairing makes every leaf's reads of items() happen-before the
  // free, whichever worker ends up last.
  void release_leaf() noexcept {
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      mem::deallocate(this);
    }
  }
};
static_assert(std::is_trivially_destructible_v<batch_block>);
static_assert(sizeof(batch_block) % alignof(std::coroutine_handle<>) == 0);
static_assert(sizeof(batch_block) % alignof(batch_span_slot) == 0 &&
              sizeof(std::coroutine_handle<>) % alignof(batch_span_slot) == 0);

// A node of the runtime pfor tree: a view [lo, hi) over a batch_block.
// Executing a node with hi - lo > 1 splits it (pushing the right half back
// for thieves); a single-element node resumes its continuation directly.
// Trivially copyable — the split path is two plain stores and a slab
// allocation, nothing atomic.
struct batch_node {
  batch_block* block = nullptr;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  // Steal-hop count for the spans in [lo, hi): bumped each time a thief
  // steals this node, inherited by both halves of a split.
  std::uint32_t hops = 0;

  static void* operator new(std::size_t n) { return mem::allocate(n); }
  static void operator delete(void* p) noexcept { mem::deallocate(p); }
};
static_assert(std::is_trivially_copyable_v<batch_node>);

// Deque slot for a single spanned continuation (the count == 1 direct-push
// fast path of add_resumed_vertices, span-tracing variant): the resume_node
// stamp plus the drain timestamp, slab-allocated and freed by execute().
struct span_carrier {
  std::coroutine_handle<> continuation{};
  obs::trace_state* state = nullptr;
  std::int64_t arm_ns = 0;
  std::int64_t fire_ns = 0;
  std::int64_t drain_ns = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;
  std::uint16_t hops = 0;
  std::uint8_t kind = 0;
  std::uint8_t arm_worker = 0;
  std::uint8_t fire_shard = 0;

  static void* operator new(std::size_t n) { return mem::allocate(n); }
  static void operator delete(void* p) noexcept { mem::deallocate(p); }
};

class work_item {
 public:
  work_item() = default;

  static work_item from_coroutine(std::coroutine_handle<> h) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(h.address());
    LHWS_ASSERT((w.bits_ & tag_mask) == 0);
    return w;
  }

  // Takes ownership of the (slab-allocated) batch node.
  static work_item from_batch(batch_node* b) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(b) | batch_tag;
    return w;
  }

  // Takes ownership of the (slab-allocated) span carrier.
  static work_item from_span(span_carrier* s) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(s) | span_tag;
    return w;
  }

  static work_item from_raw(std::uintptr_t bits) noexcept {
    work_item w;
    w.bits_ = bits;
    return w;
  }

  [[nodiscard]] std::uintptr_t raw() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] bool is_batch() const noexcept {
    return (bits_ & tag_mask) == batch_tag;
  }
  [[nodiscard]] bool is_span() const noexcept {
    return (bits_ & tag_mask) == span_tag;
  }

  [[nodiscard]] std::coroutine_handle<> coroutine() const noexcept {
    LHWS_ASSERT(!empty() && !is_batch() && !is_span());
    return std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(bits_));
  }

  [[nodiscard]] batch_node* batch() const noexcept {
    LHWS_ASSERT(is_batch());
    return reinterpret_cast<batch_node*>(bits_ & ~tag_mask);
  }

  [[nodiscard]] span_carrier* span() const noexcept {
    LHWS_ASSERT(is_span());
    return reinterpret_cast<span_carrier*>(bits_ & ~tag_mask);
  }

 private:
  // Two tag bits: slab blocks and coroutine frames are >= 16-aligned, so
  // the low two bits of every encoded pointer are free.
  static constexpr std::uintptr_t batch_tag = 1;
  static constexpr std::uintptr_t span_tag = 2;
  static constexpr std::uintptr_t tag_mask = 3;

  std::uintptr_t bits_ = 0;
};

}  // namespace lhws::rt
