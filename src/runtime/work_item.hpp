// Work items: what lives in a runtime deque slot.
//
// A slot denotes either a suspended-coroutine continuation (a user-level
// thread ready to run) or a pfor batch node covering a range of resumed
// continuations (Section 3's pfor tree, in its runtime form). Both are
// encoded in a single word — a pointer with a low tag bit — because the
// Chase-Lev deque requires word-sized trivially-copyable entries.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <type_traits>

#include "mem/slab.hpp"
#include "support/config.hpp"

namespace lhws::rt {

// The shared continuation buffer behind a runtime pfor tree: one slab block
// holding [header | n coroutine handles]. Ownership is leaf-counted —
// `pending` starts at the leaf count, so SPLITTING a node costs zero atomic
// operations (it only copies the block pointer; contrast the previous
// shared_ptr<vector> design, whose every split bumped an atomic control
// block). Each executed leaf pays one fetch_sub; the last one frees the
// block back to its owning worker's magazine (or its remote list, when a
// thief ran the last leaf).
struct batch_block {
  std::atomic<std::uint32_t> pending;
  std::uint32_t count;

  static batch_block* create(std::uint32_t n) {
    LHWS_ASSERT(n >= 1);
    void* raw = mem::allocate(sizeof(batch_block) +
                              std::size_t{n} * sizeof(std::coroutine_handle<>));
    auto* b = ::new (raw) batch_block;
    b->pending.store(n, std::memory_order_relaxed);
    b->count = n;
    return b;
  }

  [[nodiscard]] std::coroutine_handle<>* items() noexcept {
    return reinterpret_cast<std::coroutine_handle<>*>(this + 1);
  }

  // Called once per executed leaf; the last call releases the block. The
  // acq_rel pairing makes every leaf's reads of items() happen-before the
  // free, whichever worker ends up last.
  void release_leaf() noexcept {
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      mem::deallocate(this);
    }
  }
};
static_assert(std::is_trivially_destructible_v<batch_block>);
static_assert(sizeof(batch_block) % alignof(std::coroutine_handle<>) == 0);

// A node of the runtime pfor tree: a view [lo, hi) over a batch_block.
// Executing a node with hi - lo > 1 splits it (pushing the right half back
// for thieves); a single-element node resumes its continuation directly.
// Trivially copyable — the split path is two plain stores and a slab
// allocation, nothing atomic.
struct batch_node {
  batch_block* block = nullptr;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  static void* operator new(std::size_t n) { return mem::allocate(n); }
  static void operator delete(void* p) noexcept { mem::deallocate(p); }
};
static_assert(std::is_trivially_copyable_v<batch_node>);

class work_item {
 public:
  work_item() = default;

  static work_item from_coroutine(std::coroutine_handle<> h) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(h.address());
    LHWS_ASSERT((w.bits_ & tag_mask) == 0);
    return w;
  }

  // Takes ownership of the (slab-allocated) batch node.
  static work_item from_batch(batch_node* b) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(b) | batch_tag;
    return w;
  }

  static work_item from_raw(std::uintptr_t bits) noexcept {
    work_item w;
    w.bits_ = bits;
    return w;
  }

  [[nodiscard]] std::uintptr_t raw() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] bool is_batch() const noexcept {
    return (bits_ & tag_mask) == batch_tag;
  }

  [[nodiscard]] std::coroutine_handle<> coroutine() const noexcept {
    LHWS_ASSERT(!empty() && !is_batch());
    return std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(bits_));
  }

  [[nodiscard]] batch_node* batch() const noexcept {
    LHWS_ASSERT(is_batch());
    return reinterpret_cast<batch_node*>(bits_ & ~tag_mask);
  }

 private:
  static constexpr std::uintptr_t batch_tag = 1;
  static constexpr std::uintptr_t tag_mask = 1;

  std::uintptr_t bits_ = 0;
};

}  // namespace lhws::rt
