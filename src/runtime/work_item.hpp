// Work items: what lives in a runtime deque slot.
//
// A slot denotes either a suspended-coroutine continuation (a user-level
// thread ready to run) or a pfor batch node covering a range of resumed
// continuations (Section 3's pfor tree, in its runtime form). Both are
// encoded in a single word — a pointer with a low tag bit — because the
// Chase-Lev deque requires word-sized trivially-copyable entries.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/config.hpp"

namespace lhws::rt {

// A node of the runtime pfor tree: a view [lo, hi) over a shared vector of
// resumed continuations. Executing a node with hi - lo > 1 splits it
// (pushing the right half back for thieves); a single-element node resumes
// its continuation directly.
struct batch_node {
  std::shared_ptr<std::vector<std::coroutine_handle<>>> items;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

class work_item {
 public:
  work_item() = default;

  static work_item from_coroutine(std::coroutine_handle<> h) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(h.address());
    LHWS_ASSERT((w.bits_ & tag_mask) == 0);
    return w;
  }

  // Takes ownership of the (heap-allocated) batch node.
  static work_item from_batch(batch_node* b) noexcept {
    work_item w;
    w.bits_ = reinterpret_cast<std::uintptr_t>(b) | batch_tag;
    return w;
  }

  static work_item from_raw(std::uintptr_t bits) noexcept {
    work_item w;
    w.bits_ = bits;
    return w;
  }

  [[nodiscard]] std::uintptr_t raw() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] bool is_batch() const noexcept {
    return (bits_ & tag_mask) == batch_tag;
  }

  [[nodiscard]] std::coroutine_handle<> coroutine() const noexcept {
    LHWS_ASSERT(!empty() && !is_batch());
    return std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(bits_));
  }

  [[nodiscard]] batch_node* batch() const noexcept {
    LHWS_ASSERT(is_batch());
    return reinterpret_cast<batch_node*>(bits_ & ~tag_mask);
  }

 private:
  static constexpr std::uintptr_t batch_tag = 1;
  static constexpr std::uintptr_t tag_mask = 1;

  std::uintptr_t bits_ = 0;
};

}  // namespace lhws::rt
