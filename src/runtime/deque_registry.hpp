// Epoch-published per-worker deque registry — the lock-free replacement for
// the spinlock-guarded registry vector on the steal hot path.
//
// The paper's Section 6 steal policy ("random worker, then a random
// non-empty deque of that worker") needs thieves to read the victim's set
// of owned deques. The original implementation serialized every steal
// attempt and every deque registration behind the victim's spinlock; under
// contention (all thieves on one victim) that lock IS the steal cost.
//
// This registry publishes the set as a slot array + count guarded by a
// seqlock-style epoch:
//
//   - Owner-only mutation (add/remove/grow) is the rare slow path: it brackets
//     each republish with an odd/even epoch bump (odd = publish in flight).
//   - Thieves read with plain atomic loads and never block: the fast path is
//     two acquire loads (array pointer, count) plus one acquire slot load.
//   - The sampler takes a *validated* snapshot: read epoch, copy slots,
//     re-read epoch; retry on mismatch, with a bounded-retry fallback to an
//     unvalidated copy so a churning owner cannot starve it.
//
// Why unvalidated reads are safe on the steal path: slot stores are release
// and always contain nullptr or a pointer to a live deque (deques are pool-
// allocated and recycled, never deallocated during a run — Section 3 already
// allows stealing from freed deques, the steal just fails). A torn snapshot
// therefore costs at most a failed steal attempt, which the analysis charges
// anyway. The full memory-ordering contract is DESIGN.md §9.
#pragma once

#include <cstdint>
#include <memory>

#include "support/atomic_model.hpp"
#include "support/config.hpp"

namespace lhws::rt {

// Generic over the deque type Q (the checker models the protocol with a
// dummy payload) and the memory-model policy (real_model in production,
// chk::check_model under the model checker).
template <typename Q, typename Model = real_model>
class basic_deque_registry {
  template <typename U>
  using model_atomic = typename Model::template atomic_type<U>;

  // One published pointer per cache line: an owner republish (swap-with-last
  // writes two slots) invalidates only the lines it actually changed, never
  // the line a thief is concurrently probing for an unrelated deque.
  struct padded_slot {
    alignas(cache_line_size) model_atomic<Q*> ptr;
  };

  struct slot_array {
    explicit slot_array(std::uint32_t cap)
        : capacity(cap), slots(new padded_slot[cap]) {
      for (std::uint32_t i = 0; i < cap; ++i) {
        slots[i].ptr.store(nullptr, std::memory_order_relaxed);
      }
    }

    const std::uint32_t capacity;
    std::unique_ptr<padded_slot[]> slots;
    slot_array* retired_next = nullptr;
  };

 public:
  explicit basic_deque_registry(std::uint32_t initial_capacity = 8)
      : epoch_(0), count_(0), retired_(nullptr) {
    LHWS_ASSERT(initial_capacity >= 1);
    array_.store(new slot_array(initial_capacity), std::memory_order_relaxed);
  }

  ~basic_deque_registry() {
    delete array_.load(std::memory_order_relaxed);
    slot_array* r = retired_;
    while (r != nullptr) {
      slot_array* next = r->retired_next;
      delete r;
      r = next;
    }
  }

  basic_deque_registry(const basic_deque_registry&) = delete;
  basic_deque_registry& operator=(const basic_deque_registry&) = delete;

  // --- Owner-only slow path (registration / retirement) -------------------

  void add(Q* q) {
    publish_begin();
    slot_array* a = array_.load(std::memory_order_relaxed);
    const std::uint32_t n = count_.load(std::memory_order_relaxed);
    if (n == a->capacity) a = grow(a, n);
    a->slots[n].ptr.store(q, std::memory_order_release);
    count_.store(n + 1, std::memory_order_release);
    publish_end();
  }

  void remove(Q* q) {
    publish_begin();
    slot_array* a = array_.load(std::memory_order_relaxed);
    const std::uint32_t n = count_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (a->slots[i].ptr.load(std::memory_order_relaxed) == q) {
        // Swap-with-last. A concurrent reader holding the old count may see
        // the moved entry twice or the stale tail — both benign (failed or
        // duplicate-target steal, never an invalid pointer).
        a->slots[i].ptr.store(
            a->slots[n - 1].ptr.load(std::memory_order_relaxed),
            std::memory_order_release);
        a->slots[n - 1].ptr.store(nullptr, std::memory_order_relaxed);
        count_.store(n - 1, std::memory_order_release);
        publish_end();
        return;
      }
    }
    publish_end();
    LHWS_ASSERT(false && "deque missing from registry");
  }

  // --- Any-thread read side ------------------------------------------------

  // A point-in-time handle on the published array. Entries may go stale the
  // moment it is taken; at(i) never returns an invalid pointer, only nullptr
  // or a (possibly since-retired) live deque.
  struct reader_view {
    const slot_array* arr = nullptr;
    std::uint32_t n = 0;

    [[nodiscard]] Q* at(std::uint32_t i) const {
      return arr->slots[i].ptr.load(std::memory_order_acquire);
    }
  };

  [[nodiscard]] reader_view view() const {
    // Array before count: a newer count paired with an older (smaller) array
    // is the one inconsistent combination, clamped away below.
    const slot_array* a = array_.load(std::memory_order_acquire);
    std::uint32_t n = count_.load(std::memory_order_acquire);
    if (n > a->capacity) n = a->capacity;
    return reader_view{a, n};
  }

  // The steal fast path: two acquire loads (via view()) plus one slot load.
  // Returns nullptr when the registry is empty or the probed slot is.
  template <typename Rng>
  [[nodiscard]] Q* random_slot(Rng& rng) const {
    const reader_view v = view();
    if (v.n == 0) return nullptr;
    return v.at(static_cast<std::uint32_t>(rng.below(v.n)));
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  // Completed republishes (epoch runs odd while a publish is in flight).
  [[nodiscard]] std::uint64_t republish_count() const noexcept {
    return epoch_.load(std::memory_order_acquire) / 2;
  }

  // Validated (seqlock) snapshot for the sampler: copies up to `max` slots
  // into `out` and reports whether the copy was epoch-stable. Falls back to
  // an unvalidated best-effort copy after `max_retries` churny attempts, so
  // a busy owner can delay but never starve observation.
  std::uint32_t snapshot(Q** out, std::uint32_t max, bool& consistent,
                         unsigned max_retries = 3) const {
    for (unsigned attempt = 0; attempt < max_retries; ++attempt) {
      const std::uint64_t e1 = epoch_.load(std::memory_order_acquire);
      if ((e1 & 1) != 0) continue;  // publish in flight
      const reader_view v = view();
      const std::uint32_t n = v.n < max ? v.n : max;
      for (std::uint32_t i = 0; i < n; ++i) {
        out[i] = v.arr->slots[i].ptr.load(std::memory_order_relaxed);
      }
      Model::fence(std::memory_order_acquire);
      if (epoch_.load(std::memory_order_relaxed) == e1) {
        consistent = true;
        return n;
      }
    }
    // Unvalidated fallback: acquire slot loads keep every entry individually
    // safe to dereference even though the set may be torn.
    consistent = false;
    const reader_view v = view();
    const std::uint32_t limit = v.n < max ? v.n : max;
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < limit; ++i) {
      Q* q = v.at(i);
      if (q != nullptr) out[n++] = q;
    }
    return n;
  }

 private:
  // Seqlock writer protocol (Boehm, MSPC'12): odd store, release fence,
  // slot/count writes, even release store. Readers pair with the release
  // fence via their acquire fence before re-reading the epoch.
  void publish_begin() {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    epoch_.store(e + 1, std::memory_order_relaxed);
    Model::fence(std::memory_order_release);
  }

  void publish_end() {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    epoch_.store(e + 1, std::memory_order_release);
  }

  slot_array* grow(slot_array* old, std::uint32_t n) {
    auto* bigger = new slot_array(old->capacity * 2);
    for (std::uint32_t i = 0; i < n; ++i) {
      bigger->slots[i].ptr.store(old->slots[i].ptr.load(std::memory_order_relaxed),
                             std::memory_order_release);
    }
    array_.store(bigger, std::memory_order_release);
    // A thief may still hold the old array pointer: retire, free at dtor
    // (same discipline as chase_lev_deque's ring buffers). Growth doubles,
    // so retired memory is bounded by 2x the peak registry size.
    old->retired_next = retired_;
    retired_ = old;
    return bigger;
  }

  alignas(cache_line_size) model_atomic<std::uint64_t> epoch_;
  model_atomic<std::uint32_t> count_;
  model_atomic<slot_array*> array_;
  slot_array* retired_;  // owner-only
};

}  // namespace lhws::rt
