#include "runtime/trace.hpp"

#include <ostream>
#include <sstream>

#include "runtime/stats.hpp"

namespace lhws::rt {
namespace {

const char* name_of(trace_kind k) {
  switch (k) {
    case trace_kind::segment:
      return "segment";
    case trace_kind::batch:
      return "batch";
    case trace_kind::steal:
      return "steal";
    case trace_kind::deque_switch:
      return "switch";
    case trace_kind::suspend:
      return "suspend";
    case trace_kind::resume:
      return "resume";
    case trace_kind::wake:
      return "wake";
    case trace_kind::blocked:
      return "blocked";
    case trace_kind::park:
      return "park";
    case trace_kind::io_wake:
      return "io_wake";
  }
  return "?";
}

bool is_duration(trace_kind k) {
  return k == trace_kind::segment || k == trace_kind::batch ||
         k == trace_kind::blocked || k == trace_kind::park ||
         k == trace_kind::io_wake;
}

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

// Perfetto groups counter tracks by (pid, name); a per-worker prefix keeps
// each worker's gauges on separate tracks.
void write_counter_event(std::ostream& os, bool& first, std::uint32_t worker,
                         const char* series, double ts_us,
                         std::uint64_t value) {
  if (!first) os << ",";
  first = false;
  os << "\n{\"name\":\"w" << worker << "/" << series
     << "\",\"ph\":\"C\",\"pid\":1,\"tid\":" << worker << ",\"ts\":" << ts_us
     << ",\"args\":{\"" << series << "\":" << value << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const trace_buffer*>& workers,
                        std::int64_t origin_ns,
                        const std::vector<obs::counter_sample>* samples,
                        const trace_meta* meta) {
  os << "{\"traceEvents\":[";
  bool first = true;

  // Metadata events: name the process and give every worker a stable,
  // readable row ("worker 3" at tid 3, sorted by index).
  os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":\"lhws\"}}";
  first = false;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"args\":{\"name\":\"worker " << w << "\"}}";
    os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << w << ",\"args\":{\"sort_index\":" << w << "}}";
  }

  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (workers[w] == nullptr) continue;
    for (const trace_event& e : workers[w]->events()) {
      if (!first) os << ",";
      first = false;
      // Chrome trace timestamps are microseconds (double).
      os << "\n{\"name\":\"" << name_of(e.kind) << "\",\"pid\":1,\"tid\":"
         << w << ",\"ts\":" << to_us(e.start_ns - origin_ns);
      if (is_duration(e.kind)) {
        os << ",\"ph\":\"X\",\"dur\":" << to_us(e.end_ns - e.start_ns);
      } else {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
      }
      if (e.arg != 0) {
        os << ",\"args\":{\"n\":" << e.arg << "}";
      }
      os << "}";
    }
  }

  if (samples != nullptr) {
    std::uint64_t prev_attempts[256] = {};
    for (const obs::counter_sample& s : *samples) {
      const double ts = to_us(s.ts_ns - origin_ns);
      write_counter_event(os, first, s.worker, "deques_owned", ts,
                          s.deques_owned);
      write_counter_event(os, first, s.worker, "suspended", ts, s.suspended);
      write_counter_event(os, first, s.worker, "resume_ready", ts,
                          s.resume_ready);
      write_counter_event(os, first, s.worker, "parked", ts, s.parked);
      // Steal pressure: attempts since the previous sample of this worker.
      const std::uint64_t delta =
          s.worker < 256
              ? s.steal_attempts - prev_attempts[s.worker]
              : s.steal_attempts;
      if (s.worker < 256) prev_attempts[s.worker] = s.steal_attempts;
      write_counter_event(os, first, s.worker, "steal_pressure", ts, delta);
    }
  }

  // Top-level run metadata for tooling (Chrome/Perfetto ignore extra keys).
  os << "\n],\"lhws\":{\"schema\":1,\"workers\":" << workers.size();
  if (meta != nullptr) {
    os << ",\"engine\":\"" << meta->engine << "\""
       << ",\"max_concurrent_suspended\":" << meta->max_concurrent_suspended
       << ",\"dropped_events\":" << meta->dropped_events
       << ",\"elapsed_ms\":" << meta->elapsed_ms;
    if (meta->alloc != nullptr) {
      const alloc_run_stats& a = *meta->alloc;
      os << ",\"alloc\":{\"magazine_hits\":" << a.magazine_hits
         << ",\"magazine_misses\":" << a.magazine_misses
         << ",\"remote_pushes\":" << a.remote_pushes
         << ",\"remote_drained\":" << a.remote_drained
         << ",\"fallback_allocs\":" << a.fallback_allocs
         << ",\"slab_bytes\":" << a.slab_bytes << "}";
    }
    if (meta->per_worker != nullptr) {
      os << ",\"per_worker\":[";
      bool pw_first = true;
      for (const worker_stats& ws : *meta->per_worker) {
        if (!pw_first) os << ",";
        pw_first = false;
        os << "\n {\"segments\":" << ws.segments_executed
           << ",\"steal_attempts\":" << ws.steal_attempts
           << ",\"successful_steals\":" << ws.successful_steals
           << ",\"failed_empty\":" << ws.failed_empty
           << ",\"failed_contended\":" << ws.failed_contended
           << ",\"suspensions\":" << ws.suspensions
           << ",\"resumes_delivered\":" << ws.resumes_delivered
           << ",\"deque_switches\":" << ws.deque_switches
           << ",\"parks\":" << ws.parks
           << ",\"park_timeouts\":" << ws.park_timeouts
           << ",\"unparks\":" << ws.unparks
           << ",\"registry_republishes\":" << ws.registry_republishes
           << ",\"max_deques_owned\":" << ws.max_deques_owned << "}";
      }
      os << "\n]";
    }
  }
  os << "}}\n";
}

std::string to_chrome_trace(const std::vector<const trace_buffer*>& workers,
                            std::int64_t origin_ns,
                            const std::vector<obs::counter_sample>* samples,
                            const trace_meta* meta) {
  std::ostringstream ss;
  write_chrome_trace(ss, workers, origin_ns, samples, meta);
  return ss.str();
}

}  // namespace lhws::rt
