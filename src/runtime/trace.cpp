#include "runtime/trace.hpp"

#include <ostream>
#include <sstream>

#include "runtime/stats.hpp"

namespace lhws::rt {
namespace {

const char* name_of(trace_kind k) {
  switch (k) {
    case trace_kind::segment:
      return "segment";
    case trace_kind::batch:
      return "batch";
    case trace_kind::steal:
      return "steal";
    case trace_kind::deque_switch:
      return "switch";
    case trace_kind::suspend:
      return "suspend";
    case trace_kind::resume:
      return "resume";
    case trace_kind::wake:
      return "wake";
    case trace_kind::blocked:
      return "blocked";
    case trace_kind::park:
      return "park";
    case trace_kind::io_wake:
      return "io_wake";
  }
  return "?";
}

bool is_duration(trace_kind k) {
  return k == trace_kind::segment || k == trace_kind::batch ||
         k == trace_kind::blocked || k == trace_kind::park ||
         k == trace_kind::io_wake;
}

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

// Perfetto groups counter tracks by (pid, name); a per-worker prefix keeps
// each worker's gauges on separate tracks.
void write_counter_event(std::ostream& os, bool& first, std::uint32_t worker,
                         const char* series, double ts_us,
                         std::uint64_t value) {
  if (!first) os << ",";
  first = false;
  os << "\n{\"name\":\"w" << worker << "/" << series
     << "\",\"ph\":\"C\",\"pid\":1,\"tid\":" << worker << ",\"ts\":" << ts_us
     << ",\"args\":{\"" << series << "\":" << value << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const trace_buffer*>& workers,
                        std::int64_t origin_ns,
                        const std::vector<obs::counter_sample>* samples,
                        const trace_meta* meta) {
  os << "{\"traceEvents\":[";
  bool first = true;

  // Metadata events: name the process and give every worker a stable,
  // readable row ("worker 3" at tid 3, sorted by index).
  os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":\"lhws\"}}";
  first = false;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"args\":{\"name\":\"worker " << w << "\"}}";
    os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << w << ",\"args\":{\"sort_index\":" << w << "}}";
  }
  // One lane per reactor shard that fired an io completion, then one lane
  // per cluster peer that completed a remote spawn; the requests row sits
  // just past the last lane.
  const std::size_t reactor_lanes =
      meta != nullptr ? meta->reactor_lanes : 0;
  const std::size_t peer_lanes = meta != nullptr ? meta->peer_lanes : 0;
  const std::size_t reactor_tid_base = workers.size();
  const std::size_t peer_tid_base = reactor_tid_base + reactor_lanes;
  const std::size_t requests_tid = peer_tid_base + peer_lanes;
  for (std::size_t lane = 0; lane < reactor_lanes; ++lane) {
    const std::size_t tid = reactor_tid_base + lane;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":\"reactor/" << lane << "\"}}";
    os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
  }
  for (std::size_t lane = 0; lane < peer_lanes; ++lane) {
    const std::size_t tid = peer_tid_base + lane;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":\"peer/" << lane << "\"}}";
    os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
  }
  if (meta != nullptr && meta->requests != nullptr &&
      !meta->requests->empty()) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << requests_tid << ",\"args\":{\"name\":\"requests\"}}";
    os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << requests_tid << ",\"args\":{\"sort_index\":" << requests_tid
       << "}}";
  }

  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (workers[w] == nullptr) continue;
    for (const trace_event& e : workers[w]->events()) {
      if (!first) os << ",";
      first = false;
      // Chrome trace timestamps are microseconds (double).
      os << "\n{\"name\":\"" << name_of(e.kind) << "\",\"pid\":1,\"tid\":"
         << w << ",\"ts\":" << to_us(e.start_ns - origin_ns);
      if (is_duration(e.kind)) {
        os << ",\"ph\":\"X\",\"dur\":" << to_us(e.end_ns - e.start_ns);
      } else {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
      }
      if (e.arg != 0) {
        os << ",\"args\":{\"n\":" << e.arg << "}";
      }
      os << "}";
    }
  }

  if (samples != nullptr) {
    std::uint64_t prev_attempts[256] = {};
    for (const obs::counter_sample& s : *samples) {
      const double ts = to_us(s.ts_ns - origin_ns);
      write_counter_event(os, first, s.worker, "deques_owned", ts,
                          s.deques_owned);
      write_counter_event(os, first, s.worker, "suspended", ts, s.suspended);
      write_counter_event(os, first, s.worker, "resume_ready", ts,
                          s.resume_ready);
      write_counter_event(os, first, s.worker, "parked", ts, s.parked);
      // Steal pressure: attempts since the previous sample of this worker.
      const std::uint64_t delta =
          s.worker < 256
              ? s.steal_attempts - prev_attempts[s.worker]
              : s.steal_attempts;
      if (s.worker < 256) prev_attempts[s.worker] = s.steal_attempts;
      write_counter_event(os, first, s.worker, "steal_pressure", ts, delta);
    }
  }

  // Causal spans: one flow (ph "s"/"t"/"f") per heavy-edge span linking the
  // arm site, the reactor delivery (io kinds only), and the resume site;
  // one "X" slice per completed request on the "requests" row.
  if (meta != nullptr && meta->spans != nullptr) {
    for (const obs::span_record& sp : *meta->spans) {
      const char* name = obs::span_kind_name(
          static_cast<obs::span_kind>(sp.kind));
      const std::uint64_t flow_id =
          sp.trace_id * 1000003ULL + sp.span_id;  // unique per (trace, span)
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"" << name << "\",\"cat\":\"span\",\"ph\":\"s\","
         << "\"pid\":1,\"tid\":" << static_cast<unsigned>(sp.arm_worker)
         << ",\"ts\":" << to_us(sp.arm_ns - origin_ns) << ",\"id\":"
         << flow_id << "}";
      const bool is_remote =
          sp.kind == static_cast<std::uint8_t>(obs::span_kind::remote);
      if (is_remote ||
          sp.kind >= static_cast<std::uint8_t>(obs::span_kind::io_accept)) {
        // io spans hop through the reactor shard that fired them; remote
        // spans hop through the peer node that executed them.
        const std::size_t hop_tid =
            (is_remote ? peer_tid_base : reactor_tid_base) +
            static_cast<std::size_t>(sp.fire_shard);
        os << ",\n{\"name\":\"" << name << "\",\"cat\":\"span\",\"ph\":\"t\","
           << "\"pid\":1,\"tid\":" << hop_tid
           << ",\"ts\":" << to_us(sp.fire_ns - origin_ns) << ",\"id\":"
           << flow_id << "}";
      }
      os << ",\n{\"name\":\"" << name << "\",\"cat\":\"span\",\"ph\":\"f\","
         << "\"bp\":\"e\",\"pid\":1,\"tid\":"
         << static_cast<unsigned>(sp.exec_worker) << ",\"ts\":"
         << to_us(sp.exec_ns - origin_ns) << ",\"id\":" << flow_id
         << ",\"args\":{\"span\":" << sp.span_id << ",\"parent\":"
         << sp.parent_span << ",\"hops\":" << sp.hops << "}}";
    }
  }
  if (meta != nullptr && meta->requests != nullptr) {
    for (const obs::request_record& rq : *meta->requests) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"X\","
         << "\"pid\":1,\"tid\":" << requests_tid << ",\"ts\":"
         << to_us(rq.begin_ns - origin_ns) << ",\"dur\":"
         << to_us(rq.end_ns - rq.begin_ns) << ",\"args\":{\"trace_id\":"
         << rq.trace_id << ",\"spans\":" << rq.spans << ",\"running_us\":"
         << to_us(rq.running_ns) << ",\"deque_us\":" << to_us(rq.deque_ns)
         << ",\"delta_us\":" << to_us(rq.delta_ns) << ",\"wake_us\":"
         << to_us(rq.wake_ns) << "}}";
    }
  }

  // Top-level run metadata for tooling (Chrome/Perfetto ignore extra keys).
  os << "\n],\"lhws\":{\"schema\":1,\"workers\":" << workers.size();
  if (meta != nullptr) {
    os << ",\"engine\":\"" << meta->engine << "\""
       << ",\"max_concurrent_suspended\":" << meta->max_concurrent_suspended
       << ",\"dropped_events\":" << meta->dropped_events
       << ",\"elapsed_ms\":" << meta->elapsed_ms;
    if (meta->alloc != nullptr) {
      const alloc_run_stats& a = *meta->alloc;
      os << ",\"alloc\":{\"magazine_hits\":" << a.magazine_hits
         << ",\"magazine_misses\":" << a.magazine_misses
         << ",\"remote_pushes\":" << a.remote_pushes
         << ",\"remote_drained\":" << a.remote_drained
         << ",\"fallback_allocs\":" << a.fallback_allocs
         << ",\"slab_bytes\":" << a.slab_bytes << "}";
    }
    os << ",\"span_records_dropped\":" << meta->span_records_dropped;
    if (meta->spans != nullptr) {
      // Nanosecond timestamps (origin-relative): the --spans audit needs
      // exact component sums, not the microsecond doubles of the timeline.
      os << ",\"spans\":[";
      bool sp_first = true;
      for (const obs::span_record& sp : *meta->spans) {
        if (!sp_first) os << ",";
        sp_first = false;
        os << "\n {\"trace_id\":" << sp.trace_id << ",\"span\":" << sp.span_id
           << ",\"parent\":" << sp.parent_span << ",\"kind\":\""
           << obs::span_kind_name(static_cast<obs::span_kind>(sp.kind))
           << "\",\"arm_ns\":" << (sp.arm_ns - origin_ns) << ",\"fire_ns\":"
           << (sp.fire_ns - origin_ns) << ",\"drain_ns\":"
           << (sp.drain_ns - origin_ns) << ",\"exec_ns\":"
           << (sp.exec_ns - origin_ns) << ",\"hops\":" << sp.hops
           << ",\"arm_worker\":" << static_cast<unsigned>(sp.arm_worker)
           << ",\"exec_worker\":" << static_cast<unsigned>(sp.exec_worker)
           << ",\"shard\":" << static_cast<unsigned>(sp.fire_shard) << "}";
      }
      os << "\n]";
    }
    if (meta->requests != nullptr) {
      os << ",\"requests\":[";
      bool rq_first = true;
      for (const obs::request_record& rq : *meta->requests) {
        if (!rq_first) os << ",";
        rq_first = false;
        os << "\n {\"trace_id\":" << rq.trace_id << ",\"root_span\":"
           << rq.root_span << ",\"remote_parent\":" << rq.remote_parent
           << ",\"begin_ns\":" << (rq.begin_ns - origin_ns) << ",\"end_ns\":"
           << (rq.end_ns - origin_ns) << ",\"running_ns\":" << rq.running_ns
           << ",\"deque_ns\":" << rq.deque_ns << ",\"delta_ns\":"
           << rq.delta_ns << ",\"wake_ns\":" << rq.wake_ns << ",\"spans\":"
           << rq.spans << ",\"hops\":" << rq.hops << "}";
      }
      os << "\n]";
    }
    if (meta->per_worker != nullptr) {
      os << ",\"per_worker\":[";
      bool pw_first = true;
      for (const worker_stats& ws : *meta->per_worker) {
        if (!pw_first) os << ",";
        pw_first = false;
        os << "\n {\"segments\":" << ws.segments_executed
           << ",\"steal_attempts\":" << ws.steal_attempts
           << ",\"successful_steals\":" << ws.successful_steals
           << ",\"failed_empty\":" << ws.failed_empty
           << ",\"failed_contended\":" << ws.failed_contended
           << ",\"suspensions\":" << ws.suspensions
           << ",\"resumes_delivered\":" << ws.resumes_delivered
           << ",\"deque_switches\":" << ws.deque_switches
           << ",\"parks\":" << ws.parks
           << ",\"park_timeouts\":" << ws.park_timeouts
           << ",\"unparks\":" << ws.unparks
           << ",\"registry_republishes\":" << ws.registry_republishes
           << ",\"max_deques_owned\":" << ws.max_deques_owned << "}";
      }
      os << "\n]";
    }
  }
  os << "}}\n";
}

std::string to_chrome_trace(const std::vector<const trace_buffer*>& workers,
                            std::int64_t origin_ns,
                            const std::vector<obs::counter_sample>* samples,
                            const trace_meta* meta) {
  std::ostringstream ss;
  write_chrome_trace(ss, workers, origin_ns, samples, meta);
  return ss.str();
}

}  // namespace lhws::rt
