#include "runtime/trace.hpp"

#include <ostream>
#include <sstream>

namespace lhws::rt {
namespace {

const char* name_of(trace_kind k) {
  switch (k) {
    case trace_kind::segment:
      return "segment";
    case trace_kind::batch:
      return "batch";
    case trace_kind::steal:
      return "steal";
    case trace_kind::deque_switch:
      return "switch";
    case trace_kind::suspend:
      return "suspend";
    case trace_kind::resume:
      return "resume";
    case trace_kind::blocked:
      return "blocked";
  }
  return "?";
}

bool is_duration(trace_kind k) {
  return k == trace_kind::segment || k == trace_kind::batch ||
         k == trace_kind::blocked;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const trace_buffer*>& workers,
                        std::int64_t origin_ns) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (workers[w] == nullptr) continue;
    for (const trace_event& e : workers[w]->events()) {
      if (!first) os << ",";
      first = false;
      // Chrome trace timestamps are microseconds (double).
      const double ts =
          static_cast<double>(e.start_ns - origin_ns) / 1000.0;
      os << "\n{\"name\":\"" << name_of(e.kind) << "\",\"pid\":1,\"tid\":"
         << w << ",\"ts\":" << ts;
      if (is_duration(e.kind)) {
        const double dur =
            static_cast<double>(e.end_ns - e.start_ns) / 1000.0;
        os << ",\"ph\":\"X\",\"dur\":" << dur;
      } else {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
      }
      if (e.arg != 0) {
        os << ",\"args\":{\"n\":" << e.arg << "}";
      }
      os << "}";
    }
  }
  os << "\n]}\n";
}

std::string to_chrome_trace(const std::vector<const trace_buffer*>& workers,
                            std::int64_t origin_ns) {
  std::ostringstream ss;
  write_chrome_trace(ss, workers, origin_ns);
  return ss.str();
}

}  // namespace lhws::rt
