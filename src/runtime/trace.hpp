// Execution tracing for the real runtime, exported as Chrome trace-event
// JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Each worker owns a lock-free (by ownership) event buffer; the scheduler
// stitches them into one trace after the run. Recorded events:
//   segment   — one coroutine resume (a thread segment), duration event
//   batch     — pfor-batch splitting run
//   steal     — successful steal (instant)
//   switch    — deque switch (instant)
//   suspend   — a continuation suspended (instant)
//   resume    — a batch of continuations re-injected (instant, with count)
//   wake      — one resumed continuation drained; arg = delivery->drain ns
//   blocked   — WS engine blocking wait, duration event
//   park      — idle worker blocked on its parker, duration event; arg = 1
//               if the park ended by timeout rather than a wake
//
// The export also carries:
//   - thread_name / process_name metadata ("M") events so workers show up
//     as named rows instead of anonymous integers;
//   - counter-track ("C") events from the background gauge sampler (deques
//     owned, suspended continuations, resume-ready deques, steal pressure);
//   - a top-level "lhws" object ({"schema":1, per-worker stats, observed
//     suspension width, dropped-event count}) that tools/lhws_trace_stats
//     parses to audit the paper's bounds. Chrome/Perfetto ignore extra
//     top-level keys.
//
// Tracing is off by default (zero cost beyond a branch); enable via
// scheduler_options::trace. Buffers are bounded (scheduler_options::
// trace_capacity events per worker); overflow drops new events and counts
// them, so long runs degrade gracefully instead of OOMing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "obs/span.hpp"

namespace lhws::rt {

struct worker_stats;
struct alloc_run_stats;

enum class trace_kind : std::uint8_t {
  segment,
  batch,
  steal,
  deque_switch,
  suspend,
  resume,
  wake,
  blocked,
  park,
  io_wake,  // suspended io op: arm -> completion delivered (arg = op + 1)
};

struct trace_event {
  trace_kind kind;
  std::int64_t start_ns;
  std::int64_t end_ns;  // == start_ns for instant events
  std::uint64_t arg;    // kind-specific (e.g. resume count, wake latency ns)
};

class trace_buffer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  void enable() noexcept { enabled_ = true; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Caps the number of buffered events (0 = unlimited). Applies to future
  // record() calls only.
  void set_capacity(std::size_t cap) noexcept { capacity_ = cap; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void record(trace_kind kind, std::int64_t start_ns, std::int64_t end_ns,
              std::uint64_t arg = 0) {
    if (!enabled_) return;
    if (capacity_ != 0 && events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back({kind, start_ns, end_ns, arg});
  }

  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

  [[nodiscard]] const std::vector<trace_event>& events() const noexcept {
    return events_;
  }
  // Events rejected because the buffer was at capacity.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  std::vector<trace_event> events_;
};

// Run-level context embedded in the exported trace's "lhws" object; the
// trace-stats CLI audits the paper's bounds from it.
struct trace_meta {
  std::string engine;  // "lhws" or "ws"
  std::uint64_t max_concurrent_suspended = 0;  // observed bound on U
  std::uint64_t dropped_events = 0;
  double elapsed_ms = 0.0;
  const std::vector<worker_stats>* per_worker = nullptr;
  // Slab-allocator deltas for the run (optional "alloc" object).
  const alloc_run_stats* alloc = nullptr;
  // Causal spans (DESIGN.md §13): emitted as Perfetto flow events linking
  // suspend -> resume across worker rows, request slices on a dedicated
  // "requests" row, and "spans"/"requests" arrays in the "lhws" object.
  const std::vector<obs::span_record>* spans = nullptr;
  const std::vector<obs::request_record>* requests = nullptr;
  std::uint64_t span_records_dropped = 0;
  // Adds named "reactor/<shard>" metadata rows (tids = worker count ..
  // worker count + lanes - 1); io-kind span flows route their delivery
  // step through the lane of the shard that fired them. 0 = no io spans,
  // no reactor rows.
  std::uint32_t reactor_lanes = 0;
  // Adds named "peer/<id>" metadata rows after the reactor lanes; remote
  // span flows (dist/cluster.hpp) route their delivery step through the
  // lane of the peer node that completed them. 0 = no remote spans.
  std::uint32_t peer_lanes = 0;
};

// Writes the per-worker buffers as a Chrome trace-event JSON document.
// `origin_ns` is subtracted from every timestamp so traces start near 0.
// `samples` (optional) adds per-worker counter tracks; `meta` (optional)
// enriches the top-level "lhws" object with run statistics.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const trace_buffer*>& workers,
                        std::int64_t origin_ns,
                        const std::vector<obs::counter_sample>* samples =
                            nullptr,
                        const trace_meta* meta = nullptr);

[[nodiscard]] std::string to_chrome_trace(
    const std::vector<const trace_buffer*>& workers, std::int64_t origin_ns,
    const std::vector<obs::counter_sample>* samples = nullptr,
    const trace_meta* meta = nullptr);

}  // namespace lhws::rt
