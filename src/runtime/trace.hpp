// Execution tracing for the real runtime, exported as Chrome trace-event
// JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Each worker owns a lock-free (by ownership) event buffer; the scheduler
// stitches them into one trace after the run. Recorded events:
//   segment   — one coroutine resume (a thread segment), duration event
//   batch     — pfor-batch splitting run
//   steal     — successful steal (instant)
//   switch    — deque switch (instant)
//   suspend   — a continuation suspended (instant)
//   resume    — a batch of continuations re-injected (instant, with count)
//   blocked   — WS engine blocking wait, duration event
//
// Tracing is off by default (zero cost beyond a branch); enable via
// scheduler_options::trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lhws::rt {

enum class trace_kind : std::uint8_t {
  segment,
  batch,
  steal,
  deque_switch,
  suspend,
  resume,
  blocked,
};

struct trace_event {
  trace_kind kind;
  std::int64_t start_ns;
  std::int64_t end_ns;  // == start_ns for instant events
  std::uint64_t arg;    // kind-specific (e.g. resume count)
};

class trace_buffer {
 public:
  void enable() noexcept { enabled_ = true; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(trace_kind kind, std::int64_t start_ns, std::int64_t end_ns,
              std::uint64_t arg = 0) {
    if (!enabled_) return;
    events_.push_back({kind, start_ns, end_ns, arg});
  }

  void clear() noexcept { events_.clear(); }

  [[nodiscard]] const std::vector<trace_event>& events() const noexcept {
    return events_;
  }

 private:
  bool enabled_ = false;
  std::vector<trace_event> events_;
};

// Writes the per-worker buffers as a Chrome trace-event JSON document.
// `origin_ns` is subtracted from every timestamp so traces start near 0.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const trace_buffer*>& workers,
                        std::int64_t origin_ns);

[[nodiscard]] std::string to_chrome_trace(
    const std::vector<const trace_buffer*>& workers, std::int64_t origin_ns);

}  // namespace lhws::rt
