// The runtime scheduler: P worker threads executing the latency-hiding
// work-stealing algorithm of Figure 3 (engine_mode::lhws) or classic
// blocking work stealing (engine_mode::ws) over coroutine continuations.
//
// Granularity note (Section 6): "our scheduler operates at the granularity
// of threads rather than instructions and is only invoked when the current
// thread ends, requires synchronization (with another thread) or
// suspends." A work item here is a coroutine continuation = one thread
// segment; one execute() call runs one segment, then the worker performs
// the Fig. 3 bookkeeping (addResumedVertices, popBottom / switch / steal).
#pragma once

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <iosfwd>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "runtime/deque_pool.hpp"
#include "runtime/deque_registry.hpp"
#include "runtime/event_hub.hpp"
#include "runtime/runtime_deque.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"
#include "runtime/work_item.hpp"
#include "support/backoff.hpp"
#include "support/parker.hpp"
#include "support/rng.hpp"

namespace lhws::rt {

enum class engine_mode : std::uint8_t {
  lhws,  // latency-hiding work stealing (the paper's algorithm)
  ws,    // classic work stealing; latency operations block the worker
};

enum class runtime_steal_policy : std::uint8_t {
  // Section 3 / analyzed: victim is a uniformly random deque from the
  // global array.
  random_deque,
  // Section 6 / implemented: victim is a random worker, then a random
  // non-empty deque of that worker.
  random_worker,
};

struct scheduler_config {
  unsigned workers = std::thread::hardware_concurrency();
  engine_mode engine = engine_mode::lhws;
  runtime_steal_policy policy = runtime_steal_policy::random_worker;
  timer_mode timer = timer_mode::dedicated_thread;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::size_t deque_pool_capacity = std::size_t{1} << 16;
  // Record per-worker execution events for Chrome-trace export.
  bool trace = false;
  // Per-worker trace buffer cap (events); overflow is dropped and counted
  // in run_stats::trace_events_dropped. 0 = unbounded.
  std::size_t trace_capacity = trace_buffer::kDefaultCapacity;
  // Record per-worker latency histograms (wake, steal, segment, deque
  // lifetime). Off by default; ~2% overhead when on (see DESIGN.md §8).
  bool metrics = false;
  // Background gauge sampler cadence in microseconds (0 = off). Samples
  // become Perfetto counter tracks in the exported trace.
  std::uint32_t sample_interval_us = 0;
  // Causal span tracing (DESIGN.md §13): per-request critical-path
  // accumulators + per-heavy-edge span records. Off by default; requests
  // must also opt in via obs::begin_request.
  bool spans = false;
  // Per-worker span-record cap; overflow is dropped and counted in
  // run_stats::span_records_dropped.
  std::uint64_t span_capacity = std::uint64_t{1} << 20;
  // Adaptive idle policy: an idle worker spins `idle_spin_limit` exponential
  // pause rounds, yields `idle_yield_limit` rounds, then parks on a condvar
  // until a lifeline wake (resume delivery / spawn push / shutdown) or
  // `idle_park_timeout_us` elapses. The timeout bounds the latency of the
  // one unavoidable push-vs-park race (DESIGN.md §9); 0 disables parking
  // entirely (spin/yield only). Parking is also disabled under the polled
  // timer mode, where workers must keep polling the event hub.
  std::uint32_t idle_spin_limit = 6;
  std::uint32_t idle_yield_limit = 16;
  std::uint32_t idle_park_timeout_us = 2000;
  // Reactor shards serving this scheduler's io plane (informational here —
  // the io::reactor is constructed by the embedder; 0 = one per worker).
  unsigned reactor_shards = 0;
};

class scheduler_core;

// One worker (one system thread). Public methods below the loop are the
// hooks the coroutine awaitables call through the thread-local current().
class worker {
 public:
  worker(scheduler_core& sched, std::uint32_t index, std::uint64_t seed);

  void loop();

  // The worker currently executing on this thread (null outside a run).
  static worker* current() noexcept { return tl_worker_; }

  // fork2's right-child push: the spawned continuation goes to the bottom
  // of the active deque (Fig. 3 handleChild, ready case).
  void push_spawn(std::coroutine_handle<> h);

  // handleChild, suspended case: the suspending continuation belongs to the
  // active deque. Returns that deque so the awaitable can target the resume
  // callback at it.
  runtime_deque* begin_suspension();
  // The suspension was abandoned (the event completed before the waiter was
  // installed): undo the counter.
  void cancel_suspension(runtime_deque* q);

  void note_blocked_wait() noexcept { stats.blocked_waits += 1; }

  // Tracing hook for awaitables (blocked waits etc.). No-op unless the
  // scheduler was configured with trace = true.
  void record_trace(trace_kind kind, std::int64_t start_ns,
                    std::int64_t end_ns, std::uint64_t arg = 0) {
    trace.record(kind, start_ns, end_ns, arg);
  }

  trace_buffer trace;

  // Span-record sink (DESIGN.md §13), single-writer: only this worker's
  // execute loop / request hooks emit. Populated only when spans_enabled().
  obs::span_sink spans;

  [[nodiscard]] bool spans_enabled() const noexcept { return spans_on_; }

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] scheduler_core& sched() noexcept { return sched_; }

  // Owner-hot, written every scheduling step; keep off the lines that
  // thieves, wakers, and the sampler write (the alignas-grouped members
  // below).
  alignas(cache_line_size) worker_stats stats;

  // Latency histograms (nanoseconds), recorded only when the scheduler was
  // configured with metrics = true. Single-writer (this worker); readable
  // concurrently by the sampler/exporters.
  obs::latency_histograms hist;

  // Point-in-time gauge snapshot for the background sampler (any thread).
  // Lock-free: takes an epoch-validated registry snapshot (bounded retries,
  // best-effort fallback), so sampling never blocks the owner or thieves.
  [[nodiscard]] obs::counter_sample sample_gauges(std::int64_t ts_ns);

  // Lifeline wake (any thread): deliver a park token to this worker.
  // Returns true iff the worker was parked and this call was the wake that
  // reached it. Lock-free unless the target is actually blocked.
  bool wake() noexcept {
    if (!parker_.unpark()) return false;
    unparks_obs_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] bool is_parked() const noexcept { return parker_.is_parked(); }

 private:
  friend class scheduler_core;

  void lhws_loop();
  void ws_loop();
  void execute(work_item item);
  void add_resumed_vertices();
  void maybe_retire_active();
  bool try_switch();
  void try_steal();
  runtime_deque* new_deque();
  void free_deque(runtime_deque* q);
  runtime_deque* pick_victim();

  // Idle tail of the adaptive ladder: announce, recheck, block. Bounded by
  // the configured park timeout.
  void park_idle();
  // Local wake conditions rechecked after the parked state is published.
  [[nodiscard]] bool has_local_work() const noexcept {
    return !resumed_deques_.empty() ||
           !ready_deques_.empty() ||
           (active_ != nullptr && !active_->empty());
  }

  static thread_local worker* tl_worker_;

  scheduler_core& sched_;
  const std::uint32_t index_;
  xoshiro256 rng_;
  bool metrics_on_ = false;
  bool spans_on_ = false;
  bool park_enabled_ = false;
  std::chrono::microseconds park_timeout_{0};
  runtime_deque* active_ = nullptr;
  work_item assigned_;
  std::vector<runtime_deque*> ready_deques_;
  std::vector<runtime_deque*> empty_deques_;

  // --- Cross-thread-written state, one cache line per writer pattern ------
  // Mirror counters: steal_attempts_obs_ is owner-written / sampler-read;
  // unparks_obs_ is written by arbitrary waker threads. Both are folded
  // into stats after the run.
  alignas(cache_line_size) std::atomic<std::uint64_t> steal_attempts_obs_{0};
  std::atomic<std::uint64_t> unparks_obs_{0};

  // Producers: resuming threads (workers, timer, reactor). The owner drains.
  alignas(cache_line_size) mpsc_stack<runtime_deque> resumed_deques_;

  // Registry of this worker's allocated deques, readable by thieves under
  // the Section 6 policy. Epoch-published: thieves and the sampler read it
  // with atomic loads only; add/remove (owner-only, rare) republish.
  alignas(cache_line_size) basic_deque_registry<runtime_deque> registry_;

  // Park/wake handshake word, hammered by wakers while the owner spins.
  alignas(cache_line_size) parker parker_;

 public:
  // Called by resume_handle::fire() (any thread): register q as having
  // resumed vertices (Fig. 3 line 5), then wake the owner if it parked. The
  // wake is unconditional (a state RMW, not a gated check), so a resume can
  // never be lost to the park/deliver race — see DESIGN.md §9. Teardown
  // safety is the caller's job: fire() holds the external-completer guard
  // across the whole delivery, so ~scheduler_core waits out any non-worker
  // thread still in here.
  void enqueue_resumed_deque(runtime_deque* q) {
    resumed_deques_.push(q);
    wake();
  }
};

class scheduler_core {
 public:
  explicit scheduler_core(const scheduler_config& cfg);
  ~scheduler_core();

  scheduler_core(const scheduler_core&) = delete;
  scheduler_core& operator=(const scheduler_core&) = delete;

  // Runs the root continuation to completion on the worker pool; blocks the
  // calling thread. The root must signal completion via signal_done() (the
  // task machinery's root completion hook does this).
  void run_root(std::coroutine_handle<> root);

  void signal_done() noexcept {
    done_.store(true, std::memory_order_release);
    wake_all();
  }
  [[nodiscard]] bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  // --- Parking coordination ----------------------------------------------
  // Workers announce (seq_cst) before publishing their parked state so the
  // push-side gate below pairs with it — a Dekker-style handshake: both
  // sides need SC so the parker's increment and the pusher's load agree on
  // one total order (DESIGN.md §7 seq_cst inventory; §9 has the residual
  // race and its timeout bound).
  void note_parked() noexcept {
    parked_count_.fetch_add(1, std::memory_order_seq_cst);
  }
  void note_unparked() noexcept {
    parked_count_.fetch_sub(1, std::memory_order_release);
  }

  // Push-side lifeline: wake one parked worker so freshly pushed work gets
  // a thief. The common case (nobody parked) is a single uncontended load.
  // Returns true iff a wake was delivered.
  bool wake_one_thief(std::uint32_t self) noexcept {
    if (parked_count_.load(std::memory_order_seq_cst) == 0) return false;
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i <= n; ++i) {
      worker& w = *workers_[(self + i) % n];
      if (w.is_parked() && w.wake()) return true;
    }
    return false;
  }

  void wake_all() noexcept {
    for (auto& w : workers_) w->wake();
  }

  // --- Teardown guard for external completers -----------------------------
  // Counts non-worker threads currently delivering a resume (the whole
  // fire(): node push, suspension-counter decrement, deque registration,
  // parker wake). The increment needs no ordering of its own: it is
  // sequenced before the resume push, and that push happens-before run
  // completion (and thus the destructor's drain loop), so coherence already
  // makes it visible there. The decrement releases the delivery accesses it
  // covers; the drain loop acquires them.
  void external_wake_begin() noexcept {
    external_wakes_.fetch_add(1, std::memory_order_relaxed);
  }
  void external_wake_end() noexcept {
    external_wakes_.fetch_sub(1, std::memory_order_release);
  }

  [[nodiscard]] const scheduler_config& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] deque_pool& pool() noexcept { return pool_; }
  [[nodiscard]] event_hub& hub() noexcept { return hub_; }
  [[nodiscard]] worker& worker_at(std::size_t i) noexcept {
    return *workers_[i];
  }
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  // Aggregated statistics of the last completed run.
  [[nodiscard]] const run_stats& last_run_stats() const noexcept {
    return stats_;
  }

  // Merged per-worker latency histograms of the last completed run (empty
  // unless config.metrics).
  [[nodiscard]] const obs::latency_histograms& last_run_histograms()
      const noexcept {
    return run_hist_;
  }

  // Gauge samples collected by the background sampler during the last run
  // (empty unless config.sample_interval_us > 0).
  [[nodiscard]] const std::vector<obs::counter_sample>& last_counter_samples()
      const noexcept {
    return samples_;
  }

  // --- Causal spans (DESIGN.md §13) --------------------------------------
  // Takes ownership of a request accumulator for end-of-run reclamation.
  // Called by obs::begin_request on a worker thread; MPSC push, never
  // popped until after the workers join, so every arm/commit/end that
  // dereferences the state happens strictly before the free.
  void adopt_trace_state(obs::trace_state* st) { trace_states_.push(st); }

  // Span/request records aggregated across workers at the end of the last
  // run (empty unless config.spans and some request opened a scope).
  [[nodiscard]] const std::vector<obs::span_record>& last_run_spans()
      const noexcept {
    return span_records_;
  }
  [[nodiscard]] const std::vector<obs::request_record>& last_run_requests()
      const noexcept {
    return request_records_;
  }

  // Concurrent-suspension accounting (observed bound on the suspension
  // width U). Increment on suspension begin; decrement on cancel or drain.
  void note_suspend_begin() noexcept {
    const std::int64_t now =
        suspended_now_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto snapshot = static_cast<std::uint64_t>(now);
    std::uint64_t cur = max_suspended_.load(std::memory_order_relaxed);
    while (snapshot > cur &&
           !max_suspended_.compare_exchange_weak(cur, snapshot,
                                                 std::memory_order_relaxed)) {
    }
  }
  void note_suspend_end(std::int64_t n) noexcept {
    suspended_now_.fetch_sub(n, std::memory_order_relaxed);
  }

  // Chrome trace-event JSON of the last run (empty unless config.trace).
  // Includes thread metadata, sampler counter tracks, and the "lhws"
  // metadata object the trace-stats CLI audits.
  void write_trace(std::ostream& os) const;

 private:
  scheduler_config cfg_;
  deque_pool pool_;
  event_hub hub_;
  std::vector<std::unique_ptr<worker>> workers_;
  std::atomic<bool> done_{false};
  alignas(cache_line_size) std::atomic<std::uint32_t> parked_count_{0};
  alignas(cache_line_size) std::atomic<std::uint32_t> external_wakes_{0};
  run_stats stats_;
  obs::latency_histograms run_hist_;
  std::vector<obs::counter_sample> samples_;
  mpsc_stack<obs::trace_state> trace_states_;
  std::vector<obs::span_record> span_records_;
  std::vector<obs::request_record> request_records_;
  std::atomic<std::int64_t> suspended_now_{0};
  std::atomic<std::uint64_t> max_suspended_{0};
  std::int64_t run_start_ns_ = 0;
};

}  // namespace lhws::rt
