// A runtime deque: the paper's per-deque state (Table 1 plus the fields of
// Fig. 3) wrapped around a lock-free Chase-Lev core.
//
// Concurrency contract:
//   - items: owner pushes/pops the bottom, anyone pops the top (Chase-Lev).
//   - suspend_ctr: incremented by the owner when a continuation belonging
//     to this deque suspends; decremented by whichever thread resumes it.
//   - resumed: MPSC — resuming threads push, the owner drains.
//   - in_ready_set / last-active flags: owner only.
//   - freed: owner writes; thieves may racily observe a freed deque and
//     simply fail their steal (Section 3 allows stealing from freed deques;
//     deques are recycled, never deallocated).
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>

#include "deque/chase_lev_deque.hpp"
#include "runtime/work_item.hpp"
#include "support/mpsc_stack.hpp"
#include "support/timing.hpp"

namespace lhws::obs {
struct trace_state;
}  // namespace lhws::obs

namespace lhws::rt {

// Identity of the completer lane running on the current thread: reactor
// shard threads set this to their shard index at loop start (io/reactor.cpp)
// so deliver_resume can stamp which lane fired the completion. Worker and
// hub threads leave it 0; only io-kind spans route through reactor lanes in
// the trace, so the default is never misattributed (DESIGN.md §14).
inline thread_local std::uint32_t tl_completer_lane = 0;

// Intrusive node used to deliver one resumed continuation (the paper's
// callback(v, q) payload). Lives inside the awaitable that suspended, which
// stays alive in the suspended coroutine's frame until it is resumed.
struct resume_node {
  std::coroutine_handle<> continuation{};
  resume_node* next = nullptr;
  // Stamped by deliver_resume; the owner computes wake latency (delivery ->
  // drain) from it when observability is enabled.
  std::int64_t fire_ns = 0;
  // Causal-span stamp (DESIGN.md §13), written by the span-aware arm()
  // overload on the suspending worker and read back by the owner's drain.
  // Null state = no span on this suspension; none of these fields are
  // touched by the completer, so non-span paths pay nothing.
  obs::trace_state* span_state = nullptr;
  std::int64_t span_arm_ns = 0;
  std::uint32_t span_id = 0;
  std::uint32_t span_parent = 0;
  std::uint8_t span_kind = 0;
  std::uint8_t span_arm_worker = 0;
  // Completer lane that fired this resume (reactor shard index); stamped by
  // deliver_resume alongside fire_ns.
  std::uint8_t fire_shard = 0;
};

class runtime_deque {
 public:
  explicit runtime_deque(std::uint32_t owner_index)
      : owner_(owner_index) {}

  // --- Table 1 operations ----------------------------------------------
  void push_bottom(work_item w) { items_.push_bottom(w.raw()); }

  bool pop_bottom(work_item& out) {
    std::uintptr_t bits = 0;
    if (!items_.pop_bottom(bits)) return false;
    out = work_item::from_raw(bits);
    return true;
  }

  bool pop_top(work_item& out) {
    return steal_top(out) == steal_result::success;
  }

  steal_result steal_top(work_item& out) {
    std::uintptr_t bits = 0;
    const steal_result r = items_.steal_top(bits);
    if (r == steal_result::success) out = work_item::from_raw(bits);
    return r;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::int64_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::uint32_t owner() const noexcept { return owner_; }

  // --- Suspension bookkeeping -------------------------------------------
  void add_suspension() noexcept {
    suspend_ctr_.fetch_add(1, std::memory_order_relaxed);
  }

  // callback(v, q), minus the resumedDeques registration which the caller
  // performs when this returns true (the resumed list was empty — the
  // paper's `resumedVertices.size == 1` test).
  bool deliver_resume(resume_node* node) noexcept {
    // One clock read per resume delivery; resumes are latency-completion
    // events, so this is never on the segment hot path.
    node->fire_ns = now_ns();
    node->fire_shard = static_cast<std::uint8_t>(tl_completer_lane);
    const bool was_empty = resumed_.push(node);
    suspend_ctr_.fetch_sub(1, std::memory_order_release);
    return was_empty;
  }

  // The suspension was abandoned before a waiter was installed (the event
  // completed first): retract the counter without a resume delivery.
  void cancel_suspension() noexcept {
    suspend_ctr_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Owner: detach all resumed continuations delivered since the last drain.
  resume_node* drain_resumed() noexcept { return resumed_.pop_all(); }

  [[nodiscard]] std::uint64_t pending_suspensions() const noexcept {
    return suspend_ctr_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool has_pending_suspensions() const noexcept {
    return pending_suspensions() != 0;
  }
  [[nodiscard]] bool has_undrained_resumes() const noexcept {
    return !resumed_.empty();
  }

  // --- Owner-only state flags -------------------------------------------
  bool in_ready_set = false;

  // When this deque was acquired by its current owner (0 = not tracked);
  // free_deque records the lifetime histogram from it. Owner-only.
  std::int64_t acquired_ns = 0;

  // Intrusive link for the owner's resumedDeques MPSC stack. A deque is
  // registered at most once between drains (guarded by deliver_resume's
  // was-empty return), so this single link suffices.
  runtime_deque* next = nullptr;

  void mark_freed(bool f) noexcept {
    freed_.store(f, std::memory_order_release);
  }
  [[nodiscard]] bool is_freed() const noexcept {
    return freed_.load(std::memory_order_acquire);
  }

 private:
  chase_lev_deque<std::uintptr_t> items_;
  alignas(cache_line_size) std::atomic<std::uint64_t> suspend_ctr_{0};
  mpsc_stack<resume_node> resumed_;
  std::atomic<bool> freed_{false};
  std::uint32_t owner_;
};

}  // namespace lhws::rt
