// The global deque array of Figure 5: gDeques, gTotalDeques, and the
// per-worker emptyDeques recycling sets.
//
// Allocation uses a fixed-capacity slot array plus an atomic bump counter
// (the paper's fetch_and_add(gTotalDeques, 1)); the fixed capacity plays the
// role of the "acceptable for the application" fixed-size array variant the
// paper describes. Deques are recycled through per-worker free lists and
// never deallocated during a run, so a thief holding a stale pointer is
// always safe (Section 3's "the chosen deque may have been freed, in which
// case the steal will fail").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/runtime_deque.hpp"
#include "support/atomic_model.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"

namespace lhws::rt {

// Generic over the deque type Q (so the checker can model the protocol
// with a dummy payload) and the memory-model policy (real_model in
// production, chk::check_model under the model checker). Q needs only a
// Q(std::uint32_t owner) constructor.
template <typename Q, typename Model = real_model>
class basic_deque_pool {
  template <typename U>
  using model_atomic = typename Model::template atomic_type<U>;

 public:
  explicit basic_deque_pool(std::size_t capacity) : slots_(capacity) {
    LHWS_ASSERT(capacity >= 1);
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }

  ~basic_deque_pool() {
    const std::size_t n = total_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      delete slots_[i].load(std::memory_order_relaxed);
    }
  }

  basic_deque_pool(const basic_deque_pool&) = delete;
  basic_deque_pool& operator=(const basic_deque_pool&) = delete;

  // Figure 5's newDeque() without the emptyDeques fast path (which lives in
  // the worker, who owns its free list): allocates the next global slot.
  Q* allocate(std::uint32_t owner) {
    const std::size_t i = total_.fetch_add(1, std::memory_order_acq_rel);
    LHWS_ASSERT(i < slots_.size() &&
                "deque pool capacity exhausted; raise scheduler_config::"
                "deque_pool_capacity");
    auto* q = new Q(owner);
    slots_[i].store(q, std::memory_order_release);
    return q;
  }

  // randomDeque(): uniform over [0, gTotalDeques). May return nullptr if
  // the chosen slot's pointer store has not become visible yet — callers
  // treat that as a failed steal, which the analysis already accounts for.
  Q* random_deque(xoshiro256& rng) const {
    const std::size_t n = total_.load(std::memory_order_acquire);
    if (n == 0) return nullptr;
    return slots_[rng.below(n)].load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t total_allocated() const noexcept {
    return total_.load(std::memory_order_acquire);
  }

 private:
  std::vector<model_atomic<Q*>> slots_;
  alignas(cache_line_size) model_atomic<std::size_t> total_{0};
};

// The production pool of Figure 5.
using deque_pool = basic_deque_pool<runtime_deque>;

}  // namespace lhws::rt
