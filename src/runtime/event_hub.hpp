// Timed-event delivery for simulated latency operations.
//
// The paper's prototype simulates a latency of delta milliseconds and polls
// suspended events "when the scheduler is invoked" (Section 6, footnote 1
// offers signal handlers or a separate thread as alternatives). Both
// strategies are provided:
//   - timer_mode::dedicated_thread: a timer thread sleeps until the next
//     deadline and fires callbacks; lowest resume latency.
//   - timer_mode::polled: workers call poll() each scheduling-loop
//     iteration and fire due entries themselves — the paper's own scheme.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/timing.hpp"

namespace lhws::rt {

enum class timer_mode : std::uint8_t { dedicated_thread, polled };

class event_hub {
 public:
  using fire_fn = void (*)(void*);

  explicit event_hub(timer_mode mode) : mode_(mode) {
    if (mode_ == timer_mode::dedicated_thread) {
      thread_ = std::thread([this] { run(); });
    }
  }

  ~event_hub() { shutdown(); }

  event_hub(const event_hub&) = delete;
  event_hub& operator=(const event_hub&) = delete;

  // Registers `fire(arg)` to run at or after `deadline_ns` (now_ns clock).
  // Thread-safe. The callback runs on the timer thread or inside a worker's
  // poll(); it must be quick and non-blocking (ours just complete events).
  void schedule(std::int64_t deadline_ns, fire_fn fire, void* arg) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      heap_.push(entry{deadline_ns, fire, arg});
    }
    if (mode_ == timer_mode::dedicated_thread) cv_.notify_one();
  }

  // Polled mode: fire everything due. Safe (and a no-op) in thread mode if
  // called anyway. Returns the number of callbacks fired.
  std::size_t poll() {
    if (mode_ != timer_mode::polled) return 0;
    return fire_due(now_ns());
  }

  [[nodiscard]] timer_mode mode() const noexcept { return mode_; }

  // Stops the timer thread after firing everything already due. Entries
  // not yet due are dropped — callers must not shut down with live waiters.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct entry {
    std::int64_t deadline_ns;
    fire_fn fire;
    void* arg;

    bool operator>(const entry& o) const noexcept {
      return deadline_ns > o.deadline_ns;
    }
  };

  std::size_t fire_due(std::int64_t now) {
    std::vector<entry> due;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (!heap_.empty() && heap_.top().deadline_ns <= now) {
        due.push_back(heap_.top());
        heap_.pop();
      }
    }
    for (const entry& e : due) e.fire(e.arg);
    return due.size();
  }

  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      if (heap_.empty()) {
        cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
        continue;
      }
      const std::int64_t next = heap_.top().deadline_ns;
      const std::int64_t now = now_ns();
      if (now < next) {
        cv_.wait_for(lock, std::chrono::nanoseconds(next - now));
        continue;
      }
      // Fire without holding the lock.
      std::vector<entry> due;
      while (!heap_.empty() && heap_.top().deadline_ns <= now) {
        due.push_back(heap_.top());
        heap_.pop();
      }
      lock.unlock();
      for (const entry& e : due) e.fire(e.arg);
      lock.lock();
    }
  }

  const timer_mode mode_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace lhws::rt
