// Timed-event delivery for simulated latency operations.
//
// The paper's prototype simulates a latency of delta milliseconds and polls
// suspended events "when the scheduler is invoked" (Section 6, footnote 1
// offers signal handlers or a separate thread as alternatives). Both
// strategies are provided:
//   - timer_mode::dedicated_thread: a timer thread sleeps until the next
//     deadline and fires callbacks; lowest resume latency.
//   - timer_mode::polled: workers call poll() each scheduling-loop
//     iteration and fire due entries themselves — the paper's own scheme.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/timing.hpp"

namespace lhws::rt {

enum class timer_mode : std::uint8_t { dedicated_thread, polled };

class event_hub {
 public:
  using fire_fn = void (*)(void*);
  // Handle for cancel(); monotonically increasing, never reused, never 0.
  using token = std::uint64_t;

  explicit event_hub(timer_mode mode) : mode_(mode) {
    if (mode_ == timer_mode::dedicated_thread) {
      thread_ = std::thread([this] { run(); });
    }
  }

  ~event_hub() { shutdown(); }

  event_hub(const event_hub&) = delete;
  event_hub& operator=(const event_hub&) = delete;

  // Registers `fire(arg)` to run at or after `deadline_ns` (now_ns clock).
  // Thread-safe. The callback runs on the timer thread or inside a worker's
  // poll(); it must be quick and non-blocking (ours just complete events).
  // The returned token cancels the entry (see cancel()).
  token schedule(std::int64_t deadline_ns, fire_fn fire, void* arg) {
    token id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_id_++;
      live_.insert(id);
      heap_.push(entry{deadline_ns, fire, arg, id});
    }
    if (mode_ == timer_mode::dedicated_thread) cv_.notify_one();
    return id;
  }

  // Removes a scheduled entry so an abandoned waiter is never fired.
  // Returns true iff the callback is guaranteed not to run; false means it
  // already ran or its fire is in flight — the caller must then assume the
  // callback touches (or touched) the waiter. Thread-safe; cancelling an
  // already-fired or already-cancelled token is a harmless no-op.
  bool cancel(token id) {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.erase(id) != 0;
  }

  // Entries scheduled but neither fired nor cancelled (test/debug aid).
  [[nodiscard]] std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
  }

  // Polled mode: fire everything due. Safe (and a no-op) in thread mode if
  // called anyway. Returns the number of callbacks fired.
  std::size_t poll() {
    if (mode_ != timer_mode::polled) return 0;
    return fire_due(now_ns());
  }

  [[nodiscard]] timer_mode mode() const noexcept { return mode_; }

  // Stops the timer thread after firing everything already due. Entries
  // not yet due are dropped without their callbacks ever running (a
  // suspended waiter would be stranded — complete or cancel() it first);
  // the drop itself is safe and regression-tested.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      live_.clear();  // dropped entries are no longer pending
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct entry {
    std::int64_t deadline_ns;
    fire_fn fire;
    void* arg;
    token id;

    bool operator>(const entry& o) const noexcept {
      return deadline_ns > o.deadline_ns;
    }
  };

  // Pops due entries that are still live (lazy cancellation: cancelled
  // entries stay in the heap and are discarded here). Caller holds mu_.
  void collect_due_locked(std::int64_t now, std::vector<entry>& due) {
    while (!heap_.empty() && heap_.top().deadline_ns <= now) {
      if (live_.erase(heap_.top().id) != 0) due.push_back(heap_.top());
      heap_.pop();
    }
  }

  std::size_t fire_due(std::int64_t now) {
    std::vector<entry> due;
    {
      std::lock_guard<std::mutex> lock(mu_);
      collect_due_locked(now, due);
    }
    for (const entry& e : due) e.fire(e.arg);
    return due.size();
  }

  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      if (heap_.empty()) {
        cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
        continue;
      }
      const std::int64_t next = heap_.top().deadline_ns;
      const std::int64_t now = now_ns();
      if (now < next) {
        cv_.wait_for(lock, std::chrono::nanoseconds(next - now));
        continue;
      }
      // Fire without holding the lock.
      std::vector<entry> due;
      collect_due_locked(now, due);
      lock.unlock();
      for (const entry& e : due) e.fire(e.arg);
      lock.lock();
    }
  }

  const timer_mode mode_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap_;
  std::unordered_set<token> live_;
  token next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace lhws::rt
