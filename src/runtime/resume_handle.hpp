// rt::resume_handle — the waiter half of a heavy edge, shared by every
// suspending awaitable (core/latency.hpp, core/sync.hpp, core/channel.hpp,
// io/async_ops.hpp).
//
// Fig. 3's handleChild splits a latency-incurring operation into two
// halves: the worker-side arm (charge the suspension to the active deque,
// remember the continuation) and the completer-side fire (deliver the
// continuation back to that deque; if it was the deque's first undrained
// resume, register the deque with its owner — Fig. 3 lines 1-5). Before
// this header each awaitable carried its own copy of that glue; now they
// all arm/fire one resume_handle, so the Lemma 7 deque accounting and the
// direct-push/batched-resume split (DESIGN.md §9) live behind a single
// choke point.
#pragma once

#include <coroutine>

#include "runtime/scheduler_core.hpp"
#include "support/config.hpp"

namespace lhws::rt {

// Lifetime: a resume_handle lives inside the awaitable (and therefore the
// suspended coroutine's frame). Once fire() delivers the resume, the frame
// may be resumed — and destroyed — by another worker immediately, so the
// firing thread must not touch the handle after fire() returns.
//
// Allocation: the embedded resume_node is part of the coroutine frame, so a
// suspension costs no allocation of its own — and because task frames come
// from the per-worker slab (promise_base::operator new, src/mem/slab.hpp),
// the node's memory recycles with the frame through the owning worker's
// magazine, including the cross-thread case where a reactor-completed frame
// dies on a different worker than the one that allocated it.
class resume_handle {
 public:
  // Worker side: charge the suspension to w's active deque and remember the
  // continuation. Must run on the suspending worker, before the handle is
  // published to any completer.
  void arm(worker* w, std::coroutine_handle<> h) {
    LHWS_ASSERT(deque_ == nullptr && "resume_handle armed twice");
    deque_ = w->begin_suspension();
    owner_ = w;
    node_.continuation = h;
  }

  // Span-aware arm (DESIGN.md §13): additionally opens a span on the
  // awaiting request — pauses its running clock, stamps the resume node,
  // and advances the context's current span id. No-op beyond plain arm()
  // when spans are compiled out, the promise has no context, or no request
  // scope is open (ctx->state == nullptr) — so the disabled path costs one
  // null test.
  void arm(worker* w, std::coroutine_handle<> h, obs::span_context* ctx,
           obs::span_kind kind) {
    arm(w, h);
    if (!obs::kSpansCompiled || ctx == nullptr || ctx->state == nullptr) {
      return;
    }
    obs::trace_state* st = ctx->state;
    const std::int64_t t = now_ns();
    st->pause_running(t);
    node_.span_state = st;
    node_.span_id = obs::next_span_id();
    node_.span_parent = ctx->span_id;
    node_.span_arm_ns = t;
    node_.span_kind = static_cast<std::uint8_t>(kind);
    node_.span_arm_worker = static_cast<std::uint8_t>(w->index());
    st->spans.fetch_add(1, std::memory_order_relaxed);
    // The continuation resumes past this suspension, so its position in
    // the span tree moves to the new span. Remembered for cancel().
    armed_ctx_ = ctx;
    prev_span_id_ = ctx->span_id;
    ctx->span_id = node_.span_id;
  }

  // Completer side (any thread): deliver the continuation back to its
  // deque; register the deque with its owner on the first undrained resume.
  // The node push inside deliver_resume is the publication point: from then
  // on a worker may resume, finish, and destroy the coroutine frame — and
  // this handle with it — so everything the delivery still needs is copied
  // out first. A completer that is not a worker of this scheduler (reactor
  // thread, event setter, channel producer) can additionally outlive the
  // run itself: the root can complete and ~scheduler_core free the deque
  // while such a thread sits between the push and the suspension-counter
  // decrement. External callers therefore bracket the whole delivery with
  // the teardown guard, which the destructor drains before freeing deques.
  // Same-scheduler workers skip the guard: they are joined before teardown.
  void fire() {
    runtime_deque* const q = deque_;
    worker* const o = owner_;
    scheduler_core& core = o->sched();
    worker* const self = worker::current();
    const bool external = self == nullptr || &self->sched() != &core;
    if (external) core.external_wake_begin();
    const bool first = q->deliver_resume(&node_);
    if (first) o->enqueue_resumed_deque(q);
    if (external) core.external_wake_end();
  }

  // Worker side: the suspension was abandoned before any completer saw the
  // handle (the completion won an install race) — retract the counter.
  void cancel() {
    owner_->cancel_suspension(deque_);
    deque_ = nullptr;
    if (obs::kSpansCompiled && node_.span_state != nullptr) {
      // Roll the span back exactly: the pause banked running time up to
      // arm_ns, so restarting the clock AT arm_ns loses nothing, and the
      // context returns to its pre-arm tree position.
      node_.span_state->resume_running_at(node_.span_arm_ns);
      node_.span_state->spans.fetch_sub(1, std::memory_order_relaxed);
      armed_ctx_->span_id = prev_span_id_;
      node_.span_state = nullptr;
    }
  }

  [[nodiscard]] bool armed() const noexcept { return deque_ != nullptr; }

 private:
  resume_node node_{};
  runtime_deque* deque_ = nullptr;
  worker* owner_ = nullptr;
  obs::span_context* armed_ctx_ = nullptr;
  std::uint32_t prev_span_id_ = 0;
};

}  // namespace lhws::rt
