#include "runtime/scheduler_core.hpp"

#include <ostream>
#include <thread>

#include "mem/slab.hpp"
#include "obs/sampler.hpp"
#include "support/timing.hpp"

namespace lhws::rt {

thread_local worker* worker::tl_worker_ = nullptr;

// ---------------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------------

worker::worker(scheduler_core& sched, std::uint32_t index, std::uint64_t seed)
    : sched_(sched), index_(index), rng_(seed) {}

runtime_deque* worker::new_deque() {
  runtime_deque* q;
  if (!empty_deques_.empty()) {
    q = empty_deques_.back();
    empty_deques_.pop_back();
    q->mark_freed(false);
  } else {
    q = sched_.pool().allocate(index_);
  }
  stats.note_deque_acquired();
  if (metrics_on_) q->acquired_ns = now_ns();
  registry_.add(q);
  return q;
}

void worker::free_deque(runtime_deque* q) {
  LHWS_ASSERT(q->empty());
  LHWS_ASSERT(!q->in_ready_set);
  registry_.remove(q);
  q->mark_freed(true);
  stats.note_deque_freed();
  if (metrics_on_ && q->acquired_ns > 0) {
    hist.deque_lifetime.record(
        static_cast<std::uint64_t>(now_ns() - q->acquired_ns));
    q->acquired_ns = 0;
  }
  empty_deques_.push_back(q);
}

void worker::push_spawn(std::coroutine_handle<> h) {
  LHWS_ASSERT(active_ != nullptr);
  active_->push_bottom(work_item::from_coroutine(h));
  // Lifeline: freshly pushed work is stealable — hand a parked thief its
  // token. Costs one uncontended load when nobody is parked.
  sched_.wake_one_thief(index_);
}

runtime_deque* worker::begin_suspension() {
  LHWS_ASSERT(active_ != nullptr);
  active_->add_suspension();
  stats.suspensions += 1;
  sched_.note_suspend_begin();
  if (trace.enabled()) {
    const std::int64_t t = now_ns();
    trace.record(trace_kind::suspend, t, t);
  }
  return active_;
}

void worker::cancel_suspension(runtime_deque* q) {
  // Completion raced ahead of the waiter installation; no resume callback
  // will run, so take back the counter increment directly.
  q->cancel_suspension();
  stats.suspensions -= 1;
  sched_.note_suspend_end(1);
}

void worker::execute(work_item item) {
  const bool timed = trace.enabled() || metrics_on_;
  const std::int64_t t0 = timed ? now_ns() : 0;
  if (item.is_batch()) {
    // The runtime pfor tree: split until a single continuation remains,
    // pushing right halves for thieves (lg n span over n resumed leaves),
    // then run that continuation as a normal segment.
    batch_node* node = item.batch();
    batch_block* const blk = node->block;
    while (node->hi - node->lo > 1) {
      // Splits copy only the block pointer — the leaf-counted batch_block
      // needs no refcount traffic until a leaf actually executes.
      const std::uint32_t mid = node->lo + (node->hi - node->lo) / 2;
      auto* right = new batch_node{blk, mid, node->hi, node->hops};
      node->hi = mid;
      active_->push_bottom(work_item::from_batch(right));
      stats.batch_splits += 1;
    }
    const std::coroutine_handle<> h = blk->items()[node->lo];
    if constexpr (obs::kSpansCompiled) {
      if (blk->spanned != 0) {
        // Commit the leaf's span before the leaf runs, so the request's
        // running clock restarts at exec and the continuation observes a
        // fully banked suspension. The slot must be read out before
        // release_leaf — the last leaf frees the block.
        const batch_span_slot slot = blk->span_slots()[node->lo];
        if (slot.state != nullptr) {
          const std::int64_t texec = t0 != 0 ? t0 : now_ns();
          obs::commit_span(spans, slot.state, slot.span_id, slot.parent_span,
                           slot.kind, slot.arm_worker,
                           static_cast<std::uint8_t>(index_),
                           static_cast<std::uint16_t>(node->hops),
                           slot.arm_ns, slot.fire_ns, blk->drain_ns, texec,
                           slot.fire_shard);
        }
      }
    }
    delete node;
    blk->release_leaf();
    stats.segments_executed += 1;
    h.resume();
    if (timed) {
      const std::int64_t t1 = now_ns();
      if (trace.enabled()) trace.record(trace_kind::batch, t0, t1);
      if (metrics_on_) {
        hist.segment_duration.record(static_cast<std::uint64_t>(t1 - t0));
      }
    }
    return;
  }
  if constexpr (obs::kSpansCompiled) {
    if (item.is_span()) {
      // Spanned single-resume fast path: commit, free the carrier, run.
      span_carrier* const sc = item.span();
      const std::coroutine_handle<> h = sc->continuation;
      if (sc->state != nullptr) {
        const std::int64_t texec = t0 != 0 ? t0 : now_ns();
        obs::commit_span(spans, sc->state, sc->span_id, sc->parent_span,
                         sc->kind, sc->arm_worker,
                         static_cast<std::uint8_t>(index_), sc->hops,
                         sc->arm_ns, sc->fire_ns, sc->drain_ns, texec,
                         sc->fire_shard);
      }
      delete sc;
      stats.segments_executed += 1;
      h.resume();
      if (timed) {
        const std::int64_t t1 = now_ns();
        if (trace.enabled()) trace.record(trace_kind::segment, t0, t1);
        if (metrics_on_) {
          hist.segment_duration.record(static_cast<std::uint64_t>(t1 - t0));
        }
      }
      return;
    }
  }
  stats.segments_executed += 1;
  item.coroutine().resume();
  if (timed) {
    const std::int64_t t1 = now_ns();
    if (trace.enabled()) trace.record(trace_kind::segment, t0, t1);
    if (metrics_on_) {
      hist.segment_duration.record(static_cast<std::uint64_t>(t1 - t0));
    }
  }
}

void worker::add_resumed_vertices() {
  runtime_deque* q = resumed_deques_.pop_all();
  const bool any = q != nullptr;
  while (q != nullptr) {
    // Capture the link BEFORE draining: once drained, a concurrent
    // deliver_resume may re-register q and overwrite q->next.
    runtime_deque* following = q->next;
    resume_node* chain = q->drain_resumed();
    if (chain != nullptr) {
      const bool timed = trace.enabled() || metrics_on_;
      // Spans need the drain timestamp even when tracing/metrics are off:
      // it is the deque-wait start of every span in this chain.
      const std::int64_t drain_ns = timed || spans_on_ ? now_ns() : 0;
      std::int64_t count = 0;
      bool spanned = false;
      for (resume_node* n = chain; n != nullptr; n = n->next) {
        ++count;
        if (obs::kSpansCompiled && n->span_state != nullptr) spanned = true;
        if (timed) {
          // Wake latency: resume delivery (timer/producer thread) until
          // this drain makes the continuation stealable again.
          const std::int64_t wake =
              n->fire_ns > 0 && drain_ns > n->fire_ns ? drain_ns - n->fire_ns
                                                      : 0;
          if (metrics_on_) {
            hist.wake_latency.record(static_cast<std::uint64_t>(wake));
          }
          trace.record(trace_kind::wake, drain_ns, drain_ns,
                       static_cast<std::uint64_t>(wake));
        }
      }
      sched_.note_suspend_end(count);
      stats.resumes_delivered += static_cast<std::uint64_t>(count);
      if (trace.enabled()) {
        trace.record(trace_kind::resume, drain_ns, drain_ns,
                     static_cast<std::uint64_t>(count));
      }
      if (count == 1) {
        // Single resume (the overwhelmingly common drain): push the
        // continuation directly, skipping the batch tree and its
        // shared_ptr/vector allocations. Same deque, same Lemma 7 bound.
        if (obs::kSpansCompiled && spanned) {
          // Spanned variant: a slab carrier keeps the node's stamp alive
          // past the frame's resumption (the node lives in the frame).
          auto* sc = new span_carrier;
          sc->continuation = chain->continuation;
          sc->state = chain->span_state;
          sc->arm_ns = chain->span_arm_ns;
          sc->fire_ns = chain->fire_ns;
          sc->drain_ns = drain_ns;
          sc->span_id = chain->span_id;
          sc->parent_span = chain->span_parent;
          sc->kind = chain->span_kind;
          sc->arm_worker = chain->span_arm_worker;
          sc->fire_shard = chain->fire_shard;
          q->push_bottom(work_item::from_span(sc));
        } else {
          q->push_bottom(work_item::from_coroutine(chain->continuation));
        }
        stats.resumes_direct += 1;
      } else {
        // One exact-size block sized from the drained count (no vector
        // growth, no shared_ptr control block), filled straight off the
        // chain, plus one root node over [0, count).
        batch_block* blk = batch_block::create(
            static_cast<std::uint32_t>(count), obs::kSpansCompiled && spanned);
        std::coroutine_handle<>* out = blk->items();
        batch_span_slot* slots = blk->spanned != 0 ? blk->span_slots()
                                                   : nullptr;
        std::uint32_t i = 0;
        for (resume_node* n = chain; n != nullptr; n = n->next) {
          out[i] = n->continuation;
          if (slots != nullptr) {
            slots[i] = batch_span_slot{n->span_state,  n->span_arm_ns,
                                       n->fire_ns,     n->span_id,
                                       n->span_parent, n->span_kind,
                                       n->span_arm_worker, n->fire_shard};
          }
          ++i;
        }
        if (blk->spanned != 0) blk->drain_ns = drain_ns;
        auto* batch =
            new batch_node{blk, 0, static_cast<std::uint32_t>(count)};
        q->push_bottom(work_item::from_batch(batch));
        stats.batches_injected += 1;
      }
      if (q != active_ && !q->in_ready_set) {
        q->in_ready_set = true;
        ready_deques_.push_back(q);
      }
    }
    q = following;
  }
  // Re-injected work is stealable; offer it to one parked thief. Once per
  // drain pass, not per deque — the first woken thief steals and its own
  // spawn pushes cascade further wakes if more parallelism exists.
  if (any) sched_.wake_one_thief(index_);
}

void worker::maybe_retire_active() {
  // Fig. 3 lines 42-44, with the guards discussed in DESIGN.md: never free
  // a deque that still has pending suspensions or undrained resumes.
  if (active_ == nullptr) return;
  if (!active_->empty()) return;
  if (active_->has_pending_suspensions()) {
    // Suspended deque: it stays owned but stops being active.
    active_ = nullptr;
    return;
  }
  if (active_->has_undrained_resumes()) return;  // about to become ready
  runtime_deque* q = active_;
  active_ = nullptr;
  free_deque(q);
}

bool worker::try_switch() {
  if (ready_deques_.empty()) return false;
  runtime_deque* q = ready_deques_.back();
  ready_deques_.pop_back();
  q->in_ready_set = false;
  active_ = q;
  stats.deque_switches += 1;
  if (trace.enabled()) {
    const std::int64_t t = now_ns();
    trace.record(trace_kind::deque_switch, t, t);
  }
  return true;
}

runtime_deque* worker::pick_victim() {
  if (sched_.config().policy == runtime_steal_policy::random_deque) {
    return sched_.pool().random_deque(rng_);
  }
  // Section 6 policy: random worker, then a random non-empty deque of that
  // worker — read entirely lock-free from the victim's epoch-published
  // registry. Fast path: one random probe (three atomic loads). If the
  // probed deque is empty, fall back to a reservoir scan over the same
  // view for any non-empty deque. The view may be stale (a torn publish or
  // a since-retired deque); a stale choice just fails the steal, which the
  // analysis charges as a normal failed attempt.
  const std::size_t victim_index = rng_.below(sched_.num_workers());
  worker& victim = sched_.worker_at(victim_index);
  const auto view = victim.registry_.view();
  if (view.n == 0) return nullptr;
  runtime_deque* probed =
      view.at(static_cast<std::uint32_t>(rng_.below(view.n)));
  if (probed != nullptr && !probed->empty()) return probed;
  runtime_deque* chosen = nullptr;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < view.n; ++i) {
    runtime_deque* q = view.at(i);
    if (q == nullptr || q->empty()) continue;
    ++seen;
    if (rng_.below(seen) == 0) chosen = q;
  }
  return chosen;
}

void worker::try_steal() {
  stats.steal_attempts += 1;
  steal_attempts_obs_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t t0 = metrics_on_ ? now_ns() : 0;
  runtime_deque* victim = pick_victim();
  work_item stolen;
  const steal_result r = victim != nullptr ? victim->steal_top(stolen)
                                           : steal_result::empty;
  if (r == steal_result::success) {
    stats.successful_steals += 1;
    if constexpr (obs::kSpansCompiled) {
      // Span hop accounting: the stolen item changed workers. The thief
      // owns the node/carrier from here on, so the bump is single-writer.
      if (spans_on_) {
        if (stolen.is_batch()) {
          stolen.batch()->hops += 1;
        } else if (stolen.is_span()) {
          span_carrier* sc = stolen.span();
          if (sc->hops < UINT16_MAX) sc->hops += 1;
        }
      }
    }
    active_ = new_deque();
    assigned_ = stolen;
    if (trace.enabled()) {
      const std::int64_t t = now_ns();
      trace.record(trace_kind::steal, t, t);
    }
  } else {
    stats.failed_steals += 1;
    if (r == steal_result::lost_race) {
      stats.failed_contended += 1;
    } else {
      stats.failed_empty += 1;
    }
  }
  if (metrics_on_) {
    hist.steal_latency.record(static_cast<std::uint64_t>(now_ns() - t0));
  }
}

void worker::park_idle() {
  if (!park_enabled_) {
    std::this_thread::yield();
    return;
  }
  const std::int64_t t0 = trace.enabled() ? now_ns() : 0;
  // Announce before publishing the parked state: the seq_cst counter bump
  // is what push-side wake_one_thief gates on. The recheck below runs after
  // park_begin publishes kParked, so any resume delivered before it lands
  // either in resumed_deques_ (recheck sees it) or as an unpark token
  // (park_begin/park_for consumes it).
  sched_.note_parked();
  const parker::park_result r = parker_.park_for(
      park_timeout_, [this] { return sched_.done() || has_local_work(); });
  sched_.note_unparked();
  stats.parks += 1;
  if (r == parker::park_result::timed_out) stats.park_timeouts += 1;
  if (trace.enabled()) {
    trace.record(trace_kind::park, t0, now_ns(),
                 r == parker::park_result::timed_out ? 1 : 0);
  }
}

void worker::lhws_loop() {
  idle_backoff idle(sched_.config().idle_spin_limit,
                    sched_.config().idle_yield_limit);
  const bool polled = sched_.hub().mode() == timer_mode::polled;
  while (!sched_.done()) {
    if (polled) sched_.hub().poll();
    if (!assigned_.empty()) {
      const work_item item = assigned_;
      assigned_ = work_item{};
      execute(item);                      // Fig. 3 line 34 (one segment)
      add_resumed_vertices();             // line 37
      if (active_ != nullptr) {
        active_->pop_bottom(assigned_);   // line 40
      }
      idle.reset();
      continue;
    }
    // Fig. 3 lines 41-56.
    maybe_retire_active();
    if (!try_switch()) {
      try_steal();
    }
    add_resumed_vertices();
    if (assigned_.empty() && active_ != nullptr) {
      active_->pop_bottom(assigned_);
    }
    if (assigned_.empty() && idle.pause()) park_idle();
  }
}

void worker::ws_loop() {
  // Classic work stealing: one deque, no switching, no resume machinery
  // (latency operations block inside the awaitable and never suspend).
  idle_backoff idle(sched_.config().idle_spin_limit,
                    sched_.config().idle_yield_limit);
  while (!sched_.done()) {
    if (!assigned_.empty()) {
      const work_item item = assigned_;
      assigned_ = work_item{};
      execute(item);
      if (active_->pop_bottom(assigned_)) {
        idle.reset();
        continue;
      }
      idle.reset();
      continue;
    }
    stats.steal_attempts += 1;
    steal_attempts_obs_.fetch_add(1, std::memory_order_relaxed);
    runtime_deque* victim = nullptr;
    if (sched_.num_workers() > 1) {
      std::size_t v = rng_.below(sched_.num_workers() - 1);
      if (v >= index_) ++v;
      worker& vw = sched_.worker_at(v);
      // The victim's single deque, published through its registry at
      // startup; a pair of acquire loads, no lock.
      const auto view = vw.registry_.view();
      if (view.n > 0) victim = view.at(0);
    }
    work_item stolen;
    const steal_result r = victim != nullptr ? victim->steal_top(stolen)
                                             : steal_result::empty;
    if (r == steal_result::success) {
      stats.successful_steals += 1;
      assigned_ = stolen;
      idle.reset();
    } else {
      stats.failed_steals += 1;
      if (r == steal_result::lost_race) {
        stats.failed_contended += 1;
      } else {
        stats.failed_empty += 1;
      }
      if (idle.pause()) park_idle();
    }
  }
}

obs::counter_sample worker::sample_gauges(std::int64_t ts_ns) {
  obs::counter_sample s;
  s.ts_ns = ts_ns;
  s.worker = index_;
  // Epoch-validated snapshot; under heavy owner churn the bounded retries
  // fall back to an unvalidated (still pointer-safe) copy.
  std::vector<runtime_deque*> snap(registry_.size() + 8);
  bool consistent = false;
  const std::uint32_t n = registry_.snapshot(
      snap.data(), static_cast<std::uint32_t>(snap.size()), consistent);
  s.deques_owned = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    const runtime_deque* q = snap[i];
    if (q == nullptr) continue;
    s.suspended += static_cast<std::uint32_t>(q->pending_suspensions());
    if (q->has_undrained_resumes()) s.resume_ready += 1;
  }
  s.parked = parker_.is_parked() ? 1 : 0;
  s.steal_attempts = steal_attempts_obs_.load(std::memory_order_relaxed);
  return s;
}

void worker::loop() {
  tl_worker_ = this;
  if (sched_.config().trace) {
    trace.set_capacity(sched_.config().trace_capacity);
    trace.enable();
  }
  metrics_on_ = sched_.config().metrics;
  spans_on_ = obs::kSpansCompiled && sched_.config().spans;
  if (spans_on_) spans.set_capacity(sched_.config().span_capacity);
  // Parking needs the event hub on its own thread: under the polled timer
  // mode a parked worker would stop driving timer completions.
  park_enabled_ = sched_.config().idle_park_timeout_us > 0 &&
                  sched_.hub().mode() != timer_mode::polled;
  park_timeout_ =
      std::chrono::microseconds(sched_.config().idle_park_timeout_us);
  active_ = new_deque();
  if (sched_.config().engine == engine_mode::lhws) {
    lhws_loop();
  } else {
    ws_loop();
  }
  tl_worker_ = nullptr;
}

// ---------------------------------------------------------------------------
// scheduler_core
// ---------------------------------------------------------------------------

scheduler_core::scheduler_core(const scheduler_config& cfg)
    : cfg_(cfg),
      pool_(cfg.deque_pool_capacity),
      hub_(cfg.engine == engine_mode::ws ? timer_mode::dedicated_thread
                                         : cfg.timer) {
  LHWS_ASSERT(cfg_.workers >= 1);
  splitmix64 seeder(cfg_.seed);
  workers_.reserve(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    workers_.push_back(std::make_unique<worker>(*this, i, seeder.next()));
  }
}

scheduler_core::~scheduler_core() {
  hub_.shutdown();
  // An external completer (reactor thread, event setter, channel producer)
  // can still be inside resume_handle::fire() — between the node push that
  // let the run finish and its last deque/parker access — after the run
  // completed. Drain those stragglers before the deques and workers are
  // destroyed with the other members below.
  while (external_wakes_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void scheduler_core::run_root(std::coroutine_handle<> root) {
  done_.store(false, std::memory_order_release);
  workers_[0]->assigned_ = work_item::from_coroutine(root);
  for (auto& w : workers_) {
    w->trace.clear();
    w->hist.reset();
    w->spans.clear();
  }
  suspended_now_.store(0, std::memory_order_relaxed);
  max_suspended_.store(0, std::memory_order_relaxed);
  run_start_ns_ = now_ns();
  const mem::slab_totals alloc_before = mem::totals();

  obs::gauge_sampler sampler;
  if (cfg_.sample_interval_us > 0) {
    sampler.start(cfg_.sample_interval_us,
                  [this](std::vector<obs::counter_sample>& out) {
                    const std::int64_t ts = now_ns();
                    for (auto& w : workers_) {
                      out.push_back(w->sample_gauges(ts));
                    }
                  });
  }

  const stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (auto& w : workers_) {
    threads.emplace_back([&w] { w->loop(); });
  }
  for (auto& t : threads) t.join();
  sampler.stop();
  samples_ = sampler.take();

  stats_ = run_stats{};
  for (const auto& w : workers_) {
    // Fold the cross-thread wake counter and the registry's epoch counter
    // into the per-worker stats now that every thread has joined.
    w->stats.unparks = w->unparks_obs_.load(std::memory_order_relaxed);
    w->stats.registry_republishes = w->registry_.republish_count();
    stats_.absorb(w->stats);
  }
  stats_.total_deques_allocated = pool_.total_allocated();
  stats_.max_concurrent_suspended =
      max_suspended_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    stats_.trace_events_dropped += w->trace.dropped();
  }
  // Allocator activity attributed to this run: counter deltas across the
  // process-global slab (worker threads have joined, so their magazines are
  // orphaned-but-counted; external completers still churning contribute to
  // the next run's delta, same as any cross-run attribution).
  const mem::slab_totals alloc_after = mem::totals();
  stats_.alloc.magazine_hits =
      alloc_after.magazine_hits - alloc_before.magazine_hits;
  stats_.alloc.magazine_misses =
      alloc_after.magazine_misses - alloc_before.magazine_misses;
  stats_.alloc.remote_pushes =
      alloc_after.remote_pushes - alloc_before.remote_pushes;
  stats_.alloc.remote_drained =
      alloc_after.remote_drained - alloc_before.remote_drained;
  stats_.alloc.fallback_allocs =
      alloc_after.fallback_allocs - alloc_before.fallback_allocs;
  stats_.alloc.slab_bytes = alloc_after.slab_bytes;
  stats_.elapsed_ms = timer.elapsed_ms();

  run_hist_.reset();
  if (cfg_.metrics) {
    for (const auto& w : workers_) run_hist_.merge(w->hist);
  }

  // Span aggregation + trace_state reclamation. Workers have joined, so
  // sinks are quiescent and nothing can dereference an adopted state
  // anymore (arms, commits, and request hooks all run on worker threads).
  span_records_.clear();
  request_records_.clear();
  for (const auto& w : workers_) {
    w->spans.drain_into(span_records_);
    const auto& reqs = w->spans.requests();
    request_records_.insert(request_records_.end(), reqs.begin(), reqs.end());
    stats_.span_records_dropped += w->spans.dropped();
  }
  stats_.span_records = span_records_.size();
  stats_.request_records = request_records_.size();
  obs::trace_state* st = trace_states_.pop_all();
  while (st != nullptr) {
    obs::trace_state* following = st->next;
    delete st;
    st = following;
  }
}

void scheduler_core::write_trace(std::ostream& os) const {
  std::vector<const trace_buffer*> buffers;
  buffers.reserve(workers_.size());
  for (const auto& w : workers_) buffers.push_back(&w->trace);
  trace_meta meta;
  meta.engine = cfg_.engine == engine_mode::lhws ? "lhws" : "ws";
  meta.max_concurrent_suspended = stats_.max_concurrent_suspended;
  meta.dropped_events = stats_.trace_events_dropped;
  meta.elapsed_ms = stats_.elapsed_ms;
  meta.per_worker = &stats_.per_worker;
  meta.alloc = &stats_.alloc;
  meta.spans = span_records_.empty() ? nullptr : &span_records_;
  meta.requests = request_records_.empty() ? nullptr : &request_records_;
  meta.span_records_dropped = stats_.span_records_dropped;
  // I/O spans route their delivery step through their shard's named
  // reactor/<shard> row; emit one lane per shard that actually fired.
  // Remote spans (dist/cluster.hpp) instead carry the executing node id in
  // fire_shard and get their own peer/<id> lanes past the reactor rows.
  for (const auto& rec : span_records_) {
    const auto lane = static_cast<std::uint32_t>(rec.fire_shard) + 1;
    if (rec.kind == static_cast<std::uint8_t>(obs::span_kind::remote)) {
      if (lane > meta.peer_lanes) meta.peer_lanes = lane;
    } else if (rec.kind >=
                   static_cast<std::uint8_t>(obs::span_kind::io_accept) &&
               lane > meta.reactor_lanes) {
      meta.reactor_lanes = lane;
    }
  }
  write_chrome_trace(os, buffers, run_start_ns_,
                     samples_.empty() ? nullptr : &samples_, &meta);
}

}  // namespace lhws::rt
