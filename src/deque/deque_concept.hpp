// The deque interface the paper's Table 1 requires, expressed as a C++20
// concept so both deque implementations (and any future one) are checked at
// compile time against the same contract.
#pragma once

#include <concepts>
#include <cstdint>

namespace lhws {

template <typename D, typename T>
concept WorkStealingDeque = requires(D d, const D cd, T v, T& out) {
  // Owner end (Table 1: pushBottom / popBottom).
  { d.push_bottom(v) };
  { d.pop_bottom(out) } -> std::same_as<bool>;
  // Thief end (Table 1: popTop).
  { d.pop_top(out) } -> std::same_as<bool>;
  { cd.size() } -> std::convertible_to<std::int64_t>;
  { cd.empty() } -> std::convertible_to<bool>;
};

}  // namespace lhws
