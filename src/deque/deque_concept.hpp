// The deque interface the paper's Table 1 requires, expressed as a C++20
// concept so both deque implementations (and any future one) are checked at
// compile time against the same contract.
#pragma once

#include <concepts>
#include <cstdint>

namespace lhws {

// Why a steal attempt failed. The paper's analysis charges one token per
// attempt regardless, but the runtime distinguishes the two failure causes:
// `empty` is a placement miss (the victim had nothing), `lost_race` is true
// contention (another thief won the top CAS). The split feeds the
// failed_empty / failed_contended counters.
enum class steal_result : std::uint8_t {
  success,
  empty,
  lost_race,
};

template <typename D, typename T>
concept WorkStealingDeque = requires(D d, const D cd, T v, T& out) {
  // Owner end (Table 1: pushBottom / popBottom).
  { d.push_bottom(v) };
  { d.pop_bottom(out) } -> std::same_as<bool>;
  // Thief end (Table 1: popTop).
  { d.pop_top(out) } -> std::same_as<bool>;
  { d.steal_top(out) } -> std::same_as<steal_result>;
  { cd.size() } -> std::convertible_to<std::int64_t>;
  { cd.empty() } -> std::convertible_to<bool>;
};

}  // namespace lhws
