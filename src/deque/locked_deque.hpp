// Mutex-protected reference deque.
//
// Serves two purposes: (1) a correctness oracle for the lock-free Chase-Lev
// implementation in stress tests, and (2) a baseline for the DEQUE-MICRO
// benchmark showing why work-stealing runtimes use non-blocking deques.
#pragma once

#include <deque>
#include <mutex>

#include "deque/deque_concept.hpp"

namespace lhws {

template <typename T>
class locked_deque {
 public:
  locked_deque() = default;

  locked_deque(const locked_deque&) = delete;
  locked_deque& operator=(const locked_deque&) = delete;

  void push_bottom(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(value);
  }

  bool pop_bottom(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = items_.back();
    items_.pop_back();
    return true;
  }

  bool pop_top(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = items_.front();
    items_.pop_front();
    return true;
  }

  // Mutex-serialized, so a steal never loses a race — it only ever finds
  // the deque empty. Keeps the oracle interface-compatible with Chase-Lev.
  steal_result steal_top(T& out) {
    return pop_top(out) ? steal_result::success : steal_result::empty;
  }

  [[nodiscard]] std::int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::int64_t>(items_.size());
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace lhws
