// Lock-free work-stealing deque of Chase and Lev (SPAA 2005), the deque the
// paper cites ([11]) as satisfying its Table 1 interface: owner-only
// push_bottom / pop_bottom at one end, concurrent pop_top (steal) at the
// other, all (amortized) constant time.
//
// The element type is required to be a trivially-copyable word-sized value
// (in practice a pointer): steals read slots racily, which is benign only
// for such types. Memory ordering follows the Lê-Pop-Cohen-Nardelli
// (PPoPP'13) C11 formalization of the algorithm.
//
// Growth: the circular buffer doubles when full. Retired buffers are kept on
// a per-deque list until destruction; a concurrent thief may still be
// reading a stale buffer pointer, so freeing eagerly would be unsound. The
// paper's deques hold at most O(depth) entries, so this wastes at most 2x
// the peak size — the standard engineering trade. Ring objects and their
// slot arrays come from the per-worker slab (src/mem/slab.hpp), so both the
// initial ring of every pool-recycled deque and each doubling recycle
// through the owning worker's magazine instead of hitting the global heap;
// rings freed off-thread (pool teardown, a deque retired while owned by a
// different worker) ride the slab's remote-free list.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "deque/deque_concept.hpp"
#include "mem/slab.hpp"
#include "support/atomic_model.hpp"
#include "support/config.hpp"

namespace lhws {

// `Model` supplies the atomic type and fences (support/atomic_model.hpp):
// real_model for production (plain std::atomic, zero overhead), or
// chk::check_model to run the algorithm under the model checker.
template <typename T, typename Model = real_model>
  requires std::is_trivially_copyable_v<T> && (sizeof(T) <= sizeof(void*))
class chase_lev_deque {
  template <typename U>
  using model_atomic = typename Model::template atomic_type<U>;

  struct ring {
    // Slots are carved from the slab rather than new[]: check_model atomics
    // are non-trivial, so construction/destruction is explicit per slot.
    static_assert(alignof(model_atomic<T>) <= 2 * sizeof(void*));

    explicit ring(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(static_cast<model_atomic<T>*>(mem::allocate(
              static_cast<std::size_t>(cap) * sizeof(model_atomic<T>)))) {
      for (std::int64_t i = 0; i < cap; ++i) std::construct_at(slots + i);
    }

    ~ring() {
      for (std::int64_t i = 0; i < capacity; ++i) std::destroy_at(slots + i);
      mem::deallocate(slots);
    }

    ring(const ring&) = delete;
    ring& operator=(const ring&) = delete;

    static void* operator new(std::size_t n) { return mem::allocate(n); }
    static void operator delete(void* p) noexcept { mem::deallocate(p); }

    [[nodiscard]] T get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(
          v, std::memory_order_relaxed);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    model_atomic<T>* const slots;
    ring* retired_next = nullptr;
  };

 public:
  explicit chase_lev_deque(std::int64_t initial_capacity = 64)
      : top_(0), bottom_(0), retired_(nullptr) {
    LHWS_ASSERT(initial_capacity > 0 &&
                (initial_capacity & (initial_capacity - 1)) == 0);
    buffer_.store(new ring(initial_capacity), std::memory_order_relaxed);
  }

  ~chase_lev_deque() {
    delete buffer_.load(std::memory_order_relaxed);
    ring* r = retired_;
    while (r != nullptr) {
      ring* next = r->retired_next;
      delete r;
      r = next;
    }
  }

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  // Owner only.
  void push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    ring* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, value);
    Model::fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only. Returns true and writes `out` on success; false if empty.
  bool pop_bottom(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    // seq_cst: pairs with steal_top's fence — whichever lands second in
    // the SC order sees the other side's write (DESIGN.md §7).
    Model::fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buf->get(b);
      if (t == b) {
        // Last element: race against thieves with a CAS on top. seq_cst
        // kept per the published proof; §7 records it is not independently
        // load-bearing given the fences (acq_rel survives exhaustive chk).
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return false;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  // Any thread. The paper's "failed steal" counts either failure as one
  // attempt; the result distinguishes an empty deque from a lost CAS race
  // so the runtime can attribute failures to placement vs. contention.
  steal_result steal_top(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst: the steal-side half of the take/steal fence pair; closes
    // the double-pop window (DESIGN.md §7).
    Model::fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      ring* buf = buffer_.load(std::memory_order_consume);
      T value = buf->get(t);
      // seq_cst kept per the published proof (DESIGN.md §7, CAS note).
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return steal_result::lost_race;
      }
      out = value;
      return steal_result::success;
    }
    return steal_result::empty;
  }

  // Any thread. Returns true and writes `out` on success; false if the deque
  // was empty or the steal lost a race.
  bool pop_top(T& out) { return steal_top(out) == steal_result::success; }

  // Owner-observed size; approximate when thieves are active.
  [[nodiscard]] std::int64_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] std::int64_t capacity() const noexcept {
    return buffer_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    old->retired_next = retired_;
    retired_ = old;
    return bigger;
  }

  alignas(cache_line_size) model_atomic<std::int64_t> top_;
  alignas(cache_line_size) model_atomic<std::int64_t> bottom_;
  alignas(cache_line_size) model_atomic<ring*> buffer_;
  ring* retired_;  // owner-only
};

}  // namespace lhws
