// Per-worker slab allocator with thread-local magazine caches — the
// allocation-aware runtime layer (DESIGN.md §11).
//
// The four hot allocation sites of the runtime (coroutine frames from
// fork2, pfor batch nodes and their continuation buffers, and Chase-Lev
// ring buffers) all funnel through this allocator:
//
//   - Sizes are rounded to power-of-two buckets (64..8192 payload bytes);
//     anything larger takes a headered ::operator new fallback so free()
//     can always dispatch from the block header alone.
//   - Each thread owns a `magazine`: per-bucket intrusive free lists plus
//     bump regions carved from slabs. The alloc/free fast path is a plain
//     pointer pop/push — no atomic read-modify-write, no lock.
//   - A free from the wrong thread (a frame finished on the worker that
//     stole it, ring buffers released by the pool teardown, a block handed
//     to the reactor) is pushed onto the OWNING magazine's lock-free MPSC
//     remote-free list and reclaimed in a batch on the owner's next refill.
//     The push/drain protocol is the same release-CAS / acquire-exchange
//     handshake as the runtime's resume channel (support/mpsc_stack.hpp);
//     tests/chk/test_slab_chk.cpp model-checks it, including the
//     drain-then-reuse edge.
//   - Magazines outlive their threads: a worker's exit parks its magazine
//     on a global orphan list (remote frees keep landing safely), and the
//     next new thread adopts it, free lists and slabs intact. Magazine
//     count is therefore bounded by the peak concurrent thread count, and
//     slab memory by each magazine's own high-water mark — recycling,
//     never growth, in steady state (the Lemma 7 economy argument, §11).
//
// `LHWS_SLAB=0` in the environment disables the slab at process start;
// set_enabled() toggles it at runtime (bench_alloc_churn uses this for an
// in-process default-new baseline). Disabling only changes where NEW
// blocks come from — frees always dispatch on the header, so mixed-mode
// operation is safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "support/config.hpp"
#include "support/mpsc_stack.hpp"

namespace lhws::mem {

class magazine;
class slab_registry;  // slab.cpp: owns all magazines + the orphan list

// Every block (slab-carved or fallback) is preceded by one header so that
// deallocate() can dispatch with no external lookup. 16 bytes keeps the
// payload at the default operator-new alignment.
struct block_header {
  magazine* owner;       // nullptr: headered ::operator new fallback
  std::uint32_t bucket;  // bucket index (slab blocks only)
  std::uint32_t magic;   // carve-time canary, checked on every free
};
static_assert(sizeof(block_header) == 16);

inline constexpr std::uint32_t kBlockMagic = 0x51ab51abu;
inline constexpr std::size_t kBlockHeaderSize = sizeof(block_header);

// Payload buckets: 64 << b for b in [0, kNumBuckets). 64 bytes floors the
// batch-node/resume-node class; 4096 covers every coroutine frame and the
// common ring sizes; 8192 carries per-connection io buffers
// (io/buffer.hpp) so connection churn recycles through magazines instead
// of hitting ::operator new. Beyond that the fallback path is cold anyway.
inline constexpr unsigned kNumBuckets = 8;
[[nodiscard]] constexpr std::size_t bucket_payload(unsigned b) noexcept {
  return std::size_t{64} << b;
}
inline constexpr std::size_t kMaxBucketPayload =
    bucket_payload(kNumBuckets - 1);

// Smallest bucket whose payload fits `size`, or kNumBuckets if oversize.
[[nodiscard]] constexpr unsigned bucket_for(std::size_t size) noexcept {
  unsigned b = 0;
  while (b < kNumBuckets && bucket_payload(b) < size) ++b;
  return b;
}

// A freed block's payload doubles as its free-list link.
struct free_node {
  free_node* next = nullptr;
};

namespace detail {
// The calling thread's magazine; constinit so the access compiles to a
// plain TLS load (no init-wrapper call on the hot path). Null until the
// first slab allocation on this thread, and again after thread teardown
// (tl_dead distinguishes the two).
extern thread_local constinit magazine* tl_mag;
extern thread_local constinit bool tl_dead;

// Cold path: create or adopt a magazine and bind it to this thread.
// Returns nullptr during thread teardown (callers fall back to the
// headered-new path).
magazine* bind_magazine();

[[nodiscard]] inline block_header* header_of(void* payload) noexcept {
  return static_cast<block_header*>(payload) - 1;
}
}  // namespace detail

// Aggregate allocator counters (summed over every magazine, live and
// orphaned, plus the global fallback/slab counters).
struct slab_totals {
  std::uint64_t magazine_hits = 0;      // allocs served by a local free list
  std::uint64_t magazine_misses = 0;    // allocs that took the refill path
  std::uint64_t remote_pushes = 0;      // frees routed to a remote list
  std::uint64_t remote_drained = 0;     // remote frees reclaimed by owners
  std::uint64_t slabs_allocated = 0;    // slab chunks ever carved
  std::uint64_t slab_bytes = 0;         // live bytes held in slabs
  std::uint64_t fallback_allocs = 0;    // oversize / disabled / teardown
  std::uint64_t magazines_created = 0;  // distinct magazines ever built
  std::uint64_t magazines_adopted = 0;  // orphan handoffs to new threads
};

[[nodiscard]] slab_totals totals();

// Runtime kill switch (also settable via LHWS_SLAB=0 before first use).
// Affects only where new blocks come from; frees always follow the header.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// One thread's cache: per-bucket free lists and bump regions, plus the
// MPSC list other threads free into. Instances are owned by the global
// registry and never destroyed while any block referencing them can still
// be freed (they are recycled through the orphan list instead).
class magazine {
 public:
  magazine();
  ~magazine();

  magazine(const magazine&) = delete;
  magazine& operator=(const magazine&) = delete;

  // Owner-thread alloc fast path. Returns nullptr for oversize requests
  // (caller takes the fallback path).
  [[nodiscard]] void* try_alloc(std::size_t size) {
    const unsigned b = bucket_for(size);
    if (b >= kNumBuckets) return nullptr;
    free_node* n = local_[b];
    if (n != nullptr) [[likely]] {
      local_[b] = n->next;
      bump(hits_);
      return n;
    }
    return refill_alloc(b);
  }

  // Free dispatch: owner thread pushes the plain local list; any other
  // thread pushes the lock-free remote list, reclaimed on the owner's next
  // refill. `h` is the block's header (already validated by the caller).
  void release(void* payload, block_header* h) noexcept {
    auto* n = static_cast<free_node*>(payload);
    if (this == detail::tl_mag) {
      n->next = local_[h->bucket];
      local_[h->bucket] = n;
    } else {
      remote_pushes_.fetch_add(1, std::memory_order_relaxed);
      remote_.push(n);
    }
  }

  // Owner-written, cross-thread-readable counters (plain single-writer
  // stores; totals() sums them with relaxed loads).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t remote_pushes() const noexcept {
    return remote_pushes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t remote_drained() const noexcept {
    return remote_drained_.load(std::memory_order_relaxed);
  }

 private:
  friend class slab_registry;

  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    // Single-writer counter: a relaxed load+store pair is a plain add on
    // every target we build for, unlike an atomic RMW.
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  // Miss path (slab.cpp): drain the remote list into the local lists, then
  // serve from them or carve a fresh block from a slab.
  [[nodiscard]] void* refill_alloc(unsigned b);
  void new_slab(unsigned b);

  free_node* local_[kNumBuckets] = {};
  char* bump_ptr_[kNumBuckets] = {};
  char* bump_end_[kNumBuckets] = {};

  // Slabs owned by this magazine (head of an intrusive chain; the chunk's
  // first bytes hold the link). Freed only by the global registry teardown.
  void* slabs_ = nullptr;

  // Keep the cross-thread-written remote list and counters off the owner's
  // hot line.
  alignas(cache_line_size) mpsc_stack<free_node> remote_;
  std::atomic<std::uint64_t> remote_pushes_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> remote_drained_{0};

  // Orphan-list link, guarded by the registry mutex (slab.cpp).
  magazine* next_orphan_ = nullptr;
};

// Headered fallback for oversize requests, disabled mode, and thread
// teardown. The header's null owner routes the matching free to
// ::operator delete.
[[nodiscard]] void* fallback_alloc(std::size_t size);

// The allocator entry points. 16-byte payload alignment always (the
// default new alignment); callers needing more must not use the slab.
[[nodiscard]] inline void* allocate(std::size_t size) {
  if (enabled()) [[likely]] {
    magazine* m = detail::tl_mag;
    if (m == nullptr && !detail::tl_dead) m = detail::bind_magazine();
    if (m != nullptr) {
      if (void* p = m->try_alloc(size)) return p;
    }
  }
  return fallback_alloc(size);
}

inline void deallocate(void* payload) noexcept {
  if (payload == nullptr) return;
  block_header* h = detail::header_of(payload);
  LHWS_ASSERT(h->magic == kBlockMagic && "slab free of a foreign pointer");
  if (h->owner == nullptr) {
    ::operator delete(static_cast<void*>(h));
    return;
  }
  h->owner->release(payload, h);
}

}  // namespace lhws::mem
