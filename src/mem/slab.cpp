// Slab allocator cold paths: magazine lifecycle (create / orphan / adopt),
// the refill path that drains remote frees, and slab carving. See
// src/mem/slab.hpp for the design overview and DESIGN.md §11 for the
// ownership argument.
#include "mem/slab.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace lhws::mem {
namespace {

// Slab chunk geometry. 64 KiB amortizes the ::operator new call across ~15
// blocks even for the largest bucket; the first 16 bytes of every chunk
// hold the intrusive chain link that lets the owning magazine free it.
constexpr std::size_t kSlabBytes = 64 * 1024;
constexpr std::size_t kSlabLinkBytes = 16;
static_assert(kSlabBytes >
              kSlabLinkBytes + kBlockHeaderSize + kMaxBucketPayload);

// Process-wide counters for the paths that have no owning magazine.
std::atomic<std::uint64_t> g_fallback_allocs{0};
std::atomic<std::uint64_t> g_slabs_allocated{0};
std::atomic<std::uint64_t> g_slab_bytes{0};

bool initial_enabled() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once before threads spawn
  const char* env = std::getenv("LHWS_SLAB");
  if (env == nullptr) return true;
  return !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

// Owns every magazine ever created (live and orphaned) so that block
// headers can keep pointing at them for the life of the process. A Meyers
// singleton is destroyed after main-thread TLS cleanup ([basic.start.term]),
// so the main thread's tl_guard retirement always finds it alive.
class slab_registry {
 public:
  static slab_registry& instance() {
    static slab_registry r;
    return r;
  }

  magazine* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (orphans_ != nullptr) {
      magazine* m = orphans_;
      orphans_ = m->next_orphan_;
      m->next_orphan_ = nullptr;
      ++magazines_adopted_;
      return m;
    }
    all_.push_back(std::make_unique<magazine>());
    ++magazines_created_;
    return all_.back().get();
  }

  void retire(magazine* m) {
    std::lock_guard<std::mutex> lock(mu_);
    m->next_orphan_ = orphans_;
    orphans_ = m;
  }

  void accumulate(slab_totals& t) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : all_) {
      t.magazine_hits += m->hits();
      t.magazine_misses += m->misses();
      t.remote_pushes += m->remote_pushes();
      t.remote_drained += m->remote_drained();
    }
    t.magazines_created += magazines_created_;
    t.magazines_adopted += magazines_adopted_;
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<magazine>> all_;
  magazine* orphans_ = nullptr;
  std::uint64_t magazines_created_ = 0;
  std::uint64_t magazines_adopted_ = 0;
};

namespace {

// Thread-exit hook: a non-trivially-destructible TLS object whose
// destructor parks this thread's magazine on the orphan list. Any later
// TLS destructor that frees slab memory goes through the remote path (the
// magazine is still alive, just unowned); any later allocation falls back
// to headered ::operator new because tl_dead blocks re-binding.
struct tl_guard {
  ~tl_guard() {
    if (detail::tl_mag != nullptr) {
      slab_registry::instance().retire(detail::tl_mag);
      detail::tl_mag = nullptr;
    }
    detail::tl_dead = true;
  }
};

}  // namespace

namespace detail {

thread_local constinit magazine* tl_mag = nullptr;
thread_local constinit bool tl_dead = false;

magazine* bind_magazine() {
  if (tl_dead) return nullptr;
  static thread_local tl_guard guard;
  (void)guard;
  tl_mag = slab_registry::instance().acquire();
  return tl_mag;
}

}  // namespace detail

magazine::magazine() = default;

magazine::~magazine() {
  // Only the registry destroys magazines, at process teardown; every block
  // is dead by then, so dropping the free lists and slab chain is safe.
  void* chunk = slabs_;
  while (chunk != nullptr) {
    void* next = nullptr;
    std::memcpy(&next, chunk, sizeof(next));
    ::operator delete(chunk);
    chunk = next;
  }
}

void* magazine::refill_alloc(unsigned b) {
  bump(misses_);

  // Reclaim everything other threads freed back to us since the last miss.
  // The chain nodes carry their bucket in the block header, so one drain
  // refills every bucket, not just the one that missed.
  free_node* chain = remote_.pop_all();
  std::uint64_t drained = 0;
  while (chain != nullptr) {
    free_node* next = chain->next;
    const unsigned nb = detail::header_of(chain)->bucket;
    chain->next = local_[nb];
    local_[nb] = chain;
    chain = next;
    ++drained;
  }
  if (drained != 0) {
    remote_drained_.store(
        remote_drained_.load(std::memory_order_relaxed) + drained,
        std::memory_order_relaxed);
  }

  if (free_node* n = local_[b]) {
    local_[b] = n->next;
    return n;
  }

  const std::size_t stride = kBlockHeaderSize + bucket_payload(b);
  if (static_cast<std::size_t>(bump_end_[b] - bump_ptr_[b]) < stride) {
    new_slab(b);
  }
  char* raw = bump_ptr_[b];
  bump_ptr_[b] += stride;
  auto* h = reinterpret_cast<block_header*>(raw);
  h->owner = this;
  h->bucket = b;
  h->magic = kBlockMagic;
  return raw + kBlockHeaderSize;
}

void magazine::new_slab(unsigned b) {
  void* chunk = ::operator new(kSlabBytes);
  std::memcpy(chunk, &slabs_, sizeof(slabs_));
  slabs_ = chunk;
  bump_ptr_[b] = static_cast<char*>(chunk) + kSlabLinkBytes;
  bump_end_[b] = static_cast<char*>(chunk) + kSlabBytes;
  g_slabs_allocated.fetch_add(1, std::memory_order_relaxed);
  g_slab_bytes.fetch_add(kSlabBytes, std::memory_order_relaxed);
}

void* fallback_alloc(std::size_t size) {
  g_fallback_allocs.fetch_add(1, std::memory_order_relaxed);
  void* raw = ::operator new(kBlockHeaderSize + size);
  auto* h = static_cast<block_header*>(raw);
  h->owner = nullptr;
  h->bucket = 0;
  h->magic = kBlockMagic;
  return static_cast<char*>(raw) + kBlockHeaderSize;
}

slab_totals totals() {
  slab_totals t;
  slab_registry::instance().accumulate(t);
  t.fallback_allocs = g_fallback_allocs.load(std::memory_order_relaxed);
  t.slabs_allocated = g_slabs_allocated.load(std::memory_order_relaxed);
  t.slab_bytes = g_slab_bytes.load(std::memory_order_relaxed);
  return t;
}

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

}  // namespace lhws::mem
