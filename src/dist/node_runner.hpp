// dist::node_runner — the shared "one cluster node" harness behind
// tools/lhws_node, examples/dist_map_reduce --cluster, and
// bench_cluster_crossover: build the sharded reactor, bind the cluster
// listener, seed the node's span-id partition, install the default handler
// table, publish the bound port for sibling processes, then run
// start() -> serve() (worker node) or start() -> fork2(serve, driver) ->
// stop() (driver node) on a fresh scheduler.
//
// Header-only: every consumer is a standalone binary and the logic is a
// thin composition of public APIs.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>

#include "core/fork_join.hpp"
#include "core/scheduler.hpp"
#include "dist/cluster.hpp"
#include "io/reactor.hpp"
#include "obs/span.hpp"
#include "support/timing.hpp"

namespace lhws::dist {

// The default work table. Ids are part of the wire contract: every node of
// a cluster must map the same id to the same computation (deterministic
// work ids — a stolen item executes identically anywhere).
inline constexpr std::uint64_t kWorkFib = 1;   // arg = n, returns fib(n)
inline constexpr std::uint64_t kWorkSpin = 2;  // arg = ns busy work, echoes

inline task<std::uint64_t> node_fib(std::uint64_t n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await fork2(node_fib(n - 1), node_fib(n - 2));
  co_return a + b;
}

// Deterministic-duration grain for the crossover bench: burns `ns` of cpu
// on one worker (no suspension) and echoes the argument.
inline task<std::uint64_t> node_spin(std::uint64_t ns) {
  const std::int64_t until = now_ns() + static_cast<std::int64_t>(ns);
  std::uint64_t sink = ns;
  while (now_ns() < until) {
    sink = sink * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  // Keep the loop alive under optimization without making the result
  // depend on iteration count.
  co_return sink != 0 ? ns : ns + 1;
}

inline void install_default_handlers(cluster& c) {
  c.handle(kWorkFib, [](std::uint64_t arg) { return node_fib(arg); });
  c.handle(kWorkSpin, [](std::uint64_t arg) { return node_spin(arg); });
}

// Driver workload run forked beside serve() on the node that owns cluster
// teardown; its return value becomes the node's exit status (0 = ok).
using driver_fn = std::function<task<long>(cluster&)>;

struct node_options {
  cluster_config cfg;
  unsigned workers = 2;
  // Reactor shards; 0 = one per peer (min 1) so each mesh link keeps its
  // own completion lane.
  unsigned reactor_shards = 0;
  bool spans = true;
  std::string trace_path;  // write the run's Chrome trace here (optional)
  std::string port_file;   // publish the bound port here (optional)
};

struct node_report {
  double elapsed_ms = 0.0;
  cluster_stats stats;
  std::uint16_t port = 0;
};

// Publishes the bound port for sibling processes: write-then-rename so a
// polling reader never sees a partial file.
inline bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << port << "\n";
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

// Blocking poll for a sibling's port file (parent/launcher side, not a
// coroutine). Returns 0 on timeout.
inline std::uint16_t wait_port_file(const std::string& path,
                                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      std::ifstream in(path);
      unsigned port = 0;
      if (in && (in >> port) && port > 0 && port < 65536) {
        return static_cast<std::uint16_t>(port);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

namespace detail {

inline task<long> drive_then_stop(cluster& c, const driver_fn& d) {
  const long rc = co_await d(c);
  co_await c.stop();
  co_return rc;
}

inline task<long> node_root(cluster& c, const driver_fn* d) {
  const bool up = co_await c.start();
  if (!up) co_return -1;
  if (d == nullptr) co_return co_await c.serve();
  auto [served, drove] = co_await fork2(c.serve(), drive_then_stop(c, *d));
  co_return drove != 0 ? drove : served;
}

}  // namespace detail

// Runs one node to completion. Worker nodes (no driver) serve until a peer
// broadcasts SHUTDOWN; the driver node runs `driver` beside serve() and
// tears the mesh down when it returns. Exit codes: 0 ok, 1 mesh/driver
// failure, 2 setup failure.
inline int run_node(const node_options& no, driver_fn driver = {},
                    node_report* report = nullptr) {
  // Partition span ids by node so a merged multi-node trace keeps every
  // span id unique within its trace tree.
  obs::seed_span_ids(no.cfg.node_id);

  unsigned shards = no.reactor_shards;
  if (shards == 0) {
    shards = no.cfg.peers.empty()
                 ? 1u
                 : static_cast<unsigned>(no.cfg.peers.size());
  }
  io::reactor r(shards);
  cluster c(r, no.cfg);
  if (!c.valid()) {
    std::fprintf(stderr, "node %u: cannot listen on 127.0.0.1:%u\n",
                 no.cfg.node_id, no.cfg.listen_port);
    return 2;
  }
  install_default_handlers(c);
  if (!no.port_file.empty() && !write_port_file(no.port_file, c.port())) {
    std::fprintf(stderr, "node %u: cannot write port file %s\n",
                 no.cfg.node_id, no.port_file.c_str());
    return 2;
  }

  scheduler_options so;
  so.workers = no.workers;
  so.spans = no.spans;
  if (!no.trace_path.empty()) {
    so.trace = true;
    so.sample_interval_us = 200;
  }
  scheduler sched(so);
  const long rc =
      sched.run(detail::node_root(c, driver ? &driver : nullptr));

  if (!no.trace_path.empty()) {
    std::ofstream out(no.trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "node %u: cannot write %s\n", no.cfg.node_id,
                   no.trace_path.c_str());
      return 2;
    }
    out << sched.trace_json();
  }
  if (report != nullptr) {
    report->elapsed_ms = sched.stats().elapsed_ms;
    report->stats = c.stats();
    report->port = c.port();
  }
  return rc == 0 ? 0 : 1;
}

}  // namespace lhws::dist
