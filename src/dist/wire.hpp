// Cluster wire protocol (DESIGN.md §15): length-prefixed frames carrying
// remote spawn/join and cross-node steal traffic between lhws_node
// processes.
//
// A frame is a 12-byte header followed by a little-endian payload:
//
//   [0..3]  u32le payload length (bytes after the header)
//   [4]     u8   frame type (frame_type)
//   [5]     u8   protocol version (kWireVersion)
//   [6..7]  u16le reserved, must be 0
//   [8..11] u32le FNV-1a checksum over (type, version, payload)
//
// The checksum is not cryptographic — it exists so a bit-flipped or
// misframed byte stream is *detected* (the peer is dropped with a counted
// wire_error) instead of being decoded into garbage call ids. Every
// malformed input maps to exactly one wire_error category; the decoder is
// a pure incremental state machine with no socket dependency, so the fuzz
// tests (tests/dist/) can drive it byte-by-byte under ASan.
//
// Frames carry the PR 7 trace-context extension natively: SPAWN and
// STEAL_GRANT records embed (trace_id, parent_span), so the remote
// executor can open its request as a child of the caller's span and the
// merged cluster trace closes ≥99% (lhws_trace_stats --spans).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lhws::dist {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
// Largest accepted payload. A STEAL_GRANT of kMaxStealBatch items is the
// biggest frame we ever produce; anything near the cap is hostile or
// corrupt and is rejected before buffering (oversized).
inline constexpr std::uint32_t kMaxPayload = 1u << 16;

enum class frame_type : std::uint8_t {
  hello = 1,          // node_id introduction, first frame on every link
  spawn = 2,          // execute work_id(arg), reply RESULT to origin
  result = 3,         // completion value for call_id
  steal_request = 4,  // idle thief probes for queued work
  steal_grant = 5,    // 0..N queued items handed to the thief
  shutdown = 6,       // orderly teardown; no payload
};

[[nodiscard]] inline bool known_frame_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(frame_type::hello) &&
         t <= static_cast<std::uint8_t>(frame_type::shutdown);
}

[[nodiscard]] inline const char* frame_type_name(frame_type t) noexcept {
  switch (t) {
    case frame_type::hello:
      return "HELLO";
    case frame_type::spawn:
      return "SPAWN";
    case frame_type::result:
      return "RESULT";
    case frame_type::steal_request:
      return "STEAL_REQUEST";
    case frame_type::steal_grant:
      return "STEAL_GRANT";
    case frame_type::shutdown:
      return "SHUTDOWN";
  }
  return "unknown";
}

// Why a peer had to be dropped. One category per failure mode so the fuzz
// tests can assert the *right* error was counted, not just "some error".
enum class wire_error : std::uint8_t {
  none = 0,
  truncated,     // stream ended mid-frame (EOF with bytes buffered)
  oversized,     // header announces a payload larger than kMaxPayload
  bad_type,      // unknown frame type byte
  bad_version,   // protocol version mismatch
  bad_checksum,  // payload bytes do not match the header checksum
  bad_payload,   // frame verified but its payload does not parse
};
inline constexpr unsigned kNumWireErrors = 7;

[[nodiscard]] inline const char* wire_error_name(wire_error e) noexcept {
  switch (e) {
    case wire_error::none:
      return "none";
    case wire_error::truncated:
      return "truncated";
    case wire_error::oversized:
      return "oversized";
    case wire_error::bad_type:
      return "bad_type";
    case wire_error::bad_version:
      return "bad_version";
    case wire_error::bad_checksum:
      return "bad_checksum";
    case wire_error::bad_payload:
      return "bad_payload";
  }
  return "unknown";
}

// Per-peer (or per-cluster) tally of dropped-frame causes; exported into
// the node's metrics and asserted by the robustness tests.
struct wire_error_counters {
  std::uint64_t counts[kNumWireErrors] = {};

  void bump(wire_error e) noexcept {
    ++counts[static_cast<unsigned>(e) % kNumWireErrors];
  }
  [[nodiscard]] std::uint64_t of(wire_error e) const noexcept {
    return counts[static_cast<unsigned>(e) % kNumWireErrors];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (unsigned i = 1; i < kNumWireErrors; ++i) t += counts[i];
    return t;
  }
};

namespace detail {

inline void put_le16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v & 0xFFu);
  p[1] = static_cast<unsigned char>((v >> 8) & 0xFFu);
}

inline void put_le32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

inline void put_le64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

[[nodiscard]] inline std::uint16_t get_le16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(std::uint16_t{p[0]} |
                                    (std::uint16_t{p[1]} << 8));
}

[[nodiscard]] inline std::uint32_t get_le32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

[[nodiscard]] inline std::uint64_t get_le64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace detail

// FNV-1a over (type, version, payload). Seeding with the header fields
// means a frame whose payload happens to checksum-match under a *different*
// type byte is still rejected.
[[nodiscard]] inline std::uint32_t wire_checksum(
    std::uint8_t type, const unsigned char* payload,
    std::size_t n) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  const auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 0x01000193u;
  };
  mix(type);
  mix(kWireVersion);
  for (std::size_t i = 0; i < n; ++i) mix(payload[i]);
  return h;
}

// One decoded frame. The payload is raw bytes; decode_* below parse it
// into the typed messages.
struct frame {
  frame_type type = frame_type::hello;
  std::vector<unsigned char> payload;
};

// --- typed messages -----------------------------------------------------

struct hello_msg {
  std::uint32_t node_id = 0;
};
inline constexpr std::size_t kHelloSize = 4;

// One unit of remote work. Shared by SPAWN frames and STEAL_GRANT records:
// a granted item is just a spawn whose RESULT must be routed back to
// `origin` (the node that owns the pending call), which is not necessarily
// the node the thief stole it from.
struct spawn_msg {
  std::uint64_t call_id = 0;   // origin-local pending-call key
  std::uint64_t work_id = 0;   // deterministic handler id (cluster::handle)
  std::uint64_t arg = 0;
  std::uint64_t trace_id = 0;  // 0 = caller had no request scope
  std::uint32_t parent_span = 0;
  std::uint32_t origin = 0;    // node id owning call_id
};
inline constexpr std::size_t kSpawnSize = 40;

enum class call_status : std::uint32_t { ok = 0, no_handler = 1 };

struct result_msg {
  std::uint64_t call_id = 0;
  std::uint64_t value = 0;
  std::uint32_t status = 0;  // call_status
};
inline constexpr std::size_t kResultSize = 20;

struct steal_request_msg {
  std::uint32_t thief = 0;      // node id to send the grant to
  std::uint32_t max_items = 0;  // grant at most this many
};
inline constexpr std::size_t kStealRequestSize = 8;

// The largest grant we ever encode; bounds the biggest legal frame.
inline constexpr std::uint32_t kMaxStealBatch =
    static_cast<std::uint32_t>((kMaxPayload - 4) / kSpawnSize);

// --- encoders (append one complete frame to `out`) ----------------------

namespace detail {

inline void append_header(std::vector<unsigned char>& out, frame_type t,
                          const unsigned char* payload, std::size_t n) {
  unsigned char h[kHeaderSize];
  put_le32(h, static_cast<std::uint32_t>(n));
  h[4] = static_cast<std::uint8_t>(t);
  h[5] = kWireVersion;
  put_le16(h + 6, 0);
  put_le32(h + 8, wire_checksum(static_cast<std::uint8_t>(t), payload, n));
  out.insert(out.end(), h, h + kHeaderSize);
}

inline void append_frame(std::vector<unsigned char>& out, frame_type t,
                         const unsigned char* payload, std::size_t n) {
  out.reserve(out.size() + kHeaderSize + n);
  append_header(out, t, payload, n);
  out.insert(out.end(), payload, payload + n);
}

inline void put_spawn(unsigned char* p, const spawn_msg& m) noexcept {
  put_le64(p, m.call_id);
  put_le64(p + 8, m.work_id);
  put_le64(p + 16, m.arg);
  put_le64(p + 24, m.trace_id);
  put_le32(p + 32, m.parent_span);
  put_le32(p + 36, m.origin);
}

inline void get_spawn(const unsigned char* p, spawn_msg& m) noexcept {
  m.call_id = get_le64(p);
  m.work_id = get_le64(p + 8);
  m.arg = get_le64(p + 16);
  m.trace_id = get_le64(p + 24);
  m.parent_span = get_le32(p + 32);
  m.origin = get_le32(p + 36);
}

}  // namespace detail

inline void encode_hello(std::vector<unsigned char>& out,
                         const hello_msg& m) {
  unsigned char p[kHelloSize];
  detail::put_le32(p, m.node_id);
  detail::append_frame(out, frame_type::hello, p, sizeof p);
}

inline void encode_spawn(std::vector<unsigned char>& out,
                         const spawn_msg& m) {
  unsigned char p[kSpawnSize];
  detail::put_spawn(p, m);
  detail::append_frame(out, frame_type::spawn, p, sizeof p);
}

inline void encode_result(std::vector<unsigned char>& out,
                          const result_msg& m) {
  unsigned char p[kResultSize];
  detail::put_le64(p, m.call_id);
  detail::put_le64(p + 8, m.value);
  detail::put_le32(p + 16, m.status);
  detail::append_frame(out, frame_type::result, p, sizeof p);
}

inline void encode_steal_request(std::vector<unsigned char>& out,
                                 const steal_request_msg& m) {
  unsigned char p[kStealRequestSize];
  detail::put_le32(p, m.thief);
  detail::put_le32(p + 4, m.max_items);
  detail::append_frame(out, frame_type::steal_request, p, sizeof p);
}

inline void encode_steal_grant(std::vector<unsigned char>& out,
                               const std::vector<spawn_msg>& items) {
  const auto count = static_cast<std::uint32_t>(
      items.size() > kMaxStealBatch ? kMaxStealBatch : items.size());
  std::vector<unsigned char> p(4 + std::size_t{count} * kSpawnSize);
  detail::put_le32(p.data(), count);
  for (std::uint32_t i = 0; i < count; ++i) {
    detail::put_spawn(p.data() + 4 + std::size_t{i} * kSpawnSize, items[i]);
  }
  detail::append_frame(out, frame_type::steal_grant, p.data(), p.size());
}

inline void encode_shutdown(std::vector<unsigned char>& out) {
  detail::append_frame(out, frame_type::shutdown, nullptr, 0);
}

// --- typed decoders -----------------------------------------------------
//
// Each returns false on a size/shape mismatch; the caller counts
// wire_error::bad_payload and drops the peer. The frame itself already
// passed the checksum, so a false here means a peer speaking a different
// dialect, not line noise.

[[nodiscard]] inline bool decode_hello(const frame& f, hello_msg& m) {
  if (f.payload.size() != kHelloSize) return false;
  m.node_id = detail::get_le32(f.payload.data());
  return true;
}

[[nodiscard]] inline bool decode_spawn(const frame& f, spawn_msg& m) {
  if (f.payload.size() != kSpawnSize) return false;
  detail::get_spawn(f.payload.data(), m);
  return true;
}

[[nodiscard]] inline bool decode_result(const frame& f, result_msg& m) {
  if (f.payload.size() != kResultSize) return false;
  m.call_id = detail::get_le64(f.payload.data());
  m.value = detail::get_le64(f.payload.data() + 8);
  m.status = detail::get_le32(f.payload.data() + 16);
  return m.status <= static_cast<std::uint32_t>(call_status::no_handler);
}

[[nodiscard]] inline bool decode_steal_request(const frame& f,
                                               steal_request_msg& m) {
  if (f.payload.size() != kStealRequestSize) return false;
  m.thief = detail::get_le32(f.payload.data());
  m.max_items = detail::get_le32(f.payload.data() + 4);
  return true;
}

[[nodiscard]] inline bool decode_steal_grant(const frame& f,
                                             std::vector<spawn_msg>& items) {
  if (f.payload.size() < 4) return false;
  const std::uint32_t count = detail::get_le32(f.payload.data());
  if (count > kMaxStealBatch) return false;
  if (f.payload.size() != 4 + std::size_t{count} * kSpawnSize) return false;
  items.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    detail::get_spawn(f.payload.data() + 4 + std::size_t{i} * kSpawnSize,
                      items[i]);
  }
  return true;
}

// --- incremental decoder ------------------------------------------------
//
// feed() buffers raw bytes; next() yields complete verified frames. The
// header is validated as soon as 12 bytes are buffered — an oversized
// length or bad type/version is rejected *before* the decoder commits to
// buffering the announced payload, so a hostile length field cannot make
// it allocate kMaxPayload of garbage. Once poisoned, the reader stays
// poisoned (the transport contract is "drop the peer on first error"; a
// stream that has lost framing cannot be resynchronized safely).
class frame_reader {
 public:
  enum class status : std::uint8_t { need_more, ready, error };

  // Appends raw bytes from the transport. Compacts the consumed prefix
  // lazily so steady-state feeds don't reallocate.
  void feed(const unsigned char* data, std::size_t n) {
    if (err_ != wire_error::none) return;  // poisoned: discard input
    if (pos_ > 0 && pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    } else if (pos_ >= kCompactThreshold) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
  }

  // Extracts the next verified frame into `out`. status::error poisons the
  // reader; consult err() for the category.
  status next(frame& out) {
    if (err_ != wire_error::none) return status::error;
    if (avail() < kHeaderSize) return status::need_more;
    const unsigned char* h = buf_.data() + pos_;
    const std::uint32_t len = detail::get_le32(h);
    const std::uint8_t type = h[4];
    const std::uint8_t version = h[5];
    if (version != kWireVersion) return poison(wire_error::bad_version);
    if (!known_frame_type(type) || detail::get_le16(h + 6) != 0) {
      return poison(wire_error::bad_type);
    }
    if (len > kMaxPayload) return poison(wire_error::oversized);
    if (avail() < kHeaderSize + len) return status::need_more;
    const unsigned char* payload = h + kHeaderSize;
    if (wire_checksum(type, payload, len) != detail::get_le32(h + 8)) {
      return poison(wire_error::bad_checksum);
    }
    out.type = static_cast<frame_type>(type);
    out.payload.assign(payload, payload + len);
    pos_ += kHeaderSize + len;
    return status::ready;
  }

  // EOF handling: a stream that ends between frames is a clean close; one
  // that ends mid-frame is a truncation. Call when the transport reports
  // EOF; returns the final verdict (and poisons on truncation).
  wire_error finish() {
    if (err_ == wire_error::none && avail() != 0) {
      err_ = wire_error::truncated;
    }
    return err_;
  }

  [[nodiscard]] wire_error err() const noexcept { return err_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return avail(); }

 private:
  static constexpr std::size_t kCompactThreshold = 4096;

  [[nodiscard]] std::size_t avail() const noexcept {
    return buf_.size() - pos_;
  }

  status poison(wire_error e) noexcept {
    err_ = e;
    return status::error;
  }

  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;
  wire_error err_ = wire_error::none;
};

}  // namespace lhws::dist
