// dist::cluster — cross-process LHWS: N lhws_node processes, each running a
// local scheduler, exchanging work over the sharded reactor (DESIGN.md §15).
//
// A remote join IS a heavy δ edge. cluster::call() registers a pending-call
// slot, ships a SPAWN frame, and suspends on an rt::resume_handle exactly
// like core/latency.hpp suspends on a timer: the worker's active deque is
// charged (Lemma 7 economy unchanged), the RESULT frame's arrival fires the
// resume through deliver_resume (direct-push/batch split unchanged), and
// the span-aware arm opens a span_kind::remote span whose δ is the full
// network round trip — so the paper's critical-path decomposition
// end-begin = running + Σ(δ + wake + deque) holds across process
// boundaries, and lhws_trace_stats can audit a *merged* multi-node trace.
//
// Work distribution is two-level, mirroring the Gast/Khatiri/Trystram
// two-cluster WS-with-latency model:
//   - inside a node, the ordinary LHWS scheduler steals between workers
//     (the zero-latency cluster);
//   - between nodes, an idle node that has drained its local queue probes
//     a peer with STEAL_REQUEST (the latency-λ cluster edge), governed by
//     remote_steal_policy:
//       never      no cross-node steals (the baseline),
//       always     probe whenever idle,
//       threshold  probe only while the peer RTT EWMA is below
//                  rtt_factor × steal_batch × observed grain EWMA — i.e.
//                  only when the expected work transferred outweighs the
//                  latency paid, which is exactly the crossover the
//                  bench_cluster_crossover gate reproduces.
//
// Peer latency can be *injected* (cluster_config::injected_delta_ns): every
// received frame is delayed by δ before dispatch, on a forked handler so
// the delay models wire latency, not bandwidth. The δ lands inside the
// measured steal RTT and inside the caller's remote-span δ, so the same
// knob drives both the policy and the attribution.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fork_join.hpp"
#include "core/task.hpp"
#include "dist/wire.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "runtime/resume_handle.hpp"

namespace lhws::dist {

enum class remote_steal_policy : std::uint8_t { never, threshold, always };

[[nodiscard]] const char* policy_name(remote_steal_policy p) noexcept;
// Parses "never"/"threshold"/"always"; false on anything else.
[[nodiscard]] bool parse_policy(const char* s, remote_steal_policy& out);

struct peer_endpoint {
  std::uint32_t id = 0;
  std::uint16_t port = 0;  // the peer's loopback listen port
};

struct cluster_config {
  std::uint32_t node_id = 0;
  std::uint16_t listen_port = 0;  // 0 = ephemeral (read back via port())
  // Every other node in the cluster. The mesh is full: this node dials
  // peers with id < node_id and accepts connections from id > node_id.
  std::vector<peer_endpoint> peers;
  remote_steal_policy policy = remote_steal_policy::never;
  // Artificial per-peer one-way latency applied to every received frame
  // (0 = real loopback only). Makes the crossover sweep tc-free.
  std::int64_t injected_delta_ns = 0;
  std::uint32_t steal_batch = 4;   // items requested per probe
  double rtt_factor = 2.0;         // threshold-policy slack multiplier
  std::int64_t probe_backoff_ns = 2'000'000;   // idle re-probe pacing
  std::int64_t assumed_grain_ns = 1'000'000;   // grain prior before any
                                               // local execution measured
};

// Aggregate counters, readable after (or during) a run.
struct cluster_stats {
  std::uint64_t calls = 0;            // cluster::call invocations
  std::uint64_t executed = 0;         // work items executed on this node
  std::uint64_t stolen_executed = 0;  // ... of which arrived via a grant
  std::uint64_t probes = 0;           // STEAL_REQUESTs sent
  std::uint64_t empty_grants = 0;     // probes answered with 0 items
  std::uint64_t granted_items = 0;    // items this node handed to thieves
  std::uint64_t results_routed = 0;   // RESULT frames sent to peers
  std::uint64_t dropped_results = 0;  // RESULTs with no pending call
  std::uint64_t wire_errors = 0;      // peers dropped, all categories
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
};

class cluster {
 public:
  // A work handler: deterministic id -> task. Ids must agree across every
  // node of the cluster (register the same table in the same binary).
  using handler_fn = std::function<task<std::uint64_t>(std::uint64_t)>;

  cluster(io::reactor& r, cluster_config cfg);
  cluster(const cluster&) = delete;
  cluster& operator=(const cluster&) = delete;

  // Listener bound? (checked before start()).
  [[nodiscard]] bool valid() const noexcept { return listener_.valid(); }
  [[nodiscard]] std::uint16_t port() const { return listener_.local_port(); }
  [[nodiscard]] const cluster_config& config() const noexcept { return cfg_; }

  void handle(std::uint64_t work_id, handler_fn fn) {
    handlers_[work_id] = std::move(fn);
  }

  // Establishes the full mesh: dials lower-id peers (with retry while they
  // come up), accepts higher-id peers, exchanges HELLO both ways. Must
  // complete (true) before serve()/call().
  [[nodiscard]] task<bool> start();

  // The node's serving root: per-peer reader loops + the local work pump +
  // the steal pump, joined. Returns after stop() has been observed (driver
  // side) or a SHUTDOWN frame arrived (everyone else) and in-flight work
  // drained. Run it forked beside the driver workload, or alone on a
  // worker node.
  [[nodiscard]] task<long> serve();

  // Submits work_id(arg) to `target` (may be this node: the item joins the
  // local queue, where a remote thief can still steal it) and suspends
  // until its RESULT arrives — the remote join heavy edge. Returns the
  // handler's value; a missing handler on the executor yields 0 with
  // stats().dropped_results untouched (call_status::no_handler).
  [[nodiscard]] task<std::uint64_t> call(std::uint32_t target,
                                         std::uint64_t work_id,
                                         std::uint64_t arg);

  // Driver-side teardown: broadcast SHUTDOWN to every peer, then drain the
  // local pumps. Call only after every call() has joined.
  [[nodiscard]] task<void> stop();

  [[nodiscard]] cluster_stats stats() const;
  // Per-peer observed round-trip δ (probe -> grant, includes injected δ on
  // both legs). Snapshot by value; index = position in config().peers.
  [[nodiscard]] obs::log_histogram peer_rtt_hist(std::size_t slot) const;
  [[nodiscard]] wire_error_counters peer_wire_errors(std::size_t slot) const;

 private:
  // One mesh link. `slot` is the index into cfg_.peers; the socket lives
  // on reactor shard slot % shards so each peer's completions stay on a
  // dedicated shard thread.
  struct peer {
    std::uint32_t id = 0;
    std::uint16_t dial_port = 0;
    io::socket sock;
    std::atomic<bool> up{false};
    std::atomic<bool> down{false};

    // Combining writer: senders append encoded frames under mu; the first
    // sender to find no writer active becomes the writer and drains the
    // outbox through async writes (never holding mu across a suspend).
    std::mutex mu;
    std::vector<unsigned char> outbox;
    bool writer_active = false;

    // Reader-side state (single reader: the peer_loop recursion).
    frame_reader reader;
    unsigned char scratch[4096] = {};

    mutable std::mutex stats_mu;
    wire_error_counters errs;
    obs::log_histogram rtt_hist;
    std::atomic<std::int64_t> rtt_ewma_ns{0};
    std::atomic<std::int64_t> probe_sent_ns{0};  // 0 = no probe in flight
  };

  // One in-flight call() join. Lives in the call() coroutine frame; the
  // table only ever holds a pointer. State machine mirrors event<T>:
  // completer stores the value then exchanges -> done and fires if the
  // waiter installed first; the waiter arms then CASes empty -> armed and
  // cancels the arm if it lost the install race.
  struct pending_call {
    enum : int { empty = 0, armed = 1, done = 2 };
    std::atomic<int> state{empty};
    std::uint64_t value = 0;
    std::uint32_t status = 0;       // call_status
    std::uint32_t exec_node = 0;    // node that produced the RESULT
    rt::resume_handle resume{};
  };

  struct join_awaiter {
    pending_call& pc;

    [[nodiscard]] bool await_ready() const noexcept {
      return pc.state.load(std::memory_order_acquire) == pending_call::done;
    }
    template <typename Promise>
    bool await_suspend(std::coroutine_handle<Promise> h) {
      rt::worker* w = rt::worker::current();
      LHWS_ASSERT(w != nullptr &&
                  "cluster::call may only be awaited inside a scheduler run");
      pc.resume.arm(w, h, obs::promise_span(h), obs::span_kind::remote);
      int expected = pending_call::empty;
      if (pc.state.compare_exchange_strong(expected, pending_call::armed,
                                           std::memory_order_release,
                                           std::memory_order_acquire)) {
        return true;  // RESULT delivery will fire the resume
      }
      pc.resume.cancel();  // result won the install race
      return false;
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] task<bool> dial_peer(std::size_t slot);
  [[nodiscard]] task<bool> dial_range(const std::vector<std::size_t>& slots,
                                      std::size_t lo, std::size_t hi);
  [[nodiscard]] task<bool> accept_peers(std::size_t remaining);
  [[nodiscard]] task<bool> handshake_accepted(int fd);

  [[nodiscard]] task<long> peer_loop(std::size_t slot);
  [[nodiscard]] task<long> all_peer_loops(std::size_t lo, std::size_t hi);
  [[nodiscard]] task<long> peers_then_stop();
  // Reads until one verified frame (1), clean close (0) or error (<0,
  // already counted). Polls stopping_ every 100ms like the accept loops.
  [[nodiscard]] task<int> next_frame(peer& p, frame& f);
  [[nodiscard]] task<long> handle_frame(std::size_t slot, frame f);

  [[nodiscard]] task<long> pump_tree();
  [[nodiscard]] task<long> local_pump();
  [[nodiscard]] task<long> steal_pump();
  [[nodiscard]] task<void> execute_item(spawn_msg m, bool stolen);
  [[nodiscard]] task<void> execute_items(std::vector<spawn_msg> items,
                                         bool stolen);
  [[nodiscard]] task<void> route_result(std::uint32_t origin, result_msg rm);
  [[nodiscard]] task<void> send_bytes(std::size_t slot,
                                      std::vector<unsigned char> bytes);

  void complete_local(const result_msg& rm, std::uint32_t exec_node);
  void note_wire_error(peer& p, wire_error e);
  void note_grain(std::int64_t exec_ns);
  [[nodiscard]] bool should_probe(const peer& p) const;
  [[nodiscard]] std::size_t slot_of(std::uint32_t node_id) const;

  io::reactor& r_;
  cluster_config cfg_;
  io::socket listener_;
  std::vector<std::unique_ptr<peer>> peers_;  // parallel to cfg_.peers
  std::map<std::uint64_t, handler_fn> handlers_;

  std::atomic<bool> stopping_{false};

  std::mutex queue_mu_;
  std::deque<spawn_msg> queue_;  // pump pops front; thieves are granted
                                 // from the back (coldest work travels)
  std::atomic<std::uint32_t> inflight_execs_{0};

  std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, pending_call*> pending_;
  std::atomic<std::uint64_t> next_call_id_{1};

  std::atomic<std::int64_t> grain_ewma_ns_{0};

  struct alignas(64) counters {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen_executed{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> empty_grants{0};
    std::atomic<std::uint64_t> granted_items{0};
    std::atomic<std::uint64_t> results_routed{0};
    std::atomic<std::uint64_t> dropped_results{0};
    std::atomic<std::uint64_t> wire_errors{0};
    std::atomic<std::uint64_t> bytes_tx{0};
    std::atomic<std::uint64_t> bytes_rx{0};
  } ctr_;
};

}  // namespace lhws::dist
