// dist::cluster implementation (DESIGN.md §15). See cluster.hpp for the
// architecture; this file is the mesh plumbing: handshake, the combining
// writer, the per-peer reader fork tree, the work pumps, and the
// pending-call completion path that turns a RESULT frame into a
// deliver_resume.
#include "dist/cluster.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <utility>

#include "io/async_ops.hpp"
#include "load/rpc_server.hpp"
#include "runtime/runtime_deque.hpp"
#include "support/timing.hpp"

namespace lhws::dist {

using namespace std::chrono_literals;

namespace {
// Dial retry budget: worker nodes come up in any order, so the dialer
// politely retries for ~10s before declaring the mesh unreachable.
constexpr int kDialAttempts = 200;
constexpr auto kDialRetryPause = 50ms;
constexpr auto kHandshakeDeadline = 10s;
// Reader poll period: how often a blocked peer read rechecks stopping_.
constexpr auto kReadPoll = 100ms;
// Local pump poll period while the queue is empty.
constexpr auto kPumpPoll = 200us;

void ewma_update(std::atomic<std::int64_t>& cell, std::int64_t sample) {
  // α = 1/8 EWMA; racy read-modify-write is fine for a policy heuristic.
  const std::int64_t old = cell.load(std::memory_order_relaxed);
  cell.store(old == 0 ? sample : old + (sample - old) / 8,
             std::memory_order_relaxed);
}
}  // namespace

const char* policy_name(remote_steal_policy p) noexcept {
  switch (p) {
    case remote_steal_policy::never:
      return "never";
    case remote_steal_policy::threshold:
      return "threshold";
    case remote_steal_policy::always:
      return "always";
  }
  return "unknown";
}

bool parse_policy(const char* s, remote_steal_policy& out) {
  if (std::strcmp(s, "never") == 0) {
    out = remote_steal_policy::never;
  } else if (std::strcmp(s, "threshold") == 0) {
    out = remote_steal_policy::threshold;
  } else if (std::strcmp(s, "always") == 0) {
    out = remote_steal_policy::always;
  } else {
    return false;
  }
  return true;
}

cluster::cluster(io::reactor& r, cluster_config cfg)
    : r_(r), cfg_(std::move(cfg)) {
  listener_ = io::socket::listen_loopback(r_, cfg_.listen_port);
  peers_.reserve(cfg_.peers.size());
  for (std::size_t i = 0; i < cfg_.peers.size(); ++i) {
    auto p = std::make_unique<peer>();
    p->id = cfg_.peers[i].id;
    p->dial_port = cfg_.peers[i].port;
    peers_.push_back(std::move(p));
  }
}

std::size_t cluster::slot_of(std::uint32_t node_id) const {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i]->id == node_id) return i;
  }
  return peers_.size();
}

// --- handshake ----------------------------------------------------------

task<bool> cluster::dial_peer(std::size_t slot) {
  peer& p = *peers_[slot];
  io::socket s;
  for (int attempt = 0; attempt < kDialAttempts; ++attempt) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) co_return false;
    // Pin the link to its dedicated shard (slot % shards) so every
    // completion for this peer fires on one shard thread for its life.
    s = io::socket(r_, fd, static_cast<unsigned>(slot) % r_.shards());
    const long rc =
        co_await io::async_connect(r_, s, p.dial_port, io::with_deadline(1s));
    if (rc == 0) break;
    s.close();
    if (attempt + 1 == kDialAttempts) co_return false;
    co_await io::sleep_for(r_, kDialRetryPause);
  }
  if (!s.valid()) co_return false;
  io::set_tcp_nodelay(s.fd());

  std::vector<unsigned char> hello;
  encode_hello(hello, hello_msg{cfg_.node_id});
  const auto dl = io::with_deadline(kHandshakeDeadline);
  if (co_await load::write_exact(r_, s, hello.data(), hello.size(), dl) < 0) {
    co_return false;
  }
  unsigned char buf[kHeaderSize + kHelloSize];
  if (co_await load::read_exact(r_, s, buf, sizeof buf, dl) !=
      static_cast<long>(sizeof buf)) {
    co_return false;
  }
  frame_reader fr;
  fr.feed(buf, sizeof buf);
  frame f;
  hello_msg m;
  if (fr.next(f) != frame_reader::status::ready ||
      f.type != frame_type::hello || !decode_hello(f, m) || m.node_id != p.id) {
    note_wire_error(p, fr.err() != wire_error::none ? fr.err()
                                                    : wire_error::bad_payload);
    co_return false;
  }
  p.sock = std::move(s);
  p.up.store(true, std::memory_order_release);
  co_return true;
}

task<bool> cluster::handshake_accepted(int fd) {
  io::set_tcp_nodelay(fd);
  // Register on a temporary entry to run the async HELLO read; once the
  // peer id is known, re-home the fd (via dup) onto its dedicated shard.
  io::socket tmp(r_, fd);
  unsigned char buf[kHeaderSize + kHelloSize];
  const auto dl = io::with_deadline(kHandshakeDeadline);
  if (co_await load::read_exact(r_, tmp, buf, sizeof buf, dl) !=
      static_cast<long>(sizeof buf)) {
    co_return false;
  }
  frame_reader fr;
  fr.feed(buf, sizeof buf);
  frame f;
  hello_msg m;
  if (fr.next(f) != frame_reader::status::ready ||
      f.type != frame_type::hello || !decode_hello(f, m)) {
    co_return false;
  }
  const std::size_t slot = slot_of(m.node_id);
  if (slot >= peers_.size() ||
      peers_[slot]->up.load(std::memory_order_acquire)) {
    co_return false;  // unknown peer, or a duplicate link
  }
  peer& p = *peers_[slot];
  const int homed = ::dup(tmp.fd());
  if (homed < 0) co_return false;
  tmp.close();
  p.sock = io::socket(r_, homed, static_cast<unsigned>(slot) % r_.shards());
  std::vector<unsigned char> hello;
  encode_hello(hello, hello_msg{cfg_.node_id});
  if (co_await load::write_exact(r_, p.sock, hello.data(), hello.size(),
                                 dl) < 0) {
    co_return false;
  }
  p.up.store(true, std::memory_order_release);
  co_return true;
}

task<bool> cluster::accept_peers(std::size_t remaining) {
  while (remaining > 0) {
    const long fd =
        co_await io::async_accept(r_, listener_, io::with_deadline(100ms));
    if (fd == -ETIMEDOUT) {
      if (stopping_.load(std::memory_order_acquire)) co_return false;
      continue;
    }
    if (load::accept_should_backoff(fd)) {
      co_await io::sleep_for(r_, 10ms);
      continue;
    }
    if (fd < 0) co_return false;
    if (!co_await handshake_accepted(static_cast<int>(fd))) co_return false;
    --remaining;
  }
  co_return true;
}

task<bool> cluster::start() {
  if (!listener_.valid()) co_return false;
  // The mesh convention: dial every peer with a lower id, accept every
  // peer with a higher one. Sort order in cfg_.peers is caller-defined,
  // so partition into dial slots first.
  std::vector<std::size_t> dial_slots;
  std::size_t accepts = 0;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i]->id < cfg_.node_id) {
      dial_slots.push_back(i);
    } else {
      ++accepts;
    }
  }
  bool ok;
  if (dial_slots.empty()) {
    ok = co_await accept_peers(accepts);
  } else if (accepts == 0) {
    ok = co_await dial_range(dial_slots, 0, dial_slots.size());
  } else {
    // A middle node does both at once so it cannot deadlock against its
    // neighbours coming up in arbitrary order.
    auto [a, b] = co_await fork2(dial_range(dial_slots, 0, dial_slots.size()),
                                 accept_peers(accepts));
    ok = a && b;
  }
  if (!ok) co_return false;
  for (const auto& p : peers_) {
    if (!p->up.load(std::memory_order_acquire)) co_return false;
  }
  co_return true;
}

task<bool> cluster::dial_range(const std::vector<std::size_t>& slots,
                               std::size_t lo, std::size_t hi) {
  if (lo >= hi) co_return true;
  if (hi - lo == 1) co_return co_await dial_peer(slots[lo]);
  const std::size_t mid = lo + (hi - lo) / 2;
  auto [a, b] =
      co_await fork2(dial_range(slots, lo, mid), dial_range(slots, mid, hi));
  co_return a && b;
}

// --- send path (combining writer) ---------------------------------------

task<void> cluster::send_bytes(std::size_t slot,
                               std::vector<unsigned char> bytes) {
  peer& p = *peers_[slot];
  if (p.down.load(std::memory_order_acquire)) co_return;
  bool drain = false;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    p.outbox.insert(p.outbox.end(), bytes.begin(), bytes.end());
    if (!p.writer_active) {
      p.writer_active = true;
      drain = true;
    }
  }
  if (!drain) co_return;  // the active writer will flush our frame
  std::vector<unsigned char> local;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(p.mu);
      if (p.outbox.empty()) {
        p.writer_active = false;
        co_return;
      }
      local.clear();
      local.swap(p.outbox);
    }
    const long rc =
        co_await load::write_exact(r_, p.sock, local.data(), local.size());
    if (rc < 0) {
      p.down.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lk(p.mu);
      p.writer_active = false;
      co_return;
    }
    ctr_.bytes_tx.fetch_add(local.size(), std::memory_order_relaxed);
  }
}

// --- receive path -------------------------------------------------------

task<int> cluster::next_frame(peer& p, frame& f) {
  // Once the cluster is stopping, peers tear down in arbitrary order: a
  // reset link or a stream torn mid-frame is ordinary teardown, not a
  // failure (only protocol corruption stays fatal). Before that, the same
  // conditions mean a peer died and the serve loop must report it.
  const auto teardown_rc = [this]() -> int {
    return stopping_.load(std::memory_order_acquire) ? 0 : -1;
  };
  for (;;) {
    if (p.down.load(std::memory_order_acquire)) co_return teardown_rc();
    switch (p.reader.next(f)) {
      case frame_reader::status::ready:
        co_return 1;
      case frame_reader::status::error:
        note_wire_error(p, p.reader.err());
        p.down.store(true, std::memory_order_release);
        co_return -1;
      case frame_reader::status::need_more:
        break;
    }
    const long got = co_await io::async_read(
        r_, p.sock, p.scratch, sizeof p.scratch, io::with_deadline(kReadPoll));
    if (got == -ETIMEDOUT) {
      if (stopping_.load(std::memory_order_acquire)) co_return 0;
      continue;
    }
    if (got == 0) {
      if (p.reader.finish() != wire_error::none) {
        note_wire_error(p, wire_error::truncated);
        co_return teardown_rc();
      }
      co_return 0;  // clean close at a frame boundary
    }
    if (got < 0) {
      p.down.store(true, std::memory_order_release);
      co_return teardown_rc();
    }
    ctr_.bytes_rx.fetch_add(static_cast<std::uint64_t>(got),
                            std::memory_order_relaxed);
    p.reader.feed(p.scratch, static_cast<std::size_t>(got));
  }
}

task<long> cluster::peer_loop(std::size_t slot) {
  peer& p = *peers_[slot];
  frame f;
  const int rc = co_await next_frame(p, f);
  if (rc <= 0) co_return rc;
  if (f.type == frame_type::shutdown) {
    // Cluster-wide stop: drain the pumps and let every other peer loop
    // notice on its next read poll.
    stopping_.store(true, std::memory_order_release);
    co_return 0;
  }
  // Keep reading while the frame is handled on a forked (stealable)
  // child — reading never waits on handler execution, and an injected δ
  // delays only its own frame, like real wire latency would.
  auto [rest, one] = co_await fork2(peer_loop(slot),
                                    handle_frame(slot, std::move(f)));
  (void)one;
  co_return rest;
}

task<long> cluster::all_peer_loops(std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) co_return co_await peer_loop(lo);
  const std::size_t mid = lo + (hi - lo) / 2;
  auto [a, b] =
      co_await fork2(all_peer_loops(lo, mid), all_peer_loops(mid, hi));
  co_return a != 0 ? a : b;
}

task<long> cluster::peers_then_stop() {
  const long rc = co_await all_peer_loops(0, peers_.size());
  // Every link is closed; nothing can enqueue new work. Drain the pumps.
  stopping_.store(true, std::memory_order_release);
  co_return rc;
}

task<long> cluster::handle_frame(std::size_t slot, frame f) {
  peer& p = *peers_[slot];
  if (cfg_.injected_delta_ns > 0) {
    // The artificial wire δ: the frame "arrives" this much later. Runs on
    // the forked handler, so the link's throughput is unaffected — this
    // models latency, not bandwidth.
    co_await io::sleep_for(r_,
                           std::chrono::nanoseconds(cfg_.injected_delta_ns));
  }
  switch (f.type) {
    case frame_type::spawn: {
      spawn_msg m;
      if (!decode_spawn(f, m)) break;
      {
        std::lock_guard<std::mutex> lk(queue_mu_);
        queue_.push_back(m);
      }
      co_return 0;
    }
    case frame_type::result: {
      result_msg m;
      if (!decode_result(f, m)) break;
      complete_local(m, p.id);
      co_return 0;
    }
    case frame_type::steal_request: {
      steal_request_msg m;
      if (!decode_steal_request(f, m)) break;
      std::vector<spawn_msg> grant;
      const std::uint32_t cap =
          m.max_items < kMaxStealBatch ? m.max_items : kMaxStealBatch;
      {
        std::lock_guard<std::mutex> lk(queue_mu_);
        while (grant.size() < cap && !queue_.empty()) {
          // Grant from the back: the coldest work travels, exactly like an
          // intra-node thief taking the top of a deque.
          grant.push_back(queue_.back());
          queue_.pop_back();
        }
      }
      ctr_.granted_items.fetch_add(grant.size(), std::memory_order_relaxed);
      std::vector<unsigned char> b;
      encode_steal_grant(b, grant);
      co_await send_bytes(slot, std::move(b));
      co_return 0;
    }
    case frame_type::steal_grant: {
      std::vector<spawn_msg> items;
      if (!decode_steal_grant(f, items)) break;
      const std::int64_t t0 =
          p.probe_sent_ns.exchange(0, std::memory_order_relaxed);
      if (t0 != 0) {
        const std::int64_t rtt = now_ns() - t0;
        {
          std::lock_guard<std::mutex> lk(p.stats_mu);
          p.rtt_hist.record(static_cast<std::uint64_t>(rtt > 0 ? rtt : 0));
        }
        ewma_update(p.rtt_ewma_ns, rtt);
      }
      if (items.empty()) {
        ctr_.empty_grants.fetch_add(1, std::memory_order_relaxed);
        co_return 0;
      }
      co_await execute_items(std::move(items), true);
      co_return 0;
    }
    case frame_type::hello:
    case frame_type::shutdown:
      break;  // illegal mid-stream (SHUTDOWN is consumed by peer_loop)
  }
  // A verified frame whose payload does not parse (or a frame type that is
  // illegal mid-stream, like HELLO): protocol violation, drop the peer.
  note_wire_error(p, wire_error::bad_payload);
  p.down.store(true, std::memory_order_release);
  co_return -EPROTO;
}

// --- execution ----------------------------------------------------------

task<void> cluster::execute_items(std::vector<spawn_msg> items, bool stolen) {
  if (items.empty()) co_return;
  if (items.size() == 1) {
    co_await execute_item(items[0], stolen);
    co_return;
  }
  const std::size_t mid = items.size() / 2;
  std::vector<spawn_msg> right(items.begin() + static_cast<std::ptrdiff_t>(mid),
                               items.end());
  items.resize(mid);
  co_await fork2(execute_items(std::move(items), stolen),
                 execute_items(std::move(right), stolen));
}

task<void> cluster::execute_item(spawn_msg m, bool stolen) {
  inflight_execs_.fetch_add(1, std::memory_order_relaxed);
  ctr_.executed.fetch_add(1, std::memory_order_relaxed);
  if (stolen) ctr_.stolen_executed.fetch_add(1, std::memory_order_relaxed);
  result_msg rm;
  rm.call_id = m.call_id;
  const std::int64_t t0 = now_ns();
  auto it = handlers_.find(m.work_id);
  if (it == handlers_.end()) {
    rm.status = static_cast<std::uint32_t>(call_status::no_handler);
  } else {
    // Execute as a request of its own, joined to the caller's span tree
    // through the wire-propagated (trace_id, parent_span) — this is what
    // makes the merged multi-node trace close.
    bool began = false;
    if (m.trace_id != 0) {
      began = co_await obs::begin_request(m.trace_id, m.parent_span);
    }
    rm.value = co_await it->second(m.arg);
    if (began) co_await obs::end_request();
    note_grain(now_ns() - t0);
  }
  inflight_execs_.fetch_sub(1, std::memory_order_relaxed);
  co_await route_result(m.origin, rm);
}

task<void> cluster::route_result(std::uint32_t origin, result_msg rm) {
  if (origin == cfg_.node_id) {
    complete_local(rm, cfg_.node_id);
    co_return;
  }
  const std::size_t slot = slot_of(origin);
  if (slot >= peers_.size()) {
    ctr_.dropped_results.fetch_add(1, std::memory_order_relaxed);
    co_return;
  }
  ctr_.results_routed.fetch_add(1, std::memory_order_relaxed);
  std::vector<unsigned char> b;
  encode_result(b, rm);
  co_await send_bytes(slot, std::move(b));
}

void cluster::complete_local(const result_msg& rm, std::uint32_t exec_node) {
  pending_call* pc = nullptr;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    auto it = pending_.find(rm.call_id);
    if (it != pending_.end()) {
      pc = it->second;
      pending_.erase(it);
    }
  }
  if (pc == nullptr) {
    ctr_.dropped_results.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  pc->value = rm.value;
  pc->status = rm.status;
  pc->exec_node = exec_node;
  const int prev =
      pc->state.exchange(pending_call::done, std::memory_order_acq_rel);
  if (prev == pending_call::armed) {
    // Attribute the fire to the executing node: remote-kind spans route
    // their delivery hop to the peer/<id> trace lane via fire_shard.
    rt::tl_completer_lane = exec_node;
    pc->resume.fire();
    rt::tl_completer_lane = 0;
  }
}

// --- pumps --------------------------------------------------------------

task<long> cluster::pump_tree() {
  if (cfg_.policy == remote_steal_policy::never) {
    co_return co_await local_pump();
  }
  auto [a, b] = co_await fork2(local_pump(), steal_pump());
  co_return a != 0 ? a : b;
}

task<long> cluster::local_pump() {
  for (;;) {
    spawn_msg m;
    bool have = false;
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (!queue_.empty()) {
        m = queue_.front();
        queue_.pop_front();
        have = true;
      }
    }
    if (have) {
      // Recurse on the left (keep pumping inline), execute on the right
      // (stealable by the node's other workers) — the Fig. 3 shape.
      auto [rest, one] = co_await fork2(local_pump(), execute_item(m, false));
      (void)one;
      co_return rest;
    }
    if (stopping_.load(std::memory_order_acquire)) co_return 0;
    co_await io::sleep_for(r_, kPumpPoll);
  }
}

bool cluster::should_probe(const peer& p) const {
  switch (cfg_.policy) {
    case remote_steal_policy::never:
      return false;
    case remote_steal_policy::always:
      return true;
    case remote_steal_policy::threshold:
      break;
  }
  const std::int64_t rtt = p.rtt_ewma_ns.load(std::memory_order_relaxed);
  if (rtt == 0) return true;  // no measurement yet: optimistic bootstrap
  std::int64_t grain = grain_ewma_ns_.load(std::memory_order_relaxed);
  if (grain == 0) grain = cfg_.assumed_grain_ns;
  // Gast-style crossover: a probe is worth its latency while the RTT is
  // below the work it is expected to transfer (batch × grain, with a
  // configurable slack factor).
  const double budget =
      cfg_.rtt_factor * static_cast<double>(cfg_.steal_batch) *
      static_cast<double>(grain);
  return static_cast<double>(rtt) < budget;
}

task<long> cluster::steal_pump() {
  std::size_t rr = 0;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) co_return 0;
    bool idle;
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      idle = queue_.empty();
    }
    idle = idle && inflight_execs_.load(std::memory_order_relaxed) == 0;
    if (idle && !peers_.empty()) {
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        peer& v = *peers_[(rr + i) % peers_.size()];
        const std::size_t slot = (rr + i) % peers_.size();
        if (!v.up.load(std::memory_order_acquire) ||
            v.down.load(std::memory_order_acquire)) {
          continue;
        }
        if (v.probe_sent_ns.load(std::memory_order_relaxed) != 0) continue;
        if (!should_probe(v)) continue;
        v.probe_sent_ns.store(now_ns(), std::memory_order_relaxed);
        ctr_.probes.fetch_add(1, std::memory_order_relaxed);
        std::vector<unsigned char> b;
        encode_steal_request(b,
                             steal_request_msg{cfg_.node_id, cfg_.steal_batch});
        co_await send_bytes(slot, std::move(b));
        break;
      }
      rr = (rr + 1) % peers_.size();
    }
    co_await io::sleep_for(r_,
                           std::chrono::nanoseconds(cfg_.probe_backoff_ns));
  }
}

// --- public entry points ------------------------------------------------

task<long> cluster::serve() {
  LHWS_ASSERT(!peers_.empty() && "a cluster of one has no one to serve");
  auto [a, b] = co_await fork2(peers_then_stop(), pump_tree());
  co_return a != 0 ? a : b;
}

task<std::uint64_t> cluster::call(std::uint32_t target, std::uint64_t work_id,
                                  std::uint64_t arg) {
  ctr_.calls.fetch_add(1, std::memory_order_relaxed);
  pending_call pc;
  const std::uint64_t id =
      next_call_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_[id] = &pc;
  }
  const obs::span_ref ref = co_await obs::current_span();
  spawn_msg m;
  m.call_id = id;
  m.work_id = work_id;
  m.arg = arg;
  m.trace_id = ref.trace_id;
  m.parent_span = ref.span_id;
  m.origin = cfg_.node_id;
  if (target == cfg_.node_id) {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.push_back(m);
  } else {
    const std::size_t slot = slot_of(target);
    if (slot >= peers_.size() ||
        peers_[slot]->down.load(std::memory_order_acquire)) {
      // The link is gone: fail the call instead of waiting forever. (A
      // link that dies *after* the send leaves the call pending — callers
      // own cluster health; the fuzz/robustness paths never use call().)
      std::lock_guard<std::mutex> lk(pending_mu_);
      pending_.erase(id);
      co_return 0;
    }
    std::vector<unsigned char> b;
    encode_spawn(b, m);
    co_await send_bytes(slot, std::move(b));
  }
  co_await join_awaiter{pc};
  co_return pc.status == static_cast<std::uint32_t>(call_status::ok)
      ? pc.value
      : 0;
}

task<void> cluster::stop() {
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    peer& p = *peers_[slot];
    if (!p.up.load(std::memory_order_acquire) ||
        p.down.load(std::memory_order_acquire)) {
      continue;
    }
    std::vector<unsigned char> b;
    encode_shutdown(b);
    co_await send_bytes(slot, std::move(b));
  }
  stopping_.store(true, std::memory_order_release);
}

// --- observability ------------------------------------------------------

void cluster::note_wire_error(peer& p, wire_error e) {
  {
    std::lock_guard<std::mutex> lk(p.stats_mu);
    p.errs.bump(e);
  }
  ctr_.wire_errors.fetch_add(1, std::memory_order_relaxed);
}

void cluster::note_grain(std::int64_t exec_ns) {
  if (exec_ns > 0) ewma_update(grain_ewma_ns_, exec_ns);
}

cluster_stats cluster::stats() const {
  cluster_stats s;
  s.calls = ctr_.calls.load(std::memory_order_relaxed);
  s.executed = ctr_.executed.load(std::memory_order_relaxed);
  s.stolen_executed = ctr_.stolen_executed.load(std::memory_order_relaxed);
  s.probes = ctr_.probes.load(std::memory_order_relaxed);
  s.empty_grants = ctr_.empty_grants.load(std::memory_order_relaxed);
  s.granted_items = ctr_.granted_items.load(std::memory_order_relaxed);
  s.results_routed = ctr_.results_routed.load(std::memory_order_relaxed);
  s.dropped_results = ctr_.dropped_results.load(std::memory_order_relaxed);
  s.wire_errors = ctr_.wire_errors.load(std::memory_order_relaxed);
  s.bytes_tx = ctr_.bytes_tx.load(std::memory_order_relaxed);
  s.bytes_rx = ctr_.bytes_rx.load(std::memory_order_relaxed);
  return s;
}

obs::log_histogram cluster::peer_rtt_hist(std::size_t slot) const {
  std::lock_guard<std::mutex> lk(peers_[slot]->stats_mu);
  return peers_[slot]->rtt_hist;
}

wire_error_counters cluster::peer_wire_errors(std::size_t slot) const {
  std::lock_guard<std::mutex> lk(peers_[slot]->stats_mu);
  return peers_[slot]->errs;
}

}  // namespace lhws::dist
