// Parallel combinators built on fork2 — the library-level analogues of the
// paper's example programs.
//
//   map_reduce  — Figure 8's distMapReduce: binary divide-and-conquer over
//                 an index range; the leaf mapper is any task-returning
//                 callable (typically one that awaits a latency operation).
//   parallel_for— fork-join iteration with a sequential grain.
#pragma once

#include <cstddef>

#include "core/fork_join.hpp"
#include "core/task.hpp"

namespace lhws {

// Figure 8. `mapper(i)` returns task<R> for leaf i; `reducer` combines two
// R values (associative, with identity `id` for the empty range).
template <typename R, typename Mapper, typename Reducer>
task<R> map_reduce(std::size_t lo, std::size_t hi, R id, Mapper mapper,
                   Reducer reducer) {
  const std::size_t n = hi - lo;
  if (n == 0) co_return id;
  if (n == 1) co_return co_await mapper(lo);
  const std::size_t piv = lo + n / 2;
  auto [res1, res2] =
      co_await fork2(map_reduce(lo, piv, id, mapper, reducer),
                     map_reduce(piv, hi, id, mapper, reducer));
  co_return reducer(std::move(res1), std::move(res2));
}

// Fork-join loop: body(i) runs for each i in [lo, hi); ranges of at most
// `grain` indices run sequentially.
template <typename Body>
task<void> parallel_for(std::size_t lo, std::size_t hi, std::size_t grain,
                        Body body) {
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
    co_return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  co_await fork2(parallel_for(lo, mid, grain, body),
                 parallel_for(mid, hi, grain, body));
}

// Task-producing variant: body(i) returns task<void> (so leaves may await
// latency operations).
template <typename Body>
task<void> parallel_for_tasks(std::size_t lo, std::size_t hi, Body body) {
  const std::size_t n = hi - lo;
  if (n == 0) co_return;
  if (n == 1) {
    co_await body(lo);
    co_return;
  }
  const std::size_t mid = lo + n / 2;
  co_await fork2(parallel_for_tasks(lo, mid, body),
                 parallel_for_tasks(mid, hi, body));
}

namespace detail {

template <typename T>
task<void> when_all_range(std::vector<task<T>>& tasks, std::vector<T>& out,
                          std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) {
    out[lo] = co_await std::move(tasks[lo]);
    co_return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  co_await fork2(when_all_range(tasks, out, lo, mid),
                 when_all_range(tasks, out, mid, hi));
}

}  // namespace detail

// Runs all tasks in parallel (binary fork2 tree); awaits to a vector of
// their results in input order. T must be default-constructible.
template <typename T>
task<std::vector<T>> when_all(std::vector<task<T>> tasks) {
  std::vector<T> out(tasks.size());
  if (!tasks.empty()) {
    co_await detail::when_all_range(tasks, out, 0, tasks.size());
  }
  co_return out;
}

}  // namespace lhws
