// Out-of-line root-completion hook: breaks the header cycle between
// core/task.hpp (which must not include the scheduler) and the runtime.
#include "core/task.hpp"
#include "runtime/scheduler_core.hpp"

namespace lhws::detail {

void signal_root_done(rt::scheduler_core& sched) noexcept {
  sched.signal_done();
}

}  // namespace lhws::detail
