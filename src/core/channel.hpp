// lhws::channel<T> — an unbounded multi-producer queue whose receive
// operation is a latency-incurring dependence: a receiver that finds the
// channel empty suspends exactly like any heavy edge (Fig. 3's handleChild)
// and is delivered back to its deque by whichever sender satisfies it.
//
// This is the primitive behind streaming/server workloads (the paper's
// Figure 10 takes inputs "one-by-one from a user"; a channel is that input
// stream with multiple possible producers).
//
//   channel<int> ch;
//   ch.send(42);                       // any thread or task
//   std::optional<int> v = co_await ch.receive();   // task only
//   ch.close();                        // receivers then get nullopt
//
// Engine behaviour mirrors event<T>: the LHWS engine suspends the awaiting
// continuation; the WS engine blocks the worker.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "core/task.hpp"
#include "runtime/resume_handle.hpp"
#include "runtime/scheduler_core.hpp"

namespace lhws {

template <typename T>
class channel {
 public:
  channel() = default;
  channel(const channel&) = delete;
  channel& operator=(const channel&) = delete;

  // Delivers one value. If a receiver is suspended, it is resumed with the
  // value directly (no queue round-trip). Callable from anywhere.
  void send(T value) {
    receive_waiter* waiter = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      LHWS_ASSERT(!closed_ && "send on closed channel");
      if (!waiters_.empty()) {
        waiter = waiters_.front();
        waiters_.pop_front();
        waiter->result.emplace(std::move(value));
      } else {
        queue_.push_back(std::move(value));
      }
    }
    if (waiter != nullptr) {
      waiter->fire();
    } else {
      cv_.notify_one();
    }
  }

  // Closes the channel: queued values still drain; receivers then observe
  // nullopt. Suspended receivers are woken with nullopt immediately.
  void close() {
    std::deque<receive_waiter*> drained;
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
      drained.swap(waiters_);
    }
    for (receive_waiter* w : drained) w->fire();
    cv_.notify_all();
  }

  [[nodiscard]] auto receive() noexcept { return receive_awaiter{*this}; }

  // Non-suspending probe (e.g. for polling loops / tests).
  std::optional<T> try_receive() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v(std::move(queue_.front()));
    queue_.pop_front();
    return v;
  }

 private:
  struct receive_waiter {
    std::optional<T> result{};  // filled by the sender (empty on close)
    rt::resume_handle resume{};

    // callback(v, q): deliver the suspended receiver back to its deque.
    void fire() { resume.fire(); }
  };

  struct [[nodiscard]] receive_awaiter {
    channel& ch;
    receive_waiter waiter{};

    bool await_ready() noexcept { return false; }

    template <typename Promise>
    bool await_suspend(std::coroutine_handle<Promise> h) {
      rt::worker* w = rt::worker::current();
      LHWS_ASSERT(w != nullptr &&
                  "channel receive may only be awaited inside a run");
      if (w->sched().config().engine == rt::engine_mode::ws) {
        // Blocking baseline.
        std::unique_lock<std::mutex> lock(ch.mu_);
        w->note_blocked_wait();
        ch.cv_.wait(lock, [&] { return !ch.queue_.empty() || ch.closed_; });
        if (!ch.queue_.empty()) {
          waiter.result.emplace(std::move(ch.queue_.front()));
          ch.queue_.pop_front();
        }
        return false;
      }
      std::unique_lock<std::mutex> lock(ch.mu_);
      if (!ch.queue_.empty()) {
        waiter.result.emplace(std::move(ch.queue_.front()));
        ch.queue_.pop_front();
        return false;
      }
      if (ch.closed_) return false;  // nullopt result
      // Suspend per Fig. 3: the receiver belongs to the active deque.
      waiter.resume.arm(w, h, obs::promise_span(h), obs::span_kind::channel);
      ch.waiters_.push_back(&waiter);
      return true;
    }

    std::optional<T> await_resume() noexcept {
      return std::move(waiter.result);
    }
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  std::deque<receive_waiter*> waiters_;
  bool closed_ = false;
};

}  // namespace lhws
