// Public scheduler facade.
//
//   lhws::scheduler_options opts;
//   opts.workers = 8;
//   opts.engine = lhws::engine::latency_hiding;   // or engine::blocking
//   lhws::scheduler sched(opts);
//   int result = sched.run(my_root_task());
//
// Each run() constructs a fresh worker pool, executes the root task to
// completion, and records run statistics retrievable via stats().
#pragma once

#include <sstream>
#include <string>

#include "core/task.hpp"
#include "obs/metrics.hpp"
#include "runtime/scheduler_core.hpp"

namespace lhws {

// Friendlier public names for the two engines of the paper's comparison.
enum class engine : std::uint8_t {
  latency_hiding,  // the paper's LHWS algorithm (Fig. 3)
  blocking,        // standard work stealing; latency blocks the worker
};

struct scheduler_options {
  unsigned workers = std::thread::hardware_concurrency();
  engine engine_kind = engine::latency_hiding;
  rt::runtime_steal_policy steal = rt::runtime_steal_policy::random_worker;
  rt::timer_mode timer = rt::timer_mode::dedicated_thread;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::size_t deque_pool_capacity = std::size_t{1} << 16;
  // Record a Chrome trace-event timeline of the run (scheduler::trace_json).
  bool trace = false;
  // Per-worker trace buffer cap in events (0 = unbounded); overflow is
  // dropped and counted in stats().trace_events_dropped.
  std::size_t trace_capacity = rt::trace_buffer::kDefaultCapacity;
  // Record per-worker latency histograms (scheduler::histograms()).
  bool metrics = false;
  // Background gauge sampler cadence in microseconds (0 = off); samples
  // appear as Perfetto counter tracks in trace_json().
  std::uint32_t sample_interval_us = 0;
  // Causal span tracing (DESIGN.md §13): per-request critical-path
  // accumulators and per-heavy-edge span records (scheduler::spans(),
  // scheduler::requests(), and the trace's flow events + "spans"/"requests"
  // metadata). Off by default and zero-cost when off; a request must also
  // opt in with co_await obs::begin_request().
  bool spans = false;
  // Per-worker span-record cap; overflow is dropped and counted in
  // stats().span_records_dropped.
  std::uint64_t span_capacity = std::uint64_t{1} << 20;
  // Adaptive idle policy (see rt::scheduler_config): spin rounds, yield
  // rounds, then condvar park bounded by the timeout. idle_park_timeout_us
  // = 0 disables parking; parking is also off under timer_mode::polled.
  std::uint32_t idle_spin_limit = 6;
  std::uint32_t idle_yield_limit = 16;
  std::uint32_t idle_park_timeout_us = 2000;
  // Reactor shards for the sharded io plane (DESIGN.md §14). 0 = one shard
  // per worker, the co-location default; the value is resolved by
  // resolved_reactor_shards() at the point the io::reactor is constructed.
  unsigned reactor_shards = 0;

  [[nodiscard]] unsigned resolved_reactor_shards() const noexcept {
    if (reactor_shards != 0) return reactor_shards;
    return workers != 0 ? workers : 1;
  }
};

class scheduler {
 public:
  explicit scheduler(const scheduler_options& opts = {}) : opts_(opts) {}

  // Runs `root` to completion on a fresh worker pool; returns its result
  // (rethrowing any exception the task chain raised). Blocks the caller.
  template <typename T>
  T run(task<T> root) {
    rt::scheduler_core core(to_config());
    root.handle().promise().root_sched = &core;
    core.run_root(root.handle());
    stats_ = core.last_run_stats();
    hists_ = core.last_run_histograms();
    spans_ = core.last_run_spans();
    requests_ = core.last_run_requests();
    if (opts_.trace) {
      std::ostringstream trace_stream;
      core.write_trace(trace_stream);
      trace_json_ = trace_stream.str();
    }
    return root.take();
  }

  // Chrome trace-event JSON of the last run (empty unless options().trace).
  // Load in chrome://tracing or ui.perfetto.dev.
  [[nodiscard]] const std::string& trace_json() const noexcept {
    return trace_json_;
  }

  // Statistics of the most recent run.
  [[nodiscard]] const rt::run_stats& stats() const noexcept { return stats_; }

  // Merged latency histograms of the most recent run (all-zero unless
  // options().metrics).
  [[nodiscard]] const obs::latency_histograms& histograms() const noexcept {
    return hists_;
  }

  // Committed heavy-edge spans / completed request records of the most
  // recent run (empty unless options().spans and some request opened a
  // scope via obs::begin_request).
  [[nodiscard]] const std::vector<obs::span_record>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<obs::request_record>& requests()
      const noexcept {
    return requests_;
  }

  // Populates `reg` with the standard metric set of the most recent run:
  // scheduler counters (total and per-worker) plus the four latency
  // histograms. The registry snapshots counters at call time but borrows
  // the histograms — export before the next run() or this scheduler's
  // destruction.
  void export_metrics(obs::metrics_registry& reg) const {
    reg.add_counter("lhws_segments_total", "Coroutine segments executed",
                    stats_.segments_executed);
    reg.add_counter("lhws_steal_attempts_total", "Steal attempts",
                    stats_.steal_attempts);
    reg.add_counter("lhws_steals_total", "Successful steals",
                    stats_.successful_steals);
    reg.add_counter("lhws_failed_steals_empty_total",
                    "Failed steals: victim or snapshot empty",
                    stats_.failed_empty);
    reg.add_counter("lhws_failed_steals_contended_total",
                    "Failed steals: lost the top CAS to another thief",
                    stats_.failed_contended);
    reg.add_counter("lhws_parks_total", "Idle worker parks",
                    stats_.parks);
    reg.add_counter("lhws_park_timeouts_total",
                    "Parks that ended by timeout rather than a wake",
                    stats_.park_timeouts);
    reg.add_counter("lhws_unparks_total", "Wakes delivered to parked workers",
                    stats_.unparks);
    reg.add_counter("lhws_registry_republishes_total",
                    "Deque registry epoch republishes (add/remove)",
                    stats_.registry_republishes);
    reg.add_counter("lhws_resumes_direct_total",
                    "Single-resume drains injected without a batch",
                    stats_.resumes_direct);
    reg.add_counter("lhws_suspensions_total", "Continuations suspended",
                    stats_.suspensions);
    reg.add_counter("lhws_resumes_total", "Continuations re-injected",
                    stats_.resumes_delivered);
    reg.add_counter("lhws_deque_switches_total", "Deque switches",
                    stats_.deque_switches);
    reg.add_counter("lhws_trace_events_dropped_total",
                    "Trace events dropped at capacity",
                    stats_.trace_events_dropped);
    reg.add_counter("lhws_spans_total", "Heavy-edge spans committed",
                    stats_.span_records);
    reg.add_counter("lhws_requests_total", "Request records completed",
                    stats_.request_records);
    reg.add_counter("lhws_span_records_dropped_total",
                    "Span records dropped at the per-worker capacity",
                    stats_.span_records_dropped);
    reg.add_gauge("lhws_max_deques_per_worker",
                  "Peak deques owned by any worker (Lemma 7: <= U + 1)",
                  static_cast<double>(stats_.max_deques_per_worker));
    reg.add_gauge("lhws_max_concurrent_suspended",
                  "Peak simultaneously suspended continuations (observed U)",
                  static_cast<double>(stats_.max_concurrent_suspended));
    reg.add_gauge("lhws_elapsed_ms", "Wall-clock time of the last run",
                  stats_.elapsed_ms);
    reg.add_counter("lhws_alloc_magazine_hits_total",
                    "Slab allocations served from a local magazine free list",
                    stats_.alloc.magazine_hits);
    reg.add_counter("lhws_alloc_magazine_misses_total",
                    "Slab allocations that took the refill path",
                    stats_.alloc.magazine_misses);
    reg.add_counter("lhws_alloc_remote_pushes_total",
                    "Cross-thread frees routed to a remote-free list",
                    stats_.alloc.remote_pushes);
    reg.add_counter("lhws_alloc_remote_drained_total",
                    "Remote frees reclaimed by owning magazines",
                    stats_.alloc.remote_drained);
    reg.add_counter("lhws_alloc_fallback_total",
                    "Allocations served by the headered operator-new fallback",
                    stats_.alloc.fallback_allocs);
    reg.add_gauge("lhws_alloc_magazine_hit_rate",
                  "Fraction of slab-eligible allocations served locally",
                  stats_.alloc.hit_rate());
    reg.add_gauge("lhws_alloc_slab_bytes", "Live slab footprint in bytes",
                  static_cast<double>(stats_.alloc.slab_bytes));
    for (std::size_t w = 0; w < stats_.per_worker.size(); ++w) {
      const rt::worker_stats& ws = stats_.per_worker[w];
      const std::string label = "worker=\"" + std::to_string(w) + "\"";
      reg.add_counter("lhws_worker_segments_total",
                      "Segments executed per worker", ws.segments_executed,
                      label);
      reg.add_counter("lhws_worker_steals_total",
                      "Successful steals per worker", ws.successful_steals,
                      label);
      reg.add_gauge("lhws_worker_max_deques_owned",
                    "Peak deques owned per worker",
                    static_cast<double>(ws.max_deques_owned), label);
    }
    reg.add_histogram("lhws_wake_latency_ns",
                      "Resume delivery to owner drain latency",
                      &hists_.wake_latency);
    reg.add_histogram("lhws_steal_latency_ns", "Steal attempt latency",
                      &hists_.steal_latency);
    reg.add_histogram("lhws_segment_duration_ns",
                      "Thread segment execution time",
                      &hists_.segment_duration);
    reg.add_histogram("lhws_deque_lifetime_ns",
                      "Deque acquire-to-free lifetime",
                      &hists_.deque_lifetime);
  }

  [[nodiscard]] const scheduler_options& options() const noexcept {
    return opts_;
  }

 private:
  [[nodiscard]] rt::scheduler_config to_config() const noexcept {
    rt::scheduler_config cfg;
    cfg.workers = opts_.workers;
    cfg.engine = opts_.engine_kind == engine::latency_hiding
                     ? rt::engine_mode::lhws
                     : rt::engine_mode::ws;
    cfg.policy = opts_.steal;
    cfg.timer = opts_.timer;
    cfg.seed = opts_.seed;
    cfg.deque_pool_capacity = opts_.deque_pool_capacity;
    cfg.trace = opts_.trace;
    cfg.trace_capacity = opts_.trace_capacity;
    cfg.metrics = opts_.metrics;
    cfg.sample_interval_us = opts_.sample_interval_us;
    cfg.spans = opts_.spans;
    cfg.span_capacity = opts_.span_capacity;
    cfg.idle_spin_limit = opts_.idle_spin_limit;
    cfg.idle_yield_limit = opts_.idle_yield_limit;
    cfg.idle_park_timeout_us = opts_.idle_park_timeout_us;
    cfg.reactor_shards = opts_.resolved_reactor_shards();
    return cfg;
  }

  scheduler_options opts_;
  rt::run_stats stats_{};
  obs::latency_histograms hists_{};
  std::vector<obs::span_record> spans_;
  std::vector<obs::request_record> requests_;
  std::string trace_json_;
};

}  // namespace lhws
