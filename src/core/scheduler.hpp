// Public scheduler facade.
//
//   lhws::scheduler_options opts;
//   opts.workers = 8;
//   opts.engine = lhws::engine::latency_hiding;   // or engine::blocking
//   lhws::scheduler sched(opts);
//   int result = sched.run(my_root_task());
//
// Each run() constructs a fresh worker pool, executes the root task to
// completion, and records run statistics retrievable via stats().
#pragma once

#include <sstream>
#include <string>

#include "core/task.hpp"
#include "runtime/scheduler_core.hpp"

namespace lhws {

// Friendlier public names for the two engines of the paper's comparison.
enum class engine : std::uint8_t {
  latency_hiding,  // the paper's LHWS algorithm (Fig. 3)
  blocking,        // standard work stealing; latency blocks the worker
};

struct scheduler_options {
  unsigned workers = std::thread::hardware_concurrency();
  engine engine_kind = engine::latency_hiding;
  rt::runtime_steal_policy steal = rt::runtime_steal_policy::random_worker;
  rt::timer_mode timer = rt::timer_mode::dedicated_thread;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::size_t deque_pool_capacity = std::size_t{1} << 16;
  // Record a Chrome trace-event timeline of the run (scheduler::trace_json).
  bool trace = false;
};

class scheduler {
 public:
  explicit scheduler(const scheduler_options& opts = {}) : opts_(opts) {}

  // Runs `root` to completion on a fresh worker pool; returns its result
  // (rethrowing any exception the task chain raised). Blocks the caller.
  template <typename T>
  T run(task<T> root) {
    rt::scheduler_core core(to_config());
    root.handle().promise().root_sched = &core;
    core.run_root(root.handle());
    stats_ = core.last_run_stats();
    if (opts_.trace) {
      std::ostringstream trace_stream;
      core.write_trace(trace_stream);
      trace_json_ = trace_stream.str();
    }
    return root.take();
  }

  // Chrome trace-event JSON of the last run (empty unless options().trace).
  // Load in chrome://tracing or ui.perfetto.dev.
  [[nodiscard]] const std::string& trace_json() const noexcept {
    return trace_json_;
  }

  // Statistics of the most recent run.
  [[nodiscard]] const rt::run_stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const scheduler_options& options() const noexcept {
    return opts_;
  }

 private:
  [[nodiscard]] rt::scheduler_config to_config() const noexcept {
    rt::scheduler_config cfg;
    cfg.workers = opts_.workers;
    cfg.engine = opts_.engine_kind == engine::latency_hiding
                     ? rt::engine_mode::lhws
                     : rt::engine_mode::ws;
    cfg.policy = opts_.steal;
    cfg.timer = opts_.timer;
    cfg.seed = opts_.seed;
    cfg.deque_pool_capacity = opts_.deque_pool_capacity;
    cfg.trace = opts_.trace;
    return cfg;
  }

  scheduler_options opts_;
  rt::run_stats stats_{};
  std::string trace_json_;
};

}  // namespace lhws
