// lhws::event<T> — a one-shot completion event, the runtime's
// latency-incurring dependence (a heavy edge in the dag model).
//
// co_await ev behaves by engine:
//   - LHWS: if the value is not yet set, the awaiting continuation suspends
//     per Fig. 3's handleChild: the active deque's suspension counter is
//     bumped and a callback is installed; whoever calls set() later delivers
//     the continuation back to that deque (callback(v, q)) and registers
//     the deque with its owner. The worker meanwhile runs other work — the
//     latency is hidden.
//   - WS (baseline): the awaiting WORKER blocks until set() — latency is
//     not hidden, exactly the comparison scheduler of Section 6.1.
//
// set() may be called from any thread: a timer, another worker, or an
// external producer thread.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>

#include "core/task.hpp"
#include "runtime/resume_handle.hpp"
#include "runtime/scheduler_core.hpp"

namespace lhws {

template <typename T>
class event {
 public:
  event() = default;
  event(const event&) = delete;
  event& operator=(const event&) = delete;

  // Completes the event. One-shot: calling set twice is a program error.
  void set(T value) {
    value_.emplace(std::move(value));
    const state old = state_.exchange(state::value_ready,
                                      std::memory_order_acq_rel);
    LHWS_ASSERT(old != state::value_ready && "event set twice");
    if (old == state::waiter_installed) {
      fire_resume();
    }
    // Wake a blocking (WS-engine) waiter, if any.
    {
      std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool ready() const noexcept {
    return state_.load(std::memory_order_acquire) == state::value_ready;
  }

  // Class-scope awaiter: local structs cannot hold the member template
  // await_suspend needs to see the awaiting promise (span inheritance).
  struct [[nodiscard]] awaiter {
    event& ev;

    bool await_ready() const noexcept { return ev.ready(); }

    template <typename Promise>
    bool await_suspend(std::coroutine_handle<Promise> h) {
      rt::worker* w = rt::worker::current();
      LHWS_ASSERT(w != nullptr &&
                  "events may only be awaited inside a scheduler run");
      if (w->sched().config().engine == rt::engine_mode::ws) {
        // Baseline: block the worker thread until completion.
        w->note_blocked_wait();
        std::unique_lock<std::mutex> lock(ev.mu_);
        ev.cv_.wait(lock, [&] { return ev.ready(); });
        return false;  // never actually suspend
      }
      // LHWS: Fig. 3 lines 18-20.
      ev.resume_.arm(w, h, obs::promise_span(h), obs::span_kind::event);
      state expected = state::empty;
      if (ev.state_.compare_exchange_strong(expected,
                                            state::waiter_installed,
                                            std::memory_order_release,
                                            std::memory_order_acquire)) {
        return true;  // suspended; set() will deliver the resume
      }
      // The value arrived between await_ready and here: do not suspend.
      ev.resume_.cancel();
      return false;
    }

    T await_resume() { return std::move(*ev.value_); }
  };

  [[nodiscard]] auto operator co_await() noexcept { return awaiter{*this}; }

 private:
  enum class state : std::uint8_t { empty, waiter_installed, value_ready };

  // callback(v, q) of Fig. 3, via the shared glue in rt::resume_handle.
  void fire_resume() { resume_.fire(); }

  std::atomic<state> state_{state::empty};
  std::optional<T> value_{};
  rt::resume_handle resume_{};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace lhws
