// lhws::task<T> — a lazily-started coroutine representing one user-level
// thread in the paper's sense. Tasks compose two ways:
//
//   co_await some_task          — serial: run the child now, resume the
//                                 parent when it finishes (a light edge).
//   co_await fork2(a, b)        — the paper's fork2 (Figs. 8/10): spawn b
//                                 as the RIGHT child (pushed to the active
//                                 deque, stealable), run a inline as the
//                                 LEFT child, resume the parent when both
//                                 have joined.
//
// A task that performs a latency-incurring operation (core/sync.hpp,
// core/latency.hpp) suspends without blocking its worker under the LHWS
// engine — the algorithmic contribution this library reproduces.
#pragma once

#include <atomic>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "mem/slab.hpp"
#include "obs/span.hpp"
#include "support/config.hpp"

namespace lhws {

namespace rt {
class scheduler_core;
}

namespace detail {

// Join state for fork2: both children decrement; the last one resumes the
// parent (left-child-continues discipline: whoever finishes last carries
// on, so no worker ever waits at a join).
struct join_state {
  std::atomic<unsigned> pending{2};
  std::coroutine_handle<> parent{};
};

struct promise_base {
  std::coroutine_handle<> continuation{};  // serial-await parent
  join_state* join = nullptr;              // fork2 membership
  rt::scheduler_core* root_sched = nullptr;  // set on the root task only
  std::exception_ptr exception{};
  // Causal-span context (DESIGN.md §13): which request this thread segment
  // belongs to and where it sits in the span tree. Copied parent->child at
  // serial awaits and fork2; {nullptr, 0} outside a request scope.
  obs::span_context span{};

  // Coroutine frames come from the slab: a fork2-heavy run allocates and
  // frees two frames per fork, and under work stealing a frame born on one
  // worker routinely dies on another — exactly the local-reuse +
  // remote-free pattern src/mem/ is built for. Inherited by every
  // task<T>::promise_type, so this covers all task frames. Frames larger
  // than the biggest bucket (or allocated after thread teardown) silently
  // take the allocator's headered ::operator new fallback.
  static void* operator new(std::size_t n) { return mem::allocate(n); }
  static void operator delete(void* p) noexcept { mem::deallocate(p); }
};

void signal_root_done(rt::scheduler_core& sched) noexcept;

// Decides who runs next when a task finishes (the "enabling" step).
struct final_awaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    promise_base& p = h.promise();
    if (p.join != nullptr) {
      if (p.join->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        return p.join->parent;  // last child enables the continuation
      }
      return std::noop_coroutine();  // sibling still running: back to loop
    }
    if (p.continuation) return p.continuation;
    if (p.root_sched != nullptr) signal_root_done(*p.root_sched);
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] task {
 public:
  struct promise_type : detail::promise_base {
    std::optional<T> value{};

    task get_return_object() noexcept {
      return task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    detail::final_awaiter final_suspend() const noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() noexcept {
      this->exception = std::current_exception();
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  task() noexcept = default;
  explicit task(handle_type h) noexcept : handle_(h) {}
  task(task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  task& operator=(task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  [[nodiscard]] handle_type handle() const noexcept { return handle_; }
  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }

  // Extracts the result after completion (rethrows a stored exception).
  T take() {
    promise_type& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    LHWS_ASSERT(p.value.has_value() && "task not completed");
    return std::move(*p.value);
  }

  // Serial composition: runs the child immediately (light-edge semantics);
  // the awaiting parent resumes when it returns. Class-scope awaiter: local
  // structs cannot hold the member template await_suspend needs to see the
  // parent's promise (for span-context inheritance).
  struct awaiter {
    task child;
    bool await_ready() const noexcept { return false; }
    template <typename Parent>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Parent> parent) noexcept {
      promise_type& p = child.handle().promise();
      p.continuation = parent;
      // Light edge: the child joins the parent's request (span context
      // copied by value; spans the child opens branch off the parent's
      // current tree position).
      if (obs::span_context* ctx = obs::promise_span(parent)) {
        p.span = *ctx;
      }
      return child.handle();
    }
    T await_resume() { return child.take(); }
  };

  auto operator co_await() && noexcept { return awaiter{std::move(*this)}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  handle_type handle_ = nullptr;
};

template <>
class [[nodiscard]] task<void> {
 public:
  struct promise_type : detail::promise_base {
    bool completed = false;

    task get_return_object() noexcept {
      return task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    detail::final_awaiter final_suspend() const noexcept { return {}; }
    void return_void() noexcept { completed = true; }
    void unhandled_exception() noexcept {
      this->exception = std::current_exception();
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  task() noexcept = default;
  explicit task(handle_type h) noexcept : handle_(h) {}
  task(task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  task& operator=(task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  [[nodiscard]] handle_type handle() const noexcept { return handle_; }
  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }

  void take() {
    promise_type& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    LHWS_ASSERT(p.completed && "task not completed");
  }

  // Defined after the class: a nested struct of an explicit specialization
  // is compiled in place, where task<void> is still incomplete.
  struct awaiter;

  awaiter operator co_await() && noexcept;

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  handle_type handle_ = nullptr;
};

struct task<void>::awaiter {
  task child;
  bool await_ready() const noexcept { return false; }
  template <typename Parent>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Parent> parent) noexcept {
    promise_type& p = child.handle().promise();
    p.continuation = parent;
    if (obs::span_context* ctx = obs::promise_span(parent)) {
      p.span = *ctx;
    }
    return child.handle();
  }
  void await_resume() { child.take(); }
};

inline task<void>::awaiter task<void>::operator co_await() && noexcept {
  return awaiter{std::move(*this)};
}

}  // namespace lhws
