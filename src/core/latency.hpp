// Simulated latency operations — the runtime analogue of a heavy edge of
// known weight, and exactly how the paper's benchmark works: "the benchmark
// simulates a latency of delta milliseconds by sleeping for delta
// milliseconds and then immediately returning 30" (Section 6.1).
//
//   co_await latency(sched, 50ms, value)
//
// Under the LHWS engine the continuation suspends and a timer (dedicated
// thread or worker polling, per scheduler_config::timer) completes it after
// the delay; the worker keeps executing other continuations. Under the WS
// engine the worker simply sleeps — the blocking baseline.
#pragma once

#include <chrono>

#include "core/task.hpp"
#include "runtime/resume_handle.hpp"
#include "runtime/scheduler_core.hpp"
#include "support/timing.hpp"

namespace lhws {

namespace detail {

template <typename T>
struct [[nodiscard]] latency_awaiter {
  std::int64_t delay_ns;
  T payload;

  // Fired by the event hub: complete the suspension.
  static void fire(void* arg) {
    static_cast<latency_awaiter*>(arg)->resume_.fire();
  }

  bool await_ready() const noexcept { return delay_ns <= 0; }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> h) {
    rt::worker* w = rt::worker::current();
    LHWS_ASSERT(w != nullptr &&
                "latency may only be awaited inside a scheduler run");
    if (w->sched().config().engine == rt::engine_mode::ws) {
      // The blocking baseline: occupy the worker for the full latency.
      w->note_blocked_wait();
      const std::int64_t t0 = now_ns();
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
      w->record_trace(rt::trace_kind::blocked, t0, now_ns());
      return false;
    }
    resume_.arm(w, h, obs::promise_span(h), obs::span_kind::timer);
    // The waiter is fully installed before the timer can fire.
    w->sched().hub().schedule(now_ns() + delay_ns, &latency_awaiter::fire,
                              this);
    return true;
  }

  T await_resume() noexcept { return std::move(payload); }

  rt::resume_handle resume_{};
};

}  // namespace detail

// Suspends for (at least) `delay`, then yields `value`. Models a remote
// fetch / user input / blocking read of known latency.
template <typename Rep, typename Period, typename T>
[[nodiscard]] auto latency(std::chrono::duration<Rep, Period> delay, T value) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(delay).count();
  return detail::latency_awaiter<T>{ns, std::move(value)};
}

// Valueless suspension: co_await delay(10ms). The task sleeps without
// occupying its worker (under the LHWS engine).
template <typename Rep, typename Period>
[[nodiscard]] auto delay(std::chrono::duration<Rep, Period> d) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return detail::latency_awaiter<char>{ns, 0};
}

}  // namespace lhws
