// fork2 — the paper's binary fork primitive (Figures 8 and 10).
//
// co_await fork2(e1, e2) suspends the caller at a join of width two, pushes
// e2's continuation onto the bottom of the worker's active deque (the RIGHT
// child — stealable), and immediately runs e1 (the LEFT child / the current
// thread's continuation, preserving the scheduler's non-preemption). The
// last child to finish resumes the caller; the awaited value is the pair of
// results.
#pragma once

#include <utility>

#include "core/task.hpp"
#include "runtime/scheduler_core.hpp"

namespace lhws {

namespace detail {

// fork2 of void tasks yields unit placeholders so the pair shape is uniform.
struct unit {};

template <typename T>
using fork_result_t = std::conditional_t<std::is_void_v<T>, unit, T>;

template <typename T>
fork_result_t<T> take_result(task<T>& t) {
  if constexpr (std::is_void_v<T>) {
    t.take();
    return unit{};
  } else {
    return t.take();
  }
}

template <typename A, typename B>
struct [[nodiscard]] fork2_awaiter {
  task<A> left;
  task<B> right;
  join_state join{};

  bool await_ready() const noexcept { return false; }

  template <typename Parent>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Parent> parent) {
    join.parent = parent;
    left.handle().promise().join = &join;
    right.handle().promise().join = &join;
    // Both children belong to the parent's request: copy the span context
    // by value before the right child becomes stealable.
    if (obs::span_context* ctx = obs::promise_span(parent)) {
      left.handle().promise().span = *ctx;
      right.handle().promise().span = *ctx;
    }
    rt::worker* w = rt::worker::current();
    LHWS_ASSERT(w != nullptr &&
                "fork2 may only be awaited inside a scheduler run");
    // Fig. 3 ordering: the spawned (right) child is pushed first, so the
    // left child keeps the highest priority.
    w->push_spawn(right.handle());
    return left.handle();
  }

  std::pair<fork_result_t<A>, fork_result_t<B>> await_resume() {
    // Take the left result first so a left-side exception wins (both
    // children have completed either way — the join guarantees it).
    auto a = take_result(left);
    auto b = take_result(right);
    return {std::move(a), std::move(b)};
  }
};

}  // namespace detail

// Forks two tasks; awaits to a pair of their results. The second argument
// is the spawned (stealable) child, matching the paper's fork2(e1, e2)
// where execution continues with e1.
template <typename A, typename B>
[[nodiscard]] auto fork2(task<A> e1, task<B> e2) {
  LHWS_ASSERT(e1.valid() && e2.valid());
  return detail::fork2_awaiter<A, B>{std::move(e1), std::move(e2)};
}

}  // namespace lhws
