// chk::atomic<T> / chk::var<T> — the instrumentation shims the checker
// injects into the lock-free structures via the Model policy (see
// support/atomic_model.hpp).
//
// chk::atomic mirrors the std::atomic surface the structures use (load,
// store, exchange, CAS, fetch_add/sub) but routes every operation through
// the active chk::engine, which serializes it at a scheduling point and
// evaluates it against the store-history memory model. chk::var wraps a
// plain (non-atomic) value and reports any access pair not ordered by
// happens-before as a data race.
//
// Values are shuttled through the engine as 64-bit patterns, so T must be
// trivially copyable and at most 8 bytes — the same constraint the deque
// already places on its elements.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "chk/engine.hpp"

namespace lhws::chk {

template <typename T>
concept ModelValue =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t);

template <ModelValue T>
std::uint64_t to_bits(T v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T));
  return bits;
}

template <ModelValue T>
T from_bits(std::uint64_t bits) noexcept {
  T v{};
  std::memcpy(&v, &bits, sizeof(T));
  return v;
}

template <ModelValue T>
class atomic {
 public:
  atomic() : atomic(T{}) {}

  explicit atomic(T initial) {
    engine::current()->loc_register(this, to_bits(initial));
  }

  ~atomic() { engine::current()->loc_destroy(this); }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    return from_bits<T>(engine::current()->atomic_load(
        const_cast<atomic*>(this), order));
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    engine::current()->atomic_store(this, to_bits(v), order);
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    return from_bits<T>(engine::current()->atomic_rmw(
        this, engine::rmw_kind::exchange, to_bits(v), order));
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    std::uint64_t ebits = to_bits(expected);
    const bool ok = engine::current()->atomic_cas(this, ebits, to_bits(desired),
                                                  success, failure);
    expected = from_bits<T>(ebits);
    return ok;
  }

  // The model has no spurious failures, so weak == strong.
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return compare_exchange_strong(expected, desired, success, failure);
  }

  T fetch_add(T v, std::memory_order order = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    return from_bits<T>(engine::current()->atomic_rmw(
        this, engine::rmw_kind::add, to_bits(v), order));
  }

  T fetch_sub(T v, std::memory_order order = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    return from_bits<T>(engine::current()->atomic_rmw(
        this, engine::rmw_kind::sub, to_bits(v), order));
  }
};

// A plain variable under happens-before surveillance. Reads and writes are
// NOT scheduling points (a data-race-free program's behaviour cannot depend
// on their interleaving; a racy one is reported regardless of order).
template <ModelValue T>
class var {
 public:
  explicit var(T initial = T{}, const char* label = nullptr) {
    engine::current()->var_register(this, to_bits(initial), label);
  }

  ~var() { engine::current()->var_destroy(this); }

  var(const var&) = delete;
  var& operator=(const var&) = delete;

  var& operator=(T v) {
    engine::current()->var_write(this, to_bits(v));
    return *this;
  }

  operator T() const {  // NOLINT(google-explicit-constructor) — mirrors std::atomic's implicit conversion so checked code reads identically
    return from_bits<T>(engine::current()->var_read(const_cast<var*>(this)));
  }

  T get() const { return static_cast<T>(*this); }
};

// The checker-side Model policy: drop-in replacement for lhws::real_model.
struct check_model {
  template <typename T>
  using atomic_type = chk::atomic<T>;

  static void fence(std::memory_order order) {
    engine::current()->fence(order);
  }
};

}  // namespace lhws::chk
