// The concurrency-checking engine: a relacy/loom-style virtual-thread
// scheduler plus an operational C11-ish memory model.
//
// One engine instance models ONE execution of a small concurrent test:
//   - Virtual threads are real std::threads gated by a token: exactly one
//     runs at a time, and at every instrumented operation the token holder
//     asks the decision source which thread runs next. Enumerating /
//     randomizing those decisions enumerates / samples interleavings.
//   - Atomic operations go through a store-history memory model: every
//     atomic location keeps its full modification order, and a load may
//     read any store that coherence, happens-before visibility, and the
//     seq_cst total order allow. Weak behaviours (stale reads) therefore
//     actually happen in the model, so missing fences produce real
//     algorithmic failures (duplicated/lost elements), not just warnings.
//   - Happens-before is tracked with vector clocks (release/acquire edges,
//     release/acquire/seq_cst fences, fork/join). Plain `chk::var`
//     accesses are checked FastTrack-style against those clocks and any
//     unordered conflicting pair is reported as a data race.
//
// Model simplifications (all on the conservative side — they can hide a
// weak behaviour, never invent an impossible one — except where noted):
//   - consume is treated as acquire.
//   - compare_exchange_weak never fails spuriously.
//   - A failed CAS reads the latest store in modification order.
//   - seq_cst atomic operations are also given seq_cst-fence visibility
//     (slightly stronger than C++11, matching how the algorithms here use
//     them).
//
// Deliberate weakenings ("mutations") can be switched on per run to verify
// that the checker would catch a missing/downgraded ordering; see
// `struct mutation`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chk/vclock.hpp"

namespace lhws::chk {

// Supplies every nondeterministic choice of one execution (which thread
// runs next, which store a load reads). Implementations: seeded random
// sampling and depth-first exhaustive enumeration (see explore.hpp).
class decision_source {
 public:
  virtual ~decision_source() = default;
  // Returns a value in [0, n). Only called with n >= 2.
  virtual std::uint32_t choose(std::uint32_t n) = 0;
};

// Deliberate memory-ordering downgrades, applied to every operation of the
// matching class before it reaches the model. Mutation tests assert that
// the checker reports a failure with one of these enabled and passes clean
// with all of them off.
struct mutation {
  bool weaken_sc_fence = false;       // seq_cst fences become no-ops
  bool weaken_release_store = false;  // release stores/RMWs become relaxed
  bool weaken_acquire_load = false;   // acquire loads become relaxed
  bool weaken_sc_op = false;          // seq_cst atomic ops become acq_rel
};

class engine {
 public:
  engine(unsigned num_threads, const mutation& mut, decision_source& decisions,
         std::uint64_t max_steps);
  ~engine();

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  // The engine modeling operations on the calling thread, or nullptr when
  // no execution is in flight (production code never has one). Defined in
  // engine.cpp: accessing the thread_local through the cross-TU init
  // wrapper trips a gcc -fsanitize=null false positive when inlined into
  // other TUs, so the accessor lives next to the variable's definition.
  static engine* current() noexcept;
  static void unbind() noexcept;

  // --- execution phases (driven by explore()) ---------------------------
  // Driver phase: instrumentation runs immediately, attributed to the
  // driver pseudo-thread; no scheduling decisions are consumed.
  void bind_driver() noexcept;
  // Transition setup -> running: fork happens-before edges to every
  // virtual thread and pick the first token holder.
  void start_threads();
  // Called by virtual thread `tid` before/after running its body.
  void enter_thread(unsigned tid) noexcept;
  void exit_thread(unsigned tid);
  // Transition running -> teardown: join happens-before edges back into
  // the driver. The driver may then inspect state race-free.
  void begin_teardown() noexcept;

  // --- instrumented operations (called via chk::atomic / chk::var) ------
  void loc_register(void* loc, std::uint64_t initial_bits);
  void loc_destroy(void* loc);
  std::uint64_t atomic_load(void* loc, std::memory_order order);
  void atomic_store(void* loc, std::uint64_t bits, std::memory_order order);
  enum class rmw_kind : std::uint8_t { add, sub, exchange };
  std::uint64_t atomic_rmw(void* loc, rmw_kind kind, std::uint64_t operand,
                           std::memory_order order);
  bool atomic_cas(void* loc, std::uint64_t& expected_bits,
                  std::uint64_t desired_bits, std::memory_order success,
                  std::memory_order failure);
  void fence(std::memory_order order);

  void var_register(void* loc, std::uint64_t initial_bits, const char* label);
  void var_destroy(void* loc);
  std::uint64_t var_read(void* loc);
  void var_write(void* loc, std::uint64_t bits);

  // --- results ----------------------------------------------------------
  // Records the first failure (invariant violation or detected race) of
  // this execution; the execution continues so threads unwind normally.
  void fail(const std::string& message);
  [[nodiscard]] bool failed() const;
  [[nodiscard]] std::string failure() const;
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  struct store_rec {
    std::uint64_t bits;     // stored value
    unsigned tid;           // storing thread
    std::uint64_t stamp;    // storing thread's clock component at the store
    vclock release;         // joined by acquire loads that read this store
  };

  struct atomic_loc {
    std::vector<store_rec> stores;           // index order == modification order
    std::array<std::size_t, max_threads> seen{};  // per-thread coherence floor
    std::size_t last_sc_store = SIZE_MAX;    // newest seq_cst store, if any
  };

  struct var_loc {
    std::uint64_t bits;
    const char* label;
    unsigned write_tid = 0;
    std::uint64_t write_stamp = 0;  // 0 = only the initial (driver) write
    vclock reads;                   // per-thread clock at last read
  };

  struct thread_state {
    vclock clock;          // happens-before clock
    vclock visible;        // stores guaranteed visible (>= clock coverage)
    vclock release_fence;  // clock at the last release fence (zero if none)
    vclock acq_pending;    // release clocks collected by relaxed loads
    bool finished = false;
  };

  // Must hold mu_. Blocks until this thread holds the token, consuming one
  // scheduling decision on entry (running phase only).
  void sched_point(std::unique_lock<std::mutex>& lock);
  void pass_token_locked();  // pick the next runnable thread
  unsigned self() const noexcept { return tl_tid_; }
  bool driver_phase() const noexcept;
  atomic_loc& loc_of(void* loc);
  std::uint32_t decide(std::uint32_t n);
  std::memory_order mutate_load(std::memory_order o) const noexcept;
  std::memory_order mutate_store(std::memory_order o) const noexcept;
  void apply_acquire(thread_state& t, const store_rec& s,
                     std::memory_order order);
  vclock store_release_clock(const thread_state& t,
                             std::memory_order order) const;
  void sc_interaction(thread_state& t, std::memory_order order);
  std::size_t readable_floor(const atomic_loc& l, const thread_state& t,
                             std::memory_order order) const;

  static thread_local engine* tl_engine_;
  static thread_local unsigned tl_tid_;

  const unsigned num_threads_;  // virtual threads (driver excluded)
  const mutation mut_;
  decision_source& decisions_;
  const std::uint64_t max_steps_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  enum class phase : std::uint8_t { setup, running, teardown } phase_;
  unsigned active_ = 0;    // token holder while running
  bool granted_ = false;   // active_ was handed the token and has not yet
                           // consumed the grant at a scheduling point
  unsigned live_ = 0;      // unfinished virtual threads
  std::uint64_t steps_ = 0;

  std::array<thread_state, max_threads> threads_{};
  vclock sc_clock_;  // stores published by seq_cst fences/ops so far
  std::unordered_map<void*, std::unique_ptr<atomic_loc>> atomics_;
  std::unordered_map<void*, std::unique_ptr<var_loc>> vars_;

  bool failed_ = false;
  std::string failure_;
};

// RAII: attribute instrumented operations on the current (driver) thread
// to `e` for the guard's lifetime.
class driver_scope {
 public:
  explicit driver_scope(engine& e) : eng_(e) { eng_.bind_driver(); }
  ~driver_scope();

  driver_scope(const driver_scope&) = delete;
  driver_scope& operator=(const driver_scope&) = delete;

 private:
  engine& eng_;
};

// Test-visible invariant check: records a model-checker failure (with the
// current interleaving kept exploring) instead of aborting the process.
inline void check(bool ok, const char* message) {
  if (!ok) {
    engine* e = engine::current();
    if (e != nullptr) e->fail(message);
  }
}

}  // namespace lhws::chk
