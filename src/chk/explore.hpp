// explore<Test>() — the model-checking driver.
//
// A Test models one small concurrent scenario:
//
//   struct my_test {
//     static constexpr unsigned num_threads = 2;
//     my_test();              // runs single-threaded (setup)
//     void thread(unsigned);  // runs on virtual thread [0, num_threads)
//     void finish();          // runs single-threaded after all join;
//                             // assert invariants via chk::check(...)
//   };
//
// Each execution constructs a fresh Test, runs its threads under the
// engine's cooperative token scheduler, and checks invariants. Two
// strategies:
//   - random: `iterations` executions, every nondeterministic choice drawn
//     from a per-execution reseeded PRNG (reproducible from `seed`).
//   - exhaustive: depth-first enumeration of the full decision tree
//     (schedule choices AND weak-memory read choices), capped at
//     `max_executions`.
//
// Test bodies must terminate under every schedule (no unbounded retry
// loops); the engine aborts past `max_steps` scheduling points.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chk/atomic.hpp"
#include "chk/engine.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"

namespace lhws::chk {

enum class exploration_mode : std::uint8_t { random, exhaustive };

struct options {
  exploration_mode mode = exploration_mode::random;
  std::uint64_t iterations = 10000;       // random-mode executions
  std::uint64_t max_executions = 200000;  // exhaustive-mode safety cap
  std::uint64_t seed = 0xc0ffee;
  std::uint64_t max_steps = 1u << 20;
  mutation mut{};
  bool stop_on_failure = true;
};

struct result {
  std::uint64_t executions = 0;
  std::uint64_t failures = 0;
  std::uint64_t schedule_points = 0;
  std::uint64_t first_failure_execution = 0;
  bool space_exhausted = false;  // exhaustive mode enumerated everything
  std::string first_failure;

  [[nodiscard]] bool clean() const noexcept { return failures == 0; }
};

class random_source final : public decision_source {
 public:
  explicit random_source(std::uint64_t seed) : rng_(seed) {}
  void reseed(std::uint64_t seed) { rng_ = xoshiro256(seed); }
  std::uint32_t choose(std::uint32_t n) override {
    return static_cast<std::uint32_t>(rng_.below(n));
  }

 private:
  xoshiro256 rng_;
};

// Depth-first enumeration with replay: decisions beyond the recorded
// prefix take branch 0 and are recorded; advance() backtracks to the
// deepest frame with an untried branch.
class dfs_source final : public decision_source {
 public:
  std::uint32_t choose(std::uint32_t n) override {
    if (pos_ < stack_.size()) {
      if (stack_[pos_].n != n) {
        std::fprintf(stderr,
                     "chk dfs divergence: pos=%zu depth=%zu recorded n=%u "
                     "chosen=%u, replay n=%u\n",
                     pos_, stack_.size(), stack_[pos_].n, stack_[pos_].chosen,
                     n);
      }
      LHWS_ASSERT(stack_[pos_].n == n &&
                  "nondeterministic test: decision tree changed on replay");
      return stack_[pos_++].chosen;
    }
    stack_.push_back(frame{n, 0});
    ++pos_;
    return 0;
  }

  // Prepare the next execution; false once the space is exhausted.
  bool advance() {
    while (!stack_.empty() && stack_.back().chosen + 1 >= stack_.back().n) {
      stack_.pop_back();
    }
    if (stack_.empty()) return false;
    ++stack_.back().chosen;
    pos_ = 0;
    return true;
  }

 private:
  struct frame {
    std::uint32_t n;
    std::uint32_t chosen;
  };
  std::vector<frame> stack_;
  std::size_t pos_ = 0;
};

// N OS threads reused across executions; each run() dispatches body(tid)
// to every thread and waits for all to finish. Actual interleaving within
// a run is governed by the engine's token, not the OS.
class vthread_pool {
 public:
  explicit vthread_pool(unsigned n) : n_(n) {
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~vthread_pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  vthread_pool(const vthread_pool&) = delete;
  vthread_pool& operator=(const vthread_pool&) = delete;

  void run(engine& eng, const std::function<void(unsigned)>& body) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      eng_ = &eng;
      body_ = &body;
      done_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == n_; });
    eng_ = nullptr;
    body_ = nullptr;
  }

 private:
  void worker_loop(unsigned tid) {
    std::uint64_t seen = 0;
    for (;;) {
      engine* eng = nullptr;
      const std::function<void(unsigned)>* body = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        eng = eng_;
        body = body_;
      }
      eng->enter_thread(tid);
      (*body)(tid);
      eng->exit_thread(tid);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++done_;
      }
      done_cv_.notify_one();
    }
  }

  const unsigned n_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  engine* eng_ = nullptr;
  const std::function<void(unsigned)>* body_ = nullptr;
  unsigned done_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

template <typename Test>
concept ExplorableTest = requires(Test t, unsigned i) {
  { Test::num_threads } -> std::convertible_to<unsigned>;
  t.thread(i);
  t.finish();
};

template <ExplorableTest Test, typename... Args>
result explore(const options& opt, const Args&... args) {
  static_assert(Test::num_threads >= 1 &&
                Test::num_threads < max_threads);  // +1 driver slot
  random_source random_src(opt.seed);
  dfs_source dfs_src;
  decision_source& src =
      opt.mode == exploration_mode::random
          ? static_cast<decision_source&>(random_src)
          : static_cast<decision_source&>(dfs_src);
  splitmix64 seeder(opt.seed);
  vthread_pool pool(Test::num_threads);
  result res;
  for (;;) {
    if (opt.mode == exploration_mode::random &&
        res.executions >= opt.iterations) {
      break;
    }
    if (opt.mode == exploration_mode::exhaustive &&
        res.executions >= opt.max_executions) {
      break;
    }
    if (opt.mode == exploration_mode::random) random_src.reseed(seeder.next());
    bool failed = false;
    std::string message;
    {
      engine eng(Test::num_threads, opt.mut, src, opt.max_steps);
      driver_scope scope(eng);
      Test t(args...);
      eng.start_threads();
      pool.run(eng, [&t](unsigned i) { t.thread(i); });
      eng.begin_teardown();
      t.finish();
      failed = eng.failed();
      if (failed) message = eng.failure();
      res.schedule_points += eng.steps();
    }
    ++res.executions;
    if (failed) {
      ++res.failures;
      if (res.first_failure.empty()) {
        res.first_failure = message;
        res.first_failure_execution = res.executions - 1;
      }
      if (opt.stop_on_failure) break;
    }
    if (opt.mode == exploration_mode::exhaustive && !dfs_src.advance()) {
      res.space_exhausted = true;
      break;
    }
  }
  return res;
}

}  // namespace lhws::chk
