// Vector clocks for the concurrency checker.
//
// One component per virtual thread (plus one for the explore() driver).
// Fixed capacity keeps clocks trivially copyable and join/compare branch-
// free; chk tests never need more than a handful of threads — the state
// space explodes long before the clock does.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace lhws::chk {

// Virtual threads per execution, including the driver pseudo-thread that
// runs Test construction, finish() and destruction.
inline constexpr unsigned max_threads = 8;

struct vclock {
  std::array<std::uint64_t, max_threads> c{};

  void join(const vclock& o) noexcept {
    for (unsigned i = 0; i < max_threads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }

  // Does this clock cover the event `stamp` of thread `tid`? (I.e. does
  // that event happen-before the point holding this clock.)
  [[nodiscard]] bool covers(unsigned tid, std::uint64_t stamp) const noexcept {
    return c[tid] >= stamp;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (const std::uint64_t v : c) {
      if (v != 0) return false;
    }
    return true;
  }

  void clear() noexcept { c.fill(0); }
};

}  // namespace lhws::chk
