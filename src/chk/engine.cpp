#include "chk/engine.hpp"

#include <algorithm>

#include "support/config.hpp"

namespace lhws::chk {

thread_local engine* engine::tl_engine_ = nullptr;
thread_local unsigned engine::tl_tid_ = 0;

engine* engine::current() noexcept { return tl_engine_; }

void engine::unbind() noexcept {
  tl_engine_ = nullptr;
  tl_tid_ = 0;
}

namespace {

bool has_acquire(std::memory_order o) noexcept {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}

bool has_release(std::memory_order o) noexcept {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

std::memory_order strip_release(std::memory_order o) noexcept {
  switch (o) {
    case std::memory_order_release:
      return std::memory_order_relaxed;
    case std::memory_order_acq_rel:
    case std::memory_order_seq_cst:
      return std::memory_order_acquire;
    default:
      return o;
  }
}

std::memory_order strip_acquire(std::memory_order o) noexcept {
  switch (o) {
    case std::memory_order_acquire:
    case std::memory_order_consume:
      return std::memory_order_relaxed;
    case std::memory_order_acq_rel:
      return std::memory_order_release;
    default:
      return o;
  }
}

}  // namespace

engine::engine(unsigned num_threads, const mutation& mut,
               decision_source& decisions, std::uint64_t max_steps)
    : num_threads_(num_threads),
      mut_(mut),
      decisions_(decisions),
      max_steps_(max_steps),
      phase_(phase::setup) {
  LHWS_ASSERT(num_threads >= 1 && num_threads < max_threads);
}

engine::~engine() = default;

bool engine::driver_phase() const noexcept { return phase_ != phase::running; }

void engine::bind_driver() noexcept {
  tl_engine_ = this;
  tl_tid_ = num_threads_;  // the driver pseudo-thread
}

driver_scope::~driver_scope() {
  LHWS_ASSERT(engine::current() == &eng_);
  engine::unbind();
}

void engine::start_threads() {
  std::unique_lock<std::mutex> lock(mu_);
  LHWS_ASSERT(phase_ == phase::setup);
  const thread_state& driver = threads_[num_threads_];
  for (unsigned i = 0; i < num_threads_; ++i) {
    threads_[i].clock = driver.clock;    // fork: setup happens-before bodies
    threads_[i].visible = driver.visible;
    threads_[i].visible.join(driver.clock);
  }
  live_ = num_threads_;
  phase_ = phase::running;
  active_ = decide(num_threads_);
  granted_ = true;
}

void engine::enter_thread(unsigned tid) noexcept {
  tl_engine_ = this;
  tl_tid_ = tid;
}

void engine::exit_thread(unsigned tid) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    threads_[tid].finished = true;
    LHWS_ASSERT(live_ > 0);
    --live_;
    if (active_ == tid && live_ > 0) pass_token_locked();
  }
  cv_.notify_all();
  tl_engine_ = nullptr;
  tl_tid_ = 0;
}

void engine::begin_teardown() noexcept {
  std::unique_lock<std::mutex> lock(mu_);
  LHWS_ASSERT(live_ == 0);
  phase_ = phase::teardown;
  thread_state& driver = threads_[num_threads_];
  for (unsigned i = 0; i < num_threads_; ++i) {
    driver.clock.join(threads_[i].clock);  // join: bodies happen-before finish
    driver.visible.join(threads_[i].visible);
  }
}

std::uint32_t engine::decide(std::uint32_t n) {
  return n <= 1 ? 0 : decisions_.choose(n);
}

void engine::pass_token_locked() {
  std::uint32_t runnable = 0;
  for (unsigned i = 0; i < num_threads_; ++i) {
    if (!threads_[i].finished) ++runnable;
  }
  if (runnable == 0) return;
  std::uint32_t pick = decide(runnable);
  for (unsigned i = 0; i < num_threads_; ++i) {
    if (threads_[i].finished) continue;
    if (pick == 0) {
      active_ = i;
      break;
    }
    --pick;
  }
  granted_ = true;
  cv_.notify_all();
}

void engine::sched_point(std::unique_lock<std::mutex>& lock) {
  if (driver_phase()) return;  // setup/teardown ops run uninterleaved
  const unsigned tid = self();
  // Exactly one decision per operation, independent of OS arrival order:
  // a standing holder offers the token around (the decision may hand it
  // straight back); a thread that was granted the token — whether it was
  // already parked here or had not yet arrived — consumes the grant and
  // runs without a second offer.
  if (active_ == tid && !granted_) pass_token_locked();
  cv_.wait(lock, [&] { return active_ == tid; });
  granted_ = false;
  ++steps_;
  LHWS_ASSERT(steps_ <= max_steps_ &&
              "chk step bound exceeded — unbounded loop in a test body?");
}

// --- memory-order plumbing --------------------------------------------------

std::memory_order engine::mutate_load(std::memory_order o) const noexcept {
  if (mut_.weaken_sc_op && o == std::memory_order_seq_cst) {
    o = std::memory_order_acquire;
  }
  if (mut_.weaken_acquire_load) o = strip_acquire(o);
  return o;
}

std::memory_order engine::mutate_store(std::memory_order o) const noexcept {
  if (mut_.weaken_sc_op && o == std::memory_order_seq_cst) {
    o = std::memory_order_acq_rel;
  }
  if (mut_.weaken_release_store) o = strip_release(o);
  return o;
}

void engine::apply_acquire(thread_state& t, const store_rec& s,
                           std::memory_order order) {
  if (s.release.is_zero()) return;
  if (has_acquire(order)) {
    t.clock.join(s.release);
  } else {
    // A later acquire fence turns this relaxed load into a synchronizer.
    t.acq_pending.join(s.release);
  }
}

vclock engine::store_release_clock(const thread_state& t,
                                   std::memory_order order) const {
  if (has_release(order)) return t.clock;
  return t.release_fence;  // zero clock when no release fence was issued
}

void engine::sc_interaction(thread_state& t, std::memory_order order) {
  if (order != std::memory_order_seq_cst) return;
  t.visible.join(sc_clock_);
}

std::size_t engine::readable_floor(const atomic_loc& l, const thread_state& t,
                                   std::memory_order order) const {
  std::size_t floor = l.seen[self()];
  // The newest store already visible to this thread bounds how stale a
  // read may be: anything older would violate coherence.
  for (std::size_t i = l.stores.size(); i-- > floor + 1;) {
    const store_rec& s = l.stores[i];
    if (t.visible.covers(s.tid, s.stamp) || t.clock.covers(s.tid, s.stamp)) {
      floor = i;
      break;
    }
  }
  // A seq_cst load may not skip the newest seq_cst store (SC total order).
  if (order == std::memory_order_seq_cst && l.last_sc_store != SIZE_MAX) {
    floor = std::max(floor, l.last_sc_store);
  }
  return floor;
}

// --- atomic locations -------------------------------------------------------

engine::atomic_loc& engine::loc_of(void* loc) {
  auto it = atomics_.find(loc);
  LHWS_ASSERT(it != atomics_.end() &&
              "chk::atomic used without registration (constructed outside an "
              "active engine?)");
  return *it->second;
}

void engine::loc_register(void* loc, std::uint64_t initial_bits) {
  std::unique_lock<std::mutex> lock(mu_);
  auto l = std::make_unique<atomic_loc>();
  thread_state& t = threads_[self()];
  const std::uint64_t stamp = ++t.clock.c[self()];
  l->stores.push_back(store_rec{initial_bits, self(), stamp,
                                /*release=*/t.clock});
  l->seen.fill(0);
  atomics_[loc] = std::move(l);
}

void engine::loc_destroy(void* loc) {
  std::unique_lock<std::mutex> lock(mu_);
  atomics_.erase(loc);
}

std::uint64_t engine::atomic_load(void* loc, std::memory_order order) {
  std::unique_lock<std::mutex> lock(mu_);
  sched_point(lock);
  order = mutate_load(order);
  thread_state& t = threads_[self()];
  sc_interaction(t, order);  // an SC load sees everything SC-published
  atomic_loc& l = loc_of(loc);
  const std::size_t floor = readable_floor(l, t, order);
  const std::size_t span = l.stores.size() - floor;
  const std::size_t idx = floor + decide(static_cast<std::uint32_t>(span));
  l.seen[self()] = std::max(l.seen[self()], idx);
  const store_rec& s = l.stores[idx];
  apply_acquire(t, s, order);
  return s.bits;
}

void engine::atomic_store(void* loc, std::uint64_t bits,
                          std::memory_order order) {
  std::unique_lock<std::mutex> lock(mu_);
  sched_point(lock);
  order = mutate_store(order);
  thread_state& t = threads_[self()];
  sc_interaction(t, order);
  atomic_loc& l = loc_of(loc);
  const std::uint64_t stamp = ++t.clock.c[self()];
  l.stores.push_back(
      store_rec{bits, self(), stamp, store_release_clock(t, order)});
  l.seen[self()] = l.stores.size() - 1;
  if (order == std::memory_order_seq_cst) {
    l.last_sc_store = l.stores.size() - 1;
    sc_clock_.join(t.clock);
  }
}

std::uint64_t engine::atomic_rmw(void* loc, rmw_kind kind,
                                 std::uint64_t operand,
                                 std::memory_order order) {
  std::unique_lock<std::mutex> lock(mu_);
  sched_point(lock);
  const std::memory_order load_o = mutate_load(order);
  const std::memory_order store_o = mutate_store(order);
  thread_state& t = threads_[self()];
  sc_interaction(t, store_o);
  atomic_loc& l = loc_of(loc);
  // An RMW always reads the newest store in modification order.
  const store_rec prev = l.stores.back();
  apply_acquire(t, prev, load_o);
  std::uint64_t next = 0;
  switch (kind) {
    case rmw_kind::add:
      next = prev.bits + operand;
      break;
    case rmw_kind::sub:
      next = prev.bits - operand;
      break;
    case rmw_kind::exchange:
      next = operand;
      break;
  }
  const std::uint64_t stamp = ++t.clock.c[self()];
  // Release sequence: an RMW continues the sequence headed by the store it
  // replaces, so an acquire read of this store also synchronizes with the
  // earlier release stores (C++20 [atomics.order]).
  vclock rel = store_release_clock(t, store_o);
  rel.join(prev.release);
  l.stores.push_back(store_rec{next, self(), stamp, rel});
  l.seen[self()] = l.stores.size() - 1;
  if (store_o == std::memory_order_seq_cst) {
    l.last_sc_store = l.stores.size() - 1;
    sc_clock_.join(t.clock);
  }
  return prev.bits;
}

bool engine::atomic_cas(void* loc, std::uint64_t& expected_bits,
                        std::uint64_t desired_bits, std::memory_order success,
                        std::memory_order failure) {
  std::unique_lock<std::mutex> lock(mu_);
  sched_point(lock);
  thread_state& t = threads_[self()];
  atomic_loc& l = loc_of(loc);
  const store_rec prev = l.stores.back();
  if (prev.bits != expected_bits) {
    // Failed CAS: a load of the current value with the failure ordering.
    const std::memory_order fail_o = mutate_load(failure);
    sc_interaction(t, fail_o);
    apply_acquire(t, prev, fail_o);
    l.seen[self()] = l.stores.size() - 1;
    expected_bits = prev.bits;
    return false;
  }
  const std::memory_order load_o = mutate_load(success);
  const std::memory_order store_o = mutate_store(success);
  sc_interaction(t, store_o);
  apply_acquire(t, prev, load_o);
  const std::uint64_t stamp = ++t.clock.c[self()];
  // Successful CAS is an RMW: continue the release sequence (see
  // atomic_rmw).
  vclock rel = store_release_clock(t, store_o);
  rel.join(prev.release);
  l.stores.push_back(store_rec{desired_bits, self(), stamp, rel});
  l.seen[self()] = l.stores.size() - 1;
  if (store_o == std::memory_order_seq_cst) {
    l.last_sc_store = l.stores.size() - 1;
    sc_clock_.join(t.clock);
  }
  return true;
}

void engine::fence(std::memory_order order) {
  std::unique_lock<std::mutex> lock(mu_);
  sched_point(lock);
  if (order == std::memory_order_seq_cst && mut_.weaken_sc_fence) return;
  thread_state& t = threads_[self()];
  if (has_acquire(order)) {
    t.clock.join(t.acq_pending);
    t.acq_pending.clear();
  }
  if (has_release(order)) t.release_fence = t.clock;
  if (order == std::memory_order_seq_cst) {
    t.visible.join(sc_clock_);
    sc_clock_.join(t.clock);
  }
}

// --- plain (non-atomic) locations: FastTrack-style race detection -----------

void engine::var_register(void* loc, std::uint64_t initial_bits,
                          const char* label) {
  std::unique_lock<std::mutex> lock(mu_);
  auto v = std::make_unique<var_loc>();
  v->bits = initial_bits;
  v->label = label;
  v->write_tid = self();
  v->write_stamp = ++threads_[self()].clock.c[self()];
  vars_[loc] = std::move(v);
}

void engine::var_destroy(void* loc) {
  std::unique_lock<std::mutex> lock(mu_);
  vars_.erase(loc);
}

std::uint64_t engine::var_read(void* loc) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = vars_.find(loc);
  LHWS_ASSERT(it != vars_.end());
  var_loc& v = *it->second;
  thread_state& t = threads_[self()];
  if (!t.clock.covers(v.write_tid, v.write_stamp)) {
    failed_ = true;
    if (failure_.empty()) {
      failure_ = std::string("data race: read of '") +
                 (v.label != nullptr ? v.label : "?") +
                 "' not ordered after last write";
    }
  }
  v.reads.c[self()] = t.clock.c[self()];
  return v.bits;
}

void engine::var_write(void* loc, std::uint64_t bits) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = vars_.find(loc);
  LHWS_ASSERT(it != vars_.end());
  var_loc& v = *it->second;
  thread_state& t = threads_[self()];
  bool race = !t.clock.covers(v.write_tid, v.write_stamp);
  for (unsigned u = 0; u < max_threads; ++u) {
    if (v.reads.c[u] > t.clock.c[u]) race = true;
  }
  if (race) {
    failed_ = true;
    if (failure_.empty()) {
      failure_ = std::string("data race: write of '") +
                 (v.label != nullptr ? v.label : "?") +
                 "' not ordered after prior accesses";
    }
  }
  v.bits = bits;
  v.write_tid = self();
  v.write_stamp = ++t.clock.c[self()];
  v.reads.clear();
}

// --- results ----------------------------------------------------------------

void engine::fail(const std::string& message) {
  std::unique_lock<std::mutex> lock(mu_);
  failed_ = true;
  if (failure_.empty()) failure_ = message;
}

bool engine::failed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return failed_;
}

std::string engine::failure() const {
  std::unique_lock<std::mutex> lock(mu_);
  return failure_;
}

}  // namespace lhws::chk
