// Shared sharded fib-RPC loopback server — the serving half of the load
// harness (DESIGN.md §14, EXPERIMENTS.md LOAD).
//
// Speaks the examples/server --listen wire format: 8-byte little-endian
// requests {u32 fib_n, u32 rpc_depth}, 8-byte u64 responses; fib_n == 0 is
// the "Done" token that drains the accept loops. One SO_REUSEPORT listener
// per reactor shard gives kernel-sharded accept, and every accepted
// connection inherits its listener's shard so all of its completions fire
// on one shard thread for its whole life. Used by bench_rpc_loopback,
// bench_load, and tools/lhws_load so the three harnesses exercise exactly
// the same serving path.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fork_join.hpp"
#include "io/async_ops.hpp"
#include "io/buffer.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"

namespace lhws::load {

// Little-endian wire helpers (the protocol is explicitly LE regardless of
// host order).
inline void put_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

inline void put_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

[[nodiscard]] inline std::uint32_t get_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

[[nodiscard]] inline std::uint64_t get_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline task<long> fib(unsigned n) {
  if (n < 2) co_return n;
  auto [a, b] = co_await fork2(fib(n - 1), fib(n - 2));
  co_return a + b;
}

// Reads exactly n bytes (0 = clean EOF before any byte, -ETIMEDOUT
// propagates a deadline expiry mid-read).
inline task<long> read_exact(io::reactor& r, io::socket& s, void* buf,
                             std::size_t n, io::op_deadline d = {}) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const long got = co_await io::async_read(r, s, p + done, n - done, d);
    if (got == -ETIMEDOUT) co_return got;
    if (got <= 0) co_return got == 0 && done == 0 ? 0 : -ECONNRESET;
    done += static_cast<std::size_t>(got);
  }
  co_return static_cast<long>(done);
}

// Writes exactly n bytes, looping over short writes.
inline task<long> write_exact(io::reactor& r, io::socket& s, const void* buf,
                              std::size_t n, io::op_deadline d = {}) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const long put = co_await io::async_write(r, s, p + done, n - done, d);
    if (put <= 0) co_return put;
    done += static_cast<std::size_t>(put);
  }
  co_return static_cast<long>(done);
}

// Accept errors worth backing off on instead of aborting the loop: fd or
// buffer exhaustion is a load condition, not a programming error.
[[nodiscard]] inline bool accept_should_backoff(long err) {
  return err == -EMFILE || err == -ENFILE || err == -ENOBUFS ||
         err == -ENOMEM || err == -ECONNABORTED;
}

// The server: a reactor with N shards, one pinned SO_REUSEPORT listener
// per shard, and a fork-tree of accept loops. Construct, check valid(),
// then run root() on a scheduler of your choice (either engine); stop it
// by sending the Done token to port().
class rpc_server {
 public:
  explicit rpc_server(unsigned shards, std::uint16_t port = 0,
                      int backlog = 1024)
      : r_(shards) {
    listeners_.reserve(r_.shards());
    listeners_.push_back(io::socket::listen_reuseport(r_, port, 0, backlog));
    if (!listeners_[0].valid()) return;
    port_ = listeners_[0].local_port();
    for (unsigned sh = 1; sh < r_.shards(); ++sh) {
      listeners_.push_back(
          io::socket::listen_reuseport(r_, port_, sh, backlog));
      if (!listeners_.back().valid()) {
        port_ = 0;
        return;
      }
    }
  }

  [[nodiscard]] bool valid() const noexcept { return port_ != 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] io::reactor& reactor() noexcept { return r_; }
  [[nodiscard]] std::uint64_t served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  // Root task: every shard's accept loop, joined. Returns 0 once the Done
  // token has arrived and every in-flight connection has drained.
  [[nodiscard]] task<long> root() {
    return accept_all(0, static_cast<unsigned>(listeners_.size()));
  }

 private:
  task<long> serve_connection(int cfd, unsigned shard) {
    using namespace std::chrono_literals;
    io::set_tcp_nodelay(cfd);
    io::socket conn(r_, cfd, shard);
    // One slab block carries all per-request scratch: request, downstream
    // request, downstream response, response.
    io::conn_buffer buf(32);
    if (!buf.valid()) co_return -ENOMEM;
    unsigned char* req = buf.span(0, 8);
    unsigned char* sub = buf.span(8, 8);
    unsigned char* dsr = buf.span(16, 8);
    unsigned char* resp = buf.span(24, 8);
    for (;;) {
      const long got = co_await read_exact(r_, conn, req, 8);
      if (got == 0) co_return 0;
      if (got < 0) co_return got;
      const std::uint32_t n = get_le32(req);
      const std::uint32_t depth = get_le32(req + 4);
      if (n == 0) {
        stop_.store(true, std::memory_order_release);
        co_return 0;
      }
      std::uint64_t result = static_cast<std::uint64_t>(co_await fib(n));
      if (depth > 0) {
        io::socket ds = io::socket::create_tcp(r_);
        if (!ds.valid()) co_return -EBADF;
        const auto dl = io::with_deadline(10s);
        long rc = co_await io::async_connect(r_, ds, port_, dl);
        if (rc != 0) co_return rc;
        put_le32(sub, n);
        put_le32(sub + 4, depth - 1);
        rc = co_await write_exact(r_, ds, sub, 8, dl);
        if (rc < 0) co_return rc;
        rc = co_await read_exact(r_, ds, dsr, 8, dl);
        if (rc <= 0) co_return rc == 0 ? -ECONNRESET : rc;
        result += get_le64(dsr);
      }
      put_le64(resp, result);
      const long put = co_await write_exact(r_, conn, resp, 8);
      if (put < 0) co_return put;
      served_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  task<long> accept_loop(unsigned shard) {
    using namespace std::chrono_literals;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) co_return 0;
      const long fd = co_await io::async_accept(r_, listeners_[shard],
                                                io::with_deadline(100ms));
      if (fd == -ETIMEDOUT) continue;
      if (accept_should_backoff(fd)) {
        co_await io::sleep_for(r_, 10ms);
        continue;
      }
      if (fd < 0) co_return fd;
      auto [rest, one] = co_await fork2(
          accept_loop(shard), serve_connection(static_cast<int>(fd), shard));
      co_return rest != 0 ? rest : one;
    }
  }

  task<long> accept_all(unsigned lo, unsigned hi) {
    if (hi - lo == 1) co_return co_await accept_loop(lo);
    const unsigned mid = lo + (hi - lo) / 2;
    auto [a, b] = co_await fork2(accept_all(lo, mid), accept_all(mid, hi));
    co_return a != 0 ? a : b;
  }

  io::reactor r_;
  std::vector<io::socket> listeners_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
};

// Sends the Done token {0,0} from a plain blocking socket (callable from
// any thread, no scheduler needed).
inline void send_done(std::uint16_t port) {
  const int fd = io::connect_loopback_blocking(port);
  if (fd < 0) return;
  unsigned char done[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  io::write_full_fd(fd, done, sizeof done);
  ::close(fd);
}

}  // namespace lhws::load
