// Open-loop production load harness (EXPERIMENTS.md LOAD recipe).
//
// Drives the sharded rpc_server with thousands of concurrent connections,
// each one a client coroutine on its own scheduler + reactor — no thread
// per connection. Arrivals are open-loop Poisson: every connection draws
// exponential inter-arrival gaps from a deterministic per-connection RNG
// and latches the SCHEDULED arrival time before sleeping, and a request's
// latency is measured from that scheduled arrival, not from the moment the
// send actually happened. A slow server therefore inflates the recorded
// tail instead of silently throttling the offered load — the coordinated
// omission trap a closed-loop harness (bench_rpc_loopback's paced clients)
// cannot see.
//
// Scenarios:
//   steady         — N connections, Poisson arrivals, fixed duration.
//   churn          — connections close and re-dial every `churn_every`
//                    requests, hammering accept + fd recycling (and the
//                    fd→shard affinity of reused descriptors).
//   slow_client    — every `slow_every`-th connection dribbles its request
//                    bytes with a pause mid-header; a sharded server must
//                    not let the stragglers convoy everyone else.
//   deadline_storm — every client op carries a with_deadline, keeping
//                    thousands of armed deadlines cycling through the
//                    per-shard wheels; timeouts force a reconnect (the
//                    stream is ambiguous once a response may be in flight).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "core/scheduler.hpp"
#include "load/rpc_server.hpp"
#include "support/timing.hpp"

namespace lhws::load {

enum class scenario { steady, churn, slow_client, deadline_storm };

[[nodiscard]] inline const char* scenario_name(scenario s) noexcept {
  switch (s) {
    case scenario::steady: return "steady";
    case scenario::churn: return "churn";
    case scenario::slow_client: return "slow_client";
    case scenario::deadline_storm: return "deadline_storm";
  }
  return "?";
}

struct load_config {
  scenario sc = scenario::steady;
  // Server side.
  unsigned server_workers = 2;
  unsigned server_shards = 0;  // 0 → one per server worker
  engine server_engine = engine::latency_hiding;
  // Client side (always latency-hiding: one coroutine per connection).
  unsigned client_workers = 2;
  unsigned client_shards = 2;
  // Offered load.
  unsigned connections = 2000;
  double rate_hz = 2.0;    // per-connection Poisson arrival rate
  double duration_s = 3.0; // arrival window length
  unsigned fib_n = 10;
  unsigned rpc_depth = 0;
  // Scenario knobs (0 = off).
  unsigned churn_every = 0;  // reconnect after this many requests
  unsigned slow_every = 0;   // every k-th connection dribbles its writes
  std::chrono::milliseconds op_deadline{0};  // per-op client deadline
  std::uint64_t seed = 42;
};

struct load_result {
  const char* name = "";
  unsigned connections = 0;
  unsigned server_workers = 0;
  unsigned server_shards = 0;
  double duration_ms = 0;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  std::uint64_t reconnects = 0;
  double rps = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  std::uint64_t server_suspensions = 0;
  std::uint64_t server_fd_peak = 0;
  std::uint64_t server_served = 0;
};

[[nodiscard]] inline std::uint64_t quantile_us(
    const std::vector<std::uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return sorted_ns[std::min(idx, sorted_ns.size() - 1)] / 1000;
}

namespace detail {

struct conn_stats {
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  std::uint64_t reconnects = 0;
  std::vector<std::uint64_t> lat_ns;  // empty for slow connections
};

// (Re-)dials the server: fresh non-blocking TCP socket, TCP_NODELAY,
// async connect. The socket is handed in by reference so the caller's
// frame — which outlives this coroutine — owns the fd.
inline task<long> redial(io::reactor& r, io::socket& s, std::uint16_t port) {
  using namespace std::chrono_literals;
  s.close();
  s = io::socket::create_tcp(r);
  if (!s.valid()) co_return -EBADF;
  io::set_tcp_nodelay(s.fd());
  co_return co_await io::async_connect(r, s, port, io::with_deadline(10s));
}

// One connection's life: dial lazily at the first arrival, then fire
// requests on the Poisson schedule until the window closes. The schedule
// never pauses for a slow response — if the next arrival is already due
// when a request completes, the following send happens immediately and its
// latency still counts from the scheduled instant.
inline task<long> drive_connection(io::reactor& r, const load_config& cfg,
                                   std::uint16_t port, unsigned idx,
                                   std::int64_t t_start, std::int64_t t_end,
                                   conn_stats& out) {
  using namespace std::chrono_literals;
  std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ull + idx);
  std::exponential_distribution<double> gap(cfg.rate_hz);
  const bool slow = cfg.slow_every != 0 && idx % cfg.slow_every == 0;
  io::socket s;
  unsigned since_dial = 0;

  std::int64_t next = t_start;
  for (;;) {
    next += static_cast<std::int64_t>(gap(rng) * 1e9);
    if (next >= t_end) break;
    co_await io::sleep_until(r, next);
    ++out.attempted;
    if (!s.valid()) {
      if (co_await redial(r, s, port) != 0) {
        ++out.errors;
        s.close();
        continue;
      }
      since_dial = 0;
    }
    const io::op_deadline dl = cfg.op_deadline.count() > 0
                                   ? io::with_deadline(cfg.op_deadline)
                                   : io::op_deadline{};
    unsigned char req[8];
    unsigned char resp[8];
    put_le32(req, cfg.fib_n);
    put_le32(req + 4, cfg.rpc_depth);
    long rc;
    if (slow) {
      // Dribble the header: half, a pause mid-request, then the rest.
      rc = co_await write_exact(r, s, req, 4, dl);
      if (rc > 0) {
        co_await io::sleep_for(r, 2ms);
        rc = co_await write_exact(r, s, req + 4, 4, dl);
      }
    } else {
      rc = co_await write_exact(r, s, req, 8, dl);
    }
    if (rc > 0) rc = co_await read_exact(r, s, resp, 8, dl);
    if (rc == -ETIMEDOUT) {
      // A response may still be in flight; the stream is ambiguous, so a
      // timed-out connection must re-dial before its next request.
      ++out.timeouts;
      ++out.reconnects;
      s.close();
      continue;
    }
    if (rc <= 0) {
      ++out.errors;
      ++out.reconnects;
      s.close();
      continue;
    }
    ++out.completed;
    ++since_dial;
    if (!slow) {
      out.lat_ns.push_back(static_cast<std::uint64_t>(now_ns() - next));
    }
    if (cfg.churn_every != 0 && since_dial >= cfg.churn_every) {
      ++out.reconnects;
      s.close();
    }
  }
  s.close();
  co_return 0;
}

}  // namespace detail

// Runs one scenario end to end: server scheduler on a helper thread,
// client scheduler on the calling thread, Done token after the window
// drains. Deterministic given cfg.seed (modulo real scheduling noise).
[[nodiscard]] inline load_result run_load(const load_config& cfg) {
  const unsigned nshards = cfg.server_shards != 0 ? cfg.server_shards
                           : cfg.server_workers != 0 ? cfg.server_workers
                                                     : 1;
  rpc_server srv(nshards);
  load_result res;
  res.name = scenario_name(cfg.sc);
  res.connections = cfg.connections;
  res.server_workers = cfg.server_workers;
  res.server_shards = nshards;
  if (!srv.valid()) return res;

  scheduler_options sopts;
  sopts.workers = cfg.server_workers;
  sopts.engine_kind = cfg.server_engine;
  sopts.reactor_shards = nshards;
  sopts.seed = 7;
  scheduler ssched(sopts);
  long server_rc = 0;
  std::thread server([&] { server_rc = ssched.run(srv.root()); });

  io::reactor cr(cfg.client_shards);
  scheduler_options copts;
  copts.workers = cfg.client_workers;
  copts.engine_kind = engine::latency_hiding;
  copts.seed = 11;
  scheduler csched(copts);

  std::vector<detail::conn_stats> stats(cfg.connections);
  const std::int64_t t_start = now_ns();
  const std::int64_t t_end =
      t_start + static_cast<std::int64_t>(cfg.duration_s * 1e9);
  const stopwatch timer;
  // The leaf lambda is not a coroutine: it only binds one connection's
  // arguments into drive_connection's own frame, so no closure state is
  // held across a suspension point.
  const std::uint16_t port = srv.port();
  auto leaf = [&](std::size_t i) {
    return detail::drive_connection(cr, cfg, port, static_cast<unsigned>(i),
                                    t_start, t_end, stats[i]);
  };
  (void)csched.run(map_reduce<long>(0, cfg.connections, 0, leaf,
                                    [](long a, long b) { return a + b; }));
  res.duration_ms = timer.elapsed_ms();
  send_done(srv.port());
  server.join();
  (void)server_rc;

  std::vector<std::uint64_t> all;
  for (const auto& cs : stats) {
    res.attempted += cs.attempted;
    res.completed += cs.completed;
    res.timeouts += cs.timeouts;
    res.errors += cs.errors;
    res.reconnects += cs.reconnects;
    all.insert(all.end(), cs.lat_ns.begin(), cs.lat_ns.end());
  }
  std::sort(all.begin(), all.end());
  res.rps = res.duration_ms > 0 ? static_cast<double>(res.completed) *
                                      1000.0 / res.duration_ms
                                : 0;
  res.p50_us = quantile_us(all, 0.50);
  res.p99_us = quantile_us(all, 0.99);
  res.p999_us = quantile_us(all, 0.999);
  res.max_us = all.empty() ? 0 : all.back() / 1000;
  res.server_suspensions = ssched.stats().suspensions;
  res.server_fd_peak = srv.reactor().peak_registered_fds();
  res.server_served = srv.served();
  return res;
}

}  // namespace lhws::load
