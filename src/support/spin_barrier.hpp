// Sense-reversing spin barrier used to line up worker threads at the start
// and end of timed regions, so that benchmark timings do not include thread
// creation or teardown skew.
#pragma once

#include <atomic>
#include <cstddef>

#include "support/backoff.hpp"
#include "support/config.hpp"

namespace lhws {

class spin_barrier {
 public:
  explicit spin_barrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties), sense_(false) {
    LHWS_ASSERT(parties > 0);
  }

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  // Blocks until all `parties` threads have arrived. Reusable.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      backoff bo;
      while (sense_.load(std::memory_order_acquire) != my_sense) bo.pause();
    }
  }

 private:
  const std::size_t parties_;
  alignas(cache_line_size) std::atomic<std::size_t> remaining_;
  alignas(cache_line_size) std::atomic<bool> sense_;
};

}  // namespace lhws
