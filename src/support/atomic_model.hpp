// Memory-model policy injected into the lock-free structures.
//
// Every lock-free structure in the tree (chase_lev_deque, mpsc_stack,
// basic_deque_pool) takes a `Model` template parameter that supplies its
// atomic type and thread fences. Production code uses `real_model`, which
// aliases std::atomic / std::atomic_thread_fence directly — the indirection
// compiles away entirely. The concurrency checker in src/chk/ supplies
// `chk::check_model`, whose atomics route every operation through a
// model-checking engine (deterministic interleaving exploration plus a
// vector-clock happens-before checker) without touching the algorithm code.
#pragma once

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define LHWS_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LHWS_TSAN_ACTIVE 1
#endif
#endif

namespace lhws {

#ifdef LHWS_TSAN_ACTIVE
namespace detail {
inline std::atomic<unsigned>& tsan_fence_proxy() noexcept {
  static std::atomic<unsigned> proxy{0};
  return proxy;
}
}  // namespace detail
#endif

struct real_model {
  template <typename T>
  using atomic_type = std::atomic<T>;

#ifdef LHWS_TSAN_ACTIVE
  // ThreadSanitizer does not model atomic_thread_fence (GCC rejects it
  // outright with -Werror=tsan), so every fence-based synchronization in
  // the Chase-Lev deque would be reported as a race. Substitute a seq_cst
  // RMW on one shared dummy: strictly stronger than any thread fence and
  // fully tracked by TSan's happens-before machinery. Sanitizer builds
  // only — production keeps the plain fence below. (DESIGN.md §7, "TSan
  // and fences".)
  static void fence(std::memory_order) noexcept {
    detail::tsan_fence_proxy().fetch_add(1, std::memory_order_seq_cst);
  }
#else
  static void fence(std::memory_order order) noexcept {
    std::atomic_thread_fence(order);
  }
#endif
};

}  // namespace lhws
