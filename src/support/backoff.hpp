// Exponential backoff for contended spin loops.
//
// Workers that repeatedly fail steals must not saturate the memory system;
// the paper's analysis charges a token per steal *attempt*, and in practice
// uncontrolled retry loops slow down the victims they target. This is the
// standard spin-then-yield policy used by production work-stealing runtimes.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lhws {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class backoff {
 public:
  // Spin with pause up to `spin_limit` rounds, doubling each time, then
  // fall back to yielding the OS thread (essential on oversubscribed hosts).
  void pause() noexcept {
    if (count_ <= spin_limit) {
      for (std::uint32_t i = 0; i < (1u << count_); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  [[nodiscard]] bool yielding() const noexcept { return count_ > spin_limit; }

 private:
  static constexpr std::uint32_t spin_limit = 6;  // up to 64 pauses per round
  std::uint32_t count_ = 0;
};

// The three-stage idle ladder behind adaptive parking: spin (exponential
// pause), then yield, then tell the caller to park. The ladder itself never
// blocks — the caller owns the park (worker::park_idle), because parking
// needs scheduler-level bookkeeping (parked-count gate, recheck, wake
// accounting) that doesn't belong here.
class idle_backoff {
 public:
  idle_backoff(std::uint32_t spin_limit, std::uint32_t yield_limit) noexcept
      : spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  // One idle round. Returns true when the spin+yield budget is exhausted
  // and the caller should park; the budget stays exhausted (a parked worker
  // that times out parks again immediately) until reset().
  bool pause() noexcept {
    if (count_ < spin_limit_) {
      const std::uint32_t shift = count_ < 16 ? count_ : 16;
      for (std::uint32_t i = 0; i < (1u << shift); ++i) cpu_relax();
      ++count_;
      return false;
    }
    if (count_ < spin_limit_ + yield_limit_) {
      std::this_thread::yield();
      ++count_;
      return false;
    }
    return true;
  }

  void reset() noexcept { count_ = 0; }

 private:
  const std::uint32_t spin_limit_;
  const std::uint32_t yield_limit_;
  std::uint32_t count_ = 0;
};

}  // namespace lhws
