// Three-state thread parker for adaptive idle blocking.
//
// Workers that exhaust their spin/yield budget park here instead of burning
// a core; resume deliveries and fresh pushes unpark them (the "lifeline"
// wake). The protocol is the classic Rust-std / crossbeam parker:
//
//   states: kRunning (awake) -> kParked (asleep or committing to sleep)
//                            -> kNotified (a wake arrived)
//
//   park:   exchange(kParked);       // announce intent, acq_rel
//           if prev == kNotified: consume the token, return immediately
//           <caller rechecks its wake condition HERE — after the announce>
//           sleep while state == kParked (condvar, bounded by timeout)
//           exchange(kRunning)       // consume a token that raced the wakeup
//
//   unpark: exchange(kNotified);     // acq_rel
//           if prev == kParked: the waiter may be on the condvar -> signal
//
// Both sides RMW the *same* atomic, so the store ordering between "I am
// going to sleep" and "there is a wake for you" is total — the Dekker-style
// flag/flag race that loses wakeups with two separate variables cannot
// happen. The one residual race (condvar check-then-wait) is closed by the
// waker acquiring the mutex between the state exchange and notify_one.
//
// parker_core is the lock-free state machine alone, templated on the memory
// model so src/chk/ can exhaustively explore it (and prove the lost-wakeup
// mutations fail); parker adds the OS blocking layer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "support/atomic_model.hpp"

namespace lhws {

template <typename Model = real_model>
class parker_core {
  template <typename U>
  using model_atomic = typename Model::template atomic_type<U>;

 public:
  static constexpr std::uint32_t kRunning = 0;
  static constexpr std::uint32_t kParked = 1;
  static constexpr std::uint32_t kNotified = 2;

  // Waiter: announce intent to sleep. Returns the previous state — if
  // kNotified, a token was pending and the caller must park_cancel() and
  // skip the sleep entirely.
  std::uint32_t park_begin() noexcept {
    return state_.exchange(kParked, std::memory_order_acq_rel);
  }

  // Waiter: abandon the park (pending token consumed, or the post-announce
  // recheck found work).
  void park_cancel() noexcept {
    state_.store(kRunning, std::memory_order_relaxed);
  }

  // Waiter, under the OS mutex: keep sleeping only while still kParked.
  [[nodiscard]] bool should_sleep() const noexcept {
    return state_.load(std::memory_order_acquire) == kParked;
  }

  // Waiter: leave the parked state. Returns true if a notification arrived
  // (even one that raced the timeout), so the token is never lost.
  bool park_end() noexcept {
    return state_.exchange(kRunning, std::memory_order_acq_rel) == kNotified;
  }

  // Waker (any thread): deposit a token. Returns true iff the waiter was in
  // kParked — only then might it be blocked and need the OS-level signal.
  bool unpark() noexcept {
    return state_.exchange(kNotified, std::memory_order_acq_rel) == kParked;
  }

  // Racy peek for wake-target selection (is this worker worth signalling?).
  [[nodiscard]] bool is_parked() const noexcept {
    return state_.load(std::memory_order_relaxed) == kParked;
  }

 private:
  model_atomic<std::uint32_t> state_{kRunning};
};

// The OS layer: condvar blocking with a timeout so a missed push-side wake
// (see DESIGN.md §9) degrades to bounded latency, never to deadlock.
class parker {
 public:
  // Result of one park attempt, for the caller's accounting.
  enum class park_result : std::uint8_t {
    notified,   // woken by unpark (possibly before sleeping at all)
    timed_out,  // timeout elapsed with no token
  };

  // `recheck` runs after the parked state is published but before blocking;
  // return true to abort the park (e.g. work arrived through a path that
  // does not unpark). This is the load that makes the protocol safe against
  // wakes delivered before park_begin.
  template <typename Recheck>
  park_result park_for(std::chrono::microseconds timeout, Recheck&& recheck) {
    if (core_.park_begin() == parker_core<>::kNotified) {
      core_.park_cancel();
      return park_result::notified;
    }
    if (recheck()) {
      // A token may still arrive between the recheck and this cancel; it
      // stays deposited (kNotified) and the next park_begin consumes it —
      // one spurious fast wake, never a lost one.
      return core_.park_end() ? park_result::notified
                              : park_result::timed_out;
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    {
      std::unique_lock<std::mutex> lk(mu_);
      while (core_.should_sleep()) {
        if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
      }
    }
    return core_.park_end() ? park_result::notified : park_result::timed_out;
  }

  // Any thread. Returns true iff this call delivered a wake to a parked (or
  // parking) waiter — i.e. the caller's signal was the one that mattered.
  bool unpark() {
    if (!core_.unpark()) return false;
    // Close the condvar race: the waiter may be between should_sleep() and
    // wait_until(). Passing through the mutex orders this notify after the
    // waiter either blocks (and hears it) or re-reads the state (and skips
    // the wait).
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_one();
    return true;
  }

  [[nodiscard]] bool is_parked() const noexcept { return core_.is_parked(); }

 private:
  parker_core<> core_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace lhws
