// Deterministic, fast pseudo-random number generation.
//
// Work stealing's analysis (Balls-and-Weighted-Bins, Lemma 6 of the paper)
// assumes steal targets are chosen uniformly at random. std::mt19937 is
// needlessly heavy for a per-steal draw; xoshiro256** gives a ~1ns draw with
// excellent statistical quality, and explicit seeding keeps the simulator
// bit-reproducible across runs.
#pragma once

#include <cstdint>

namespace lhws {

// splitmix64: used to expand a single user seed into xoshiro's 256-bit state
// (the construction recommended by the xoshiro authors).
class splitmix64 {
 public:
  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna. Not cryptographic; exactly what a
// scheduler's victim selection needs.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256(std::uint64_t seed) noexcept : s_{} {
    splitmix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased draw from [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace lhws
