// Platform and build configuration shared by every LHWS module.
//
// Centralizes the small set of platform assumptions the library makes
// (cache-line geometry, assertion policy) so the rest of the code can stay
// portable C++20.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace lhws {

// Destructive interference distance. std::hardware_destructive_interference_size
// is not universally available (and is ABI-fragile); 64 bytes is correct for
// every x86-64 and most AArch64 parts. Used to pad per-worker hot state.
inline constexpr std::size_t cache_line_size = 64;

// Internal invariant checks. These guard algorithm invariants (deque state
// machines, dag well-formedness, scheduler bookkeeping) rather than user
// input, so they abort rather than throw: a failed check means the library
// itself is wrong and unwinding would only smear the evidence.
#if defined(LHWS_DISABLE_ASSERT)
inline void assert_impl(bool, const char*, const char*, int) noexcept {}
#else
inline void assert_impl(bool ok, const char* expr, const char* file,
                        int line) noexcept {
  if (!ok) {
    std::fprintf(stderr, "lhws assertion failed: %s at %s:%d\n", expr, file,
                 line);
    std::abort();
  }
}
#endif

}  // namespace lhws

#define LHWS_ASSERT(expr) \
  ::lhws::assert_impl(static_cast<bool>(expr), #expr, __FILE__, __LINE__)
