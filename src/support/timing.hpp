// Wall-clock timing helpers for the real runtime and benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace lhws {

using clock = std::chrono::steady_clock;

// Nanoseconds since an arbitrary epoch; monotonic.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock::now().time_since_epoch())
      .count();
}

inline double ns_to_ms(std::int64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-6;
}

inline double ns_to_s(std::int64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-9;
}

// Measures the wall-clock lifetime of a scope.
class stopwatch {
 public:
  stopwatch() noexcept : start_(now_ns()) {}

  void reset() noexcept { start_ = now_ns(); }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return now_ns() - start_;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return ns_to_ms(elapsed_ns());
  }
  [[nodiscard]] double elapsed_s() const noexcept {
    return ns_to_s(elapsed_ns());
  }

 private:
  std::int64_t start_;
};

}  // namespace lhws
