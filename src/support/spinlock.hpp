// Tiny test-and-test-and-set spinlock with backoff, for rarely-contended
// short critical sections. The per-worker deque registry that motivated it
// is now lock-free (runtime/deque_registry.hpp, DESIGN.md §9);
// bench_steal_contention keeps this class as the faithful replica of that
// retired design and measures exactly what the replacement bought.
#pragma once

#include <atomic>

#include "support/backoff.hpp"

namespace lhws {

class spinlock {
 public:
  void lock() noexcept {
    backoff bo;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace lhws
