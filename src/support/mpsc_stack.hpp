// Intrusive lock-free multi-producer single-consumer stack (Treiber stack
// with a whole-list pop).
//
// This is the delivery channel behind the paper's `callback(v, q)` (Fig. 3,
// lines 1-5): when a suspended vertex resumes, the resuming context — a
// timer thread, an I/O completion, or another worker — pushes it onto the
// owning deque's resumed list. Only the deque's owning worker consumes, and
// it always drains the whole list at once (addResumedVertices), so
// `pop_all` is the only consumer operation needed and the classic Treiber
// ABA problem does not arise (nodes are never re-pushed while a pop races).
#pragma once

#include <atomic>

#include "support/atomic_model.hpp"

namespace lhws {

template <typename Node>
concept IntrusiveNode = requires(Node n) {
  { n.next } -> std::convertible_to<Node*>;
};

// `Model` supplies the atomic head (support/atomic_model.hpp): real_model
// in production, chk::check_model under the model checker.
template <IntrusiveNode Node, typename Model = real_model>
class mpsc_stack {
 public:
  mpsc_stack() noexcept : head_(nullptr) {}

  mpsc_stack(const mpsc_stack&) = delete;
  mpsc_stack& operator=(const mpsc_stack&) = delete;

  // Push from any thread. Returns true if the stack was empty beforehand —
  // the paper uses exactly this edge (resumedVertices.size == 1) to decide
  // whether the deque must also be registered in resumedDeques.
  //
  // The head loads are acquire, not relaxed: a producer that observes the
  // empty stack left by pop_all is about to re-register the owning node in
  // an outer stack, overwriting the intrusive link the consumer read just
  // before draining. The acquire here pairs with the release in pop_all to
  // order that overwrite after the consumer's read of the link.
  bool push(Node* node) noexcept {
    Node* old = head_.load(std::memory_order_acquire);
    do {
      node->next = old;
    } while (!head_.compare_exchange_weak(old, node, std::memory_order_release,
                                          std::memory_order_acquire));
    return old == nullptr;
  }

  // Detach the whole list (consumer only). Returned chain is LIFO order.
  // acq_rel: acquire to see the pushed nodes' contents, release so that a
  // producer whose push observes the emptied stack is ordered after every
  // consumer read that preceded the drain (the re-registration protocol in
  // worker::add_resumed_vertices depends on this edge).
  Node* pop_all() noexcept {
    return head_.exchange(nullptr, std::memory_order_acq_rel);
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  typename Model::template atomic_type<Node*> head_;
};

}  // namespace lhws
