// Intrusive lock-free multi-producer single-consumer stack (Treiber stack
// with a whole-list pop).
//
// This is the delivery channel behind the paper's `callback(v, q)` (Fig. 3,
// lines 1-5): when a suspended vertex resumes, the resuming context — a
// timer thread, an I/O completion, or another worker — pushes it onto the
// owning deque's resumed list. Only the deque's owning worker consumes, and
// it always drains the whole list at once (addResumedVertices), so
// `pop_all` is the only consumer operation needed and the classic Treiber
// ABA problem does not arise (nodes are never re-pushed while a pop races).
#pragma once

#include <atomic>

namespace lhws {

template <typename Node>
concept IntrusiveNode = requires(Node n) {
  { n.next } -> std::convertible_to<Node*>;
};

template <IntrusiveNode Node>
class mpsc_stack {
 public:
  mpsc_stack() noexcept : head_(nullptr) {}

  mpsc_stack(const mpsc_stack&) = delete;
  mpsc_stack& operator=(const mpsc_stack&) = delete;

  // Push from any thread. Returns true if the stack was empty beforehand —
  // the paper uses exactly this edge (resumedVertices.size == 1) to decide
  // whether the deque must also be registered in resumedDeques.
  bool push(Node* node) noexcept {
    Node* old = head_.load(std::memory_order_relaxed);
    do {
      node->next = old;
    } while (!head_.compare_exchange_weak(old, node, std::memory_order_release,
                                          std::memory_order_relaxed));
    return old == nullptr;
  }

  // Detach the whole list (consumer only). Returned chain is LIFO order.
  Node* pop_all() noexcept {
    return head_.exchange(nullptr, std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Node*> head_;
};

}  // namespace lhws
