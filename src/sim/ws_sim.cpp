#include "sim/ws_sim.hpp"

#include <algorithm>

namespace lhws::sim {

ws_simulator::ws_simulator(const dag::weighted_dag& g, sim_config cfg)
    : graph_(&g), cfg_(cfg), exec_(g), rng_(cfg.seed) {
  LHWS_ASSERT(cfg_.workers >= 1);
  workers_.resize(cfg_.workers);
  workers_[0].assigned = graph_->root();
}

void ws_simulator::step(worker_state& w, std::uint64_t round) {
  // A worker whose thread is blocked inside a latency-incurring operation
  // does nothing until the operation completes; when it does, the thread
  // continues with the now-ready vertex immediately (favouring the
  // baseline: no re-dispatch cost is charged).
  if (w.assigned == dag::invalid_vertex && !w.blocked_on.empty()) {
    if (w.blocked_on.top().ready_round <= round) {
      w.assigned = w.blocked_on.top().v;
      w.blocked_on.pop();
    } else {
      ++metrics_.blocked_rounds;
      return;
    }
  }

  if (w.assigned != dag::invalid_vertex) {
    const dag::vertex_id u = w.assigned;
    w.assigned = dag::invalid_vertex;
    ++metrics_.work_tokens;
    const enable_result res = exec_.execute(u, round);
    // Spawned child first (it must sit below the continuation's future
    // pushes for the usual depth-first deque discipline).
    if (res.right != dag::invalid_vertex) w.deque.push_back(res.right);
    for (unsigned i = 0; i < res.suspended_count; ++i) {
      // The thread performed a latency-incurring call: it blocks.
      w.blocked_on.push({res.suspended[i].ready_round, res.suspended[i].v});
    }
    if (res.left != dag::invalid_vertex) {
      w.assigned = res.left;
    } else if (w.blocked_on.empty()) {
      if (!w.deque.empty()) {
        w.assigned = w.deque.back();
        w.deque.pop_back();
      }
    }
    // else: blocked — the thread cannot return to the deque.
    return;
  }

  // Idle: become a thief. Victim = uniformly random other worker.
  if (workers_.size() == 1) {
    ++metrics_.idle_rounds;
    return;
  }
  ++metrics_.steal_attempts;
  auto victim_index =
      static_cast<std::size_t>(rng_.below(workers_.size() - 1));
  const auto self_index = static_cast<std::size_t>(&w - workers_.data());
  if (victim_index >= self_index) ++victim_index;
  worker_state& victim = workers_[victim_index];
  if (!victim.deque.empty()) {
    ++metrics_.successful_steals;
    w.assigned = victim.deque.front();
    victim.deque.pop_front();
  } else {
    ++metrics_.failed_steals;
  }
}

sim_metrics ws_simulator::run() {
  std::uint64_t weight_sum = 0;
  for (dag::vertex_id v = 0; v < graph_->num_vertices(); ++v) {
    for (const dag::out_edge& e : graph_->out_edges(v)) weight_sum += e.weight;
  }
  const std::uint64_t max_rounds =
      100 * (graph_->num_vertices() + weight_sum) + 100000;

  std::uint64_t round = 0;
  while (!exec_.done()) {
    ++round;
    LHWS_ASSERT(round <= max_rounds);
    std::uint64_t suspended_now = 0;
    for (auto& w : workers_) {
      if (exec_.done()) break;
      if (cfg_.availability_permille < 1000 &&
          rng_.below(1000) >= cfg_.availability_permille) {
        ++metrics_.preempted_rounds;
        suspended_now += w.blocked_on.size();
        continue;
      }
      step(w, round);
      suspended_now += w.blocked_on.size();
    }
    metrics_.max_suspended =
        std::max(metrics_.max_suspended, suspended_now);
  }
  metrics_.rounds = round;
  // Standard WS: exactly one deque per worker, always.
  metrics_.max_deques_per_worker = 1;
  metrics_.max_total_deques = workers_.size();
  metrics_.total_deques_allocated = workers_.size();
  return metrics_;
}

sim_metrics run_ws(const dag::weighted_dag& g, const sim_config& cfg) {
  ws_simulator sim(g, cfg);
  return sim.run();
}

}  // namespace lhws::sim
