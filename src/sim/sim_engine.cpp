#include "sim/sim_engine.hpp"

namespace lhws::sim {

dag_executor::dag_executor(const dag::weighted_dag& g)
    : graph_(&g),
      remaining_parents_(g.num_vertices()),
      executed_flags_(g.num_vertices(), false),
      exec_round_(g.num_vertices(), 0) {
  for (dag::vertex_id v = 0; v < g.num_vertices(); ++v) {
    remaining_parents_[v] = static_cast<std::uint32_t>(g.in_degree(v));
  }
}

enable_result dag_executor::execute(dag::vertex_id v, std::uint64_t round) {
  LHWS_ASSERT(!executed_flags_[v]);
  LHWS_ASSERT(remaining_parents_[v] == 0);
  executed_flags_[v] = true;
  exec_round_[v] = round;
  ++executed_;

  enable_result out;
  const auto edges = graph_->out_edges(v);
  for (unsigned i = 0; i < edges.size(); ++i) {
    const dag::out_edge& e = edges[i];
    if (--remaining_parents_[e.to] != 0) continue;
    const bool is_left = (i == 0);
    if (e.heavy()) {
      out.suspended[out.suspended_count++] = {
          .v = e.to, .ready_round = round + e.weight, .is_left = is_left};
    } else if (is_left) {
      out.left = e.to;
    } else {
      out.right = e.to;
    }
  }
  return out;
}

bool validate_execution(const dag::weighted_dag& g,
                        const std::vector<std::uint64_t>& exec_round,
                        std::string* why) {
  auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  if (exec_round.size() != g.num_vertices()) {
    return fail("execution record has wrong size");
  }
  for (dag::vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (exec_round[v] == 0) {
      return fail("vertex " + std::to_string(v) + " never executed");
    }
  }
  for (dag::vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (const dag::out_edge& e : g.out_edges(v)) {
      if (exec_round[e.to] < exec_round[v] + e.weight) {
        return fail("vertex " + std::to_string(e.to) + " ran at round " +
                    std::to_string(exec_round[e.to]) +
                    " but its parent " + std::to_string(v) +
                    " ran at round " + std::to_string(exec_round[v]) +
                    " over an edge of weight " + std::to_string(e.weight));
      }
    }
  }
  return true;
}

}  // namespace lhws::sim
