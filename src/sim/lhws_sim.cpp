#include "sim/lhws_sim.hpp"

#include <algorithm>

namespace lhws::sim {
namespace {

// removeAny for deque sets: O(1) remove from the back.
template <typename T>
T* remove_any(std::vector<T*>& set) {
  if (set.empty()) return nullptr;
  T* out = set.back();
  set.pop_back();
  return out;
}

}  // namespace

lhws_simulator::lhws_simulator(const dag::weighted_dag& g, sim_config cfg)
    : graph_(&g), cfg_(cfg), exec_(g), rng_(cfg.seed) {
  LHWS_ASSERT(cfg_.workers >= 1);
  if (cfg_.build_enabling_tree) etree_ = etree_tracker(g);
  workers_.resize(cfg_.workers);
  // Fig. 3 line 26: every worker starts with a fresh (empty) active deque.
  for (auto& w : workers_) w.active = new_deque(w);
  // Fig. 3 lines 27-28: the root is assigned to worker zero.
  node root;
  root.v = graph_->root();
  root.etree_depth = 0;
  workers_[0].assigned = root;
}

lhws_simulator::deque_state* lhws_simulator::new_deque(worker_state& w) {
  deque_state* q = remove_any(w.empty_deques);
  if (q == nullptr) {
    // fetch_and_add(gTotalDeques) + allocation (Fig. 5).
    g_deques_.push_back(std::make_unique<deque_state>());
    q = g_deques_.back().get();
    q->owner = static_cast<std::uint32_t>(&w - workers_.data());
  }
  q->freed = false;
  ++w.owned;
  metrics_.max_deques_per_worker =
      std::max(metrics_.max_deques_per_worker, w.owned);
  std::uint64_t live = 0;
  for (const auto& ws : workers_) live += ws.owned;
  metrics_.max_total_deques = std::max(metrics_.max_total_deques, live);
  return q;
}

void lhws_simulator::free_deque(worker_state& w, deque_state* q) {
  LHWS_ASSERT(q->items.empty());
  LHWS_ASSERT(q->suspend_ctr == 0);
  LHWS_ASSERT(q->resumed.empty() && !q->in_resumed_set);
  LHWS_ASSERT(!q->in_ready_set);
  q->freed = true;
  LHWS_ASSERT(w.owned > 0);
  --w.owned;
  w.empty_deques.push_back(q);
}

void lhws_simulator::callback(dag::vertex_id v, deque_state* q) {
  // Fig. 3 lines 1-5.
  q->resumed.push_back(v);
  LHWS_ASSERT(q->suspend_ctr > 0);
  --q->suspend_ctr;
  if (!q->in_resumed_set) {
    q->in_resumed_set = true;
    workers_[q->owner].resumed_deques.push_back(q);
  }
}

void lhws_simulator::handle_suspended(worker_state& w, dag::vertex_id v,
                                      std::uint64_t ready_round) {
  // Fig. 3 lines 18-20: the suspended vertex belongs to the active deque.
  deque_state* q = w.active;
  LHWS_ASSERT(q != nullptr);
  ++q->suspend_ctr;
  pending_resumes_.push({ready_round, v, q});
}

void lhws_simulator::push_bottom(deque_state& q, node n, std::uint64_t round) {
  if (etree_.enabled() && !q.items.empty() &&
      n.etree_depth < q.items.back().n.etree_depth) {
    // Deques must stay ordered shallow(top) -> deep(bottom); see
    // sim_metrics::depth_order_violations.
    ++metrics_.depth_order_violations;
  }
  q.items.push_back({std::move(n), round});
}

bool lhws_simulator::pop_bottom(deque_state& q, node& out) {
  if (q.items.empty()) return false;
  out = std::move(q.items.back().n);
  q.items.pop_back();
  return true;
}

bool lhws_simulator::pop_top(deque_state& q, node& out) {
  if (q.parked || q.items.empty()) return false;
  out = std::move(q.items.front().n);
  q.items.pop_front();
  return true;
}

void lhws_simulator::add_resumed_vertices(worker_state& w, std::uint64_t round,
                                          const node* just_executed) {
  if (cfg_.injection == resume_injection::serial_repush) {
    // Ablation: no pfor tree — queue each resumed vertex for a
    // one-per-round owner re-push (see step()).
    for (deque_state* q : w.resumed_deques) {
      q->in_resumed_set = false;
      q->parked = false;
      for (const dag::vertex_id v : q->resumed) {
        w.pending_inject.emplace_back(q, v);
      }
      q->resumed.clear();
    }
    w.resumed_deques.clear();
    return;
  }

  // Fig. 3 lines 7-14, with one fix: if the deque with resumed vertices IS
  // the active deque, it must not be added to readyDeques (the pseudocode
  // unconditionally adds it, which would double-track the active deque).
  for (deque_state* q : w.resumed_deques) {
    q->in_resumed_set = false;
    LHWS_ASSERT(!q->resumed.empty());
    node pf;
    pf.pfor_items =
        std::make_shared<std::vector<dag::vertex_id>>(std::move(q->resumed));
    q->resumed.clear();
    pf.lo = 0;
    pf.hi = static_cast<std::uint32_t>(pf.pfor_items->size());
    if (etree_.enabled()) {
      if (q == w.active && just_executed != nullptr) {
        // Active-deque insertion (Section 4.1): joined to the just-executed
        // vertex u, through an auxiliary vertex when u had a left child.
        pf.etree_depth = just_executed->etree_depth + 2;
      } else if (!q->items.empty()) {
        // Non-active, non-empty: descend from the bottom vertex, padding
        // with an auxiliary chain for the rounds since it was added.
        const deque_item& bot = q->items.back();
        pf.etree_depth = bot.n.etree_depth + (round - bot.round_added);
      } else {
        // Non-active, empty: descend from the last vertex executed from q.
        pf.etree_depth =
            q->last_exec_depth + (round - q->last_exec_round);
      }
      etree_.observe(pf.etree_depth);
    }
    // Spoonhower-variant ablation: resumed work starts a FRESH deque
    // instead of returning to the deque it suspended from.
    deque_state* target = q;
    if (cfg_.fresh_deque_on_resume) target = new_deque(w);
    q->parked = false;  // a resume unparks (park_deque_on_suspend variant)
    push_bottom(*target, std::move(pf), round);
    if (target != w.active && !target->in_ready_set) {
      target->in_ready_set = true;
      w.ready_deques.push_back(target);
    }
    if (target != q && q != w.active && !q->in_ready_set) {
      if (q->items.empty() && q->suspend_ctr == 0 && q->resumed.empty() &&
          !q->in_resumed_set) {
        free_deque(w, q);  // origin deque fully drained; recycle it
      } else if (!q->items.empty()) {
        // Possible when combined with park_deque_on_suspend: the origin
        // parked while holding items; now that it is unparked its items
        // must become schedulable again.
        q->in_ready_set = true;
        w.ready_deques.push_back(q);
      }
    }
  }
  w.resumed_deques.clear();
}

lhws_simulator::exec_outcome lhws_simulator::execute_node(worker_state& w,
                                                          const node& n,
                                                          std::uint64_t round) {
  exec_outcome out;
  ++metrics_.work_tokens;

  if (n.is_pfor() && !n.is_pfor_leaf()) {
    // Internal pfor vertex: splits its range in two (the pfor tree of
    // Section 3, lg n span over n resumed leaves).
    ++metrics_.pfor_vertices;
    const std::uint32_t mid = n.lo + (n.hi - n.lo) / 2;
    node left = n, right = n;
    left.hi = mid;
    right.lo = mid;
    left.etree_depth = right.etree_depth = n.etree_depth + 1;
    if (etree_.enabled()) {
      etree_.observe(left.etree_depth);
    }
    out.left = std::move(left);
    out.right = std::move(right);
    return out;
  }

  // A dag vertex: either a plain node or a pfor leaf (which *is* one of the
  // resumed vertices).
  const dag::vertex_id v = n.is_pfor() ? (*n.pfor_items)[n.lo] : n.v;
  if (etree_.enabled()) {
    etree_.observe_vertex(v, n.etree_depth);
    if (w.active != nullptr) {
      w.active->last_exec_depth = n.etree_depth;
      w.active->last_exec_round = round;
    }
  }
  const enable_result res = exec_.execute(v, round);
  out.suspended_any = res.suspended_count > 0;
  for (unsigned i = 0; i < res.suspended_count; ++i) {
    handle_suspended(w, res.suspended[i].v, res.suspended[i].ready_round);
  }
  if (res.left != dag::invalid_vertex) {
    node c;
    c.v = res.left;
    c.etree_depth = n.etree_depth + 1;
    out.left = std::move(c);
  }
  if (res.right != dag::invalid_vertex) {
    node c;
    c.v = res.right;
    c.etree_depth = n.etree_depth + 1;
    out.right = std::move(c);
  }
  return out;
}

void lhws_simulator::step(worker_state& w, std::uint64_t round) {
  // serial_repush ablation: the owner spends a whole round re-pushing ONE
  // resumed vertex — this is exactly the per-vertex handling cost the pfor
  // tree exists to avoid.
  if (!w.pending_inject.empty()) {
    auto [q, v] = w.pending_inject.front();
    w.pending_inject.pop_front();
    node n;
    n.v = v;
    if (etree_.enabled()) {
      if (!q->items.empty()) {
        const deque_item& bot = q->items.back();
        n.etree_depth = bot.n.etree_depth + (round - bot.round_added);
      } else {
        n.etree_depth = q->last_exec_depth + (round - q->last_exec_round);
      }
      etree_.observe(n.etree_depth);
    }
    push_bottom(*q, std::move(n), round);
    if (q != w.active && !q->in_ready_set) {
      q->in_ready_set = true;
      w.ready_deques.push_back(q);
    }
    ++metrics_.injection_rounds;
    return;
  }

  if (w.assigned.has_value()) {
    // Fig. 3 lines 33-40.
    const node u = std::move(*w.assigned);
    w.assigned.reset();
    exec_outcome out = execute_node(w, u, round);
    if (out.right.has_value()) {
      push_bottom(*w.active, *std::move(out.right), round);
    }
    if (cfg_.park_deque_on_suspend && out.suspended_any) {
      // Related-work variant: the suspending thread's whole deque parks
      // (items unstealable until a resume); the worker moves to a fresh
      // deque. The paper's algorithm deliberately does NOT do this.
      w.active->parked = true;
      ++metrics_.parks;
      w.active = new_deque(w);
    }
    const bool had_resumes = !w.resumed_deques.empty();
    add_resumed_vertices(w, round, &u);
    if (out.left.has_value()) {
      // pushBottom(left) immediately followed by popBottom(): the left
      // child becomes the assigned vertex (any pfor vertices pushed by
      // addResumedVertices sit below it, preserving the paper's priority
      // order: left child above pfor tree above right child).
      node left = *std::move(out.left);
      if (had_resumes && etree_.enabled()) {
        // Auxiliary vertex u' (Section 4.1) re-parents the left child one
        // level deeper when a pfor was spliced in at the active deque.
        left.etree_depth = u.etree_depth + 2;
      }
      w.assigned = std::move(left);
    } else {
      node next;
      if (pop_bottom(*w.active, next)) w.assigned = std::move(next);
    }
    return;
  }

  // Fig. 3 lines 41-56.
  if (w.active != nullptr && w.active->items.empty() &&
      w.active->suspend_ctr == 0 && w.active->resumed.empty() &&
      !w.active->in_resumed_set) {
    free_deque(w, w.active);
    w.active = nullptr;
  }
  deque_state* next_deque = remove_any(w.ready_deques);
  if (next_deque != nullptr) {
    next_deque->in_ready_set = false;
    w.active = next_deque;
    ++metrics_.switch_tokens;
  } else {
    ++metrics_.steal_attempts;
    deque_state* victim = pick_victim(static_cast<std::uint32_t>(
        &w - workers_.data()));
    node stolen;
    if (victim != nullptr && pop_top(*victim, stolen)) {
      ++metrics_.successful_steals;
      w.active = new_deque(w);
      w.assigned = std::move(stolen);
    } else {
      ++metrics_.failed_steals;
    }
  }
  // "Whether a deque switch or steal attempt occurred,
  //  addResumedVertices() is called."
  add_resumed_vertices(w, round, nullptr);
  if (!w.assigned.has_value() && w.active != nullptr) {
    node next;
    if (pop_bottom(*w.active, next)) w.assigned = std::move(next);
  }
}

lhws_simulator::deque_state* lhws_simulator::pick_victim(std::uint32_t thief) {
  if (cfg_.policy == steal_policy::random_deque) {
    // Section 3: victim chosen uniformly at random from all allocated
    // deques; a freed (recycled-but-idle) or empty deque means the steal
    // fails.
    if (g_deques_.empty()) return nullptr;
    return g_deques_[rng_.below(g_deques_.size())].get();
  }
  // Section 6: target a worker, then one of its non-empty deques
  // (reservoir-sampled so every candidate is equally likely regardless of
  // how many ready deques the victim owns).
  const auto p = static_cast<std::uint32_t>(rng_.below(workers_.size()));
  (void)thief;  // self-steals always fail harmlessly (all own deques empty)
  worker_state& victim = workers_[p];
  deque_state* chosen = nullptr;
  std::uint64_t seen = 0;
  auto consider = [&](deque_state* q) {
    if (q == nullptr || q->parked || q->items.empty()) return;
    ++seen;
    if (rng_.below(seen) == 0) chosen = q;
  };
  consider(victim.active);
  for (deque_state* q : victim.ready_deques) consider(q);
  return chosen;
}

void lhws_simulator::process_resumes(std::uint64_t round) {
  while (!pending_resumes_.empty() &&
         pending_resumes_.top().ready_round <= round) {
    const resume_event ev = pending_resumes_.top();
    pending_resumes_.pop();
    callback(ev.v, ev.q);
  }
  metrics_.max_suspended =
      std::max<std::uint64_t>(metrics_.max_suspended, pending_resumes_.size());
}

sim_metrics lhws_simulator::run() {
  // Safety valve against scheduler deadlock bugs: generous round budget.
  std::uint64_t weight_sum = 0;
  for (dag::vertex_id v = 0; v < graph_->num_vertices(); ++v) {
    for (const dag::out_edge& e : graph_->out_edges(v)) weight_sum += e.weight;
  }
  const std::uint64_t max_rounds =
      100 * (graph_->num_vertices() + weight_sum) + 100000;

  std::uint64_t round = 0;
  while (!exec_.done()) {
    ++round;
    LHWS_ASSERT(round <= max_rounds);
    process_resumes(round);
    for (auto& w : workers_) {
      if (exec_.done()) break;
      if (cfg_.availability_permille < 1000 &&
          rng_.below(1000) >= cfg_.availability_permille) {
        ++metrics_.preempted_rounds;  // kernel scheduled someone else
        continue;
      }
      step(w, round);
    }
  }
  metrics_.rounds = round;
  metrics_.total_deques_allocated = g_deques_.size();
  metrics_.enabling_span = etree_.enabling_span();
  return metrics_;
}

sim_metrics run_lhws(const dag::weighted_dag& g, const sim_config& cfg) {
  lhws_simulator sim(g, cfg);
  return sim.run();
}

}  // namespace lhws::sim
