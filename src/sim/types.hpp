// Shared types for the discrete-round scheduler simulators.
//
// The simulators execute weighted dags in virtual time with P virtual
// workers, one action per worker per round, exactly as the paper's analysis
// models execution. They exist because the scheduling claims (round counts,
// steal counts, deque counts) are about logical rounds, independent of host
// hardware — on this 1-core container they are the faithful way to
// regenerate Figure 11's speedup shapes and to check Theorems 1-3 and
// Lemma 7 quantitatively.
#pragma once

#include <cstdint>

namespace lhws::sim {

enum class steal_policy : std::uint8_t {
  // Section 3 / the analyzed algorithm: the victim is a deque chosen
  // uniformly at random from the global deque array (freed deques included;
  // hitting one is a failed steal).
  random_deque,
  // Section 6's implementation deviation: pick a random worker, then a
  // random non-empty deque of that worker ("decreases the number of failed
  // steals because steals won't target empty deques").
  random_worker,
};

enum class resume_injection : std::uint8_t {
  // The paper's device: all vertices resumed to a deque since the last
  // round are wrapped in ONE pfor-tree vertex (lg n span, stealable
  // subtrees).
  pfor_tree,
  // Naive ablation: the owner re-pushes resumed vertices one per round,
  // paying a full bookkeeping round each ("a worker cannot handle them by
  // itself without harming performance" — Section 3). Exists to quantify
  // why the pfor tree is needed.
  serial_repush,
};

struct sim_config {
  std::uint64_t workers = 1;
  std::uint64_t seed = 42;
  steal_policy policy = steal_policy::random_deque;
  resume_injection injection = resume_injection::pfor_tree;
  // Related-work ablation (Spoonhower 2009, discussed in Section 7): create
  // a FRESH deque for each resumed batch instead of returning it to the
  // deque it suspended from. Breaks Lemma 7's U+1 bound on deques per
  // worker; kept as a measurable comparison point.
  bool fresh_deque_on_resume = false;
  // Related-work ablation (Spoonhower's other variation, and essentially
  // Concurrent Cilk's eager promotion, Section 7): when a thread suspends,
  // the ENTIRE active deque is parked — its remaining items become
  // unstealable until one of the deque's suspended vertices resumes — and
  // the worker continues on a fresh deque. The paper's algorithm instead
  // keeps the deque's other work available; this flag measures what that
  // choice is worth.
  bool park_deque_on_suspend = false;
  // When set, the LHWS simulator maintains the Section 4.1 enabling tree
  // and reports its span (S*) in metrics.enabling_span.
  bool build_enabling_tree = false;
  // Multiprogrammed environment (the Arora-Blumofe-Plaxton setting the
  // paper's analysis descends from): each round each worker is scheduled
  // by the "kernel" independently with this probability (out of 1000).
  // 1000 = dedicated machine (the paper's own analysis setting, [3]).
  unsigned availability_permille = 1000;
};

// Token accounting follows Lemma 1: on every round each non-blocked worker
// places exactly one token in the work, switch, or steal bucket.
struct sim_metrics {
  std::uint64_t rounds = 0;
  std::uint64_t work_tokens = 0;     // executed vertices incl. pfor vertices
  std::uint64_t pfor_vertices = 0;   // internal pfor-tree vertices (W_pfor)
  std::uint64_t switch_tokens = 0;   // deque switches (LHWS only)
  std::uint64_t steal_attempts = 0;  // successful + failed
  std::uint64_t successful_steals = 0;
  std::uint64_t failed_steals = 0;
  std::uint64_t blocked_rounds = 0;  // WS only: worker stalled on latency
  std::uint64_t idle_rounds = 0;     // worker-rounds with nothing to do
  std::uint64_t injection_rounds = 0;  // serial_repush: owner bookkeeping
  std::uint64_t parks = 0;             // park_deque_on_suspend: deques parked
  std::uint64_t preempted_rounds = 0;  // multiprogrammed: worker not scheduled

  std::uint64_t max_deques_per_worker = 0;  // Lemma 7: <= U + 1
  std::uint64_t max_total_deques = 0;
  std::uint64_t max_suspended = 0;          // <= U by Definition 1
  std::uint64_t total_deques_allocated = 0; // gTotalDeques at completion
  std::uint64_t enabling_span = 0;          // S*, if instrumented
  // Lemma 3's structural basis ("top-heavy deques" rests on Lemma 2
  // condition 5): enabling-tree depths must be non-increasing from the
  // bottom of every deque to its top. Counted only when the enabling tree
  // is instrumented; must be zero.
  std::uint64_t depth_order_violations = 0;

  [[nodiscard]] double speedup_baseline_rounds(std::uint64_t t1) const {
    return static_cast<double>(t1) / static_cast<double>(rounds);
  }
};

}  // namespace lhws::sim
