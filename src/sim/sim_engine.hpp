// Common machinery shared by the WS and LHWS simulators: dependence
// tracking, the virtual-time resume queue, and execution bookkeeping.
#pragma once

#include <queue>
#include <string>
#include <vector>

#include "dag/weighted_dag.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace lhws::sim {

// Result of executing one dag vertex: the children it enabled, classified.
// left/right preserve the paper's edge order (left = continuation, right =
// spawned thread). A child behind a heavy edge is reported in
// `suspended` together with the round at which it becomes ready.
struct enable_result {
  dag::vertex_id left = dag::invalid_vertex;
  dag::vertex_id right = dag::invalid_vertex;
  struct suspension {
    dag::vertex_id v = dag::invalid_vertex;
    std::uint64_t ready_round = 0;
    bool is_left = false;
  };
  // At most two entries (out-degree <= 2).
  suspension suspended[2];
  unsigned suspended_count = 0;
};

// Dependence-counting executor over a weighted dag.
class dag_executor {
 public:
  explicit dag_executor(const dag::weighted_dag& g);

  // Marks `v` executed in `round`; returns the children that became enabled,
  // with heavy-edge children classified as suspensions ready at
  // round + delta.
  enable_result execute(dag::vertex_id v, std::uint64_t round);

  [[nodiscard]] bool done() const noexcept {
    return executed_ == graph_->num_vertices();
  }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }
  [[nodiscard]] const dag::weighted_dag& graph() const noexcept {
    return *graph_;
  }

  // Round at which each vertex executed (0 = never). Recorded on every run;
  // feed to validate_execution to certify schedule legality a posteriori.
  [[nodiscard]] const std::vector<std::uint64_t>& execution_rounds()
      const noexcept {
    return exec_round_;
  }

 private:
  const dag::weighted_dag* graph_;
  std::vector<std::uint32_t> remaining_parents_;
  std::vector<bool> executed_flags_;
  std::vector<std::uint64_t> exec_round_;
  std::uint64_t executed_ = 0;
};

// Certifies that a recorded execution is a legal schedule of the weighted
// dag: every vertex ran exactly once, and no vertex ran before its latency
// requirement expired — round(v) >= round(u) + delta for every edge
// (u, v, delta). Returns true on success; otherwise false and, if `why` is
// non-null, a description of the first violation.
[[nodiscard]] bool validate_execution(
    const dag::weighted_dag& g, const std::vector<std::uint64_t>& exec_round,
    std::string* why = nullptr);

}  // namespace lhws::sim
