// Discrete-round simulator of *standard* (non-latency-hiding) work
// stealing — the paper's baseline "WS" in Figure 11.
//
// One deque per worker. When an executed vertex enables a child behind a
// heavy edge, the worker BLOCKS until the child is ready (the user-level
// thread performs a blocking call; the paper's baseline "does not hide
// latency"). While blocked, the worker's deque remains stealable, exactly
// as a blocked OS thread's deque would be. Workers with an empty deque
// steal from the top of a uniformly random other worker's deque (ABP).
#pragma once

#include <deque>
#include <queue>
#include <vector>

#include "sim/sim_engine.hpp"
#include "sim/types.hpp"

namespace lhws::sim {

class ws_simulator {
 public:
  ws_simulator(const dag::weighted_dag& g, sim_config cfg);

  sim_metrics run();

  // The shared dependence tracker; exposes execution_rounds() for
  // a-posteriori schedule validation (validate_execution).
  [[nodiscard]] const dag_executor& executor() const noexcept {
    return exec_;
  }

 private:
  struct worker_state {
    std::deque<dag::vertex_id> deque;  // front = top (steal end)
    dag::vertex_id assigned = dag::invalid_vertex;
    // Blocking bookkeeping: vertices this worker's thread is waiting on,
    // ordered by the round they become ready.
    struct pending {
      std::uint64_t ready_round;
      dag::vertex_id v;
      bool operator>(const pending& o) const noexcept {
        return ready_round > o.ready_round;
      }
    };
    std::priority_queue<pending, std::vector<pending>, std::greater<>>
        blocked_on;
  };

  void step(worker_state& w, std::uint64_t round);

  const dag::weighted_dag* graph_;
  sim_config cfg_;
  dag_executor exec_;
  xoshiro256 rng_;
  sim_metrics metrics_;
  std::vector<worker_state> workers_;
};

[[nodiscard]] sim_metrics run_ws(const dag::weighted_dag& g,
                                 const sim_config& cfg);

}  // namespace lhws::sim
