// Enabling-tree instrumentation (paper, Section 4.1).
//
// The enabling tree is an analysis device: a record of *when* each vertex
// was made ready, with pfor trees and auxiliary chains splicing resumed
// vertices back in at a depth matching the round they rejoined a deque. The
// simulator, when asked, tracks the enabling-tree depth d(v) of every node
// it schedules and reports
//   - the enabling span S* = max d(v)  (Corollary 1: S* = O(S(1 + lg U))),
//   - the max ratio d(v) / d_G(v) over dag vertices (Lemma 2, condition 1:
//     d(v) <= (2 + lg U) d_G(v)).
// The tree itself is never materialized; depths suffice for both checks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dag/analysis.hpp"
#include "dag/weighted_dag.hpp"

namespace lhws::sim {

class etree_tracker {
 public:
  etree_tracker() = default;

  explicit etree_tracker(const dag::weighted_dag& g)
      : enabled_(true), dag_depth_(dag::weighted_depths(g)) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Records that a node (dag vertex or pfor vertex) entered the enabling
  // tree at depth d.
  void observe(std::uint64_t d) noexcept {
    if (!enabled_) return;
    span_ = std::max(span_, d);
  }

  // Records a dag vertex specifically, updating the Lemma 2 ratio.
  void observe_vertex(dag::vertex_id v, std::uint64_t d) noexcept {
    if (!enabled_) return;
    observe(d);
    const auto dg = dag_depth_[v];
    if (dg > 0) {
      ratio_ = std::max(ratio_, static_cast<double>(d) /
                                    static_cast<double>(dg));
    }
  }

  [[nodiscard]] std::uint64_t enabling_span() const noexcept { return span_; }
  [[nodiscard]] double max_depth_ratio() const noexcept { return ratio_; }

 private:
  bool enabled_ = false;
  std::vector<dag::weight_t> dag_depth_;
  std::uint64_t span_ = 0;
  double ratio_ = 0.0;
};

}  // namespace lhws::sim
