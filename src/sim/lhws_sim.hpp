// Discrete-round simulator of the latency-hiding work-stealing scheduler,
// implementing the pseudocode of Figure 3 (and the newDeque recycling of
// Figure 5) action-for-action with P virtual workers.
//
// Within a round, workers act in index order; steals observe the state left
// by earlier workers in the same round. Suspended vertices resume at the
// start of the round in which their latency expires (the paper's
// "callback ... run when v resumes" between rounds). All randomness comes
// from the seeded generator in sim_config, so runs are reproducible.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/enabling_tree.hpp"
#include "sim/sim_engine.hpp"
#include "sim/types.hpp"

namespace lhws::sim {

class lhws_simulator {
 public:
  lhws_simulator(const dag::weighted_dag& g, sim_config cfg);

  // Runs to completion and returns the collected metrics.
  sim_metrics run();

  // The shared dependence tracker; exposes execution_rounds() for
  // a-posteriori schedule validation (validate_execution).
  [[nodiscard]] const dag_executor& executor() const noexcept {
    return exec_;
  }

 private:
  // A schedulable unit on a deque: either a dag vertex or a pfor-tree node
  // covering resumed vertices [lo, hi) of `items`. A pfor node over a single
  // vertex executes that vertex directly (the pfor tree's leaves *are* the
  // resumed vertices, Section 4).
  struct node {
    dag::vertex_id v = dag::invalid_vertex;
    std::shared_ptr<std::vector<dag::vertex_id>> pfor_items;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::uint64_t etree_depth = 0;

    [[nodiscard]] bool is_pfor() const noexcept {
      return pfor_items != nullptr;
    }
    [[nodiscard]] bool is_pfor_leaf() const noexcept {
      return is_pfor() && hi - lo == 1;
    }
  };

  struct deque_item {
    node n;
    std::uint64_t round_added = 0;
  };

  struct deque_state {
    std::deque<deque_item> items;  // front = top (steal end), back = bottom
    std::uint32_t owner = 0;
    std::uint64_t suspend_ctr = 0;
    std::vector<dag::vertex_id> resumed;  // q.resumedVertices
    bool in_resumed_set = false;
    // Membership flag for the owner's readyDeques. The paper's Fig. 3
    // line 12 re-adds q unconditionally; if vertices of an already-ready
    // deque resume again that would create a duplicate entry, whose stale
    // copy could later be switched to after the deque was freed. We guard
    // with this flag (see DESIGN.md, faithfulness notes).
    bool in_ready_set = false;
    bool freed = false;
    // park_deque_on_suspend ablation: items unavailable until a resume.
    bool parked = false;
    // Enabling-tree bookkeeping: depth/round of the last vertex executed
    // from this deque (Section 4.1's non-active-deque insertion rule).
    std::uint64_t last_exec_depth = 0;
    std::uint64_t last_exec_round = 0;
  };

  struct worker_state {
    deque_state* active = nullptr;
    std::vector<deque_state*> ready_deques;    // readyDeques
    std::vector<deque_state*> resumed_deques;  // resumedDeques
    std::vector<deque_state*> empty_deques;    // recycled storage (Fig. 5)
    std::optional<node> assigned;
    std::uint64_t owned = 0;  // allocated (non-freed) deques, for Lemma 7
    // serial_repush ablation: resumed vertices awaiting their one-per-round
    // owner re-push.
    std::deque<std::pair<deque_state*, dag::vertex_id>> pending_inject;
  };

  struct resume_event {
    std::uint64_t ready_round;
    dag::vertex_id v;
    deque_state* q;

    bool operator>(const resume_event& o) const noexcept {
      return ready_round > o.ready_round;
    }
  };

  // --- Fig. 3 primitive operations -------------------------------------
  deque_state* new_deque(worker_state& w);
  void free_deque(worker_state& w, deque_state* q);
  void callback(dag::vertex_id v, deque_state* q);          // lines 1-5
  void add_resumed_vertices(worker_state& w,                 // lines 7-14
                            std::uint64_t round,
                            const node* just_executed);
  void handle_suspended(worker_state& w, dag::vertex_id v,   // lines 16-20
                        std::uint64_t ready_round);
  void push_bottom(deque_state& q, node n, std::uint64_t round);
  bool pop_bottom(deque_state& q, node& out);
  bool pop_top(deque_state& q, node& out);

  // One worker, one round (one loop iteration of Fig. 3 lines 31-56).
  void step(worker_state& w, std::uint64_t round);

  // Executes the assigned node; returns children via the worker-visible
  // protocol used by step().
  struct exec_outcome {
    std::optional<node> left;
    std::optional<node> right;
    bool suspended_any = false;
  };
  exec_outcome execute_node(worker_state& w, const node& n,
                            std::uint64_t round);

  deque_state* pick_victim(std::uint32_t thief);

  void process_resumes(std::uint64_t round);
  void update_gauges();

  const dag::weighted_dag* graph_;
  sim_config cfg_;
  dag_executor exec_;
  xoshiro256 rng_;
  sim_metrics metrics_;
  etree_tracker etree_;

  std::vector<worker_state> workers_;
  std::vector<std::unique_ptr<deque_state>> g_deques_;  // gDeques
  std::priority_queue<resume_event, std::vector<resume_event>,
                      std::greater<>>
      pending_resumes_;
};

// Convenience: construct, run, return metrics.
[[nodiscard]] sim_metrics run_lhws(const dag::weighted_dag& g,
                                   const sim_config& cfg);

}  // namespace lhws::sim
