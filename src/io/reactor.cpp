#include "io/reactor.hpp"

#include <pthread.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/runtime_deque.hpp"
#include "support/config.hpp"
#include "support/timing.hpp"

namespace lhws::io {

namespace {

// epoll_event.data values reserved for a shard's own fds; real
// registrations carry an fd_entry pointer, which is never 0 or 1.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kTimerTag = 1;

constexpr std::int64_t kNsPerSec = 1'000'000'000;

// Any of these means a read()-side syscall will make progress (data, EOF,
// or a pending error to collect); writable-ish likewise for the write side.
constexpr std::uint32_t kReadableMask =
    EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR | EPOLLPRI;
constexpr std::uint32_t kWritableMask = EPOLLOUT | EPOLLHUP | EPOLLERR;

void drain_fd(int fd) {
  std::uint64_t buf = 0;
  const ssize_t r = ::read(fd, &buf, sizeof(buf));
  (void)r;  // non-blocking; EAGAIN just means nothing was pending
}

}  // namespace

const char* op_name(op_kind k) noexcept {
  switch (k) {
    case op_kind::accept:
      return "accept";
    case op_kind::connect:
      return "connect";
    case op_kind::read:
      return "read";
    case op_kind::write:
      return "write";
    case op_kind::sleep:
      return "sleep";
  }
  return "unknown";
}

reactor::reactor(unsigned shards) {
  if (shards == 0) shards = 1;
  if (shards > kMaxShards) shards = kMaxShards;
  nshards_ = shards;
  shards_.reserve(nshards_);
  for (unsigned i = 0; i < nshards_; ++i) {
    auto s = std::make_unique<shard>();
    s->index = i;
    s->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    LHWS_ASSERT(s->epfd >= 0 && "epoll_create1 failed");
    s->wakefd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    LHWS_ASSERT(s->wakefd >= 0 && "eventfd failed");
    s->timerfd = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
    LHWS_ASSERT(s->timerfd >= 0 && "timerfd_create failed");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    int rc = ::epoll_ctl(s->epfd, EPOLL_CTL_ADD, s->wakefd, &ev);
    LHWS_ASSERT(rc == 0 && "epoll_ctl(wakefd) failed");
    ev.data.u64 = kTimerTag;
    rc = ::epoll_ctl(s->epfd, EPOLL_CTL_ADD, s->timerfd, &ev);
    LHWS_ASSERT(rc == 0 && "epoll_ctl(timerfd) failed");
    (void)rc;
    shards_.push_back(std::move(s));
  }
  for (auto& sp : shards_) {
    shard* s = sp.get();
    s->thread = std::thread([this, s] { loop(*s); });
#if defined(__linux__)
    // Name the thread so it shows up in /proc, perf, and debuggers (15-char
    // limit on Linux); trace output names the reactor/<shard> rows too.
    char name[16];
    if (nshards_ == 1) {
      std::snprintf(name, sizeof(name), "lhws-reactor");
    } else {
      std::snprintf(name, sizeof(name), "lhws-r/%u", s->index);
    }
    ::pthread_setname_np(s->thread.native_handle(), name);
#endif
  }
}

reactor::~reactor() {
  for (auto& sp : shards_) {
    {
      std::lock_guard<std::mutex> lock(sp->mu);
      sp->stop = true;
    }
    kick(*sp);
  }
  for (auto& sp : shards_) {
    if (sp->thread.joinable()) sp->thread.join();
    // Entries still registered at teardown (sockets outliving the reactor
    // violate the contract, but don't compound it with a leak).
    for (fd_entry* e : sp->entries) delete e;
    sp->entries.clear();
    ::close(sp->timerfd);
    ::close(sp->wakefd);
    ::close(sp->epfd);
  }
}

void reactor::kick(shard& s) {
  std::uint64_t one = 1;
  const ssize_t r = ::write(s.wakefd, &one, sizeof(one));
  (void)r;  // eventfd writes only fail if the counter saturates — still a wake
}

reactor::fd_entry* reactor::register_fd(int fd) {
  return register_fd(fd, shard_of(fd));
}

reactor::fd_entry* reactor::register_fd(int fd, unsigned shard_hint) {
  shard& s = *shards_[shard_hint % nshards_];
  auto* e = new fd_entry;
  e->fd = fd;
  e->shard = s.index;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.ptr = e;
  const int rc = ::epoll_ctl(s.epfd, EPOLL_CTL_ADD, fd, &ev);
  LHWS_ASSERT(rc == 0 && "epoll_ctl(ADD) failed");
  (void)rc;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.entries.insert(e);
  }
  s.registered.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t cur =
      registered_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_registered_.load(std::memory_order_relaxed);
  while (cur > peak && !peak_registered_.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
  return e;
}

void reactor::deregister_fd(fd_entry* e) {
  shard& s = *shards_[e->shard];
  std::unique_lock<std::mutex> lock(s.mu);
  if (s.stopped) {
    // Shard thread is gone (post-run teardown): remove inline.
    ::epoll_ctl(s.epfd, EPOLL_CTL_DEL, e->fd, nullptr);
    s.entries.erase(e);
    delete e;
    s.registered.fetch_sub(1, std::memory_order_relaxed);
    registered_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  s.dereg_q.push_back(e);
  const std::uint64_t ticket = ++s.dereg_posted;
  lock.unlock();
  kick(s);
  lock.lock();
  s.dereg_cv.wait(lock, [&] { return s.dereg_done >= ticket || s.stopped; });
  if (s.stopped && s.dereg_done < ticket) {
    // The loop exited without draining (shouldn't happen — it drains on the
    // way out), but never leave the caller with a registered entry.
    s.entries.erase(e);
    ::epoll_ctl(s.epfd, EPOLL_CTL_DEL, e->fd, nullptr);
    delete e;
    s.registered.fetch_sub(1, std::memory_order_relaxed);
    registered_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void reactor::process_deregs(shard& s) {
  std::vector<fd_entry*> q;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    q.swap(s.dereg_q);
  }
  for (fd_entry* e : q) {
    ::epoll_ctl(s.epfd, EPOLL_CTL_DEL, e->fd, nullptr);
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.entries.erase(e);
    }
    delete e;
    s.registered.fetch_sub(1, std::memory_order_relaxed);
    registered_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!q.empty()) {
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.dereg_done += q.size();
    }
    s.dereg_cv.notify_all();
  }
}

std::uint64_t reactor::enqueue_deadline(shard& s, deadline_entry e) {
  std::unique_lock<std::mutex> lock(s.mu);
  e.token = make_token(s, s.next_seq++);
  s.live_deadlines.insert(e.token);
  const std::int64_t deadline_ns = e.deadline_ns;
  s.deadlines.push(e);
  if (s.armed_deadline_ns == 0 || deadline_ns < s.armed_deadline_ns) {
    arm_timerfd_locked(s, deadline_ns);
  }
  return e.token;
}

void reactor::arm_timerfd_locked(shard& s, std::int64_t next_deadline_ns) {
  s.armed_deadline_ns = next_deadline_ns;
  itimerspec its{};
  if (next_deadline_ns != 0) {
    std::int64_t rel = next_deadline_ns - now_ns();
    if (rel < 1) rel = 1;  // already due: fire as soon as possible
    its.it_value.tv_sec = static_cast<time_t>(rel / kNsPerSec);
    its.it_value.tv_nsec = static_cast<long>(rel % kNsPerSec);
  }
  const int rc = ::timerfd_settime(s.timerfd, 0, &its, nullptr);
  LHWS_ASSERT(rc == 0 && "timerfd_settime failed");
  (void)rc;
}

std::uint64_t reactor::schedule_deadline(std::int64_t deadline_ns, fd_entry* e,
                                         int dir, io_waiter* w) {
  // The fd's own shard, so the expiry fire and the io completion stay
  // serialized on one thread (see header).
  shard& s = *shards_[e->shard];
  return enqueue_deadline(s, deadline_entry{deadline_ns, 0, w, e, dir});
}

void reactor::schedule_sleep(std::int64_t deadline_ns, io_waiter* w) {
  const std::uint64_t i = sleep_rr_.fetch_add(1, std::memory_order_relaxed);
  shard& s = *shards_[static_cast<std::size_t>(i % nshards_)];
  enqueue_deadline(s, deadline_entry{deadline_ns, 0, w, nullptr, 0});
}

bool reactor::cancel(std::uint64_t token) {
  shard& s = shard_of_token(token);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.live_deadlines.erase(token) != 0;
}

bool reactor::pending(std::uint64_t token) const {
  shard& s = shard_of_token(token);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.live_deadlines.count(token) != 0;
}

std::size_t reactor::deadlines_pending() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    total += sp->live_deadlines.size();
  }
  return total;
}

void reactor::complete(shard& s, io_waiter* w, wait_status st) {
  if (st == wait_status::ready && w->deadline_token != 0) {
    // Cancellation may lose (the deadline fire is collected or running on
    // this very thread earlier in the batch) — then its exact gate claim
    // already failed or will fail, and it never touches `w`.
    cancel(w->deadline_token);
  }
  w->status = st;
  std::int64_t delta = now_ns() - w->armed_ns;
  if (delta < 0) delta = 0;
  s.delta_hist[static_cast<std::size_t>(w->kind)].record(
      static_cast<std::uint64_t>(delta));
  if (st == wait_status::timed_out) {
    s.timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  // Last touch: the resumed coroutine frame (which holds `w`) may be
  // destroyed the instant the resume is delivered.
  w->resume.fire();
}

void reactor::fire_gate(shard& s, dir_gate<>& gate) {
  // Latch FIRST, then claim. A worker publishing between the two steps is
  // covered either way: published before the claim → we fire it; published
  // after → its post-publish recheck consumes the latch and reclaims.
  // Claim-then-latch has a lost-wakeup window (worker publishes and
  // suspends between our empty claim and the latch) — the model checker
  // finds it in three executions (tests/chk/test_io_gate_chk.cpp).
  gate.set_ready();
  void* w = gate.take_any();
  if (w != nullptr) {
    gate.consume_ready();  // absorb our own latch: the claim delivers it
    complete(s, static_cast<io_waiter*>(w), wait_status::ready);
  }
}

void reactor::dispatch_fd(shard& s, fd_entry* e, std::uint32_t events) {
  if ((events & kReadableMask) != 0) fire_gate(s, e->gate[kRead]);
  if ((events & kWritableMask) != 0) fire_gate(s, e->gate[kWrite]);
}

void reactor::fire_due_deadlines(shard& s) {
  std::vector<deadline_entry> due;
  {
    std::unique_lock<std::mutex> lock(s.mu);
    const std::int64_t now = now_ns();
    while (!s.deadlines.empty() && s.deadlines.top().deadline_ns <= now) {
      if (s.live_deadlines.erase(s.deadlines.top().token) != 0) {
        due.push_back(s.deadlines.top());
      }
      s.deadlines.pop();
    }
    arm_timerfd_locked(s,
                       s.deadlines.empty() ? 0 : s.deadlines.top().deadline_ns);
  }
  for (const deadline_entry& d : due) {
    if (d.e != nullptr) {
      // with_deadline expiry: only the exact gate claim grants ownership of
      // the waiter. Losing the claim means the io completion (earlier in
      // this batch, or a worker-side reclaim) owns it — strict no-op, so a
      // freed frame is never dereferenced.
      if (d.e->gate[d.dir].take(d.w)) complete(s, d.w, wait_status::timed_out);
    } else {
      complete(s, d.w, wait_status::ready);  // sleep_until edge
    }
  }
}

void reactor::loop(shard& s) {
  // Completions fired from this thread stamp resume nodes with this lane,
  // so spans can attribute the fire to reactor/<shard> (DESIGN.md §14).
  rt::tl_completer_lane = s.index;
  constexpr int kMaxEvents = 64;
  epoll_event evs[kMaxEvents];
  bool running = true;
  while (running) {
    const int n = ::epoll_wait(s.epfd, evs, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    s.wakeups.fetch_add(1, std::memory_order_relaxed);
    const auto batch = static_cast<std::uint64_t>(n);
    if (batch > s.peak_batch.load(std::memory_order_relaxed)) {
      s.peak_batch.store(batch, std::memory_order_relaxed);
    }
    bool timer_due = false;
    bool kicked = false;
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.u64 == kWakeTag) {
        kicked = true;
      } else if (evs[i].data.u64 == kTimerTag) {
        timer_due = true;
      } else {
        dispatch_fd(s, static_cast<fd_entry*>(evs[i].data.ptr), evs[i].events);
      }
    }
    if (timer_due) {
      drain_fd(s.timerfd);
      fire_due_deadlines(s);
    }
    if (kicked) {
      drain_fd(s.wakefd);
      process_deregs(s);
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.stop) running = false;
    }
  }
  // Drain once more so no deregister_fd caller is left waiting, then mark
  // the thread gone (later deregistrations run inline).
  process_deregs(s);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stopped = true;
  }
  s.dereg_cv.notify_all();
}

obs::log_histogram reactor::delta_hist(op_kind k) const {
  obs::log_histogram merged;
  for (const auto& sp : shards_) {
    merged.merge(sp->delta_hist[static_cast<std::size_t>(k)]);
  }
  return merged;
}

std::uint64_t reactor::epoll_wakeups() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    total += sp->wakeups.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t reactor::peak_ready_batch() const noexcept {
  std::uint64_t peak = 0;
  for (const auto& sp : shards_) {
    const std::uint64_t b = sp->peak_batch.load(std::memory_order_relaxed);
    if (b > peak) peak = b;
  }
  return peak;
}

std::uint64_t reactor::timeouts_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    total += sp->timeouts.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t reactor::shard_registered_fds(unsigned shard_idx) const {
  return shards_[shard_idx % nshards_]->registered.load(
      std::memory_order_relaxed);
}

void reactor::export_metrics(obs::metrics_registry& reg) const {
  reg.add_gauge("lhws_io_reactor_shards", "Reactor shards in the plane",
                static_cast<double>(nshards_));
  reg.add_gauge("lhws_io_registered_fds", "Sockets currently registered",
                static_cast<double>(registered_fds()));
  reg.add_gauge("lhws_io_registered_fds_peak", "Peak registered sockets",
                static_cast<double>(peak_registered_fds()));
  reg.add_counter("lhws_io_epoll_wakeups_total", "epoll_wait returns",
                  epoll_wakeups());
  reg.add_gauge("lhws_io_ready_batch_peak",
                "Largest ready-event batch from one epoll_wait",
                static_cast<double>(peak_ready_batch()));
  reg.add_gauge("lhws_io_deadlines_pending",
                "Deadline-wheel entries scheduled and not yet fired",
                static_cast<double>(deadlines_pending()));
  reg.add_counter("lhws_io_timeouts_total", "with_deadline expirations fired",
                  timeouts_fired());
  for (const auto& sp : shards_) {
    const std::string shard_label =
        ",shard=\"" + std::to_string(sp->index) + "\"";
    reg.add_gauge("lhws_io_shard_registered_fds",
                  "Sockets registered on this shard (affinity skew)",
                  static_cast<double>(
                      sp->registered.load(std::memory_order_relaxed)),
                  "shard=\"" + std::to_string(sp->index) + "\"");
    for (std::size_t k = 0; k < kNumOpKinds; ++k) {
      reg.add_histogram("lhws_io_observed_delta_ns",
                        "Observed delta (arm to completion)",
                        &sp->delta_hist[k],
                        std::string("op=\"") +
                            op_name(static_cast<op_kind>(k)) + "\"" +
                            shard_label);
    }
  }
}

}  // namespace lhws::io
