#include "io/reactor.hpp"

#include <pthread.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "support/config.hpp"
#include "support/timing.hpp"

namespace lhws::io {

namespace {

// epoll_event.data values reserved for the reactor's own fds; real
// registrations carry an fd_entry pointer, which is never 0 or 1.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kTimerTag = 1;

constexpr std::int64_t kNsPerSec = 1'000'000'000;

// Any of these means a read()-side syscall will make progress (data, EOF,
// or a pending error to collect); writable-ish likewise for the write side.
constexpr std::uint32_t kReadableMask =
    EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR | EPOLLPRI;
constexpr std::uint32_t kWritableMask = EPOLLOUT | EPOLLHUP | EPOLLERR;

void drain_fd(int fd) {
  std::uint64_t buf = 0;
  const ssize_t r = ::read(fd, &buf, sizeof(buf));
  (void)r;  // non-blocking; EAGAIN just means nothing was pending
}

}  // namespace

const char* op_name(op_kind k) noexcept {
  switch (k) {
    case op_kind::accept:
      return "accept";
    case op_kind::connect:
      return "connect";
    case op_kind::read:
      return "read";
    case op_kind::write:
      return "write";
    case op_kind::sleep:
      return "sleep";
  }
  return "unknown";
}

reactor::reactor() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  LHWS_ASSERT(epfd_ >= 0 && "epoll_create1 failed");
  wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  LHWS_ASSERT(wakefd_ >= 0 && "eventfd failed");
  timerfd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  LHWS_ASSERT(timerfd_ >= 0 && "timerfd_create failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
  LHWS_ASSERT(rc == 0 && "epoll_ctl(wakefd) failed");
  ev.data.u64 = kTimerTag;
  rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, timerfd_, &ev);
  LHWS_ASSERT(rc == 0 && "epoll_ctl(timerfd) failed");
  (void)rc;

  thread_ = std::thread([this] { loop(); });
#if defined(__linux__)
  // Name the thread so it shows up as "lhws-reactor" in /proc, perf, and
  // debuggers (15-char limit on Linux); trace output names its row too.
  ::pthread_setname_np(thread_.native_handle(), "lhws-reactor");
#endif
}

reactor::~reactor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  kick();
  if (thread_.joinable()) thread_.join();
  // Entries still registered at teardown (sockets outliving the reactor
  // violate the contract, but don't compound it with a leak).
  for (fd_entry* e : entries_) delete e;
  entries_.clear();
  ::close(timerfd_);
  ::close(wakefd_);
  ::close(epfd_);
}

void reactor::kick() {
  std::uint64_t one = 1;
  const ssize_t r = ::write(wakefd_, &one, sizeof(one));
  (void)r;  // eventfd writes only fail if the counter saturates — still a wake
}

reactor::fd_entry* reactor::register_fd(int fd) {
  auto* e = new fd_entry;
  e->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.ptr = e;
  const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  LHWS_ASSERT(rc == 0 && "epoll_ctl(ADD) failed");
  (void)rc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.insert(e);
  }
  const std::uint64_t cur =
      registered_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_registered_.load(std::memory_order_relaxed);
  while (cur > peak && !peak_registered_.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
  return e;
}

void reactor::deregister_fd(fd_entry* e) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    // Reactor thread is gone (post-run teardown): remove inline.
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, e->fd, nullptr);
    entries_.erase(e);
    delete e;
    registered_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  dereg_q_.push_back(e);
  const std::uint64_t ticket = ++dereg_posted_;
  lock.unlock();
  kick();
  lock.lock();
  dereg_cv_.wait(lock,
                 [&] { return dereg_done_ >= ticket || stopped_; });
  if (stopped_ && dereg_done_ < ticket) {
    // The loop exited without draining (shouldn't happen — it drains on the
    // way out), but never leave the caller with a registered entry.
    entries_.erase(e);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, e->fd, nullptr);
    delete e;
    registered_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void reactor::process_deregs() {
  std::vector<fd_entry*> q;
  {
    std::lock_guard<std::mutex> lock(mu_);
    q.swap(dereg_q_);
  }
  for (fd_entry* e : q) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, e->fd, nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(e);
    }
    delete e;
    registered_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!q.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      dereg_done_ += q.size();
    }
    dereg_cv_.notify_all();
  }
}

std::uint64_t reactor::enqueue_deadline_locked(
    std::unique_lock<std::mutex>& lock, deadline_entry e) {
  (void)lock;
  e.token = next_token_++;
  live_deadlines_.insert(e.token);
  const std::int64_t deadline_ns = e.deadline_ns;
  deadlines_.push(e);
  if (armed_deadline_ns_ == 0 || deadline_ns < armed_deadline_ns_) {
    arm_timerfd_locked(deadline_ns);
  }
  return e.token;
}

void reactor::arm_timerfd_locked(std::int64_t next_deadline_ns) {
  armed_deadline_ns_ = next_deadline_ns;
  itimerspec its{};
  if (next_deadline_ns != 0) {
    std::int64_t rel = next_deadline_ns - now_ns();
    if (rel < 1) rel = 1;  // already due: fire as soon as possible
    its.it_value.tv_sec = static_cast<time_t>(rel / kNsPerSec);
    its.it_value.tv_nsec = static_cast<long>(rel % kNsPerSec);
  }
  const int rc = ::timerfd_settime(timerfd_, 0, &its, nullptr);
  LHWS_ASSERT(rc == 0 && "timerfd_settime failed");
  (void)rc;
}

std::uint64_t reactor::schedule_deadline(std::int64_t deadline_ns, fd_entry* e,
                                         int dir, io_waiter* w) {
  std::unique_lock<std::mutex> lock(mu_);
  return enqueue_deadline_locked(lock,
                                 deadline_entry{deadline_ns, 0, w, e, dir});
}

void reactor::schedule_sleep(std::int64_t deadline_ns, io_waiter* w) {
  std::unique_lock<std::mutex> lock(mu_);
  enqueue_deadline_locked(lock,
                          deadline_entry{deadline_ns, 0, w, nullptr, 0});
}

bool reactor::cancel(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  return live_deadlines_.erase(token) != 0;
}

bool reactor::pending(std::uint64_t token) const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_deadlines_.count(token) != 0;
}

std::size_t reactor::deadlines_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_deadlines_.size();
}

void reactor::complete(io_waiter* w, wait_status st) {
  if (st == wait_status::ready && w->deadline_token != 0) {
    // Cancellation may lose (the deadline fire is collected or running on
    // this very thread earlier in the batch) — then its exact gate claim
    // already failed or will fail, and it never touches `w`.
    cancel(w->deadline_token);
  }
  w->status = st;
  std::int64_t delta = now_ns() - w->armed_ns;
  if (delta < 0) delta = 0;
  delta_hist_[static_cast<std::size_t>(w->kind)].record(
      static_cast<std::uint64_t>(delta));
  if (st == wait_status::timed_out) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  // Last touch: the resumed coroutine frame (which holds `w`) may be
  // destroyed the instant the resume is delivered.
  w->resume.fire();
}

void reactor::fire_gate(dir_gate<>& gate) {
  // Latch FIRST, then claim. A worker publishing between the two steps is
  // covered either way: published before the claim → we fire it; published
  // after → its post-publish recheck consumes the latch and reclaims.
  // Claim-then-latch has a lost-wakeup window (worker publishes and
  // suspends between our empty claim and the latch) — the model checker
  // finds it in three executions (tests/chk/test_io_gate_chk.cpp).
  gate.set_ready();
  void* w = gate.take_any();
  if (w != nullptr) {
    gate.consume_ready();  // absorb our own latch: the claim delivers it
    complete(static_cast<io_waiter*>(w), wait_status::ready);
  }
}

void reactor::dispatch_fd(fd_entry* e, std::uint32_t events) {
  if ((events & kReadableMask) != 0) fire_gate(e->gate[kRead]);
  if ((events & kWritableMask) != 0) fire_gate(e->gate[kWrite]);
}

void reactor::fire_due_deadlines() {
  std::vector<deadline_entry> due;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const std::int64_t now = now_ns();
    while (!deadlines_.empty() && deadlines_.top().deadline_ns <= now) {
      if (live_deadlines_.erase(deadlines_.top().token) != 0) {
        due.push_back(deadlines_.top());
      }
      deadlines_.pop();
    }
    arm_timerfd_locked(deadlines_.empty() ? 0 : deadlines_.top().deadline_ns);
  }
  for (const deadline_entry& d : due) {
    if (d.e != nullptr) {
      // with_deadline expiry: only the exact gate claim grants ownership of
      // the waiter. Losing the claim means the io completion (earlier in
      // this batch, or a worker-side reclaim) owns it — strict no-op, so a
      // freed frame is never dereferenced.
      if (d.e->gate[d.dir].take(d.w)) complete(d.w, wait_status::timed_out);
    } else {
      complete(d.w, wait_status::ready);  // sleep_until edge
    }
  }
}

void reactor::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event evs[kMaxEvents];
  bool running = true;
  while (running) {
    const int n = ::epoll_wait(epfd_, evs, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    const auto batch = static_cast<std::uint64_t>(n);
    if (batch > peak_batch_.load(std::memory_order_relaxed)) {
      peak_batch_.store(batch, std::memory_order_relaxed);
    }
    bool timer_due = false;
    bool kicked = false;
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.u64 == kWakeTag) {
        kicked = true;
      } else if (evs[i].data.u64 == kTimerTag) {
        timer_due = true;
      } else {
        dispatch_fd(static_cast<fd_entry*>(evs[i].data.ptr), evs[i].events);
      }
    }
    if (timer_due) {
      drain_fd(timerfd_);
      fire_due_deadlines();
    }
    if (kicked) {
      drain_fd(wakefd_);
      process_deregs();
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) running = false;
    }
  }
  // Drain once more so no deregister_fd caller is left waiting, then mark
  // the thread gone (later deregistrations run inline).
  process_deregs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  dereg_cv_.notify_all();
}

void reactor::export_metrics(obs::metrics_registry& reg) const {
  reg.add_gauge("lhws_io_registered_fds", "Sockets currently registered",
                static_cast<double>(registered_fds()));
  reg.add_gauge("lhws_io_registered_fds_peak", "Peak registered sockets",
                static_cast<double>(peak_registered_fds()));
  reg.add_counter("lhws_io_epoll_wakeups_total", "epoll_wait returns",
                  epoll_wakeups());
  reg.add_gauge("lhws_io_ready_batch_peak",
                "Largest ready-event batch from one epoll_wait",
                static_cast<double>(peak_ready_batch()));
  reg.add_gauge("lhws_io_deadlines_pending",
                "Deadline-wheel entries scheduled and not yet fired",
                static_cast<double>(deadlines_pending()));
  reg.add_counter("lhws_io_timeouts_total", "with_deadline expirations fired",
                  timeouts_fired());
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    reg.add_histogram(
        "lhws_io_observed_delta_ns", "Observed delta (arm to completion)",
        &delta_hist_[k],
        std::string("op=\"") + op_name(static_cast<op_kind>(k)) + "\"");
  }
}

}  // namespace lhws::io
