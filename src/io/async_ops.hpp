// Coroutine socket and timer ops over io::reactor — heavy edges with
// *measured* δ.
//
//   long got = co_await io::async_read(r, s, buf, n);
//   long fd  = co_await io::async_accept(r, listener);
//   co_await io::sleep_for(r, 2ms);
//   long got = co_await io::async_read(r, s, buf, n, io::with_deadline(5ms));
//
// Every op is a retry loop around the non-blocking syscall: attempt, and
// on EAGAIN suspend on the fd's dir_gate until the reactor delivers an
// edge, then attempt again (edges are hints, not guarantees — a stale
// sticky bit or a peer draining the buffer first just means one more
// EAGAIN). Results are ssize_t-flavoured: >= 0 on success (bytes, or an
// accepted fd), 0 for EOF, and -errno on failure — -ETIMEDOUT when a
// with_deadline expires.
//
// Engine split mirrors core/latency.hpp: under LHWS the continuation
// suspends through rt::resume_handle and the worker moves on (the latency
// is hidden); under plain WS the worker blocks in poll(2) — the Section
// 6.1 baseline, which is exactly what bench_rpc_loopback measures.
//
// with_deadline: the deadline-wheel entry and the io completion race for
// ownership of the suspended waiter through an exact dir_gate claim; the
// loser never touches it. The full arm/fire ordering argument is DESIGN.md
// §10; the cancel-vs-complete race is stress-tested in
// tests/io/test_deadline.cpp and the gate handoff is model-checked in
// tests/chk/test_io_gate_chk.cpp.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <coroutine>
#include <cstdint>

#include "core/task.hpp"
#include "io/reactor.hpp"
#include "io/socket.hpp"
#include "runtime/scheduler_core.hpp"
#include "support/timing.hpp"

namespace lhws::io {

// Absolute per-op deadline (now_ns clock); 0 = none. Build one with
// with_deadline() and pass it as the op's trailing argument.
struct op_deadline {
  std::int64_t deadline_ns = 0;
};

// The per-op cancellation wrapper: co_await async_read(r, s, buf, n,
// with_deadline(5ms)) resolves to -ETIMEDOUT if the wheel fires first.
template <typename Rep, typename Period>
[[nodiscard]] inline op_deadline with_deadline(
    std::chrono::duration<Rep, Period> d) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return op_deadline{now_ns() + ns};
}

namespace detail {

// Span classification for the causal-trace layer (obs/span.hpp): one
// span_kind per io op so --spans breakdowns separate accept/connect/rw/δ.
[[nodiscard]] inline obs::span_kind span_kind_of(op_kind k) noexcept {
  switch (k) {
    case op_kind::accept:
      return obs::span_kind::io_accept;
    case op_kind::connect:
      return obs::span_kind::io_connect;
    case op_kind::read:
      return obs::span_kind::io_read;
    case op_kind::write:
      return obs::span_kind::io_write;
    case op_kind::sleep:
      return obs::span_kind::io_sleep;
  }
  return obs::span_kind::io_sleep;
}

// One suspension on an fd direction. The protocol comments live in
// io/dir_gate.hpp (gate handoff) and DESIGN.md §10 (deadline ordering).
class [[nodiscard]] io_wait_awaiter {
 public:
  io_wait_awaiter(reactor& r, reactor::fd_entry& e, int dir, op_kind kind,
                  std::int64_t deadline_ns) noexcept
      : r_(r), e_(e), dir_(dir), kind_(kind), deadline_ns_(deadline_ns) {}

  bool await_ready() noexcept {
    if (e_.gate[dir_].consume_ready()) {
      w_.status = wait_status::ready;
      return true;  // an edge already arrived: retry the syscall
    }
    return false;
  }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> h) {
    rt::worker* wk = rt::worker::current();
    LHWS_ASSERT(wk != nullptr &&
                "io ops may only be awaited inside a scheduler run");
    if (wk->sched().config().engine == rt::engine_mode::ws) {
      block_in_place(wk);
      return false;
    }
    w_.kind = kind_;
    w_.armed_ns = now_ns();
    // Set before publish: after the gate hands the waiter to a completer
    // this frame may be resumed (and freed) on another worker at any time.
    suspended_ = true;
    w_.resume.arm(wk, h, obs::promise_span(h), span_kind_of(kind_));
    if (deadline_ns_ != 0) {
      // Scheduled before publish so the io completion can always find (and
      // cancel) the token; the wheel's fire only touches w_ after winning
      // an exact gate claim, so this early arm is safe.
      w_.deadline_token = r_.schedule_deadline(deadline_ns_, &e_, dir_, &w_);
    }
    e_.gate[dir_].publish(&w_);
    if (e_.gate[dir_].consume_ready()) {
      // An edge raced the publish. Either the reactor missed the waiter
      // (sticky bit set: reclaim and retry) or it claimed and fired it
      // (we lost the exact claim: a resume is already on its way).
      if (e_.gate[dir_].take(&w_)) {
        if (w_.deadline_token != 0) {
          r_.cancel(w_.deadline_token);  // losing this race is fine: the
          w_.deadline_token = 0;         // wheel's exact claim also lost
        }
        w_.resume.cancel();
        w_.status = wait_status::ready;
        suspended_ = false;
        return false;
      }
      return true;
    }
    if (w_.deadline_token != 0 && !r_.pending(w_.deadline_token)) {
      // The deadline was collected inside the install window. If its fire
      // ran before our publish, its exact claim failed and the timeout
      // would be lost — reclaim and report it ourselves. If the fire is
      // concurrent, exactly one of us wins the claim.
      if (e_.gate[dir_].take(&w_)) {
        w_.resume.cancel();
        w_.status = wait_status::timed_out;
        suspended_ = false;
        return false;
      }
    }
    return true;
  }

  wait_status await_resume() noexcept {
    if (suspended_) {
      // Recorded by the resuming worker, not the reactor: trace buffers
      // are single-writer per worker.
      if (rt::worker* wk = rt::worker::current()) {
        wk->record_trace(rt::trace_kind::io_wake, w_.armed_ns, now_ns(),
                         static_cast<std::uint64_t>(w_.kind) + 1);
      }
    }
    return w_.status;
  }

 private:
  // WS baseline: occupy the worker in poll(2) for the full latency.
  void block_in_place(rt::worker* wk) {
    wk->note_blocked_wait();
    const std::int64_t t0 = now_ns();
    const short want =
        dir_ == reactor::kRead ? static_cast<short>(POLLIN)
                               : static_cast<short>(POLLOUT);
    for (;;) {
      int timeout_ms = -1;
      if (deadline_ns_ != 0) {
        const std::int64_t rel = deadline_ns_ - now_ns();
        if (rel <= 0) {
          w_.status = wait_status::timed_out;
          break;
        }
        timeout_ms = static_cast<int>((rel + 999'999) / 1'000'000);
      }
      pollfd p{};
      p.fd = e_.fd;
      p.events = want;
      const int rc = ::poll(&p, 1, timeout_ms);
      if (rc > 0 || (rc < 0 && errno != EINTR)) {
        w_.status = wait_status::ready;  // let the syscall report errors
        break;
      }
      if (rc == 0) {
        w_.status = wait_status::timed_out;
        break;
      }
    }
    wk->record_trace(rt::trace_kind::blocked, t0, now_ns());
  }

  reactor& r_;
  reactor::fd_entry& e_;
  int dir_;
  op_kind kind_;
  std::int64_t deadline_ns_;
  io_waiter w_{};
  bool suspended_ = false;
};

// Timer-only heavy edge: scheduling on the wheel is the publication point;
// the frame is off-limits between schedule_sleep and resumption.
class [[nodiscard]] sleep_awaiter {
 public:
  sleep_awaiter(reactor& r, std::int64_t deadline_ns) noexcept
      : r_(r), deadline_ns_(deadline_ns) {}

  bool await_ready() const noexcept { return deadline_ns_ <= now_ns(); }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> h) {
    rt::worker* wk = rt::worker::current();
    LHWS_ASSERT(wk != nullptr &&
                "sleep_until may only be awaited inside a scheduler run");
    if (wk->sched().config().engine == rt::engine_mode::ws) {
      wk->note_blocked_wait();
      const std::int64_t t0 = now_ns();
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(deadline_ns_ - t0));
      wk->record_trace(rt::trace_kind::blocked, t0, now_ns());
      return false;
    }
    w_.kind = op_kind::sleep;
    w_.armed_ns = now_ns();
    suspended_ = true;
    w_.resume.arm(wk, h, obs::promise_span(h), obs::span_kind::io_sleep);
    r_.schedule_sleep(deadline_ns_, &w_);
    return true;
  }

  void await_resume() noexcept {
    if (suspended_) {
      if (rt::worker* wk = rt::worker::current()) {
        wk->record_trace(rt::trace_kind::io_wake, w_.armed_ns, now_ns(),
                         static_cast<std::uint64_t>(op_kind::sleep) + 1);
      }
    }
  }

 private:
  reactor& r_;
  std::int64_t deadline_ns_;
  io_waiter w_{};
  bool suspended_ = false;
};

}  // namespace detail

// Suspends until deadline_ns (now_ns clock); a deadline in the past never
// suspends. The reactor's timerfd wheel is the completer.
[[nodiscard]] inline auto sleep_until(reactor& r, std::int64_t deadline_ns) {
  return detail::sleep_awaiter(r, deadline_ns);
}

template <typename Rep, typename Period>
[[nodiscard]] inline auto sleep_for(reactor& r,
                                    std::chrono::duration<Rep, Period> d) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return detail::sleep_awaiter(r, now_ns() + ns);
}

// Reads up to n bytes. Returns bytes read (> 0), 0 on EOF (or n == 0 —
// never suspends), or -errno / -ETIMEDOUT.
[[nodiscard]] inline task<long> async_read(reactor& r, socket& s, void* buf,
                                           std::size_t n,
                                           op_deadline dl = {}) {
  if (n == 0) co_return 0;
  for (;;) {
    // LHWS-LINT-ALLOW(LHWS002): non-blocking fd — EAGAIN suspends on the
    // dir_gate below, so the syscall never occupies the worker.
    const ssize_t got = ::read(s.fd(), buf, n);
    if (got >= 0) co_return static_cast<long>(got);
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      co_return -static_cast<long>(errno);
    }
    const wait_status st = co_await detail::io_wait_awaiter(
        r, *s.entry(), reactor::kRead, op_kind::read, dl.deadline_ns);
    if (st == wait_status::timed_out) co_return -ETIMEDOUT;
  }
}

// Writes the FULL buffer (looping over partial sends; SIGPIPE suppressed).
// Returns n, or -errno / -ETIMEDOUT (bytes already sent are then lost to
// the caller — close the connection on error).
[[nodiscard]] inline task<long> async_write(reactor& r, socket& s,
                                            const void* buf, std::size_t n,
                                            op_deadline dl = {}) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    // LHWS-LINT-ALLOW(LHWS002): non-blocking fd — EAGAIN suspends on the
    // dir_gate below, so the syscall never occupies the worker.
    const ssize_t put = ::send(s.fd(), p + done, n - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const wait_status st = co_await detail::io_wait_awaiter(
          r, *s.entry(), reactor::kWrite, op_kind::write, dl.deadline_ns);
      if (st == wait_status::timed_out) co_return -ETIMEDOUT;
      continue;
    }
    co_return put < 0 ? -static_cast<long>(errno) : -EIO;
  }
  co_return static_cast<long>(done);
}

// Accepts one connection from a listening socket. Returns the new fd
// (non-blocking, NOT yet registered — adopt it with socket(r, fd)), or
// -errno / -ETIMEDOUT.
[[nodiscard]] inline task<long> async_accept(reactor& r, socket& listener,
                                             op_deadline dl = {}) {
  for (;;) {
    // LHWS-LINT-ALLOW(LHWS002): non-blocking listener — EAGAIN suspends on
    // the dir_gate below, so the syscall never occupies the worker.
    const int fd = ::accept4(listener.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) co_return fd;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      co_return -static_cast<long>(errno);
    }
    const wait_status st = co_await detail::io_wait_awaiter(
        r, *listener.entry(), reactor::kRead, op_kind::accept,
        dl.deadline_ns);
    if (st == wait_status::timed_out) co_return -ETIMEDOUT;
  }
}

// Connects s to 127.0.0.1:port. Returns 0, or -errno / -ETIMEDOUT.
[[nodiscard]] inline task<long> async_connect(reactor& r, socket& s,
                                              std::uint16_t port,
                                              op_deadline dl = {}) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // LHWS-LINT-ALLOW(LHWS002): non-blocking socket — EINPROGRESS suspends on
  // the dir_gate below, so the syscall never occupies the worker.
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    co_return 0;
  }
  if (errno != EINPROGRESS && errno != EINTR && errno != EAGAIN &&
      errno != EALREADY) {
    co_return -static_cast<long>(errno);
  }
  for (;;) {
    const wait_status st = co_await detail::io_wait_awaiter(
        r, *s.entry(), reactor::kWrite, op_kind::connect, dl.deadline_ns);
    if (st == wait_status::timed_out) co_return -ETIMEDOUT;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      co_return -static_cast<long>(errno);
    }
    if (err != 0) co_return -static_cast<long>(err);
    // Readiness can be stale (a pre-connect HUP edge latched the sticky
    // bit): getpeername tells connected from still-in-progress apart.
    sockaddr_in peer{};
    socklen_t plen = sizeof(peer);
    if (::getpeername(s.fd(), reinterpret_cast<sockaddr*>(&peer), &plen) ==
        0) {
      co_return 0;
    }
    if (errno != ENOTCONN) co_return -static_cast<long>(errno);
  }
}

}  // namespace lhws::io
