// io::conn_buffer — per-connection scratch memory on the slab magazines
// (DESIGN.md §11, §14).
//
// Connection churn is an allocation storm if every accept heap-allocates
// its read/write buffers: at thousands of connects per second the malloc
// lock becomes a hidden serialization point right next to the reactor hot
// path. A conn_buffer is one slab block (largest bucket by default, 8 KiB
// payload) carved from the accepting thread's magazine and recycled back
// on close — so steady-state churn allocates nothing from the system, and
// a buffer freed on a different worker than the one that carved it rides
// the magazine's remote-free list exactly like a stolen coroutine frame.
#pragma once

#include <cstddef>

#include "mem/slab.hpp"
#include "support/config.hpp"

namespace lhws::io {

class conn_buffer {
 public:
  conn_buffer() = default;

  // One slab block of at least `size` bytes. Sizes above the largest
  // bucket take the allocator's headered fallback — legal, but defeats
  // recycling; keep per-connection buffers within mem::kMaxBucketPayload.
  explicit conn_buffer(std::size_t size)
      : data_(static_cast<unsigned char*>(mem::allocate(size))),
        size_(size) {}

  conn_buffer(conn_buffer&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  conn_buffer& operator=(conn_buffer&& o) noexcept {
    if (this != &o) {
      reset();
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  conn_buffer(const conn_buffer&) = delete;
  conn_buffer& operator=(const conn_buffer&) = delete;
  ~conn_buffer() { reset(); }

  // Returns the block to its owning magazine (possibly via the remote-free
  // list) and leaves the buffer empty.
  void reset() noexcept {
    if (data_ != nullptr) {
      mem::deallocate(data_);
      data_ = nullptr;
      size_ = 0;
    }
  }

  [[nodiscard]] unsigned char* data() noexcept { return data_; }
  [[nodiscard]] const unsigned char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }

  // A sub-span view [off, off+len) for splitting one block into rx/tx
  // halves without a second allocation.
  [[nodiscard]] unsigned char* span(std::size_t off, std::size_t len) noexcept {
    LHWS_ASSERT(off + len <= size_);
    (void)len;
    return data_ + off;
  }

 private:
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lhws::io
