// io::reactor — real heavy edges: an epoll-backed event loop that turns
// kernel readiness and timer expiry into LHWS resume deliveries.
//
// The paper models a heavy edge as any "latency-incurring operation such
// as communication or I/O" (§1); until this subsystem, the runtime could
// only *simulate* one (core/latency.hpp sleeps on the event hub). The
// reactor makes δ a measured quantity: a suspended socket op or deadline
// completes when the kernel says so, and the completion flows through the
// exact same rt::resume_handle path as every simulated edge — so the
// Lemma 7 deque economy, the direct-push/batched-resume split and the
// parker's unconditional resume unpark (DESIGN.md §9) all apply unchanged.
//
// One background thread owns the epoll set. Three kinds of wakeup:
//   - eventfd:  shutdown + deregistration kicks (never holds user data),
//   - timerfd:  the deadline wheel (sleep_until and with_deadline), always
//               armed at the earliest pending deadline,
//   - sockets:  edge-triggered (EPOLLIN|EPOLLOUT|EPOLLET|EPOLLRDHUP),
//               registered once per fd and demultiplexed into a per-
//               direction dir_gate (io/dir_gate.hpp).
//
// Everything the reactor thread does per event is O(1) and non-blocking:
// claim the gate's waiter and fire its resume_handle (or latch the sticky
// ready bit). The worker side of the handoff lives in io/async_ops.hpp.
//
// Thread-safety: register_fd / schedule_* / cancel are callable from any
// thread. deregister_fd is synchronous — it hands the entry to the reactor
// thread and waits for the EPOLL_CTL_DEL + free, which serializes entry
// teardown against in-flight deadline fires (a deadline fire may still
// inspect the entry's gates after a cancel() raced it; see DESIGN.md §10).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "io/dir_gate.hpp"
#include "obs/histogram.hpp"
#include "runtime/resume_handle.hpp"

namespace lhws::obs {
class metrics_registry;
}

namespace lhws::io {

// Op taxonomy for observed-δ accounting and trace/stats labelling. Keep in
// sync with op_name() and tools/lhws_trace_stats.
enum class op_kind : std::uint8_t { accept, connect, read, write, sleep };
inline constexpr std::size_t kNumOpKinds = 5;

[[nodiscard]] const char* op_name(op_kind k) noexcept;

enum class wait_status : std::uint8_t { ready, timed_out };

// The armed waiter for one suspended io op. Lives inside the awaitable
// (and therefore the suspended coroutine frame); ownership is transferred
// through a dir_gate claim or a deadline-wheel pop — whoever wins the
// claim is the unique completer and must not touch the waiter after
// resume.fire() returns.
struct io_waiter {
  rt::resume_handle resume{};
  std::int64_t armed_ns = 0;     // suspension start (now_ns clock)
  std::uint64_t deadline_token = 0;  // 0 = no with_deadline attached
  op_kind kind = op_kind::read;
  wait_status status = wait_status::ready;
};

class reactor {
 public:
  static constexpr int kRead = 0;   // EPOLLIN-side gate index
  static constexpr int kWrite = 1;  // EPOLLOUT-side gate index

  // Per-registered-fd state. Stable address from register_fd until
  // deregister_fd; freed only by the reactor thread.
  struct fd_entry {
    int fd = -1;
    dir_gate<> gate[2];
  };

  reactor();
  ~reactor();
  reactor(const reactor&) = delete;
  reactor& operator=(const reactor&) = delete;

  // Adds a non-blocking fd to the epoll set (edge-triggered, both
  // directions, armed once for the fd's lifetime). Thread-safe.
  fd_entry* register_fd(int fd);

  // Removes the fd and frees the entry. Blocks until the reactor thread
  // has performed the removal. Contract: no op may be suspended on either
  // gate (complete or time out every op before closing its socket).
  void deregister_fd(fd_entry* e);

  // --- deadline wheel -----------------------------------------------------
  // Arms `w` to be fired with wait_status::timed_out at deadline_ns unless
  // the io completion claims it first; the fire only touches `w` after
  // winning an exact gate claim, so a completed (and freed) waiter is
  // never dereferenced. Returns a token for cancel()/pending().
  std::uint64_t schedule_deadline(std::int64_t deadline_ns, fd_entry* e,
                                  int dir, io_waiter* w);

  // Pure timer edge (sleep_until): fires `w` with wait_status::ready at or
  // after deadline_ns. The waiter must already be armed; scheduling is the
  // publication point.
  void schedule_sleep(std::int64_t deadline_ns, io_waiter* w);

  // True iff the entry was removed before its fire was collected. False
  // means the fire already ran or is running on the reactor thread.
  bool cancel(std::uint64_t token);

  // True while the entry is scheduled and its fire has not been collected.
  [[nodiscard]] bool pending(std::uint64_t token) const;

  // --- observability ------------------------------------------------------
  // Observed δ (arm → completion) per op type. The reactor thread is the
  // single writer; concurrent readers are safe (obs/histogram.hpp).
  [[nodiscard]] const obs::log_histogram& delta_hist(op_kind k) const noexcept {
    return delta_hist_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t registered_fds() const noexcept {
    return registered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_registered_fds() const noexcept {
    return peak_registered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoll_wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_ready_batch() const noexcept {
    return peak_batch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t timeouts_fired() const noexcept {
    return timeouts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t deadlines_pending() const;

  // Registers lhws_io_* gauges/counters and the per-op δ histograms.
  void export_metrics(obs::metrics_registry& reg) const;

 private:
  struct deadline_entry {
    std::int64_t deadline_ns;
    std::uint64_t token;
    io_waiter* w;
    fd_entry* e;  // null for sleep entries
    int dir;

    bool operator>(const deadline_entry& o) const noexcept {
      return deadline_ns > o.deadline_ns;
    }
  };

  void loop();
  void dispatch_fd(fd_entry* e, std::uint32_t events);
  void fire_gate(dir_gate<>& gate);
  // Completes `w` (exclusive ownership required): cancels an attached
  // deadline on the ready path, records δ, fires the resume. Reactor
  // thread only — the δ histograms are single-writer.
  void complete(io_waiter* w, wait_status st);
  void fire_due_deadlines();
  void process_deregs();
  std::uint64_t enqueue_deadline_locked(std::unique_lock<std::mutex>& lock,
                                        deadline_entry e);
  void arm_timerfd_locked(std::int64_t next_deadline_ns);
  void kick();

  int epfd_ = -1;
  int wakefd_ = -1;
  int timerfd_ = -1;
  std::thread thread_;

  mutable std::mutex mu_;
  std::priority_queue<deadline_entry, std::vector<deadline_entry>,
                      std::greater<>>
      deadlines_;
  std::unordered_set<std::uint64_t> live_deadlines_;
  std::uint64_t next_token_ = 1;
  std::int64_t armed_deadline_ns_ = 0;  // 0 = timerfd disarmed
  std::unordered_set<fd_entry*> entries_;
  std::vector<fd_entry*> dereg_q_;
  std::uint64_t dereg_posted_ = 0;
  std::uint64_t dereg_done_ = 0;
  std::condition_variable dereg_cv_;
  bool stop_ = false;
  bool stopped_ = false;  // reactor thread has exited

  obs::log_histogram delta_hist_[kNumOpKinds];
  std::atomic<std::uint64_t> registered_{0};
  std::atomic<std::uint64_t> peak_registered_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> peak_batch_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace lhws::io
