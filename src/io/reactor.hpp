// io::reactor — real heavy edges: a sharded, epoll-backed event plane that
// turns kernel readiness and timer expiry into LHWS resume deliveries.
//
// The paper models a heavy edge as any "latency-incurring operation such
// as communication or I/O" (§1); until this subsystem, the runtime could
// only *simulate* one (core/latency.hpp sleeps on the event hub). The
// reactor makes δ a measured quantity: a suspended socket op or deadline
// completes when the kernel says so, and the completion flows through the
// exact same rt::resume_handle path as every simulated edge — so the
// Lemma 7 deque economy, the direct-push/batched-resume split and the
// parker's unconditional resume unpark (DESIGN.md §9) all apply unchanged.
//
// Sharding (DESIGN.md §14): the plane is N independent shards, each a
// background thread owning its own epoll set, eventfd, timerfd deadline
// wheel, registration table and mutex — no shared lock on any completion
// path. An fd maps to a shard by the pure affinity function fd % N (or an
// explicit shard hint from a SO_REUSEPORT listener), so a connection's
// completions always fire on the same shard for its whole life, and with
// shards == workers the completer is co-located with the worker that owns
// the handler's deque: deliver_resume is a same-core direct push on the
// common path instead of a cross-thread injection.
//
// Per shard, three kinds of wakeup:
//   - eventfd:  shutdown + deregistration kicks (never holds user data),
//   - timerfd:  the shard's deadline wheel (sleep_until and with_deadline),
//               always armed at the earliest pending deadline,
//   - sockets:  edge-triggered (EPOLLIN|EPOLLOUT|EPOLLET|EPOLLRDHUP),
//               registered once per fd and demultiplexed into a per-
//               direction dir_gate (io/dir_gate.hpp).
//
// Everything a shard thread does per event is O(1) and non-blocking: claim
// the gate's waiter and fire its resume_handle (or latch the sticky ready
// bit). The worker side of the handoff lives in io/async_ops.hpp. A
// with_deadline deadline for an fd op is scheduled on the fd's own shard,
// so the expiry fire and the io completion stay serialized on one thread
// (the exact-claim protocol would be safe cross-thread, but same-thread
// keeps the δ histograms single-writer and the reasoning local).
//
// Thread-safety: register_fd / schedule_* / cancel are callable from any
// thread. deregister_fd is synchronous — it hands the entry to its shard
// thread and waits for the EPOLL_CTL_DEL + free, which serializes entry
// teardown against in-flight deadline fires (a deadline fire may still
// inspect the entry's gates after a cancel() raced it; see DESIGN.md §10).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "io/dir_gate.hpp"
#include "obs/histogram.hpp"
#include "runtime/resume_handle.hpp"

namespace lhws::obs {
class metrics_registry;
}

namespace lhws::io {

// Op taxonomy for observed-δ accounting and trace/stats labelling. Keep in
// sync with op_name() and tools/lhws_trace_stats.
enum class op_kind : std::uint8_t { accept, connect, read, write, sleep };
inline constexpr std::size_t kNumOpKinds = 5;

[[nodiscard]] const char* op_name(op_kind k) noexcept;

enum class wait_status : std::uint8_t { ready, timed_out };

// The armed waiter for one suspended io op. Lives inside the awaitable
// (and therefore the suspended coroutine frame); ownership is transferred
// through a dir_gate claim or a deadline-wheel pop — whoever wins the
// claim is the unique completer and must not touch the waiter after
// resume.fire() returns.
struct io_waiter {
  rt::resume_handle resume{};
  std::int64_t armed_ns = 0;     // suspension start (now_ns clock)
  std::uint64_t deadline_token = 0;  // 0 = no with_deadline attached
  op_kind kind = op_kind::read;
  wait_status status = wait_status::ready;
};

class reactor {
 public:
  static constexpr int kRead = 0;   // EPOLLIN-side gate index
  static constexpr int kWrite = 1;  // EPOLLOUT-side gate index

  // Deadline tokens carry their shard in the top bits so cancel()/pending()
  // route without a global table; the per-shard sequence starts at 1, so a
  // live token is never 0 (0 = "no deadline attached").
  static constexpr unsigned kTokenShardBits = 12;
  static constexpr unsigned kTokenSeqBits = 64 - kTokenShardBits;
  static constexpr unsigned kMaxShards = 1U << kTokenShardBits;

  // Per-registered-fd state. Stable address from register_fd until
  // deregister_fd; freed only by the owning shard's thread. `shard` is the
  // fd's affinity for its whole registration — every completion for this
  // entry fires on that shard thread.
  struct fd_entry {
    int fd = -1;
    std::uint32_t shard = 0;
    dir_gate<> gate[2];
  };

  // shards == 0 is clamped to 1; shards > kMaxShards is clamped down.
  explicit reactor(unsigned shards = 1);
  ~reactor();
  reactor(const reactor&) = delete;
  reactor& operator=(const reactor&) = delete;

  [[nodiscard]] unsigned shards() const noexcept { return nshards_; }

  // The default fd→shard affinity. Pure function of the fd number, so a
  // closed-and-reused fd lands on the same shard it had before — affinity
  // is stable across reconnects without any table lookup.
  [[nodiscard]] unsigned shard_of(int fd) const noexcept {
    return static_cast<unsigned>(fd) % nshards_;
  }

  // Adds a non-blocking fd to its affinity shard's epoll set (edge-
  // triggered, both directions, armed once for the fd's lifetime).
  // Thread-safe. The hint overload pins the fd to a specific shard — used
  // by SO_REUSEPORT accept so a connection inherits its listener's shard.
  fd_entry* register_fd(int fd);
  fd_entry* register_fd(int fd, unsigned shard_hint);

  // Removes the fd and frees the entry. Blocks until the owning shard
  // thread has performed the removal. Contract: no op may be suspended on
  // either gate (complete or time out every op before closing its socket).
  void deregister_fd(fd_entry* e);

  // --- deadline wheel -----------------------------------------------------
  // Arms `w` to be fired with wait_status::timed_out at deadline_ns unless
  // the io completion claims it first; the fire only touches `w` after
  // winning an exact gate claim, so a completed (and freed) waiter is
  // never dereferenced. Scheduled on the entry's own shard. Returns a
  // token for cancel()/pending().
  std::uint64_t schedule_deadline(std::int64_t deadline_ns, fd_entry* e,
                                  int dir, io_waiter* w);

  // Pure timer edge (sleep_until): fires `w` with wait_status::ready at or
  // after deadline_ns. The waiter must already be armed; scheduling is the
  // publication point. Sleeps round-robin across shards so a timer storm
  // spreads over all wheels.
  void schedule_sleep(std::int64_t deadline_ns, io_waiter* w);

  // True iff the entry was removed before its fire was collected. False
  // means the fire already ran or is running on its shard thread.
  bool cancel(std::uint64_t token);

  // True while the entry is scheduled and its fire has not been collected.
  [[nodiscard]] bool pending(std::uint64_t token) const;

  // --- observability ------------------------------------------------------
  // Observed δ (arm → completion) per op type, merged across shards. Each
  // shard thread is the single writer of its own histograms; the merge is
  // a snapshot copy (obs/histogram.hpp), hence by value.
  [[nodiscard]] obs::log_histogram delta_hist(op_kind k) const;
  [[nodiscard]] std::uint64_t registered_fds() const noexcept {
    return registered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_registered_fds() const noexcept {
    return peak_registered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoll_wakeups() const noexcept;
  [[nodiscard]] std::uint64_t peak_ready_batch() const noexcept;
  [[nodiscard]] std::uint64_t timeouts_fired() const noexcept;
  [[nodiscard]] std::size_t deadlines_pending() const;
  // Per-shard registration gauge (affinity skew observability).
  [[nodiscard]] std::uint64_t shard_registered_fds(unsigned shard) const;

  // Registers lhws_io_* gauges/counters and the per-op δ histograms
  // (per-shard series, labelled op=...,shard=...).
  void export_metrics(obs::metrics_registry& reg) const;

 private:
  struct deadline_entry {
    std::int64_t deadline_ns;
    std::uint64_t token;
    io_waiter* w;
    fd_entry* e;  // null for sleep entries
    int dir;

    bool operator>(const deadline_entry& o) const noexcept {
      return deadline_ns > o.deadline_ns;
    }
  };

  // One shard: a whole single-reactor's worth of state. No member is ever
  // touched by another shard's thread; cross-shard callers go through mu.
  struct shard {
    unsigned index = 0;
    int epfd = -1;
    int wakefd = -1;
    int timerfd = -1;
    std::thread thread;

    mutable std::mutex mu;
    std::priority_queue<deadline_entry, std::vector<deadline_entry>,
                        std::greater<>>
        deadlines;
    std::unordered_set<std::uint64_t> live_deadlines;  // full (shard|seq) tokens
    std::uint64_t next_seq = 1;
    std::int64_t armed_deadline_ns = 0;  // 0 = timerfd disarmed
    std::unordered_set<fd_entry*> entries;
    std::vector<fd_entry*> dereg_q;
    std::uint64_t dereg_posted = 0;
    std::uint64_t dereg_done = 0;
    std::condition_variable dereg_cv;
    bool stop = false;
    bool stopped = false;  // shard thread has exited

    obs::log_histogram delta_hist[kNumOpKinds];
    std::atomic<std::uint64_t> registered{0};
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::uint64_t> peak_batch{0};
    std::atomic<std::uint64_t> timeouts{0};
  };

  [[nodiscard]] std::uint64_t make_token(const shard& s,
                                         std::uint64_t seq) const noexcept {
    return (static_cast<std::uint64_t>(s.index) << kTokenSeqBits) | seq;
  }
  [[nodiscard]] shard& shard_of_token(std::uint64_t token) const noexcept {
    return *shards_[static_cast<std::size_t>(token >> kTokenSeqBits)];
  }

  void loop(shard& s);
  void dispatch_fd(shard& s, fd_entry* e, std::uint32_t events);
  void fire_gate(shard& s, dir_gate<>& gate);
  // Completes `w` (exclusive ownership required): cancels an attached
  // deadline on the ready path, records δ, fires the resume. Shard thread
  // only — the δ histograms are single-writer per shard.
  void complete(shard& s, io_waiter* w, wait_status st);
  void fire_due_deadlines(shard& s);
  void process_deregs(shard& s);
  std::uint64_t enqueue_deadline(shard& s, deadline_entry e);
  static void arm_timerfd_locked(shard& s, std::int64_t next_deadline_ns);
  static void kick(shard& s);

  unsigned nshards_ = 1;
  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<std::uint64_t> sleep_rr_{0};  // round-robin sleep placement

  // Aggregate registration gauge + high-water mark across all shards.
  std::atomic<std::uint64_t> registered_{0};
  std::atomic<std::uint64_t> peak_registered_{0};
};

}  // namespace lhws::io
