// io::dir_gate — the lock-free reactor→worker handoff for one (fd,
// direction) pair under edge-triggered epoll.
//
// Edge-triggered notification is fire-and-forget: the kernel reports a
// readiness EDGE once, and if nobody is listening at that instant the
// information is gone. The gate makes the edge durable with two atomics:
//
//   waiter_  — the armed io_waiter installed by a suspending worker
//              (null when no op is outstanding on this direction), and
//   ready_   — a sticky flag recording an edge that found no waiter.
//
// Protocol (at most ONE outstanding op per direction — enforced by the
// awaitables; the reactor thread is the only edge deliverer):
//
//   reactor, per edge:    set_ready();               // latch FIRST
//                         w = take_any();            // then claim
//                         if (w) { consume_ready(); fire(w); }
//
//   worker, after EAGAIN: if (consume_ready()) retry the syscall;
//                         arm + publish(w);
//                         if (consume_ready())       // edge raced publish
//                           if (take(w)) { cancel suspension; retry; }
//                           else          suspend;   // reactor fired w
//                         else            suspend;
//
// Both orderings matter. The worker's post-publish recheck closes the
// window where an edge lands between the failed syscall and the publish;
// the reactor latching BEFORE claiming closes the dual window where the
// worker publishes and suspends between an empty claim and the latch
// (claim-then-latch strands the edge in ready_ with nobody left to read
// it). Deleting the worker recheck is a lost wakeup, and weakening the
// publish release breaks the transfer of the armed waiter's plain fields —
// all three orderings are pinned by the model checks and mutation tests in
// tests/chk/test_io_gate_chk.cpp, which explore this header via
// chk::check_model (the same Model-policy scheme as support/parker.hpp).
// A delivered-then-reclaimed edge can cost one spurious syscall retry;
// edges are hints, so that is benign (io/async_ops.hpp loops).
#pragma once

#include <atomic>
#include <cstdint>

#include "support/atomic_model.hpp"

namespace lhws::io {

template <typename Model = real_model>
class dir_gate {
  template <typename U>
  using model_atomic = typename Model::template atomic_type<U>;

 public:
  // Worker: consume a sticky readiness edge. True means the fd may have
  // become ready since the last syscall — retry it before suspending.
  bool consume_ready() noexcept {
    return ready_.exchange(0, std::memory_order_acq_rel) != 0;
  }

  // Worker: publish the armed waiter. The release pairs with take_any()'s
  // acquire so the reactor observes the fully armed waiter fields.
  void publish(void* w) noexcept {
    waiter_.store(w, std::memory_order_release);
  }

  // Exact claim: remove `w` iff it is still the installed waiter. Used by
  // the worker's post-publish reclaim and by the deadline wheel — exact so
  // a stale claimer can never steal a newer waiter. The winner (and only
  // the winner) owns `w`.
  bool take(void* w) noexcept {
    void* expected = w;
    return waiter_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
  }

  // Reactor: claim whatever waiter is installed; null if none.
  void* take_any() noexcept {
    return waiter_.exchange(nullptr, std::memory_order_acq_rel);
  }

  // Reactor: record an edge that found no waiter.
  void set_ready() noexcept { ready_.store(1, std::memory_order_release); }

 private:
  model_atomic<void*> waiter_{nullptr};
  model_atomic<std::uint32_t> ready_{0};
};

}  // namespace lhws::io
