// io::socket — a non-blocking socket fd registered with a reactor, plus
// the small set of plain-fd helpers tests and benches use for blocking
// client threads that live outside the scheduler.
//
// A socket owns both the fd and its reactor registration; destruction
// deregisters (synchronously — see reactor::deregister_fd) before closing,
// so a recycled fd number can never collide with a stale epoll entry.
// Contract inherited from the reactor: destroy a socket only when no op is
// suspended on it.
#pragma once

#include <cstdint>
#include <utility>

#include "io/reactor.hpp"

namespace lhws::io {

class socket {
 public:
  socket() = default;

  // Adopts `fd`: forces O_NONBLOCK and registers it with `r` on its
  // affinity shard (fd % shards). The hint overload pins the registration
  // to a specific shard instead — used by sharded accept so a connection
  // inherits its listener's shard (DESIGN.md §14).
  socket(reactor& r, int fd);
  socket(reactor& r, int fd, unsigned shard_hint);

  socket(socket&& o) noexcept
      : reactor_(std::exchange(o.reactor_, nullptr)),
        entry_(std::exchange(o.entry_, nullptr)),
        fd_(std::exchange(o.fd_, -1)) {}
  socket& operator=(socket&& o) noexcept {
    if (this != &o) {
      close();
      reactor_ = std::exchange(o.reactor_, nullptr);
      entry_ = std::exchange(o.entry_, nullptr);
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  socket(const socket&) = delete;
  socket& operator=(const socket&) = delete;
  ~socket() { close(); }

  // A fresh AF_INET TCP socket (non-blocking, registered).
  static socket create_tcp(reactor& r);

  // A TCP socket bound to 127.0.0.1 and listening; pass port 0 for an
  // ephemeral port and read it back with local_port(). Invalid on error.
  static socket listen_loopback(reactor& r, std::uint16_t port,
                                int backlog = 128);

  // A SO_REUSEPORT loopback listener pinned to reactor shard `shard`: one
  // per shard on the same port gives kernel-sharded accept, and every
  // connection accepted from this listener should be registered with the
  // same shard hint so its completions stay on the accepting shard. Bind
  // the first listener with port 0, read local_port(), then bind the rest
  // to that port. Invalid on error.
  static socket listen_reuseport(reactor& r, std::uint16_t port,
                                 unsigned shard, int backlog = 128);

  [[nodiscard]] unsigned shard() const noexcept {
    return entry_ != nullptr ? entry_->shard : 0;
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] reactor::fd_entry* entry() const noexcept { return entry_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }

  // The locally bound port (0 on error) — for ephemeral listeners.
  [[nodiscard]] std::uint16_t local_port() const;

  // Deregisters and closes now (idempotent).
  void close();

 private:
  reactor* reactor_ = nullptr;
  reactor::fd_entry* entry_ = nullptr;
  int fd_ = -1;
};

// Disables Nagle batching on a TCP fd (returns false on error). Small
// request/response protocols need this or every reply waits out the
// delayed-ACK timer.
bool set_tcp_nodelay(int fd);

// --- blocking-side helpers (client threads outside the scheduler) ---------

// Connects a plain BLOCKING TCP socket to 127.0.0.1:port. Returns the fd,
// or -errno.
int connect_loopback_blocking(std::uint16_t port);

// Reads exactly n bytes. Returns n, 0 on clean EOF before any byte, or
// -errno (short reads after EOF mid-record also return -ECONNRESET).
long read_full_fd(int fd, void* buf, std::size_t n);

// Writes exactly n bytes (SIGPIPE suppressed). Returns n or -errno.
long write_full_fd(int fd, const void* buf, std::size_t n);

}  // namespace lhws::io
