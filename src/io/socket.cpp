#include "io/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lhws::io {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

socket::socket(reactor& r, int fd) : reactor_(&r), fd_(fd) {
  set_nonblocking(fd_);
  entry_ = r.register_fd(fd_);
}

socket::socket(reactor& r, int fd, unsigned shard_hint)
    : reactor_(&r), fd_(fd) {
  set_nonblocking(fd_);
  entry_ = r.register_fd(fd_, shard_hint);
}

socket socket::create_tcp(reactor& r) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return socket{};
  return socket(r, fd);
}

socket socket::listen_loopback(reactor& r, std::uint16_t port, int backlog) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return socket{};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return socket{};
  }
  return socket(r, fd);
}

socket socket::listen_reuseport(reactor& r, std::uint16_t port,
                                unsigned shard, int backlog) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return socket{};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    return socket{};
  }
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return socket{};
  }
  return socket(r, fd, shard);
}

bool set_tcp_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

std::uint16_t socket::local_port() const {
  if (fd_ < 0) return 0;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

void socket::close() {
  if (entry_ != nullptr) {
    reactor_->deregister_fd(entry_);
    entry_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reactor_ = nullptr;
}

int connect_loopback_blocking(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -errno;
  const sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return -err;
  }
}

long read_full_fd(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, p + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return done == 0 ? 0 : -ECONNRESET;  // EOF
    if (errno == EINTR) continue;
    return -static_cast<long>(errno);
  }
  return static_cast<long>(done);
}

long write_full_fd(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return put < 0 ? -static_cast<long>(errno) : -EIO;
  }
  return static_cast<long>(done);
}

}  // namespace lhws::io
