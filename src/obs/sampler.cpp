#include "obs/sampler.hpp"

#include <chrono>
#include <utility>

#include "support/config.hpp"

namespace lhws::obs {

void gauge_sampler::start(std::uint32_t interval_us, sample_fn fn) {
  LHWS_ASSERT(!thread_.joinable() && "sampler already running");
  LHWS_ASSERT(interval_us > 0);
  fn_ = std::move(fn);
  stopping_ = false;
  samples_.clear();
  thread_ = std::thread([this, interval_us] { run(interval_us); });
}

void gauge_sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

std::vector<counter_sample> gauge_sampler::take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(samples_, {});
}

void gauge_sampler::run(std::uint32_t interval_us) {
  const auto interval = std::chrono::microseconds(interval_us);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Sample while holding mu_ — the callback touches scheduler state, not
    // sampler state, and take() only runs after stop() joins.
    fn_(samples_);
    if (stopping_) return;
    cv_.wait_for(lock, interval, [this] { return stopping_; });
    if (stopping_) {
      fn_(samples_);  // final reading at shutdown
      return;
    }
  }
}

}  // namespace lhws::obs
