// Minimal HTTP/1.0 metrics endpoint (Linux/POSIX sockets, no deps): serves
//   GET /metrics       -> Prometheus text exposition (text/plain)
//   GET /metrics.json  -> JSON registry dump (application/json)
// Anything else gets a 404. One connection is handled at a time — this is a
// scrape endpoint, not a web server; Prometheus scrapes are serial anyway.
//
// Content is pulled per request from a user callback, so the owner can
// rebuild the payload as runs complete (guarding its own state as needed).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace lhws::obs {

class metrics_http_server {
 public:
  // Returns the response body for the given format.
  enum class format : std::uint8_t { prometheus, json };
  using content_fn = std::function<std::string(format)>;

  metrics_http_server() = default;
  ~metrics_http_server() { stop(); }

  metrics_http_server(const metrics_http_server&) = delete;
  metrics_http_server& operator=(const metrics_http_server&) = delete;

  // Binds 127.0.0.1:port (port 0 = ephemeral; see port()) and starts the
  // accept thread. Returns false (with errno intact) if the bind fails.
  bool start(std::uint16_t port, content_fn fn);

  // Stops accepting and joins the thread (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return listen_fd_.load(std::memory_order_acquire) >= 0;
  }
  // The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();
  void handle_connection(int fd);

  content_fn fn_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace lhws::obs
