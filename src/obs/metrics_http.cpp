#include "obs/metrics_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lhws::obs {
namespace {

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.0 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

}  // namespace

bool metrics_http_server::start(std::uint16_t port, content_fn fn) {
  if (running()) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  fn_ = std::move(fn);
  listen_fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void metrics_http_server::stop() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks the accept(); close() after join keeps the fd
    // valid while the loop drains.
    ::shutdown(fd, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    ::close(fd);
  } else if (thread_.joinable()) {
    thread_.join();
  }
}

void metrics_http_server::serve_loop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal) — exit the loop
    }
    handle_connection(conn);
    ::close(conn);
  }
}

void metrics_http_server::handle_connection(int fd) {
  // Read one request head (we only need the request line).
  char buf[2048];
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + got, sizeof(buf) - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[got] = '\0';

  if (std::strncmp(buf, "GET ", 4) != 0) {
    send_response(fd, "405 Method Not Allowed", "text/plain",
                  "method not allowed\n");
    return;
  }
  const char* path = buf + 4;
  const char* path_end = std::strchr(path, ' ');
  const std::size_t path_len =
      path_end != nullptr ? static_cast<std::size_t>(path_end - path)
                          : std::strlen(path);
  const std::string p(path, path_len);

  if (p == "/metrics") {
    send_response(fd, "200 OK", "text/plain; version=0.0.4",
                  fn_(format::prometheus));
  } else if (p == "/metrics.json") {
    send_response(fd, "200 OK", "application/json", fn_(format::json));
  } else {
    send_response(fd, "404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace lhws::obs
