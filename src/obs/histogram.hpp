// Log-bucketed latency histogram (HDR-style): power-of-two major buckets
// subdivided into 2^kSubBits linear sub-buckets, so every recorded value
// lands in a bucket whose width is at most value / 2^kSubBits (~3% relative
// error with the default 5 sub-bits). This is the same log-linear scheme
// HdrHistogram and the Go runtime use; it makes record() a handful of bit
// operations and keeps the bucket array small and mergeable.
//
// Concurrency contract: record() is single-writer (each worker owns its
// histograms); every read-side operation (count/sum/quantile/merge-source)
// uses relaxed atomic loads and may run concurrently with the writer, e.g.
// from the background sampler or a metrics exporter. merge() mutates the
// destination and must not race with another writer of the destination.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "support/config.hpp"

namespace lhws::obs {

class log_histogram {
 public:
  // 32 sub-buckets per power of two. Values below kSubCount are recorded
  // exactly (width-1 buckets).
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSubCount) +
      static_cast<std::size_t>(64 - kSubBits) *
          static_cast<std::size_t>(kSubCount);

  log_histogram() = default;

  // Copying snapshots the source with relaxed loads (safe while the source's
  // owner keeps recording; the copy is internally consistent per-bucket).
  log_histogram(const log_histogram& o) { copy_from(o); }
  log_histogram& operator=(const log_histogram& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned exp = 63U - static_cast<unsigned>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (exp - kSubBits)) - kSubCount;
    return static_cast<std::size_t>(kSubCount) +
           static_cast<std::size_t>(exp - kSubBits) *
               static_cast<std::size_t>(kSubCount) +
           static_cast<std::size_t>(sub);
  }

  // [lower_bound, lower_bound + width) is the value range of bucket i.
  static constexpr std::uint64_t bucket_lower_bound(std::size_t i) noexcept {
    if (i < kSubCount) return static_cast<std::uint64_t>(i);
    const std::size_t b = (i - kSubCount) / kSubCount;
    const std::size_t s = (i - kSubCount) % kSubCount;
    return (kSubCount + static_cast<std::uint64_t>(s)) << b;
  }

  static constexpr std::uint64_t bucket_width(std::size_t i) noexcept {
    if (i < kSubCount) return 1;
    return std::uint64_t{1} << ((i - kSubCount) / kSubCount);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Single writer: plain compare-then-store on the atomics is race-free.
    if (v < min_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
    }
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    LHWS_ASSERT(i < kNumBuckets);
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }

  // Estimated q-quantile (q in [0, 1]): midpoint of the bucket holding the
  // ceil(q * count)-th smallest recorded value. Error is bounded by one
  // bucket width (the oracle tests assert exactly this).
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      cum += buckets_[i].load(std::memory_order_relaxed);
      if (cum > rank) {
        return bucket_lower_bound(i) + bucket_width(i) / 2;
      }
    }
    return max();
  }

  // Adds o's counts into *this. The destination must be quiescent (no
  // concurrent record() on *this); the source may still be written to.
  void merge(const log_histogram& o) noexcept {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      const std::uint64_t c = o.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(o.count(), std::memory_order_relaxed);
    sum_.fetch_add(o.sum(), std::memory_order_relaxed);
    const std::uint64_t omin = o.min_.load(std::memory_order_relaxed);
    if (omin < min_.load(std::memory_order_relaxed)) {
      min_.store(omin, std::memory_order_relaxed);
    }
    const std::uint64_t omax = o.max_.load(std::memory_order_relaxed);
    if (omax > max_.load(std::memory_order_relaxed)) {
      max_.store(omax, std::memory_order_relaxed);
    }
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void copy_from(const log_histogram& o) noexcept {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i].store(o.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    count_.store(o.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(o.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(o.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(o.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// The four latency distributions the runtime records per worker (all in
// nanoseconds). Aggregated across workers into the run-level view after a
// run completes.
struct latency_histograms {
  log_histogram wake_latency;     // resume delivery -> owner drains it
  log_histogram steal_latency;    // one try_steal() attempt, success or not
  log_histogram segment_duration; // one coroutine segment / batch execution
  log_histogram deque_lifetime;   // deque acquire -> free

  void merge(const latency_histograms& o) noexcept {
    wake_latency.merge(o.wake_latency);
    steal_latency.merge(o.steal_latency);
    segment_duration.merge(o.segment_duration);
    deque_lifetime.merge(o.deque_lifetime);
  }

  void reset() noexcept {
    wake_latency.reset();
    steal_latency.reset();
    segment_duration.reset();
    deque_lifetime.reset();
  }
};

}  // namespace lhws::obs
